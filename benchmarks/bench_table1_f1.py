"""Table 1 — F1 scores of B-Side, Chestnut and SysFilter over the 6 apps.

Paper shape to hold: B-Side ≈0.78-0.88 per app (avg 0.81) consistently
above SysFilter (avg 0.53) which is above Chestnut (avg 0.31).
"""

from repro.metrics import mean, score


def test_table1_f1_scores(app_results, report_emitter, benchmark):
    per_tool: dict[str, list[float]] = {"b-side": [], "chestnut": [], "sysfilter": []}
    rows = [f"{'tool':<11}" + "".join(f"{name:>11}" for name in app_results) + f"{'avg':>8}"]
    for tool in per_tool:
        cells = []
        for result in app_results.values():
            f1 = result.scores()[tool].f1
            per_tool[tool].append(f1)
            cells.append(f"{f1:>11.2f}")
        rows.append(f"{tool:<11}" + "".join(cells) + f"{mean(per_tool[tool]):>8.2f}")
    report_emitter("table1_f1", "Table 1: F1 scores over the validation apps", "\n".join(rows))

    avg = {tool: mean(values) for tool, values in per_tool.items()}
    # Ordering and rough magnitudes from the paper.
    assert avg["b-side"] > avg["sysfilter"] > avg["chestnut"]
    assert avg["b-side"] >= 0.75
    assert avg["chestnut"] <= 0.5
    for f1 in per_tool["b-side"]:
        assert f1 >= 0.7

    # Timed unit: the scoring computation itself over all apps.
    def compute_scores():
        return [
            score(result.bside.syscalls, result.ground_truth).f1
            for result in app_results.values()
        ]

    values = benchmark(compute_scores)
    assert len(values) == len(app_results)
