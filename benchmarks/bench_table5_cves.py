"""Table 5 — percentage of corpus binaries protected against 36 real
kernel CVEs by filters derived from B-Side's analysis.

Paper shape to hold: ~90% average protection; CVEs triggered by rare
syscalls (io_submit, bpf, keyctl...) reach 100%; CVEs triggered by popular
syscalls (setsockopt, socket, execve) protect noticeably fewer binaries.
"""

from repro.metrics import mean
from repro.syscalls import SYSCALL_NUMBERS
from repro.syscalls.cves import CVE_DATABASE, protection_rate


def test_table5_cve_protection(corpus_sweep, report_emitter, benchmark):
    identified_sets = [
        r.syscalls for __, r in corpus_sweep.bside if r.success
    ]
    assert identified_sets

    rows = [f"{'CVE':<15} {'syscalls':<28} {'%protected':>10}"]
    rates = {}
    for cve in CVE_DATABASE:
        rate = protection_rate(cve, identified_sets)
        rates[cve.ident] = rate
        rows.append(f"{cve.ident:<15} {','.join(cve.syscalls):<28} {rate:>10.1%}")
    avg = mean(list(rates.values()))
    rows.append("")
    rows.append(f"average over {len(CVE_DATABASE)} CVEs: {avg:.2%}")
    report_emitter("table5_cves", "Table 5: CVE protection from derived filters", "\n".join(rows))

    # Paper shape: high average protection.
    assert avg >= 0.80
    # Rare-syscall CVEs: everything protected.
    assert rates["2019-10125"] == 1.0  # io_submit
    assert rates["2016-2383"] == 1.0   # bpf
    assert rates["2016-0728"] == 1.0   # keyctl
    # Popular-syscall CVEs protect fewer binaries.
    assert rates["2016-4998"] < rates["2016-2383"]  # setsockopt < bpf
    assert rates["2015-8543"] < 0.95                # socket is common
    # No CVE falls below ~half the corpus (paper: min 53.96%).
    assert min(rates.values()) >= 0.40

    benchmark(lambda: [protection_rate(c, identified_sets) for c in CVE_DATABASE])
