"""Service-scale load generator: the distributed tier under real load.

Runs the :mod:`repro.perf.servicebench` workload at full size — the
asyncio front end plus 1/2/4 lease-claiming worker processes, driven
over real localhost sockets by ramped concurrent clients pushing
thousands of submissions through the queue — and reports it against the
committed ``BENCH_service_scale.json`` trajectory:

* the acceptance ratio: the 4-worker tier's steady-state (warm)
  throughput vs the 1-worker *cold* throughput — asserted to stay
  >= 3x (the same warm-vs-cold framing as
  ``bench_service_throughput.py``: the steady state a long-running
  daemon converges to vs its worst-case single-worker build-out);
* drift vs the **latest** trajectory entry (the 15% p99/throughput
  regression CI enforces; ``tools/service_gate.py`` is the enforcement
  point, the bench only reports it).

The CI gate uses a deterministic small-scale profile of this same
workload; this bench is the full-size load generator (32 distinct
binaries, client ramp up to 64, ~2600 warm submissions per tier).
"""

from __future__ import annotations

import os

from repro.perf import (
    SERVICE_WORKLOAD,
    format_service_measurement,
    load_trajectory,
    measure_service_scale,
)

from _report import emit

TRAJECTORY_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_service_scale.json",
)

#: the acceptance floor: max-tier warm throughput vs 1-worker cold
MIN_SCALE = 3.0

#: full-size load profile (the CI gate runs a smaller deterministic one)
TIERS = (1, 2, 4)
N_BINARIES = 32
CLIENTS_RAMP = (8, 16, 32, 64)
JOBS_PER_CLIENT = 8


def test_service_scale_trajectory(benchmark):
    record = measure_service_scale(
        tiers=TIERS,
        n_binaries=N_BINARIES,
        clients_ramp=CLIENTS_RAMP,
        jobs_per_client=JOBS_PER_CLIENT,
    )
    trajectory = load_trajectory(TRAJECTORY_PATH, workload=SERVICE_WORKLOAD)

    lines = [format_service_measurement(record), ""]
    lines.append(
        f"warm submissions per tier: "
        f"{sum(c * JOBS_PER_CLIENT for c in CLIENTS_RAMP)} "
        f"({len(TIERS)} tiers, {N_BINARIES} distinct binaries)"
    )
    latest = trajectory.baseline
    if latest is not None:
        reference = record["reference"]
        base = latest["reference"]
        lines.append(
            f"drift vs latest entry '{latest.get('label', '?')}': "
            f"{reference['normalized_warm_p99'] / base['normalized_warm_p99']:.3f}x "
            f"normalized p99, "
            f"{reference['normalized_warm_throughput'] / base['normalized_warm_throughput']:.3f}x "
            f"normalized throughput"
        )
    emit("service_scale",
         "Service-scale trajectory (BENCH_service_scale.json)",
         "\n".join(lines))

    if benchmark is not None:
        # Timed unit: one warm submit→done round trip against a live
        # 1-worker deployment (socket + queue + lease + cache hit).
        import tempfile

        from repro.service import (
            AnalysisService,
            AsyncServiceServer,
            ServiceClient,
            spawn_workers,
        )
        from repro.perf.servicebench import _build_binaries

        root = tempfile.mkdtemp(prefix="bside-scale-unit-")
        paths = _build_binaries(os.path.join(root, "bin"), 1)
        service = AnalysisService(
            os.path.join(root, "state"), shared=True, dispatcher=False,
        )
        service.write_config()
        server = AsyncServiceServer(service, port=0)
        server.start(executor=False)
        processes = spawn_workers(os.path.join(root, "state"), 1,
                                  overrides={"poll": 0.05})
        try:
            client = ServiceClient(server.url, timeout=60.0)
            warm = client.submit_path(paths[0])
            client.wait(warm["id"], timeout=120.0)

            def warm_request():
                job = client.submit_path(paths[0])
                return client.wait(job["id"], timeout=60.0, poll=0.005)

            benchmark(warm_request)
        finally:
            for process in processes:
                process.terminate()
            server.stop()

    assert record["scale_warm_max_vs_cold_1w"] >= MIN_SCALE, (
        f"service scale ratio {record['scale_warm_max_vs_cold_1w']:.2f}x "
        f"fell below the {MIN_SCALE:.1f}x acceptance floor"
    )
