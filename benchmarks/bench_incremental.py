"""Incremental-rebuild benchmark: locality of re-analysis, measured.

Runs the :mod:`repro.perf.incbench` workload — a ~400-function static
binary mutated in 3 functions, re-analyzed through the function-granular
``funccfg`` cache — and reports it against the committed
``BENCH_incremental.json`` trajectory:

* the **re-analyzed fraction** (changed functions plus their dependency
  cone over the whole partition) — asserted to stay under 5%, the
  acceptance target the CI gate (``tools/incremental_gate.py``)
  enforces;
* the **site re-execution fraction** (identification anchors whose
  backward symex ran live instead of replaying a cached ``funcid``
  product) — same 5% ceiling: the symex stage must scale with the
  change too;
* **equivalence** of the incremental and cold reports for the same
  mutated bytes — asserted outright: a fast-but-wrong rebuild is worse
  than a slow one;
* cold vs incremental wall time and drift vs the latest trajectory
  entry, reported for the record.
"""

from __future__ import annotations

import os

from repro.perf import load_trajectory, measure_incremental
from repro.perf.incbench import format_incremental_measurement

from _report import emit

TRAJECTORY_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_incremental.json",
)

#: the acceptance ceiling: fraction of functions re-analyzed after a
#: 3-of-~400-function mutation
MAX_REANALYZED_FRACTION = 0.05


def test_incremental_trajectory(benchmark):
    record = measure_incremental(repeats=3)
    trajectory = load_trajectory(TRAJECTORY_PATH)

    lines = [format_incremental_measurement(record), ""]
    latest = trajectory.baseline
    if latest is not None:
        drift = (
            record["normalized_incremental"]
            / latest["normalized_incremental"]
        )
        lines.append(
            f"drift vs latest entry '{latest.get('label', '?')}': "
            f"{drift:.3f}x normalized incremental"
        )
    emit("incremental",
         "Incremental-rebuild trajectory (BENCH_incremental.json)",
         "\n".join(lines))

    if benchmark is not None:
        from repro.core import ArtifactStore, BSideAnalyzer
        from repro.core.report import AnalysisBudget
        from repro.corpus import build_app
        from repro.loader.image import LoadedImage

        bundle = build_app("redis")
        store_dir = os.path.join(
            os.path.dirname(TRAJECTORY_PATH), ".bench-inc-cache"
        )

        def incremental_one():
            analyzer = BSideAnalyzer(
                resolver=bundle.resolver,
                budget=AnalysisBudget.generous(),
                artifact_store=ArtifactStore(store_dir),
                incremental=True,
            )
            analyzer.artifacts.prune("report")
            return analyzer.analyze(
                LoadedImage.from_bytes("redis", bundle.program.elf_bytes)
            )

        try:
            benchmark(incremental_one)
        finally:
            import shutil

            shutil.rmtree(store_dir, ignore_errors=True)

    assert record["equivalent"], (
        "incremental report diverged from the cold report of the same "
        "mutated binary"
    )
    assert record["reanalyzed_fraction"] <= MAX_REANALYZED_FRACTION, (
        f"a {record['functions_changed']}-function mutation re-analyzed "
        f"{100 * record['reanalyzed_fraction']:.2f}% of the partition "
        f"(ceiling {100 * MAX_REANALYZED_FRACTION:.1f}%)"
    )
    assert record["sites_reexecuted_fraction"] <= MAX_REANALYZED_FRACTION, (
        f"a {record['functions_changed']}-function mutation re-executed "
        f"the backward symex of {100 * record['sites_reexecuted_fraction']:.2f}% "
        f"of the identification sites "
        f"(ceiling {100 * MAX_REANALYZED_FRACTION:.1f}%)"
    )
