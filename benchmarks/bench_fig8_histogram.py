"""Figure 8 — distribution of identified-set sizes over the corpus.

Paper shape to hold: Chestnut's mass concentrates around ~270 with almost
no variation; SysFilter concentrates around ~100; B-Side spreads over
1-90 with strong per-application variation.
"""

import statistics

from repro.metrics import histogram


def _ascii_histogram(counts: list[int], label: str, bin_width: int = 10) -> list[str]:
    bins = histogram(counts, bin_width=bin_width)
    lines = [f"--- {label} (n={len(counts)}) ---"]
    peak = max(bins.values()) if bins else 1
    for start in sorted(bins):
        n = bins[start]
        bar = "#" * max(1, round(40 * n / peak))
        lines.append(f"{start:>4}-{start + bin_width - 1:<4} {n:>4} {bar}")
    return lines


def test_fig8_histogram(corpus_sweep, report_emitter, benchmark):
    sizes = {
        tool: [len(r.syscalls) for __, r in results if r.success]
        for tool, results in (
            ("b-side", corpus_sweep.bside),
            ("chestnut", corpus_sweep.chestnut),
            ("sysfilter", corpus_sweep.sysfilter),
        )
    }
    lines: list[str] = []
    for tool, counts in sizes.items():
        lines += _ascii_histogram(counts, tool)
        lines.append("")
    report_emitter(
        "fig8_histogram",
        "Figure 8: distribution of #syscalls identified per binary",
        "\n".join(lines),
    )

    # Chestnut: tight mass near its fallback size on dynamic binaries
    # (its rare static successes are the small pure-direct binaries).
    chestnut_dyn = [
        len(r.syscalls)
        for b, r in corpus_sweep.chestnut
        if r.success and not b.is_static
    ]
    assert statistics.pstdev(chestnut_dyn) < 15
    assert 260 <= statistics.median(chestnut_dyn) <= 290
    # SysFilter: concentrated around ~100.
    assert 80 <= statistics.median(sizes["sysfilter"]) <= 130
    # B-Side: wide spread at low counts.
    assert statistics.median(sizes["b-side"]) < 70
    assert statistics.pstdev(sizes["b-side"]) > statistics.pstdev(chestnut_dyn)

    benchmark(lambda: histogram(sizes["b-side"]))
