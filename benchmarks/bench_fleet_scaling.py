"""Fleet engine scaling: cold vs interface-warm vs fully-warm, 1 vs N workers.

The production claims behind the fleet engine + artifact store, measured:

* an **interface-warm** run (report artifacts pruned, interfaces kept)
  performs *zero* library re-analysis — the persistent cache's hit
  counter equals the number of distinct libraries in the fleet's
  dependency DAG and its miss counter is zero;
* a **fully-warm** run performs *zero per-binary analysis* — every
  report is served from the content-addressed artifact store (report
  hits == fleet size, misses == 0, every entry flagged ``cached``);
* neither caching tier nor a **multi-worker** run changes results: the
  deterministic ``FleetReport.to_json(include_runtime=False)`` document
  is byte-identical across all configurations.
"""

import time

from repro.core.fleet import FleetAnalyzer
from repro.corpus import make_debian_corpus

SCALE = 0.12
WORKERS = 4


def _fleet(corpus, cache_dir, workers=1) -> FleetAnalyzer:
    return FleetAnalyzer(
        resolver=corpus.make_resolver(),
        workers=workers,
        cache_dir=cache_dir,
    )


def _timed_run(corpus, images, cache_dir, workers=1):
    fleet = _fleet(corpus, cache_dir, workers)
    started = time.perf_counter()
    report = fleet.analyze_images(images)
    seconds = time.perf_counter() - started
    iface_stats = fleet.interfaces.stats() if cache_dir else None
    report_stats = (
        fleet.artifacts.counters("report") if cache_dir else None
    )
    return report, seconds, iface_stats, report_stats, fleet


def test_fleet_scaling(tmp_path, report_emitter, benchmark):
    corpus = make_debian_corpus(scale=SCALE, seed=2024)
    images = [b.image for b in corpus.binaries]
    cache_dir = str(tmp_path / "artifact-cache")

    # Tier 0: no cache at all.
    nocache_report, nocache_s, __, __n, __f = _timed_run(corpus, images, None)
    # Tier 1: cold cache (populates interfaces + reports).
    cold_report, cold_s, cold_iface, cold_reports, cold_fleet = _timed_run(
        corpus, images, cache_dir,
    )
    n_libraries = cold_iface["resident"]
    # Tier 2: interface-warm (reports pruned, interfaces kept).
    cold_fleet.artifacts.prune("report")
    iface_report, iface_s, iface_stats, __i, __if = _timed_run(
        corpus, images, cache_dir,
    )
    # Tier 3: fully warm (reports + interfaces on disk).
    warm_report, warm_s, warm_iface, warm_reports, warm_fleet = _timed_run(
        corpus, images, cache_dir,
    )
    # Interface-warm + workers: prune the reports again so per-binary
    # analysis actually runs and fans out over the pool (a fully-warm
    # run would serve every report without ever creating a worker).
    warm_fleet.artifacts.prune("report")
    par_report, par_s, __p, __pr, __pf = _timed_run(
        corpus, images, cache_dir, workers=WORKERS,
    )

    # --- correctness invariants ---------------------------------------
    # Interface-warm run: every library interface came from the cache.
    assert iface_stats["misses"] == 0
    assert iface_stats["hits"] == n_libraries
    assert cold_iface["misses"] == n_libraries
    # Fully-warm run: zero per-binary analysis — every report served
    # from the artifact store, no interface even consulted.
    assert warm_reports["misses"] == 0
    assert warm_reports["hits"] == len(images)
    assert all(e.from_cache for e in warm_report.entries)
    assert warm_iface["hits"] == 0 and warm_iface["misses"] == 0
    # Parallelism and caching never change results.
    canonical = nocache_report.to_json(include_runtime=False)
    assert cold_report.to_json(include_runtime=False) == canonical
    assert iface_report.to_json(include_runtime=False) == canonical
    assert warm_report.to_json(include_runtime=False) == canonical
    assert par_report.to_json(include_runtime=False) == canonical

    speedup = nocache_s / warm_s if warm_s > 0 else float("inf")
    rows = [
        f"fleet: {len(images)} binaries, {n_libraries} shared libraries "
        f"(corpus scale {SCALE})",
        "",
        f"{'configuration':<30} {'seconds':>9} {'binaries/s':>11} "
        f"{'iface hit/miss':>15} {'report hit/miss':>16}",
    ]
    for label, secs, iface, reports in (
        ("no cache, 1 worker", nocache_s, None, None),
        ("cold cache, 1 worker", cold_s, cold_iface, cold_reports),
        ("interface-warm, 1 worker", iface_s, iface_stats, None),
        ("fully-warm, 1 worker", warm_s, warm_iface, warm_reports),
        (f"interface-warm, {WORKERS} workers", par_s, None, None),
    ):
        iface_txt = "-" if iface is None else f"{iface['hits']}/{iface['misses']}"
        rep_txt = "-" if reports is None else f"{reports['hits']}/{reports['misses']}"
        rows.append(
            f"{label:<30} {secs:>9.3f} {len(images) / secs:>11.1f} "
            f"{iface_txt:>15} {rep_txt:>16}"
        )
    rows += [
        "",
        f"interface-warm library re-analysis: 0 "
        f"(hits {iface_stats['hits']} == {n_libraries} libraries)",
        f"fully-warm per-binary analysis: 0 "
        f"(report hits {warm_reports['hits']} == {len(images)} binaries)",
        f"fully-warm end-to-end speedup over no-cache: {speedup:.1f}x",
        f"all tiers byte-identical (modulo runtime fields): True",
    ]
    report_emitter(
        "fleet_scaling",
        "Fleet scaling: artifact store (reports + interfaces) and worker fan-out",
        "\n".join(rows),
    )

    # Timed unit: a fully-warm fleet pass served from the artifact store.
    benchmark(
        lambda: _fleet(corpus, cache_dir).analyze_images(images)
    )
