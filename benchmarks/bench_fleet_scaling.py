"""Fleet engine scaling: cold vs warm interface cache, 1 vs N workers.

The production claim behind the fleet engine, measured:

* a **warm** run performs *zero* library re-analysis — the persistent
  cache's hit counter equals the number of distinct libraries in the
  fleet's dependency DAG and its miss counter is zero;
* a **multi-worker** run produces a byte-identical
  ``FleetReport.to_json()`` (modulo the run-dependent timing/cache
  fields) to the serial run — parallelism changes wall-clock, never
  results.
"""

import time

from repro.core.fleet import FleetAnalyzer
from repro.corpus import make_debian_corpus

SCALE = 0.12
WORKERS = 4


def _fleet(corpus, cache_dir, workers=1) -> FleetAnalyzer:
    return FleetAnalyzer(
        resolver=corpus.make_resolver(),
        workers=workers,
        cache_dir=cache_dir,
    )


def _timed_run(corpus, images, cache_dir, workers=1):
    fleet = _fleet(corpus, cache_dir, workers)
    started = time.perf_counter()
    report = fleet.analyze_images(images)
    stats = fleet.interfaces.stats() if cache_dir else None
    return report, time.perf_counter() - started, stats


def test_fleet_scaling(tmp_path, report_emitter, benchmark):
    corpus = make_debian_corpus(scale=SCALE, seed=2024)
    images = [b.image for b in corpus.binaries]
    cache_dir = str(tmp_path / "iface-cache")

    cold_report, cold_s, cold_stats = _timed_run(corpus, images, cache_dir)
    warm_report, warm_s, warm_stats = _timed_run(corpus, images, cache_dir)
    par_report, par_s, par_stats = _timed_run(
        corpus, images, cache_dir, workers=WORKERS,
    )
    nocache_report, nocache_s, __ = _timed_run(corpus, images, None)

    n_libraries = warm_stats["resident"]

    # --- correctness invariants ---------------------------------------
    # Warm run: every library interface came from the cache, none were
    # re-analyzed.
    assert warm_stats["misses"] == 0
    assert warm_stats["hits"] == n_libraries
    assert cold_stats["misses"] == n_libraries
    # Parallelism and caching never change results.
    canonical = cold_report.to_json(include_runtime=False)
    assert warm_report.to_json(include_runtime=False) == canonical
    assert par_report.to_json(include_runtime=False) == canonical
    assert nocache_report.to_json(include_runtime=False) == canonical

    rows = [
        f"fleet: {len(images)} binaries, {n_libraries} shared libraries "
        f"(corpus scale {SCALE})",
        "",
        f"{'configuration':<28} {'seconds':>9} {'binaries/s':>11} "
        f"{'cache hits':>11} {'cache misses':>13}",
    ]
    for label, secs, stats in (
        ("no cache, 1 worker", nocache_s, None),
        ("cold cache, 1 worker", cold_s, cold_stats),
        ("warm cache, 1 worker", warm_s, warm_stats),
        (f"warm cache, {WORKERS} workers", par_s, par_stats),
    ):
        hits = "-" if stats is None else stats["hits"]
        misses = "-" if stats is None else stats["misses"]
        rows.append(
            f"{label:<28} {secs:>9.3f} {len(images) / secs:>11.1f} "
            f"{hits!s:>11} {misses!s:>13}"
        )
    rows += [
        "",
        f"warm run library re-analysis: 0 "
        f"(hits {warm_stats['hits']} == {n_libraries} libraries)",
        f"serial == {WORKERS}-worker report (modulo timing fields): "
        f"{par_report.to_json(include_runtime=False) == canonical}",
    ]
    report_emitter(
        "fleet_scaling",
        "Fleet scaling: persistent interface cache and worker fan-out",
        "\n".join(rows),
    )

    # Timed unit: a warm-cache serial fleet pass.
    benchmark(
        lambda: _fleet(corpus, cache_dir).analyze_images(images)
    )
