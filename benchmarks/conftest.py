"""Shared fixtures for the benchmark harness.

Heavy workloads (the 6 validation apps, the 557-binary Debian corpus, the
three tools' sweeps over them) are computed once per session and shared;
the ``benchmark`` fixture then times representative units so that
``pytest benchmarks/ --benchmark-only`` both *regenerates every table and
figure of the paper* and reports timing statistics.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

import pytest

from repro.baselines import ChestnutAnalyzer, SysFilterAnalyzer
from repro.core import AnalysisBudget, AnalysisReport, BSideAnalyzer
from repro.corpus import APP_NAMES, build_app, make_debian_corpus
from repro.emu import trace_test_suite
from repro.metrics import score

from _report import emit  # noqa: E402  (benchmarks-local helper)


@dataclass
class AppResult:
    """One app's full cross-tool evaluation."""

    name: str
    bundle: object
    ground_truth: set[int]
    bside: AnalysisReport
    chestnut: AnalysisReport
    sysfilter: AnalysisReport

    def scores(self):
        return {
            "b-side": score(self.bside.syscalls, self.ground_truth),
            "chestnut": score(self.chestnut.syscalls, self.ground_truth),
            "sysfilter": score(self.sysfilter.syscalls, self.ground_truth),
        }


@pytest.fixture(scope="session")
def app_results() -> dict[str, AppResult]:
    """Analyze all six apps with all three tools; trace their test suites."""
    out: dict[str, AppResult] = {}
    analyzer = BSideAnalyzer(budget=AnalysisBudget.generous())
    for name in APP_NAMES:
        bundle = build_app(name)
        analyzer.resolver = bundle.resolver
        bside = analyzer.analyze(
            bundle.program.image, modules=bundle.module_images,
            measure_memory=True,
        )
        truth, __ = trace_test_suite(
            bundle.program.image, bundle.suite, bundle.resolver,
            extra_images=bundle.module_images,
        )
        out[name] = AppResult(
            name=name,
            bundle=bundle,
            ground_truth=truth,
            bside=bside,
            chestnut=ChestnutAnalyzer(bundle.resolver).analyze(bundle.program.image),
            sysfilter=SysFilterAnalyzer(bundle.resolver).analyze(bundle.program.image),
        )
    return out


@dataclass
class CorpusSweep:
    """All three tools swept over the full Debian-like corpus."""

    corpus: object
    bside: list = field(default_factory=list)       # (binary, report)
    chestnut: list = field(default_factory=list)
    sysfilter: list = field(default_factory=list)

    def rows(self, results):
        """(#success, #failure, avg syscalls) per population slice."""
        out = {}
        for label, pred in (
            ("all", lambda b: True),
            ("static", lambda b: b.is_static),
            ("dynamic", lambda b: not b.is_static),
        ):
            sub = [(b, r) for b, r in results if pred(b)]
            ok = [r for __, r in sub if r.success]
            avg = statistics.mean(len(r.syscalls) for r in ok) if ok else 0.0
            out[label] = (len(ok), len(sub) - len(ok), avg, len(sub))
        return out


@pytest.fixture(scope="session")
def corpus_sweep() -> CorpusSweep:
    corpus = make_debian_corpus()
    resolver = corpus.make_resolver()
    sweep = CorpusSweep(corpus=corpus)
    bside = BSideAnalyzer(resolver=resolver)
    chestnut = ChestnutAnalyzer(resolver)
    sysfilter = SysFilterAnalyzer(resolver)
    for binary in corpus.binaries:
        sweep.bside.append((binary, bside.analyze(binary.image)))
        sweep.chestnut.append((binary, chestnut.analyze(binary.image)))
        sweep.sysfilter.append((binary, sysfilter.analyze(binary.image)))
    return sweep


@pytest.fixture(scope="session")
def report_emitter():
    return emit
