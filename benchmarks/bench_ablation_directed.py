"""Ablation §2.4/Figure 2 A — directed vs undirected forward search.

The direction filter restricts depth-0 exploration to blocks discovered by
the backward walk; without it, forward searches wander into branches that
cannot reach the syscall site and burn symbolic steps.  Measured as total
forward symbolic-execution steps spent in identification, on the
validation apps plus a synthetic branch-heavy program where the waste is
structural.
"""

from repro.core import AnalysisBudget, BSideAnalyzer
from repro.corpus import ProgramBuilder
from repro.x86 import EAX, RDI


def _steps(bundle_or_prog, resolver, directed: bool) -> tuple[int, bool]:
    analyzer = BSideAnalyzer(
        resolver=resolver,
        budget=AnalysisBudget.generous(),
        directed_search=directed,
    )
    report = analyzer.analyze(bundle_or_prog)
    return report.symex_steps, report.success


def _branchy_program():
    """Definition and syscall separated by a comb of two-way branches whose
    stray sides dead-end (error-exit paths).  The stray blocks can never
    reach the site, so the directed search prunes them immediately while
    the undirected one walks each to its dead end."""
    p = ProgramBuilder("branchy")
    with p.function("noise"):
        # A chunk of side code the stray branches dive into.
        for i in range(20):
            p.asm.nop()
        p.asm.ret()
    with p.function("_start"):
        p.asm.mov(EAX, 39)
        for i in range(8):
            p.asm.cmp(RDI, i)
            p.asm.jcc("ne", f"main{i}")
            # Stray side: side work, then terminate (never reaches the
            # syscall site below).
            p.asm.call("noise")
            p.asm.call("noise")
            p.asm.ud2()
            p.asm.label(f"main{i}")
            p.asm.nop()
        p.asm.syscall()
        p.asm.mov(EAX, 60)
        p.asm.syscall()
        p.asm.hlt()
    p.set_entry("_start")
    return p.build()


def test_ablation_directed_search(app_results, report_emitter, benchmark):
    rows = [f"{'workload':<11} {'directed steps':>15} {'undirected steps':>17} {'ratio':>7}"]
    ratios = []
    for name, result in app_results.items():
        bundle = result.bundle
        directed_steps, ok1 = _steps(bundle.program.image, bundle.resolver, True)
        undirected_steps, ok2 = _steps(bundle.program.image, bundle.resolver, False)
        assert ok1 and ok2
        ratio = undirected_steps / max(1, directed_steps)
        ratios.append(ratio)
        rows.append(
            f"{name:<11} {directed_steps:>15} {undirected_steps:>17} {ratio:>7.2f}"
        )

    prog = _branchy_program()
    from repro.loader import LibraryResolver

    resolver = LibraryResolver()
    directed_steps, ok1 = _steps(prog.image, resolver, True)
    undirected_steps, ok2 = _steps(prog.image, resolver, False)
    assert ok1 and ok2
    synth_ratio = undirected_steps / max(1, directed_steps)
    rows.append(
        f"{'branchy':<11} {directed_steps:>15} {undirected_steps:>17} {synth_ratio:>7.2f}"
    )
    report_emitter(
        "ablation_directed",
        "Ablation: directed vs undirected forward symbolic search",
        "\n".join(rows),
    )

    # Direction never makes identification more expensive, and pays off
    # clearly on branch-heavy code.
    assert all(r >= 0.99 for r in ratios)
    assert synth_ratio > 1.5

    bundle = app_results["haproxy"].bundle
    benchmark(lambda: _steps(bundle.program.image, bundle.resolver, True))
