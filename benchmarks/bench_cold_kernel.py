"""Cold-kernel benchmark: the PR-4 optimisation target, measured.

Runs the :mod:`repro.perf.coldbench` workload (end-to-end cold analysis
of the six validation apps + component micro-benchmarks) and reports it
against the committed ``BENCH_cold_kernel.json`` trajectory:

* speedup vs the recorded **pre-optimization baseline** (the seed
  kernel before the table-driven decoder / indexed CFG / bitset
  reachability work) — asserted to stay >= 3x;
* drift vs the **latest** trajectory entry (the regression the CI perf
  gate enforces at 15%; the bench itself only reports it, since
  ``tools/perf_gate.py`` is the enforcement point).

Comparisons use normalized cold time (calibrated against an in-run
pure-Python loop), so the assertion holds across machines.
"""

from __future__ import annotations

import os

from repro.perf import load_trajectory, measure_cold_kernel
from repro.perf.coldbench import format_measurement

from _report import emit

TRAJECTORY_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_cold_kernel.json",
)

#: the acceptance floor: cold single-binary analysis vs the pre-PR kernel
MIN_SPEEDUP = 3.0


def test_cold_kernel_trajectory(benchmark):
    record = measure_cold_kernel(repeats=3)
    trajectory = load_trajectory(TRAJECTORY_PATH)

    lines = [format_measurement(record), ""]
    pre = trajectory.pre_optimization
    speedup = None
    if pre is not None:
        speedup = pre["normalized_cold"] / record["normalized_cold"]
        lines.append(
            f"speedup vs pre-optimization baseline "
            f"'{pre['label']}': {speedup:.2f}x (floor {MIN_SPEEDUP:.1f}x)"
        )
        for name, seconds in record["components"].items():
            before = pre.get("components", {}).get(name)
            if before:
                lines.append(f"  {name:<24} {before / seconds:>6.2f}x")
    latest = trajectory.baseline
    if latest is not None:
        drift = record["normalized_cold"] / latest["normalized_cold"]
        lines.append(
            f"drift vs latest entry '{latest.get('label', '?')}': "
            f"{drift:.3f}x normalized cold"
        )
    emit("cold_kernel", "Cold-kernel trajectory (BENCH_cold_kernel.json)",
         "\n".join(lines))

    if benchmark is not None:
        from repro.core import AnalysisBudget, BSideAnalyzer
        from repro.corpus import APP_NAMES, build_app

        bundle = build_app(APP_NAMES[0])

        def cold_one():
            analyzer = BSideAnalyzer(
                resolver=bundle.resolver, budget=AnalysisBudget.generous(),
            )
            return analyzer.analyze(
                bundle.program.image, modules=bundle.module_images,
            )

        benchmark(cold_one)

    if pre is not None:
        assert speedup >= MIN_SPEEDUP, (
            f"cold kernel speedup {speedup:.2f}x fell below the "
            f"{MIN_SPEEDUP:.1f}x acceptance floor"
        )
