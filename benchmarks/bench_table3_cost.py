"""Table 3 — analysis cost on the 6 validation applications: wall time per
pipeline stage, peak traced memory, and basic blocks symbolically explored
during identification.

Paper shape to hold: end-to-end analysis is a one-time offline cost; the
stage split and per-app block-exploration counts vary per application.
(Absolute numbers are not comparable — the paper measures angr on real
Redis/Nginx; this reproduction measures our substrate on app profiles.)
"""

from repro.core import AnalysisBudget, BSideAnalyzer


def test_table3_cost(app_results, report_emitter, benchmark):
    rows = [
        f"{'app':<11} {'cfg(s)':>8} {'wrap(s)':>8} {'ident(s)':>9} "
        f"{'total(s)':>9} {'peakMB':>8} {'BBs explored':>13}"
    ]
    for name, result in app_results.items():
        r = result.bside
        rows.append(
            f"{name:<11} {r.stage_seconds('cfg-recovery'):>8.3f} "
            f"{r.stage_seconds('wrapper-detection'):>8.3f} "
            f"{r.stage_seconds('identification'):>9.3f} "
            f"{r.stage_seconds('total'):>9.3f} "
            f"{r.peak_memory / 1e6:>8.1f} "
            f"{r.bbs_explored:>13}"
        )
    report_emitter("table3_cost", "Table 3: analysis cost per application", "\n".join(rows))

    for name, result in app_results.items():
        r = result.bside
        assert r.stage_seconds("total") > 0
        assert r.bbs_explored > 0, name
        assert r.peak_memory > 0, name
        # The three reported stages are a subset of the total (§5.3 notes
        # other steps such as loading are excluded from the split).
        split = (
            r.stage_seconds("cfg-recovery")
            + r.stage_seconds("wrapper-detection")
            + r.stage_seconds("identification")
        )
        assert split <= r.stage_seconds("total") + 1e-6

    # Timed unit: a full cold analysis (fresh interface cache) of sqlite.
    bundle = app_results["sqlite"].bundle

    def cold_analysis():
        analyzer = BSideAnalyzer(
            resolver=bundle.resolver, budget=AnalysisBudget.generous(),
        )
        return analyzer.analyze(bundle.program.image)

    report = benchmark(cold_analysis)
    assert report.success
