"""Table 2 — B-Side vs Chestnut vs SysFilter over the 557-binary corpus.

Paper shape to hold (success counts are structural, so they match
exactly): B-Side succeeds on ~79% overall / ~98% static / ~66% dynamic;
Chestnut fails on nearly every static binary but succeeds on most dynamic
ones; SysFilter only processes PIC binaries with unwind info.  Average
identified counts: B-Side ≪ SysFilter ≪ Chestnut on dynamic binaries.
"""

from repro.core import BSideAnalyzer


def _format_rows(sweep) -> str:
    lines = []
    for slice_name in ("all", "static", "dynamic"):
        lines.append(f"--- {slice_name} binaries ---")
        header = f"{'tool':<11} {'#success':>12} {'#failure':>12} {'avg #syscalls':>14}"
        lines.append(header)
        for tool, results in (
            ("b-side", sweep.bside),
            ("chestnut", sweep.chestnut),
            ("sysfilter", sweep.sysfilter),
        ):
            ok, fail, avg, total = sweep.rows(results)[slice_name]
            lines.append(
                f"{tool:<11} {f'{ok} ({100 * ok / total:.1f}%)':>12} "
                f"{f'{fail} ({100 * fail / total:.1f}%)':>12} {avg:>14.1f}"
            )
    return "\n".join(lines)


def test_table2_debian_corpus(corpus_sweep, report_emitter, benchmark):
    report_emitter(
        "table2_debian",
        "Table 2: 557 Debian-like binaries, success/failure and precision",
        _format_rows(corpus_sweep),
    )

    rows_b = corpus_sweep.rows(corpus_sweep.bside)
    rows_c = corpus_sweep.rows(corpus_sweep.chestnut)
    rows_s = corpus_sweep.rows(corpus_sweep.sysfilter)

    # Success-rate shape (who succeeds where).
    assert rows_b["static"][0] / rows_b["static"][3] > 0.95
    assert 0.55 <= rows_b["dynamic"][0] / rows_b["dynamic"][3] <= 0.75
    assert rows_c["static"][0] <= 6
    assert rows_c["dynamic"][0] / rows_c["dynamic"][3] > 0.85
    assert rows_s["static"][0] <= 2
    assert rows_s["dynamic"][0] / rows_s["dynamic"][3] < 0.45

    # Precision ordering on dynamic binaries.
    assert rows_b["dynamic"][2] < rows_s["dynamic"][2] < rows_c["dynamic"][2]
    # Rough magnitudes.
    assert 35 <= rows_b["dynamic"][2] <= 75
    assert rows_c["dynamic"][2] > 260

    # B-Side failure-stage taxonomy (§5.2: CFG recovery dominates).
    failures = [r for __, r in corpus_sweep.bside if not r.success]
    cfg_share = sum(r.failure_stage == "cfg-recovery" for r in failures) / len(failures)
    assert cfg_share > 0.6

    # Timed unit: B-Side on one ordinary dynamic binary (interfaces warm).
    resolver = corpus_sweep.corpus.make_resolver()
    analyzer = BSideAnalyzer(resolver=resolver)
    sample = next(
        b for b in corpus_sweep.corpus.binaries
        if not b.is_static and b.hardness is None
    )
    analyzer.analyze(sample.image)  # warm the interface cache

    report = benchmark(lambda: analyzer.analyze(sample.image))
    assert report.success
