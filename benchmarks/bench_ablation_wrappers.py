"""Ablation §4.4 — wrapper detection on/off.

Without the wrapper heuristic every site is identified by querying ``%rax``
at the ``syscall`` instruction.  For wrapper sites that query either fails
(false negatives — SysFilter's behaviour) or, when the backward search
escapes into all callers, collects the union over every call site
(overestimation — Figure 2 B).  The ablation quantifies this on the six
validation apps.
"""

from repro.core import AnalysisBudget, BSideAnalyzer
from repro.metrics import score


def test_ablation_wrapper_detection(app_results, report_emitter, benchmark):
    rows = [
        f"{'app':<11} {'with: FN':>9} {'F1':>6} | {'without: FN':>12} {'F1':>6} {'complete':>9}"
    ]
    degraded = 0
    for name, result in app_results.items():
        bundle = result.bundle
        no_wrap = BSideAnalyzer(
            resolver=bundle.resolver,
            budget=AnalysisBudget.generous(),
            detect_wrappers=False,
        ).analyze(bundle.program.image, modules=bundle.module_images)

        with_score = score(result.bside.syscalls, result.ground_truth)
        without_score = score(no_wrap.syscalls, result.ground_truth)
        rows.append(
            f"{name:<11} {with_score.false_negatives:>9} {with_score.f1:>6.2f} | "
            f"{without_score.false_negatives:>12} {without_score.f1:>6.2f} "
            f"{str(no_wrap.complete):>9}"
        )
        if (
            without_score.false_negatives > with_score.false_negatives
            or without_score.f1 < with_score.f1
            or not no_wrap.complete
        ):
            degraded += 1
    report_emitter(
        "ablation_wrappers",
        "Ablation: wrapper detection disabled (§4.4)",
        "\n".join(rows),
    )

    # Disabling the heuristic must hurt on every wrapper-using app.
    assert degraded == len(app_results)

    bundle = app_results["redis"].bundle

    def no_wrapper_analysis():
        return BSideAnalyzer(
            resolver=bundle.resolver,
            budget=AnalysisBudget.generous(),
            detect_wrappers=False,
        ).analyze(bundle.program.image)

    benchmark(no_wrapper_analysis)
