"""Figure 7 — validation: syscalls identified by B-Side, Chestnut,
SysFilter and the strace-on-test-suite ground truth on the 6 applications,
with per-tool false-negative counts.

Paper shape to hold: B-Side has 0 false negatives everywhere and tracks
the ground truth closely; Chestnut produces >250 identified syscalls with
small FN counts; SysFilter sits in between with FNs on every wrapper-using
application.
"""

import pytest

from repro.core import AnalysisBudget, BSideAnalyzer


def test_fig7_validation_table(app_results, report_emitter, benchmark):
    rows = [
        f"{'app':<11} {'truth':>5} | {'b-side':>7} {'FN':>3} | "
        f"{'chestnut':>8} {'FN':>3} | {'sysfilter':>9} {'FN':>3}"
    ]
    for name, result in app_results.items():
        scores = result.scores()
        rows.append(
            f"{name:<11} {len(result.ground_truth):>5} | "
            f"{len(result.bside.syscalls):>7} {scores['b-side'].false_negatives:>3} | "
            f"{len(result.chestnut.syscalls):>8} {scores['chestnut'].false_negatives:>3} | "
            f"{len(result.sysfilter.syscalls):>9} {scores['sysfilter'].false_negatives:>3}"
        )
    report_emitter("fig7_validation", "Figure 7: validation on 6 applications", "\n".join(rows))

    # Paper's headline claims, asserted.
    for name, result in app_results.items():
        scores = result.scores()
        assert scores["b-side"].false_negatives == 0, name
        assert len(result.chestnut.syscalls) > 250, name
        assert scores["sysfilter"].false_negatives > 0, name

    # Timed unit: one full B-Side analysis of the redis-like app.
    bundle = app_results["redis"].bundle

    def analyze_redis():
        analyzer = BSideAnalyzer(
            resolver=bundle.resolver, budget=AnalysisBudget.generous(),
        )
        return analyzer.analyze(bundle.program.image)

    report = benchmark(analyze_redis)
    assert report.success
