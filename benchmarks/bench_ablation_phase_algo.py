"""Ablation §4.7 — automaton-based vs CFG-navigation phase detection.

The paper reports the DFA route being an order of magnitude faster than
the intuitive CFG navigation (41 s vs 700 s on a hello-world; 20 min vs
4 h on Nginx).  The navigation method re-traverses the whole graph from
every syscall node and compares closures pairwise, so its cost grows
super-linearly with program size; the reproduction measures both methods
on growing synthetic serve-loop programs and checks the scaling trend.
"""

import time

from repro.cfg import build_cfg, reachable_blocks, resolve_indirect_active
from repro.corpus import ProgramBuilder
from repro.phases import detect_phases, detect_phases_cfg_navigation
from repro.x86 import EAX, RDI


def _synthetic_program(n_ops: int):
    """A serve-loop program with ``n_ops`` syscall clusters and padding
    code between them (the padding is what navigation has to re-walk)."""
    p = ProgramBuilder(f"synth{n_ops}")
    with p.function("_start"):
        p.asm.mov(EAX, 2)
        p.asm.syscall()
        p.asm.label("loop")
        for i in range(n_ops):
            p.asm.mov(EAX, (i % 30) + 4)
            p.asm.syscall()
            p.asm.cmp(RDI, i)
            p.asm.jcc("e", f"skip{i}")
            for __ in range(6):
                p.asm.nop()
            p.asm.label(f"skip{i}")
        p.asm.cmp(RDI, 0)
        p.asm.jcc("ne", "loop")
        p.asm.mov(EAX, 60)
        p.asm.syscall()
        p.asm.hlt()
    p.set_entry("_start")
    return p.build()


def _block_syscalls(prog):
    from repro.baselines.naive import _block_local_value

    cfg = build_cfg(prog.image)
    resolve_indirect_active(cfg, prog.image, [prog.image.entry])
    reach = reachable_blocks(cfg, [prog.image.entry])
    out = {}
    for block in cfg.syscall_blocks():
        value = _block_local_value(cfg, block.addr, block.terminator.addr)
        if value is not None:
            out[block.addr] = {value}
    return cfg, out, reach


def _time_methods(n_ops: int):
    prog = _synthetic_program(n_ops)
    cfg, block_syscalls, reach = _block_syscalls(prog)

    t0 = time.perf_counter()
    automaton = detect_phases(
        cfg, block_syscalls, prog.image.entry, reachable=reach,
        back_propagate=False,
    )
    dfa_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    reference = detect_phases_cfg_navigation(
        cfg, block_syscalls, prog.image.entry, reachable=reach,
    )
    nav_s = time.perf_counter() - t0

    union_dfa = automaton.all_syscalls()
    union_nav = set().union(*reference.values()) if reference else set()
    assert union_dfa == union_nav
    return cfg.n_blocks, dfa_s, nav_s


def test_ablation_phase_algorithms(report_emitter, benchmark):
    sizes = (20, 80, 240)
    rows = [f"{'#ops':>6} {'blocks':>7} {'DFA (s)':>10} {'CFG-nav (s)':>12} {'nav/DFA':>8}"]
    measurements = []
    # Warm both code paths (imports, caches) before measuring.
    _time_methods(5)
    for n_ops in sizes:
        blocks, dfa_s, nav_s = _time_methods(n_ops)
        measurements.append((n_ops, blocks, dfa_s, nav_s))
        rows.append(
            f"{n_ops:>6} {blocks:>7} {dfa_s:>10.4f} {nav_s:>12.4f} "
            f"{nav_s / max(dfa_s, 1e-9):>8.2f}"
        )
    report_emitter(
        "ablation_phase_algo",
        "Ablation: DFA-based vs CFG-navigation phase detection (§4.7)",
        "\n".join(rows),
    )

    # Scaling claim: navigation cost grows faster than the automaton's.
    __, __, dfa_small, nav_small = measurements[0]
    __, __, dfa_large, nav_large = measurements[-1]
    dfa_growth = dfa_large / max(dfa_small, 1e-9)
    nav_growth = nav_large / max(nav_small, 1e-9)
    assert nav_growth > dfa_growth, (nav_growth, dfa_growth)
    # At scale, navigation is the slower method (the paper's 10x+ becomes
    # visible once the graph is non-trivial).
    assert nav_large > dfa_large

    prog = _synthetic_program(40)
    cfg, block_syscalls, reach = _block_syscalls(prog)
    benchmark(lambda: detect_phases(
        cfg, block_syscalls, prog.image.entry, reachable=reach,
        back_propagate=False,
    ))
