"""Service throughput: cold vs warm requests/sec at 1 / 4 / 8 workers.

Measures the ``bside serve`` daemon over a real socket on a generated
corpus slice — every number crosses HTTP, the job queue, the batch
executor, and the fleet engine, exactly like production traffic.

Claims measured and asserted:

* **warm requests run zero analysis** — resubmitting an
  already-analyzed corpus is served entirely from the content-addressed
  artifact store: the parent-process pipeline-run counter does not move
  and every report lookup is a hit;
* **a 4-worker server sustains ≥2x the single-worker cold throughput**
  once its cache is populated (the steady state a long-running daemon
  converges to).  The floor was 4x when PR 3 landed; PR 4's cold-kernel
  rewrite made *cold* analysis ~3.6x faster while warm requests remain
  bounded by the unchanged HTTP + queue + JSON envelope, so the
  warm:cold gap legitimately compressed (see BENCH_cold_kernel.json —
  the cold path is now gated on its own trajectory by
  ``tools/perf_gate.py``);
* cold throughput itself scales with workers via admission batching
  (interface warm-up amortised per batch) and, when the machine has the
  cores, the fleet's per-batch process fan-out.  The cold scaling ratio
  is reported but only sanity-checked: on a single-core runner it is
  amortisation-only and machine-dependent.
"""

import os
import time

from repro.core.pipeline import pipeline_runs
from repro.corpus import make_debian_corpus
from repro.service import AnalysisService, ServiceClient, ServiceServer

SCALE = 0.05
WORKER_TIERS = (1, 4, 8)


def _write_corpus(root):
    corpus = make_debian_corpus(scale=SCALE, seed=2024)
    bindir = os.path.join(root, "bin")
    libdir = os.path.join(root, "lib")
    os.makedirs(bindir, exist_ok=True)
    os.makedirs(libdir, exist_ok=True)
    paths = []
    for binary in corpus.binaries:
        path = os.path.join(bindir, binary.name)
        binary.program.save(path)
        paths.append(path)
    for name, library in corpus.libraries.items():
        library.save(os.path.join(libdir, name))
    return paths, libdir


def _run_wave(client, paths, libdir):
    """Submit every binary, then wait for all; returns (seconds, jobs)."""
    started = time.perf_counter()
    submitted = [client.submit_path(path, libdir=libdir) for path in paths]
    jobs = [client.wait(job["id"], timeout=600.0, poll=0.02)
            for job in submitted]
    return time.perf_counter() - started, jobs


def test_service_throughput(tmp_path, report_emitter, benchmark):
    paths, libdir = _write_corpus(str(tmp_path / "corpus"))
    n = len(paths)
    rows = [
        f"service: {n} binaries per wave (corpus scale {SCALE}), "
        f"{os.cpu_count()} cpu core(s)",
        "",
        f"{'configuration':<26} {'seconds':>9} {'req/s':>8} "
        f"{'cached':>7} {'report hit/miss':>16}",
    ]
    results = {}
    for workers in WORKER_TIERS:
        service = AnalysisService(
            str(tmp_path / f"state-{workers}w"),
            workers=workers, queue_size=max(64, 2 * n),
        )
        server = ServiceServer(service, port=0)
        server.start()
        try:
            client = ServiceClient(server.url, timeout=60.0)
            cold_s, cold_jobs = _run_wave(client, paths, libdir)
            runs_before = pipeline_runs()
            warm_s, warm_jobs = _run_wave(client, paths, libdir)
            warm_runs = pipeline_runs() - runs_before
            counters = service.artifacts.counters("report")
        finally:
            server.stop()

        # Warm wave: every job cache-served, zero pipeline passes run.
        # (A few *cold* jobs are cache-served too: the corpus contains
        # byte-identical twins under different names, which the
        # content-hash index dedupes inside the first wave.)
        assert all(j["metrics"]["from_cache"] for j in warm_jobs)
        cold_deduped = sum(1 for j in cold_jobs if j["metrics"]["from_cache"])
        assert cold_deduped < n
        assert warm_runs == 0
        assert counters["hits"] >= n  # the whole warm wave hit

        results[workers] = {"cold_s": cold_s, "warm_s": warm_s}
        for label, secs, jobs in (
            (f"cold, {workers} worker(s)", cold_s, cold_jobs),
            (f"warm, {workers} worker(s)", warm_s, warm_jobs),
        ):
            cached = sum(1 for j in jobs if j["metrics"]["from_cache"])
            rows.append(
                f"{label:<26} {secs:>9.3f} {n / secs:>8.1f} "
                f"{cached:>4}/{n:<2} {counters['hits']:>7}/{counters['misses']}"
            )

    cold1_rps = n / results[1]["cold_s"]
    warm4_rps = n / results[4]["warm_s"]
    cold4_ratio = results[1]["cold_s"] / results[4]["cold_s"]
    warm4_ratio = warm4_rps / cold1_rps
    rows += [
        "",
        f"warm wave analysis passes executed: 0 (pipeline-run counter flat)",
        f"4-worker steady-state (warm) vs 1-worker cold: {warm4_ratio:.1f}x",
        f"4-worker vs 1-worker cold (batch amortisation"
        f"{' + fan-out' if (os.cpu_count() or 1) > 1 else ', 1 core'}): "
        f"{cold4_ratio:.2f}x",
    ]
    report_emitter(
        "service_throughput",
        "Service throughput: cold vs warm requests/sec at 1/4/8 workers",
        "\n".join(rows),
    )

    # The acceptance claims: a 4-worker server sustains >=2x the
    # single-worker cold throughput once warm (the floor was 4x before
    # PR 4 accelerated the cold kernel ~3.6x, compressing the gap), and
    # cold batching never costs throughput.
    assert warm4_ratio >= 2.0
    assert cold4_ratio >= 0.8

    # Timed unit: one warm request through the full HTTP + queue +
    # executor + artifact-store stack.
    service = AnalysisService(str(tmp_path / "state-4w"), workers=4,
                              queue_size=max(64, 2 * n))
    server = ServiceServer(service, port=0)
    server.start()
    try:
        client = ServiceClient(server.url, timeout=60.0)

        def warm_request():
            job = client.submit_path(paths[0], libdir=libdir)
            return client.wait(job["id"], timeout=60.0, poll=0.005)

        benchmark(warm_request)
    finally:
        server.stop()
