"""Table 4 / Figure 9 — the Nginx phase automaton.

Paper shape to hold: phases split into two classes — small, strict ones
(few allowed syscalls, tiny code size) and large serving phases allowing
~85-89% of the program's total syscalls; a phase-based policy is on
average ~11-15% stricter than the whole-program filter.
"""

from repro.core import AnalysisBudget, BSideAnalyzer
from repro.corpus import build_app
from repro.filters import FilterProgram, PhasePolicy


def _automaton_for(app_results, name: str):
    bundle = app_results[name].bundle
    analyzer = BSideAnalyzer(
        resolver=bundle.resolver, budget=AnalysisBudget.generous(),
    )
    report, automaton = analyzer.analyze_phases(
        bundle.program.image, modules=bundle.module_images,
        back_propagate=False,
    )
    return bundle, report, automaton


def test_table4_nginx_phases(app_results, report_emitter, benchmark):
    bundle, report, automaton = _automaton_for(app_results, "nginx")
    assert report.success and automaton is not None

    # Recompute with back-propagation for the seccomp-ready view.
    total = len(automaton.all_syscalls())
    matrix = automaton.transition_matrix()
    pids = sorted(automaton.phases)

    # Get per-phase code sizes from the underlying CFG.
    from repro.cfg import build_cfg, resolve_indirect_active

    cfg = build_cfg(bundle.program.image)
    resolve_indirect_active(cfg, bundle.program.image, [bundle.program.image.entry])

    header = f"{'phase':>5} | " + " ".join(f"{p:>4}" for p in pids) + \
        f" | {'total':>5} {'of':>4} | {'size(B)':>8}"
    rows = [header]
    for src in pids:
        cells = " ".join(
            f"{matrix.get((src, dst), 0) or '-':>4}" for dst in pids
        )
        allowed = len(automaton.phases[src].allowed)
        size = automaton.phases[src].code_size(cfg)
        rows.append(f"{src:>5} | {cells} | {allowed:>5} {total:>4} | {size:>8}")

    policy = PhasePolicy.from_automaton(automaton, use_propagated=False)
    whole = FilterProgram.allow_list(report.syscalls)
    gain = policy.strictness_gain_over(whole)
    rows.append("")
    rows.append(f"phases: {automaton.n_phases}; total syscalls: {total}; "
                f"avg allowed/phase: {policy.average_allowed():.1f}; "
                f"strictness gain vs whole-program filter: {gain:.1%}")
    report_emitter("table4_phases", "Table 4 / Figure 9: Nginx phase automaton", "\n".join(rows))

    # Shape assertions.  The paper's two phase classes must both appear:
    # small strict phases, and a large serving phase covering the event
    # loop.  (Our synthetic apps have far more precise CFGs than real
    # Nginx under angr, so the large phase allows a smaller share of the
    # total than the paper's 85-89% and the average strictness gain is
    # accordingly *larger* than the paper's 11-15% — see EXPERIMENTS.md.)
    assert automaton.n_phases >= 3
    allowed_counts = sorted(len(p.allowed) for p in automaton.phases.values())
    # Strict phases exist (single-syscall allowed sets)...
    assert allowed_counts[0] <= 2
    # ...and a large serving phase spans a serve-loop worth of syscalls.
    serve_size = len(bundle.spec.serve)
    assert allowed_counts[-1] >= serve_size
    # Phase-based filtering is strictly stricter on average (§5.4 reports
    # an 11-15% gain; precision of the substitute CFG pushes ours higher).
    assert gain >= 0.11

    benchmark(lambda: PhasePolicy.from_automaton(automaton, use_propagated=False))


def test_table4_all_apps_summary(app_results, report_emitter, benchmark):
    """§5.4: 'observations are similar for all 6 applications'."""
    rows = [f"{'app':<11} {'phases':>7} {'total':>6} {'avg allowed':>12} {'gain':>7}"]
    last_automaton = None
    for name in app_results:
        bundle, report, automaton = _automaton_for(app_results, name)
        assert automaton is not None, name
        policy = PhasePolicy.from_automaton(automaton, use_propagated=False)
        whole = FilterProgram.allow_list(report.syscalls)
        gain = policy.strictness_gain_over(whole)
        rows.append(
            f"{name:<11} {automaton.n_phases:>7} {len(automaton.all_syscalls()):>6} "
            f"{policy.average_allowed():>12.1f} {gain:>7.1%}"
        )
        assert gain > 0, name
        last_automaton = automaton
    report_emitter("table4_all_apps", "Phase strictness across all apps", "\n".join(rows))

    benchmark(lambda: last_automaton.back_propagate())
