"""Ablation §4.3 — active vs plain addresses taken.

The active-addresses-taken refinement only resolves indirect branches to
function pointers taken in *reachable* code.  Disabling it (SysFilter-style
resolution to every address taken) inflates the reachable-code
overestimation, which shows up as extra identified syscalls.
"""

import statistics

from repro.core import AnalysisBudget, BSideAnalyzer
from repro.corpus import make_debian_corpus


def test_ablation_active_addresses_taken(report_emitter, benchmark):
    corpus = make_debian_corpus(scale=0.15, seed=11)
    resolver = corpus.make_resolver()
    generous = AnalysisBudget.generous()

    active = BSideAnalyzer(resolver=resolver, budget=generous)
    plain = BSideAnalyzer(
        resolver=resolver, budget=generous, use_active_addresses_taken=False,
    )

    deltas = []
    pairs = []
    for binary in corpus.binaries:
        if binary.hardness is not None:
            continue
        r_active = active.analyze(binary.image)
        r_plain = plain.analyze(binary.image)
        if r_active.success and r_plain.success:
            pairs.append((binary.name, len(r_active.syscalls), len(r_plain.syscalls)))
            deltas.append(len(r_plain.syscalls) - len(r_active.syscalls))

    assert pairs
    avg_active = statistics.mean(a for __, a, __p in pairs)
    avg_plain = statistics.mean(p for __, __a, p in pairs)
    body = [
        f"binaries compared: {len(pairs)}",
        f"avg #syscalls with ACTIVE addresses taken: {avg_active:.1f}",
        f"avg #syscalls with ALL addresses taken:    {avg_plain:.1f}",
        f"avg inflation from disabling refinement:   {statistics.mean(deltas):+.1f}",
    ]
    report_emitter(
        "ablation_active_at",
        "Ablation: active vs all addresses taken (§4.3)",
        "\n".join(body),
    )

    # The refinement must never *add* syscalls, and should remove some
    # somewhere on the corpus.
    assert all(d >= 0 for d in deltas)
    assert any(d > 0 for d in deltas)

    sample = next(b for b in corpus.binaries if b.hardness is None)
    benchmark(lambda: active.analyze(sample.image))
