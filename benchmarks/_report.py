"""Benchmark result reporting.

pytest captures stdout, so tables printed by benches would be invisible in
``pytest benchmarks/ --benchmark-only`` output; :func:`emit` writes each
regenerated table/figure both to the *real* stdout (bypassing capture) and
to ``benchmarks/results/<name>.txt`` for later inspection.
"""

from __future__ import annotations

import os
import sys

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, title: str, body: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n===== {title} ====="
    text = f"{banner}\n{body.rstrip()}\n"
    try:
        sys.__stdout__.write(text)
        sys.__stdout__.flush()
    except (AttributeError, ValueError):
        print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as f:
        f.write(text.lstrip("\n"))
