# Build/verify entry points. The tree ships no third-party runtime deps;
# everything runs with PYTHONPATH=src and the stock python toolchain.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

SMOKE_DIR := $(or $(TMPDIR),/tmp)/bside-smoke

.PHONY: test bench bench-gate eval-gate bench-service-scale service-gate incremental-gate lint smoke smoke-service docs-check clean

## tier-1: the suite the driver enforces (ROADMAP.md)
test:
	$(PYTHON) -m pytest -x -q

## regenerate every paper table/figure + timing stats (benchmarks/results/)
## (bench_*.py does not match pytest's default test_*.py file pattern)
bench:
	$(PYTHON) -m pytest benchmarks/ -q -o python_files="test_*.py bench_*.py"

## cold-kernel perf gate: re-measure and compare against the committed
## BENCH_cold_kernel.json trajectory (fails on >15% normalized cold-path
## regression, or if the speedup vs the pre-optimization baseline drops
## below 3x); see docs/performance.md.  BENCH_GATE_FLAGS widens the
## margins where runs are cross-machine/cross-interpreter (CI).
bench-gate:
	$(PYTHON) tools/perf_gate.py $(BENCH_GATE_FLAGS)

## accuracy gate: re-run the paper's §5 evaluation (fixed scale/seed,
## fully deterministic) and compare against the committed
## BENCH_eval_accuracy.json trajectory (fails if B-Side's recall drops
## below the recorded baseline, if any validation app shows a false
## negative, or if a baseline tool's F1 beats B-Side's); see
## docs/evaluation.md.
eval-gate:
	$(PYTHON) tools/accuracy_gate.py $(EVAL_GATE_FLAGS)

## measure the distributed tier without gating: the full-size load
## generator (per-tier cold/warm table into benchmarks/results/); it
## never touches the trajectory (use tools/service_gate.py --record
## LABEL to append an entry after deliberate service work)
bench-service-scale:
	$(PYTHON) -m pytest benchmarks/bench_service_scale.py -q \
		-o python_files="test_*.py bench_*.py"

## service-scale gate: drive the distributed tier (asyncio front end +
## 1/2/4 lease-claiming worker processes over real sockets) with the
## deterministic small-scale load profile and compare against the
## committed BENCH_service_scale.json trajectory (fails on >15%
## normalized warm-p99 regression or throughput drop vs the latest
## entry, or if max-tier steady-state throughput falls below 3x the
## 1-worker cold throughput); see docs/performance.md.
service-gate:
	$(PYTHON) tools/service_gate.py $(SERVICE_GATE_FLAGS)

## incremental-rebuild gate: mutate 3 functions of a ~400-function
## binary and re-analyze it through the funccfg cache; fails if more
## than 5% of the partition is re-analyzed or if the incremental report
## differs from the cold report of the same mutated bytes (compared
## against BENCH_incremental.json); see docs/performance.md.
incremental-gate:
	$(PYTHON) tools/incremental_gate.py $(INCREMENTAL_GATE_FLAGS)

## fast syntax/bytecode check (no third-party linters in this environment)
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	$(PYTHON) -m pytest --collect-only -q >/dev/null

## end-to-end: generate a tiny corpus, fleet-analyze it cold, then warm.
## `bside fleet` exits 1 when some binaries fail analysis (docs/cli.md);
## the corpus includes budget-exceeding binaries by design, so the smoke
## accepts 0 or 1 and only fails on real errors (exit >= 2).
smoke:
	rm -rf $(SMOKE_DIR)
	$(PYTHON) -m repro.cli corpus generate $(SMOKE_DIR)/corpus --scale 0.04
	$(PYTHON) -m repro.cli fleet $(SMOKE_DIR)/corpus/bin \
		--libdir $(SMOKE_DIR)/corpus/lib \
		--cache-dir $(SMOKE_DIR)/cache --workers 2 || test $$? -eq 1
	@echo "--- warm run ---"
	$(PYTHON) -m repro.cli fleet $(SMOKE_DIR)/corpus/bin \
		--libdir $(SMOKE_DIR)/corpus/lib \
		--cache-dir $(SMOKE_DIR)/cache --workers 2 || test $$? -eq 1
	@echo "--- tool comparison (repro.eval) ---"
	$(PYTHON) examples/compare_tools.py
	rm -rf $(SMOKE_DIR)

## end-to-end: drive the service API (spins an ephemeral in-process
## daemon, submits cold + warm + inline jobs, checks derived artifacts)
smoke-service:
	$(PYTHON) examples/service_client.py

## docs invariants: relative links resolve, every CLI subcommand and
## flag is documented in docs/cli.md, quickstart walkthrough in sync
docs-check:
	$(PYTHON) tools/check_docs.py

clean:
	rm -rf benchmarks/results $(SMOKE_DIR)
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
