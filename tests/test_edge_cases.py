"""Edge-case coverage: wrapper variants, memory-model corners, flag
semantics, language-style × tool matrix, resolver cycles, tracker extras."""

import pytest

from repro.cfg import build_cfg, resolve_indirect_active
from repro.core import AnalysisBudget, BSideAnalyzer, detect_wrapper, find_sites
from repro.corpus import ProgramBuilder
from repro.emu import run_traced
from repro.symex import BVV, ExecContext, MemoryBackend, SymState
from repro.x86 import EAX, Immediate, Memory, RAX, RBX, RDI, RDX, RSI, RSP, Register


def generous():
    return BSideAnalyzer(budget=AnalysisBudget.generous())


def cfg_ctx(prog):
    cfg = build_cfg(prog.image)
    resolve_indirect_active(cfg, prog.image, [prog.image.entry])
    return cfg, ExecContext.for_image(cfg, prog.image), MemoryBackend([prog.image])


class TestWrapperVariants:
    def test_nested_wrappers(self):
        """wrapper2 forwards its argument to wrapper1: values still resolve
        at the outermost call sites."""
        p = ProgramBuilder("nested")
        with p.function("wrapper1"):
            p.asm.mov(RAX, RDI)
            p.asm.syscall()
            p.asm.ret()
        with p.function("wrapper2"):
            # Forwards rdi unchanged, plus bookkeeping.
            p.asm.mov(RBX, RDI)
            p.asm.mov(RDI, RBX)
            p.asm.call("wrapper1")
            p.asm.ret()
        with p.function("_start"):
            p.asm.mov(RDI, 39)
            p.asm.call("wrapper2")
            p.asm.mov(RDI, 102)
            p.asm.call("wrapper2")
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        report = generous().analyze(p.build().image)
        assert report.success
        assert report.syscalls == {39, 102, 60}

    def test_wrapper_with_default_fastpath(self):
        """A wrapper that sometimes overrides the number locally: both the
        parameter values and the local immediate must be found."""
        p = ProgramBuilder("fastpath")
        with p.function("wrap"):
            p.asm.test(RDI, RDI)
            p.asm.jcc("ne", "use_arg")
            p.asm.mov(EAX, 24)  # sched_yield fast path
            p.asm.syscall()
            p.asm.ret()
            p.asm.label("use_arg")
            p.asm.mov(RAX, RDI)
            p.asm.syscall()
            p.asm.ret()
        with p.function("_start"):
            p.asm.mov(RDI, 0)
            p.asm.call("wrap")
            p.asm.mov(RDI, 186)
            p.asm.call("wrap")
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        report = generous().analyze(p.build().image)
        assert report.success
        # 24 from the fast path, 0/186 through the argument, 60 at exit.
        assert {24, 186, 60} <= report.syscalls

    def test_wrapper_detection_on_non_wrapper_with_moves(self):
        """Register shuffles before a local immediate must NOT classify the
        function as a wrapper (phase 2 disproves phase 1)."""
        p = ProgramBuilder("shuffle")
        with p.function("notwrap"):
            p.asm.mov(RBX, RDI)      # looks like argument use
            p.asm.mov(RAX, RBX)      # phase 1: rax <- rbx <- rdi: candidate
            p.asm.mov(EAX, 12)       # ...but then overwritten by an imm
            p.asm.syscall()
            p.asm.ret()
        with p.function("_start"):
            p.asm.call("notwrap")
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        prog = p.build()
        cfg, ctx, backend = cfg_ctx(prog)
        site = [s for s in find_sites(cfg)
                if s.func_entry == prog.image.symbol_addr("notwrap")][0]
        assert detect_wrapper(cfg, ctx, site, backend) is None
        report = generous().analyze(prog.image)
        assert report.syscalls == {12, 60}

    def test_third_argument_register_wrapper(self):
        """Wrappers taking the number in a non-rdi register still resolve."""
        p = ProgramBuilder("rdx_wrap")
        with p.function("wrap"):
            p.asm.mov(RAX, RDX)
            p.asm.syscall()
            p.asm.ret()
        with p.function("_start"):
            p.asm.mov(RDX, 39)
            p.asm.call("wrap")
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        report = generous().analyze(p.build().image)
        assert report.syscalls == {39, 60}


class TestSymbolicMemoryModel:
    def _state(self):
        return SymState.initial(0x1000)

    def test_exact_match_read(self):
        state = self._state()
        state.write_mem(BVV(0x5000), BVV(0xAB), 8)
        assert state.read_mem(BVV(0x5000), 8) == BVV(0xAB)

    def test_narrow_read_of_wide_write(self):
        state = self._state()
        state.write_mem(BVV(0x5000), BVV(0x11223344), 8)
        narrow = state.read_mem(BVV(0x5000), 4)
        assert narrow.value_or_none() == 0x11223344

    def test_wide_read_of_narrow_write_is_unknown(self):
        state = self._state()
        state.write_mem(BVV(0x5000), BVV(0xFF), 4)
        wide = state.read_mem(BVV(0x5000), 8)
        assert wide.value_or_none() is None

    def test_unwritten_read_is_stable(self):
        state = self._state()
        first = state.read_mem(BVV(0x6000), 8)
        second = state.read_mem(BVV(0x6000), 8)
        assert first == second  # memoised unknown

    def test_symbolic_address_write_does_not_corrupt(self):
        from repro.symex import fresh

        state = self._state()
        state.write_mem(BVV(0x5000), BVV(1), 8)
        state.write_mem(fresh("wild"), BVV(2), 8)
        assert state.read_mem(BVV(0x5000), 8) == BVV(1)

    def test_stackarg_naming(self):
        state = SymState.initial(0x1000, concrete_rsp=0x7FFF0000)
        value = state.read_mem(BVV(0x7FFF0008), 8)
        assert "stackarg_8" in repr(value)


class TestEmulatorFlagSemantics:
    @pytest.mark.parametrize("a,b,cc,taken", [
        (5, 5, "e", True),
        (5, 6, "ne", True),
        (2**63, 1, "l", True),      # negative < positive (signed)
        (2**63, 1, "b", False),     # huge unsigned not below 1
        (1, 2**63, "a", False),     # 1 not above huge unsigned
        (7, 7, "ge", True),
        (6, 7, "le", True),
        (8, 7, "g", True),
    ])
    def test_cmp_conditions(self, a, b, cc, taken):
        p = ProgramBuilder("flags")
        with p.function("_start"):
            p.asm.movabs(RBX, a)
            p.asm.movabs(RDX, b)
            p.asm.cmp(RBX, RDX)
            p.asm.mov(RDI, 0)
            p.asm.jcc(cc, "yes")
            p.asm.jmp("out")
            p.asm.label("yes")
            p.asm.mov(RDI, 1)
            p.asm.label("out")
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        assert run_traced(p.build().image).exit_status == (1 if taken else 0)

    def test_test_sets_zero_flag(self):
        p = ProgramBuilder("tst")
        with p.function("_start"):
            p.asm.mov(RBX, 0)
            p.asm.test(RBX, RBX)
            p.asm.mov(RDI, 0)
            p.asm.jcc("e", "zero")
            p.asm.jmp("out")
            p.asm.label("zero")
            p.asm.mov(RDI, 1)
            p.asm.label("out")
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        assert run_traced(p.build().image).exit_status == 1


class TestLanguageStyleMatrix:
    """Every invocation style identified by B-Side; register-only tools
    degrade exactly on the styles that defeat them."""

    @pytest.mark.parametrize("style", ["direct", "split", "stack"])
    def test_bside_handles_all_plain_styles(self, style):
        from repro.corpus.langstyles import emit_syscall

        p = ProgramBuilder(f"style-{style}")
        with p.function("_start"):
            emit_syscall(p, 39, style, "t")
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        report = generous().analyze(p.build().image)
        assert report.syscalls == {39, 60}

    @pytest.mark.parametrize("style,wrapper_kind", [
        ("reg-wrap", "reg"), ("stk-wrap", "stack"),
    ])
    def test_bside_handles_wrapper_styles(self, style, wrapper_kind):
        from repro.corpus.langstyles import (
            define_reg_wrapper,
            define_stack_wrapper,
            emit_syscall,
        )

        p = ProgramBuilder(f"wstyle-{wrapper_kind}")
        if wrapper_kind == "reg":
            define_reg_wrapper(p, "w")
        else:
            define_stack_wrapper(p, "w")
        with p.function("_start"):
            emit_syscall(p, 39, style, "t", reg_wrapper="w", stack_wrapper="w")
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        report = generous().analyze(p.build().image)
        assert report.syscalls == {39, 60}

    def test_every_style_executes_correctly(self):
        """All styles must also *run*: trace equals the intended syscall."""
        from repro.corpus.langstyles import (
            ALL_STYLES,
            define_reg_wrapper,
            define_stack_wrapper,
            emit_syscall,
        )

        for style in ALL_STYLES:
            p = ProgramBuilder(f"exec-{style}")
            define_reg_wrapper(p, "rw")
            define_stack_wrapper(p, "sw")
            with p.function("_start"):
                emit_syscall(p, 39, style, "t", reg_wrapper="rw", stack_wrapper="sw")
                p.asm.mov(EAX, 60)
                p.asm.xor(RDI, RDI)
                p.asm.syscall()
                p.asm.hlt()
            p.set_entry("_start")
            trace = run_traced(p.build().image)
            assert 39 in trace.syscall_numbers, style


class TestResolverAndInterfaces:
    def test_dependency_cycle_detected(self):
        from repro.errors import LoaderError
        from repro.loader import LibraryResolver, LoadedImage

        def lib(name, needs):
            p = ProgramBuilder(name, soname=name, needed=[needs],
                               text_base=0x7F0000001000 if name == "a.so" else 0x7F0000100000)
            with p.function(f"f_{name[0]}", exported=True):
                p.asm.ret()
            return p.build()

        a = lib("a.so", "b.so")
        b = lib("b.so", "a.so")
        resolver = LibraryResolver(library_map={"a.so": a.elf_bytes, "b.so": b.elf_bytes})
        exe = ProgramBuilder("app", pic=True, needed=["a.so"])
        with exe.function("_start", exported=True):
            exe.asm.ret()
        exe.set_entry("_start")
        with pytest.raises(LoaderError):
            resolver.topological_order(exe.build().image)

    def test_interface_store_symbol_precedence(self):
        from repro.core import ExportInfo, InterfaceStore, SharedInterface

        store = InterfaceStore()
        first = SharedInterface(library="one.so")
        first.exports["f"] = ExportInfo(name="f", addr=1, syscalls={1})
        second = SharedInterface(library="two.so")
        second.exports["f"] = ExportInfo(name="f", addr=2, syscalls={2})
        store.put(first)
        store.put(second)
        table = store.symbol_table(["one.so", "two.so"])
        assert table["f"].syscalls == {1}  # first definition wins


class TestPhaseTrackerExtras:
    def test_extra_allowed_never_transitions(self):
        from repro.phases import PhaseTracker

        p = ProgramBuilder("pt")
        with p.function("_start"):
            p.asm.mov(EAX, 2)
            p.asm.syscall()
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        __, automaton = generous().analyze_phases(p.build().image)
        tracker = PhaseTracker(automaton, extra_allowed={999})
        start = tracker.current
        assert tracker.observe(999)
        assert tracker.current == start  # no transition for extras

    def test_back_propagation_idempotent(self):
        p = ProgramBuilder("bp")
        with p.function("_start"):
            p.asm.mov(EAX, 2)
            p.asm.syscall()
            p.asm.label("l")
            p.asm.mov(EAX, 0)
            p.asm.syscall()
            p.asm.cmp(RDI, 0)
            p.asm.jcc("ne", "l")
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        __, automaton = generous().analyze_phases(p.build().image)
        once = {k: set(v) for k, v in automaton.back_propagate().items()}
        twice = automaton.back_propagate()
        assert once == twice
