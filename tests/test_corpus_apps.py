"""Application-profile tests: the §5.1 validation invariants.

These are the core experimental claims, asserted as tests:

* B-Side has **zero false negatives** on every app (ground truth from the
  emulated test suite is contained in the identified set);
* SysFilter misses exactly the wrapper-routed syscalls;
* Chestnut misses the internal-wrapper syscalls in its denylist;
* B-Side's F1 beats both competitors on every app.
"""

import pytest

from repro.baselines import ChestnutAnalyzer, SysFilterAnalyzer
from repro.core import AnalysisBudget, BSideAnalyzer
from repro.corpus import APP_NAMES, build_app
from repro.emu import trace_test_suite
from repro.filters import FilterProgram
from repro.metrics import score
from repro.syscalls import SYSCALL_NUMBERS


@pytest.fixture(scope="module")
def analyzed():
    """Analyze all apps once with a shared analyzer (interface caching)."""
    analyzer = BSideAnalyzer(budget=AnalysisBudget.generous())
    out = {}
    for name in APP_NAMES:
        bundle = build_app(name)
        analyzer.resolver = bundle.resolver
        report = analyzer.analyze(bundle.program.image,
                                  modules=bundle.module_images)
        truth, __ = trace_test_suite(
            bundle.program.image, bundle.suite, bundle.resolver,
            extra_images=bundle.module_images,
        )
        out[name] = (bundle, report, truth)
    return out


@pytest.mark.parametrize("app", APP_NAMES)
class TestPerApp:
    def test_analysis_succeeds(self, analyzed, app):
        __, report, __t = analyzed[app]
        assert report.success
        assert report.complete

    def test_ground_truth_matches_spec(self, analyzed, app):
        bundle, __, truth = analyzed[app]
        assert truth == bundle.expected_runtime_syscalls()

    def test_no_false_negatives(self, analyzed, app):
        """The §5.1 validity invariant for B-Side."""
        __, report, truth = analyzed[app]
        missing = truth - report.syscalls
        assert not missing, f"false negatives: {sorted(missing)}"

    def test_reasonable_overestimation(self, analyzed, app):
        __, report, truth = analyzed[app]
        s = score(report.syscalls, truth)
        assert s.is_valid
        assert 0.6 <= s.f1 <= 1.0

    def test_filter_does_not_kill_test_suite(self, analyzed, app):
        """Enforce the derived filter while replaying the whole suite."""
        bundle, report, __ = analyzed[app]
        allowed = FilterProgram.from_report(report).allowed
        __, runs = trace_test_suite(
            bundle.program.image, bundle.suite, bundle.resolver,
            filter_allowed=allowed, extra_images=bundle.module_images,
        )
        assert all(r.killed_by_filter is None for r in runs)

    def test_sysfilter_misses_wrapper_syscalls(self, analyzed, app):
        bundle, __, truth = analyzed[app]
        report = SysFilterAnalyzer(bundle.resolver).analyze(bundle.program.image)
        assert report.success
        expected_missing = {
            SYSCALL_NUMBERS[n]
            for n in bundle.spec.via_syscall_export + bundle.spec.via_wrapped_import
        }
        s = score(report.syscalls, truth)
        assert s.false_negatives >= len(expected_missing) > 0 or not expected_missing
        assert expected_missing <= (truth - report.syscalls)

    def test_chestnut_huge_overestimation(self, analyzed, app):
        bundle, __, truth = analyzed[app]
        report = ChestnutAnalyzer(bundle.resolver).analyze(bundle.program.image)
        assert report.success
        assert len(report.syscalls) >= 268

    def test_chestnut_expected_false_negatives(self, analyzed, app):
        from repro.baselines import CHESTNUT_FALLBACK

        bundle, __, truth = analyzed[app]
        report = ChestnutAnalyzer(bundle.resolver).analyze(bundle.program.image)
        fn = truth - report.syscalls
        expected = {
            SYSCALL_NUMBERS[n]
            for n in bundle.spec.via_wrapped_import
            if SYSCALL_NUMBERS[n] not in CHESTNUT_FALLBACK
        }
        assert fn == expected

    def test_bside_f1_beats_competitors(self, analyzed, app):
        bundle, bside_report, truth = analyzed[app]
        sysf = SysFilterAnalyzer(bundle.resolver).analyze(bundle.program.image)
        chest = ChestnutAnalyzer(bundle.resolver).analyze(bundle.program.image)
        f1_bside = score(bside_report.syscalls, truth).f1
        f1_sysf = score(sysf.syscalls, truth).f1
        f1_chest = score(chest.syscalls, truth).f1
        assert f1_bside > f1_sysf > f1_chest


class TestCrossApp:
    def test_execve_absent_for_nginx_and_memcached(self, analyzed):
        """§5.2: B-Side filters out execve on Nginx and Memcached."""
        execve = SYSCALL_NUMBERS["execve"]
        for app in ("nginx", "memcached"):
            __, report, __t = analyzed[app]
            assert execve not in report.syscalls

    def test_execveat_absent_everywhere(self, analyzed):
        execveat = SYSCALL_NUMBERS["execveat"]
        for app in APP_NAMES:
            __, report, __t = analyzed[app]
            assert execveat not in report.syscalls

    def test_nginx_module_included_via_dlopen_handling(self, analyzed):
        __, report, truth = analyzed["nginx"]
        assert SYSCALL_NUMBERS["mknod"] in report.syscalls
        assert SYSCALL_NUMBERS["mknod"] in truth

    def test_ground_truth_sizes_in_paper_range(self, analyzed):
        for app in APP_NAMES:
            __b, __r, truth = analyzed[app]
            assert 30 <= len(truth) <= 100, f"{app}: |GT|={len(truth)}"
