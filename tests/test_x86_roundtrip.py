"""Encoder/decoder round-trip tests for the x86-64 subset."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.x86 import (
    GPR64,
    Immediate,
    Instruction,
    Memory,
    RAX,
    RBP,
    RDI,
    RSP,
    Register,
    decode,
    encode,
)

REGS = [Register(name) for name in GPR64]


def roundtrip(insn: Instruction, addr: int = 0x400000) -> Instruction:
    code = encode(insn, addr)
    back = decode(code, 0, addr)
    assert back.size == len(code)
    # Re-encoding the decoded instruction must be byte-identical.
    assert encode(back, addr) == code
    return back


class TestMovForms:
    def test_mov_reg_imm32(self):
        back = roundtrip(Instruction("mov", (Register("rax", 32), Immediate(60, 32))))
        assert back.mnemonic == "mov"
        assert back.operands[1].value == 60
        # Classic "mov eax, 60" must be the 5-byte B8 form.
        assert encode(Instruction("mov", (Register("rax", 32), Immediate(60, 32)))) == \
            b"\xb8\x3c\x00\x00\x00"

    def test_mov_reg64_imm32_sign_extended(self):
        back = roundtrip(Instruction("mov", (RAX, Immediate(-1, 32))))
        assert back.operands[1].value == -1

    def test_movabs(self):
        insn = Instruction("movabs", (RAX, Immediate(0x1122334455667788, 64)))
        back = roundtrip(insn)
        assert back.operands[1].value == 0x1122334455667788
        assert back.operands[1].width == 64

    @pytest.mark.parametrize("dst", REGS)
    @pytest.mark.parametrize("src", [REGS[0], REGS[7], REGS[8], REGS[15]])
    def test_mov_reg_reg_all(self, dst, src):
        back = roundtrip(Instruction("mov", (dst, src)))
        assert back.operands == (dst, src)

    @pytest.mark.parametrize("base", REGS)
    def test_mov_reg_mem_every_base(self, base):
        mem = Memory(base=base, disp=0x10)
        back = roundtrip(Instruction("mov", (RAX, mem)))
        assert back.operands[1] == mem

    def test_mov_mem_zero_disp_rbp_keeps_disp8(self):
        # [rbp] must be encoded as [rbp+0] (mod=01).
        mem = Memory(base=RBP)
        code = encode(Instruction("mov", (RAX, mem)))
        back = decode(code)
        assert back.operands[1] == mem

    def test_mov_mem_imm(self):
        mem = Memory(base=RSP, disp=8)
        back = roundtrip(Instruction("mov", (mem, Immediate(42, 32))))
        assert back.operands[0] == mem
        assert back.operands[1].value == 42

    def test_mov_rip_relative(self):
        mem = Memory(disp=0x404000, width=64, rip_relative=True)
        back = roundtrip(Instruction("mov", (RAX, mem)), addr=0x401000)
        assert back.operands[1].rip_relative
        assert back.operands[1].disp == 0x404000

    def test_mov_absolute(self):
        mem = Memory(disp=0x604000, width=64)
        back = roundtrip(Instruction("mov", (RAX, mem)))
        assert back.operands[1].disp == 0x604000
        assert back.operands[1].base is None

    def test_sib_base_index_scale(self):
        mem = Memory(base=RDI, index=RAX, scale=8, disp=0x20)
        back = roundtrip(Instruction("mov", (Register("rdx"), mem)))
        assert back.operands[1] == mem


class TestLea:
    def test_lea_rip(self):
        mem = Memory(disp=0x402000, rip_relative=True)
        back = roundtrip(Instruction("lea", (RDI, mem)), addr=0x401000)
        assert back.mnemonic == "lea"
        assert back.operands[1].disp == 0x402000

    def test_lea_base_disp(self):
        mem = Memory(base=RSP, disp=0x40)
        back = roundtrip(Instruction("lea", (RAX, mem)))
        assert back.operands[1] == mem


class TestAluAndFlags:
    @pytest.mark.parametrize("mn", ["add", "sub", "xor", "and", "or", "cmp"])
    def test_alu_reg_reg(self, mn):
        back = roundtrip(Instruction(mn, (RAX, RDI)))
        assert back.mnemonic == mn

    @pytest.mark.parametrize("mn", ["add", "sub", "xor", "and", "or", "cmp"])
    @pytest.mark.parametrize("value", [1, -1, 127, 128, -129, 0x1000])
    def test_alu_reg_imm(self, mn, value):
        back = roundtrip(Instruction(mn, (RAX, Immediate(value))))
        assert back.operands[1].value == value

    def test_alu_mem_imm(self):
        mem = Memory(base=RSP, disp=16)
        back = roundtrip(Instruction("cmp", (mem, Immediate(3))))
        assert back.operands[0] == mem

    def test_xor_self_32(self):
        # xor eax, eax — the classic zeroing idiom, 2 bytes.
        r32 = Register("rax", 32)
        code = encode(Instruction("xor", (r32, r32)))
        assert code == b"\x31\xc0"

    def test_test_reg_reg(self):
        back = roundtrip(Instruction("test", (RAX, RAX)))
        assert back.mnemonic == "test"

    def test_shifts(self):
        back = roundtrip(Instruction("shl", (RAX, Immediate(4, 8))))
        assert back.mnemonic == "shl" and back.operands[1].value == 4
        back = roundtrip(Instruction("shr", (RAX, Immediate(3, 8))))
        assert back.mnemonic == "shr"

    def test_imul(self):
        back = roundtrip(Instruction("imul", (RAX, RDI)))
        assert back.mnemonic == "imul"


class TestStackAndBranches:
    @pytest.mark.parametrize("r", REGS)
    def test_push_pop(self, r):
        assert roundtrip(Instruction("push", (r,))).operands == (r,)
        assert roundtrip(Instruction("pop", (r,))).operands == (r,)

    def test_push_imm(self):
        back = roundtrip(Instruction("push", (Immediate(0x1234),)))
        assert back.operands[0].value == 0x1234

    def test_call_rel32(self):
        insn = Instruction("call", (Immediate(0x401500, 64),))
        back = roundtrip(insn, addr=0x401000)
        assert back.branch_target() == 0x401500

    def test_jmp_rel32_backward(self):
        insn = Instruction("jmp", (Immediate(0x400800, 64),))
        back = roundtrip(insn, addr=0x401000)
        assert back.branch_target() == 0x400800

    @pytest.mark.parametrize("cc", ["e", "ne", "l", "ge", "le", "g", "b", "ae", "a", "be", "s", "ns"])
    def test_jcc(self, cc):
        insn = Instruction(f"j{cc}", (Immediate(0x401100, 64),))
        back = roundtrip(insn, addr=0x401000)
        assert back.mnemonic == f"j{cc}"
        assert back.branch_target() == 0x401100

    def test_jcc_rel8_decodes(self):
        # 74 10 = je +0x10
        back = decode(b"\x74\x10", 0, 0x1000)
        assert back.mnemonic == "je"
        assert back.branch_target() == 0x1000 + 2 + 0x10

    def test_jmp_rel8_decodes(self):
        back = decode(b"\xeb\xfe", 0, 0x1000)  # jmp self
        assert back.branch_target() == 0x1000

    def test_indirect_call_reg(self):
        back = roundtrip(Instruction("call", (RAX,)))
        assert back.is_indirect_branch

    def test_indirect_jmp_mem(self):
        mem = Memory(base=RDI, disp=8)
        back = roundtrip(Instruction("jmp", (mem,)))
        assert back.is_indirect_branch

    def test_indirect_call_rip_mem(self):
        # call [rip+disp] — PLT-style indirection.
        mem = Memory(disp=0x404018, rip_relative=True)
        back = roundtrip(Instruction("call", (mem,)), addr=0x401000)
        assert back.operands[0].disp == 0x404018

    def test_syscall_ret_nop(self):
        assert encode(Instruction("syscall")) == b"\x0f\x05"
        assert encode(Instruction("ret")) == b"\xc3"
        assert encode(Instruction("nop")) == b"\x90"
        assert decode(b"\x0f\x05").is_syscall


@st.composite
def _any_instruction(draw):
    kind = draw(st.sampled_from(["mov_ri", "mov_rr", "mov_rm", "mov_mr", "alu", "lea", "branch"]))
    r1 = draw(st.sampled_from(REGS))
    r2 = draw(st.sampled_from(REGS))
    disp = draw(st.integers(-0x7000, 0x7000))
    if kind == "mov_ri":
        value = draw(st.integers(0, 2**63 - 1))
        width = 64 if value > 2**31 - 1 else draw(st.sampled_from([32, 64]))
        return Instruction("mov", (Register(r1.name, width if width == 32 else 64),
                                   Immediate(value, width)))
    if kind == "mov_rr":
        return Instruction("mov", (r1, r2))
    mem = Memory(base=r2, disp=disp)
    if kind == "mov_rm":
        return Instruction("mov", (r1, mem))
    if kind == "mov_mr":
        return Instruction("mov", (mem, r1))
    if kind == "alu":
        mn = draw(st.sampled_from(["add", "sub", "xor", "and", "or", "cmp"]))
        return Instruction(mn, (r1, draw(st.sampled_from([r2, Immediate(disp)]))))
    if kind == "lea":
        return Instruction("lea", (r1, mem))
    target = 0x400000 + draw(st.integers(0, 0x10000))
    mn = draw(st.sampled_from(["jmp", "call", "je", "jne", "jl", "jg"]))
    return Instruction(mn, (Immediate(target, 64),))


class TestPropertyRoundTrip:
    @settings(max_examples=300, deadline=None)
    @given(insn=_any_instruction())
    def test_encode_decode_encode_stable(self, insn):
        addr = 0x400000
        code = encode(insn, addr)
        back = decode(code, 0, addr)
        assert encode(back, addr) == code
        assert back.mnemonic == insn.mnemonic
