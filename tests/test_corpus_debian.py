"""Debian-corpus tests: population structure, tool behaviour, validity.

Uses a scaled-down corpus so the suite stays fast; the full-population
run lives in ``benchmarks/bench_table2_debian.py``.
"""

import pytest

from repro.baselines import ChestnutAnalyzer, SysFilterAnalyzer
from repro.core import BSideAnalyzer
from repro.corpus import make_debian_corpus
from repro.emu import run_traced

SCALE = 0.12


@pytest.fixture(scope="module")
def corpus():
    return make_debian_corpus(scale=SCALE, seed=99)


@pytest.fixture(scope="module")
def bside_results(corpus):
    analyzer = BSideAnalyzer(resolver=corpus.make_resolver())
    return [(b, analyzer.analyze(b.image)) for b in corpus.binaries]


class TestPopulation:
    def test_counts_scale(self, corpus):
        assert len(corpus.binaries) >= 50
        assert len(corpus.static_binaries) >= 20
        assert len(corpus.dynamic_binaries) >= 30
        assert len(corpus.libraries) >= 6

    def test_static_binaries_are_non_pic_except_pie(self, corpus):
        for binary in corpus.static_binaries:
            if binary.kind == "static-pie":
                assert binary.image.is_pic
            else:
                assert not binary.image.is_pic

    def test_dynamic_binaries_link_libc(self, corpus):
        for binary in corpus.dynamic_binaries:
            assert "libc.so" in binary.image.needed

    def test_deterministic_generation(self):
        a = make_debian_corpus(scale=0.05, seed=5)
        b = make_debian_corpus.__wrapped__(scale=0.05, seed=5)
        assert [x.name for x in a.binaries] == [y.name for y in b.binaries]
        assert a.binaries[0].program.elf_bytes == b.binaries[0].program.elf_bytes


class TestToolBehaviourAtScale:
    def test_bside_failures_only_on_hard(self, bside_results):
        for binary, report in bside_results:
            if binary.hardness is None:
                assert report.success, (binary.name, report.failure_reason)
            else:
                assert not report.success, binary.name

    def test_bside_failure_stages_match_hardness(self, bside_results):
        stage_of = {
            "cfg": "cfg-recovery",
            "wrapper": "wrapper-detection",
        }
        for binary, report in bside_results:
            if binary.hardness in stage_of:
                assert report.failure_stage == stage_of[binary.hardness]
            elif binary.hardness == "ident":
                assert report.failure_stage.startswith("backward-search")

    def test_bside_identifies_planned_syscalls(self, bside_results):
        for binary, report in bside_results:
            if report.success and binary.planned_syscalls:
                missing = binary.planned_syscalls - report.syscalls
                assert not missing, (binary.name, sorted(missing))

    def test_chestnut_fails_on_wrappered_static(self, corpus):
        analyzer = ChestnutAnalyzer(corpus.make_resolver())
        for binary in corpus.static_binaries:
            report = analyzer.analyze(binary.image)
            pure = binary.name.startswith(("st-pure", "st-pie"))
            assert report.success == pure, binary.name

    def test_chestnut_fails_on_go_dynamic(self, corpus):
        analyzer = ChestnutAnalyzer(corpus.make_resolver())
        for binary in corpus.dynamic_binaries:
            report = analyzer.analyze(binary.image)
            if binary.language == "go" and binary.hardness is None:
                assert not report.success, binary.name

    def test_sysfilter_success_iff_pic_and_unwind(self, corpus):
        analyzer = SysFilterAnalyzer(corpus.make_resolver())
        for binary in corpus.binaries:
            report = analyzer.analyze(binary.image)
            expected = binary.image.is_pic and binary.image.has_eh_frame
            assert report.success == expected, binary.name

    def test_precision_ordering(self, corpus, bside_results):
        """avg(B-Side) < avg(SysFilter) < avg(Chestnut) on shared successes."""
        resolver = corpus.make_resolver()
        chestnut = ChestnutAnalyzer(resolver)
        sysfilter = SysFilterAnalyzer(resolver)
        b_ok, c_ok, s_ok = [], [], []
        for binary, bside_report in bside_results:
            if not binary.is_static:
                c = chestnut.analyze(binary.image)
                s = sysfilter.analyze(binary.image)
                if bside_report.success and c.success and s.success:
                    b_ok.append(len(bside_report.syscalls))
                    c_ok.append(len(c.syscalls))
                    s_ok.append(len(s.syscalls))
        assert b_ok, "no common successes"
        avg = lambda xs: sum(xs) / len(xs)
        assert avg(b_ok) < avg(s_ok) < avg(c_ok)


class TestRuntimeValidity:
    def test_normal_binaries_run_and_stay_inside_identified_sets(
        self, corpus, bside_results
    ):
        """Sampled §5.1-style validity over the corpus: the runtime trace
        of every successfully-analysed binary is contained in its
        identified set (no false negatives)."""
        resolver = corpus.make_resolver()
        checked = 0
        for binary, report in bside_results:
            if not report.success or binary.hardness is not None:
                continue
            trace = run_traced(binary.image, resolver)
            assert trace.exit_status == 0, binary.name
            assert trace.syscall_numbers <= report.syscalls, binary.name
            checked += 1
            if checked >= 25:
                break
        assert checked >= 10

    def test_hard_binaries_still_run(self, corpus):
        resolver = corpus.make_resolver()
        hard = [b for b in corpus.binaries if b.hardness is not None]
        for binary in hard[:4]:
            trace = run_traced(binary.image, resolver, max_steps=5_000_000)
            assert trace.exit_status == 0, binary.name
