"""End-to-end analyzer tests: static, dynamic, wrappers, modules.

The cardinal invariant (paper §5.1): for every program, the set of
syscalls observed at runtime must be a subset of the statically
identified set (no false negatives).
"""

import pytest

from repro.core import AnalysisBudget, BSideAnalyzer, InterfaceStore
from repro.corpus.progbuilder import ProgramBuilder
from repro.emu import run_traced
from repro.loader import LibraryResolver
from repro.syscalls import number_of
from repro.x86 import EAX, Memory, RAX, RDI, RSI, RSP


def make_analyzer(library_map=None):
    return BSideAnalyzer(
        resolver=LibraryResolver(library_map=library_map or {}),
        budget=AnalysisBudget.generous(),
    )


class TestStaticAnalysis:
    def test_simple_static_exact(self):
        p = ProgramBuilder("app")
        with p.function("_start"):
            p.asm.mov(EAX, 39)  # getpid
            p.asm.syscall()
            p.asm.mov(EAX, 60)  # exit
            p.asm.xor(RDI, RDI)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        prog = p.build()
        report = make_analyzer().analyze(prog.image)
        assert report.success
        assert report.syscalls == {39, 60}
        assert report.complete
        # Ground truth containment.
        trace = run_traced(prog.image)
        assert trace.syscall_numbers <= report.syscalls

    def test_unreachable_code_excluded(self):
        p = ProgramBuilder("app")
        with p.function("dead"):
            p.asm.mov(EAX, 59)  # execve - never called
            p.asm.syscall()
            p.asm.ret()
        with p.function("_start"):
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        report = make_analyzer().analyze(p.build().image)
        assert report.syscalls == {60}

    def test_local_wrapper_identified_per_callsite(self):
        p = ProgramBuilder("app")
        with p.function("sysw"):
            p.asm.mov(RAX, RDI)
            p.asm.syscall()
            p.asm.ret()
        with p.function("_start"):
            p.asm.mov(RDI, 1)  # write
            p.asm.call("sysw")
            p.asm.mov(RDI, 3)  # close
            p.asm.call("sysw")
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        prog = p.build()
        report = make_analyzer().analyze(prog.image)
        assert report.success
        assert report.syscalls == {1, 3, 60}
        trace = run_traced(prog.image)
        assert trace.syscall_numbers <= report.syscalls

    def test_go_style_stack_wrapper(self):
        p = ProgramBuilder("app")
        with p.function("gosys"):
            p.asm.mov(RAX, Memory(base=RSP, disp=8))
            p.asm.syscall()
            p.asm.ret()
        with p.function("_start"):
            p.asm.sub(RSP, 0x10)
            p.asm.mov(Memory(base=RSP, disp=0), 41)  # socket
            p.asm.call("gosys")
            p.asm.mov(Memory(base=RSP, disp=0), 3)  # close
            p.asm.call("gosys")
            p.asm.add(RSP, 0x10)
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        report = make_analyzer().analyze(p.build().image)
        assert report.syscalls == {41, 3, 60}

    def test_function_pointer_target_included(self):
        p = ProgramBuilder("app")
        with p.function("handler"):
            p.asm.mov(EAX, 102)  # getuid
            p.asm.syscall()
            p.asm.ret()
        with p.function("_start"):
            p.asm.lea_rip(RSI, "handler")
            p.asm.call_reg(RSI)
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        report = make_analyzer().analyze(p.build().image)
        assert {102, 60} <= report.syscalls


def build_libc():
    """Small libc with direct exports and an exported register wrapper."""
    lib = ProgramBuilder("libmini.so", soname="libmini.so", text_base=0x7F0000000000 + 0x1000)
    with lib.function("__syscall1"):
        lib.asm.mov(RAX, RDI)
        lib.asm.syscall()
        lib.asm.ret()
    with lib.function("c_read", exported=True):
        lib.asm.mov(RDI, 0)
        lib.asm.call("__syscall1")
        lib.asm.ret()
    with lib.function("c_write", exported=True):
        lib.asm.mov(RDI, 1)
        lib.asm.call("__syscall1")
        lib.asm.ret()
    with lib.function("c_unused", exported=True):
        lib.asm.mov(RDI, 87)  # unlink - exported but never imported
        lib.asm.call("__syscall1")
        lib.asm.ret()
    with lib.function("syscall", exported=True):
        # glibc-style exported wrapper.
        lib.asm.mov(RAX, RDI)
        lib.asm.syscall()
        lib.asm.ret()
    return lib.build()


class TestDynamicAnalysis:
    def test_imported_functions_resolved_via_interface(self):
        lib = build_libc()
        p = ProgramBuilder("app", pic=True, needed=["libmini.so"])
        with p.function("_start", exported=True):
            p.call_import("c_read")
            p.call_import("c_write")
            p.asm.mov(EAX, 60)
            p.asm.xor(RDI, RDI)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        prog = p.build()
        analyzer = make_analyzer({"libmini.so": lib.elf_bytes})
        report = analyzer.analyze(prog.image)
        assert report.success
        assert report.syscalls == {0, 1, 60}
        # c_unused's unlink must NOT appear (reachable-exports precision).
        assert number_of("unlink") not in report.syscalls
        # Ground truth containment.
        resolver = LibraryResolver(library_map={"libmini.so": lib.elf_bytes})
        trace = run_traced(prog.image, resolver)
        assert trace.syscall_numbers <= report.syscalls

    def test_imported_wrapper_identified_per_callsite(self):
        lib = build_libc()
        p = ProgramBuilder("app", pic=True, needed=["libmini.so"])
        with p.function("_start", exported=True):
            p.asm.mov(RDI, 39)  # getpid via libc syscall()
            p.call_import("syscall")
            p.asm.mov(RDI, 186)  # gettid
            p.call_import("syscall")
            p.asm.mov(EAX, 60)
            p.asm.xor(RDI, RDI)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        prog = p.build()
        analyzer = make_analyzer({"libmini.so": lib.elf_bytes})
        report = analyzer.analyze(prog.image)
        assert report.success
        assert report.syscalls == {39, 186, 60}

    def test_interface_cached_across_programs(self):
        lib = build_libc()
        analyzer = make_analyzer({"libmini.so": lib.elf_bytes})

        def build_app(name, func):
            p = ProgramBuilder(name, pic=True, needed=["libmini.so"])
            with p.function("_start", exported=True):
                p.call_import(func)
                p.asm.mov(EAX, 60)
                p.asm.syscall()
                p.asm.hlt()
            p.set_entry("_start")
            return p.build()

        r1 = analyzer.analyze(build_app("app1", "c_read").image)
        assert len(analyzer.interfaces) == 1
        r2 = analyzer.analyze(build_app("app2", "c_write").image)
        assert len(analyzer.interfaces) == 1  # reused, not re-analysed
        assert r1.syscalls == {0, 60}
        assert r2.syscalls == {1, 60}

    def test_plt_stub_wrapper_import(self):
        lib = build_libc()
        p = ProgramBuilder("app", pic=True, needed=["libmini.so"])
        p.make_plt_stub("syscall")
        with p.function("_start", exported=True):
            p.asm.mov(RDI, 12)  # brk
            p.call_plt("syscall")
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        analyzer = make_analyzer({"libmini.so": lib.elf_bytes})
        report = analyzer.analyze(p.build().image)
        assert report.success
        assert 12 in report.syscalls and 60 in report.syscalls

    def test_dlopen_module_included_wholesale(self):
        lib = build_libc()
        mod = ProgramBuilder("mod.so", soname="mod.so", text_base=0x7F0000100000)
        with mod.function("mod_entry", exported=True):
            mod.asm.mov(EAX, 16)  # ioctl
            mod.asm.syscall()
            mod.asm.ret()
        module = mod.build()
        p = ProgramBuilder("app", pic=True, needed=["libmini.so"])
        with p.function("_start", exported=True):
            p.call_import("c_read")
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        analyzer = make_analyzer({"libmini.so": lib.elf_bytes})
        report = analyzer.analyze(p.build().image, modules=[module.image])
        assert {0, 16, 60} <= report.syscalls


class TestInterfaceArtifact:
    def test_interface_json_roundtrip(self):
        from repro.core import SharedInterface

        lib = build_libc()
        analyzer = make_analyzer()
        interface = analyzer.analyze_library(lib.image)
        assert interface.exports["c_read"].syscalls == {0}
        assert interface.exports["c_write"].syscalls == {1}
        assert interface.exports["syscall"].is_wrapper
        assert interface.exports["syscall"].wrapper_param == ("reg", "rdi")
        back = SharedInterface.from_json(interface.to_json())
        assert back.exports["c_read"].syscalls == {0}
        assert back.exports["syscall"].wrapper_param == ("reg", "rdi")
        assert back.library == interface.library

    def test_wrapper_function_listed(self):
        lib = build_libc()
        analyzer = make_analyzer()
        interface = analyzer.analyze_library(lib.image)
        assert any("__syscall1" in w or "syscall" in w
                   for w in interface.wrapper_functions)


class TestBudgets:
    def test_budget_failure_reported_not_raised(self):
        from repro.core import AnalysisBudget
        from repro.symex import SearchBudget

        p = ProgramBuilder("hard")
        with p.function("_start"):
            p.asm.mov(EAX, 0)
            for i in range(40):
                p.asm.jmp(f"x{i}")
                p.asm.label(f"x{i}")
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        tight = AnalysisBudget(search=SearchBudget(max_nodes=3))
        analyzer = BSideAnalyzer(budget=tight)
        report = analyzer.analyze(p.build().image)
        assert not report.success
        assert report.failure_stage != ""
