"""The paper's central claim as a property test.

For *any* program, the set of syscalls observed at runtime must be a
subset of B-Side's statically identified set (§5.1's validity).  Programs
are generated from a grammar covering the identification-relevant
constructs: direct/split/stack invocation styles, register and stack
wrappers, forward branches on inputs, helper calls, and function
pointers.  Each generated program is analyzed once and executed under
several input vectors; every trace must be contained in the identified
set.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AnalysisBudget, BSideAnalyzer
from repro.corpus import ProgramBuilder
from repro.emu import run_traced
from repro.x86 import EAX, Immediate, Memory, RAX, RDI, RSI, RSP

# exit/exit_group excluded: a mid-program exit would end the run early
# (legitimate, but it would make the exit-status assertion meaningless).
_SYSCALLS = (0, 1, 2, 3, 9, 12, 39, 41, 102, 186, 228)


@st.composite
def _program_spec(draw):
    n_ops = draw(st.integers(2, 8))
    ops = []
    for __ in range(n_ops):
        kind = draw(st.sampled_from(
            ["direct", "split", "stack", "reg_wrap", "stk_wrap",
             "helper", "fptr", "guarded"]
        ))
        nr = draw(st.sampled_from(_SYSCALLS))
        guard = draw(st.integers(0, 2))
        ops.append((kind, nr, guard))
    return ops


_COUNTER = [0]


def _build(ops):
    _COUNTER[0] += 1
    p = ProgramBuilder(f"prop{_COUNTER[0]}")
    with p.function("regw"):
        p.asm.mov(RAX, RDI)
        p.asm.syscall()
        p.asm.ret()
    with p.function("stkw"):
        p.asm.mov(RAX, Memory(base=RSP, disp=8))
        p.asm.syscall()
        p.asm.ret()

    helpers = []
    for i, (kind, nr, __) in enumerate(ops):
        if kind in ("helper", "fptr"):
            with p.function(f"helper{i}"):
                p.asm.mov(EAX, nr)
                p.asm.syscall()
                p.asm.ret()
            helpers.append(i)

    with p.function("_start"):
        for i, (kind, nr, guard) in enumerate(ops):
            tag = f"op{i}"
            if kind == "direct":
                p.asm.mov(EAX, nr)
                p.asm.syscall()
            elif kind == "split":
                p.asm.mov(EAX, nr)
                p.asm.test(RDI, RDI)
                p.asm.jcc("ns", f"{tag}.go")
                p.asm.nop()
                p.asm.label(f"{tag}.go")
                p.asm.syscall()
            elif kind == "stack":
                p.asm.sub(RSP, 0x10)
                p.asm.mov(Memory(base=RSP, disp=0), nr)
                p.asm.mov(RAX, Memory(base=RSP, disp=0))
                p.asm.add(RSP, 0x10)
                p.asm.syscall()
            elif kind == "reg_wrap":
                p.asm.mov(RDI, nr)
                p.asm.call("regw")
            elif kind == "stk_wrap":
                p.asm.sub(RSP, 0x10)
                p.asm.mov(Memory(base=RSP, disp=0), nr)
                p.asm.call("stkw")
                p.asm.add(RSP, 0x10)
            elif kind in ("helper", "fptr"):
                if kind == "helper":
                    p.asm.call(f"helper{i}")
                else:
                    p.asm.lea_rip(RSI, f"helper{i}")
                    p.asm.call_reg(RSI)
            elif kind == "guarded":
                # Input-dependent: only runs when input0 == guard.
                p.asm.cmp(RDI, guard)
                p.asm.jcc("ne", f"{tag}.skip")
                p.asm.mov(EAX, nr)
                p.asm.syscall()
                p.asm.label(f"{tag}.skip")
        p.asm.mov(EAX, 231)
        p.asm.xor(RDI, RDI)
        p.asm.syscall()
        p.asm.hlt()
    p.set_entry("_start")
    return p.build()


@settings(max_examples=60, deadline=None)
@given(ops=_program_spec(), inputs=st.lists(st.integers(0, 2), min_size=1, max_size=3))
def test_runtime_trace_contained_in_identified_set(ops, inputs):
    prog = _build(ops)
    analyzer = BSideAnalyzer(budget=AnalysisBudget.generous())
    report = analyzer.analyze(prog.image)
    assert report.success, report.failure_reason
    assert report.complete

    for value in inputs:
        trace = run_traced(prog.image, inputs=(value,))
        assert trace.exit_status == 0
        missing = trace.syscall_numbers - report.syscalls
        assert not missing, (
            f"false negatives {sorted(missing)} with input {value} for {ops}"
        )


@settings(max_examples=30, deadline=None)
@given(ops=_program_spec())
def test_identified_set_is_the_union_of_intended_syscalls(ops):
    """Precision on the grammar: identification finds exactly the emitted
    numbers (plus exit_group) — nothing is invented."""
    prog = _build(ops)
    analyzer = BSideAnalyzer(budget=AnalysisBudget.generous())
    report = analyzer.analyze(prog.image)
    assert report.success
    intended = {nr for __, nr, __g in ops} | {231}
    assert report.syscalls == intended
