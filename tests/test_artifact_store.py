"""Artifact-store tests: multi-kind keying, fingerprint invalidation,
and whole-report caching through analyzer and fleet.

The production claim: a cache entry is served only when binary content,
pipeline configuration (flags + budgets), and every dependency hash all
match — anything else is a miss, never a stale result.
"""

import json
import os

import pytest

from repro.core import (
    AnalysisBudget,
    ArtifactStore,
    BSideAnalyzer,
    PersistentInterfaceStore,
    PipelineConfig,
    ShardedArtifactStore,
)
from repro.core.fleet import FleetAnalyzer
from repro.corpus import LIBC_NAME, build_libc, make_debian_corpus
from repro.corpus.progbuilder import ProgramBuilder
from repro.loader import LibraryResolver
from repro.x86 import EAX, RAX, RDI


def build_static_app(name="app", numbers=(39, 60)):
    p = ProgramBuilder(name)
    with p.function("_start"):
        for nr in numbers:
            p.asm.mov(EAX, nr)
            p.asm.syscall()
        p.asm.hlt()
    p.set_entry("_start")
    return p.build()


@pytest.fixture(scope="module")
def tiny_corpus():
    return make_debian_corpus(scale=0.04, seed=11)


class TestStoreKeying:
    def test_round_trip_per_kind(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put("report", "app", {"x": 1}, content_hash="h",
                  fingerprint="f", dep_hashes=["d1"])
        assert store.get("report", "app", content_hash="h",
                         fingerprint="f", dep_hashes=["d1"]) == {"x": 1}
        assert store.counters("report")["hits"] == 1

    def test_unknown_kind_rejected(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        with pytest.raises(ValueError):
            store.put("bogus", "app", {})
        with pytest.raises(ValueError):
            store.get("bogus", "app")

    @pytest.mark.parametrize("mismatch", [
        {"content_hash": "OTHER"},
        {"fingerprint": "OTHER"},
        {"dep_hashes": ["OTHER"]},
    ])
    def test_any_key_component_mismatch_invalidates(self, tmp_path, mismatch):
        store = ArtifactStore(str(tmp_path))
        key = {"content_hash": "h", "fingerprint": "f", "dep_hashes": ["d"]}
        store.put("report", "app", {"x": 1}, **key)
        assert store.get("report", "app", **{**key, **mismatch}) is None
        assert store.counters("report")["invalidations"] == 1
        # The entry is gone, not just skipped: the original key misses too.
        assert store.get("report", "app", **key) is None

    def test_kinds_do_not_collide(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put("cfg", "app", {"n_blocks": 3})
        store.put("report", "app", {"x": 1})
        assert store.get("cfg", "app") == {"n_blocks": 3}
        assert store.get("report", "app") == {"x": 1}
        assert store.stats()["kinds"]["cfg"]["entries"] == 1
        assert store.stats()["kinds"]["report"]["entries"] == 1

    def test_prune_per_kind_and_clear(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put("cfg", "a", {})
        store.put("report", "a", {})
        store.put("report", "b", {})
        assert store.prune("report") == 2
        assert store.stats()["kinds"]["report"]["entries"] == 0
        assert store.stats()["kinds"]["cfg"]["entries"] == 1
        assert store.prune() == 1
        assert store.stats()["total_entries"] == 0

    def test_corrupt_envelope_is_a_miss_and_removed(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put("report", "app", {"x": 1})
        (path,) = [
            os.path.join(str(tmp_path), f)
            for f in os.listdir(str(tmp_path))
        ]
        with open(path, "w") as f:
            f.write('{"cache_version": 2, TRUNCATED')
        assert store.get("report", "app") is None
        assert not os.path.exists(path)
        assert store.counters("report")["invalidations"] == 1


class TestAnalyzerReportCache:
    def test_warm_analyze_serves_identical_report(self, tmp_path):
        prog = build_static_app()
        cold_store = ArtifactStore(str(tmp_path))
        a1 = BSideAnalyzer(
            budget=AnalysisBudget.generous(), artifact_store=cold_store,
        )
        cold = a1.analyze(prog.image)
        assert cold_store.counters("report")["misses"] == 1

        warm_store = ArtifactStore(str(tmp_path))
        a2 = BSideAnalyzer(
            budget=AnalysisBudget.generous(), artifact_store=warm_store,
        )
        warm = a2.analyze(prog.image)
        assert warm_store.counters("report")["hits"] == 1
        assert warm.to_json(include_runtime=False) == \
            cold.to_json(include_runtime=False)

    def test_pipeline_flag_change_misses(self, tmp_path):
        """The satellite requirement: changing a pipeline flag must miss,
        not serve a stale report."""
        prog = build_static_app()
        a1 = BSideAnalyzer(
            budget=AnalysisBudget.generous(),
            artifact_store=ArtifactStore(str(tmp_path)),
        )
        a1.analyze(prog.image)

        store = ArtifactStore(str(tmp_path))
        flipped = BSideAnalyzer(
            budget=AnalysisBudget.generous(),
            artifact_store=store,
            directed_search=False,
        )
        flipped.analyze(prog.image)
        assert store.counters("report")["hits"] == 0
        assert store.counters("report")["misses"] == 1

    def test_budget_change_misses(self, tmp_path):
        prog = build_static_app()
        a1 = BSideAnalyzer(
            budget=AnalysisBudget.generous(),
            artifact_store=ArtifactStore(str(tmp_path)),
        )
        a1.analyze(prog.image)
        store = ArtifactStore(str(tmp_path))
        a2 = BSideAnalyzer(budget=AnalysisBudget(), artifact_store=store)
        a2.analyze(prog.image)
        assert store.counters("report")["hits"] == 0

    def test_binary_content_change_misses(self, tmp_path):
        a1 = BSideAnalyzer(
            budget=AnalysisBudget.generous(),
            artifact_store=ArtifactStore(str(tmp_path)),
        )
        a1.analyze(build_static_app(numbers=(39, 60)).image)
        store = ArtifactStore(str(tmp_path))
        a2 = BSideAnalyzer(
            budget=AnalysisBudget.generous(), artifact_store=store,
        )
        report = a2.analyze(build_static_app(numbers=(41, 60)).image)
        assert store.counters("report")["hits"] == 0
        assert report.syscalls == {41, 60}

    def test_dependency_change_invalidates_dependent_report(self, tmp_path):
        libc = build_libc()
        p = ProgramBuilder("app", pic=True, needed=[LIBC_NAME])
        with p.function("_start", exported=True):
            p.call_import("c_read")
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        prog = p.build()

        resolver = LibraryResolver(library_map={LIBC_NAME: libc.elf_bytes})
        a1 = BSideAnalyzer(
            resolver=resolver, budget=AnalysisBudget.generous(),
            artifact_store=ArtifactStore(str(tmp_path)),
        )
        a1.analyze(prog.image)

        # "Upgrade" libc: same soname, different bytes.
        changed = LibraryResolver(
            library_map={LIBC_NAME: libc.elf_bytes + b"\x00"},
        )
        store = ArtifactStore(str(tmp_path))
        a2 = BSideAnalyzer(
            resolver=changed, budget=AnalysisBudget.generous(),
            artifact_store=store,
        )
        a2.analyze(prog.image)
        assert store.counters("report")["hits"] == 0

    def test_dependency_change_invalidates_dependent_interface(self, tmp_path):
        """A library's interface folds its dependencies' exports in, so
        upgrading a dependency must invalidate the dependent library's
        cached interface too — not just executable reports."""
        libc = build_libc()
        p = ProgramBuilder(
            "libdep.so", soname="libdep.so", needed=[LIBC_NAME],
            pic=True, text_base=0x7F0000300000,
        )
        with p.function("dep_read", exported=True):
            p.call_import("c_read")
            p.asm.ret()
        dep = p.build()

        resolver = LibraryResolver(library_map={LIBC_NAME: libc.elf_bytes})
        store1 = ArtifactStore(str(tmp_path))
        a1 = BSideAnalyzer(
            resolver=resolver, budget=AnalysisBudget.generous(),
            interface_store=PersistentInterfaceStore(store=store1),
        )
        iface = a1.analyze_library(dep.image)
        assert iface.exports["dep_read"].syscalls == {0}

        # "Upgrade" libc: same soname, different bytes.  libdep.so itself
        # is unchanged, but its cached interface must not be served.
        changed = LibraryResolver(
            library_map={LIBC_NAME: libc.elf_bytes + b"\x00"},
        )
        store2 = ArtifactStore(str(tmp_path))
        a2 = BSideAnalyzer(
            resolver=changed, budget=AnalysisBudget.generous(),
            interface_store=PersistentInterfaceStore(store=store2),
        )
        a2.analyze_library(dep.image)
        assert store2.counters("iface")["hits"] == 0
        assert store2.counters("iface")["invalidations"] >= 2  # libc + libdep

    def test_wrapper_table_artifact_written_and_reused(self, tmp_path):
        lib = build_libc()
        p = ProgramBuilder("app")
        with p.function("sysw"):
            p.asm.mov(RAX, RDI)
            p.asm.syscall()
            p.asm.ret()
        with p.function("_start"):
            p.asm.mov(RDI, 1)
            p.asm.call("sysw")
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        prog = p.build()

        store = ArtifactStore(str(tmp_path))
        a1 = BSideAnalyzer(
            budget=AnalysisBudget.generous(), artifact_store=store,
        )
        cold = a1.analyze(prog.image)
        assert store.stats()["kinds"]["wrappers"]["entries"] == 1
        assert store.stats()["kinds"]["cfg"]["entries"] == 1

        # Drop the report so analysis re-runs, but keep the wrapper
        # table: phases of the pipeline replay from their artifacts.
        store.prune("report")
        store2 = ArtifactStore(str(tmp_path))
        a2 = BSideAnalyzer(
            budget=AnalysisBudget.generous(), artifact_store=store2,
        )
        warm = a2.analyze(prog.image)
        assert store2.counters("wrappers")["hits"] == 1
        assert warm.to_json(include_runtime=False) == \
            cold.to_json(include_runtime=False)


class TestFleetReportCache:
    def test_fully_warm_fleet_does_zero_binary_analysis(
        self, tmp_path, tiny_corpus,
    ):
        images = [b.image for b in tiny_corpus.binaries]
        cache_dir = str(tmp_path / "cache")
        cold = FleetAnalyzer(
            resolver=tiny_corpus.make_resolver(), cache_dir=cache_dir,
        )
        cold_report = cold.analyze_images(images)
        assert cold.artifacts.counters("report")["misses"] == len(images)

        warm = FleetAnalyzer(
            resolver=tiny_corpus.make_resolver(), cache_dir=cache_dir,
        )
        warm_report = warm.analyze_images(images)
        assert warm.artifacts.counters("report")["hits"] == len(images)
        assert warm.artifacts.counters("report")["misses"] == 0
        assert all(e.from_cache for e in warm_report.entries)
        # No interface traffic at all: nothing was analyzed.
        assert warm.interfaces.stats()["resident"] == 0
        assert warm_report.to_json(include_runtime=False) == \
            cold_report.to_json(include_runtime=False)

    def test_failed_budget_reports_are_cached_too(self, tmp_path, tiny_corpus):
        hard = [b.image for b in tiny_corpus.binaries if b.hardness][:2]
        if not hard:
            pytest.skip("corpus scale produced no hard binaries")
        cache_dir = str(tmp_path / "cache")
        cold = FleetAnalyzer(
            resolver=tiny_corpus.make_resolver(), cache_dir=cache_dir,
        )
        cold_report = cold.analyze_images(hard)
        assert all(not e.report.success for e in cold_report.entries)

        warm = FleetAnalyzer(
            resolver=tiny_corpus.make_resolver(), cache_dir=cache_dir,
        )
        warm_report = warm.analyze_images(hard)
        assert all(e.from_cache for e in warm_report.entries)
        assert warm_report.to_json(include_runtime=False) == \
            cold_report.to_json(include_runtime=False)

    def test_load_failures_are_never_cached(self, tmp_path, tiny_corpus):
        dynamic = [
            b.image for b in tiny_corpus.binaries if not b.is_static
        ][:2]
        cache_dir = str(tmp_path / "cache")
        # Empty resolver: every dependency unresolvable -> load failures.
        fleet = FleetAnalyzer(cache_dir=cache_dir)
        report = fleet.analyze_images(dynamic)
        assert all(not e.report.success for e in report.entries)
        assert fleet.artifacts.stats()["kinds"]["report"]["entries"] == 0

    def test_shared_store_between_iface_and_reports(self, tmp_path):
        """One ArtifactStore serves both kinds without collisions."""
        cache_dir = str(tmp_path / "cache")
        libc = build_libc()
        store = ArtifactStore(cache_dir)
        analyzer = BSideAnalyzer(
            budget=AnalysisBudget.generous(),
            interface_store=PersistentInterfaceStore(store=store),
            artifact_store=store,
        )
        analyzer.analyze_library(libc.image)
        analyzer.analyze(build_static_app().image)
        kinds = store.stats()["kinds"]
        assert kinds["iface"]["entries"] == 1
        assert kinds["report"]["entries"] == 1


class TestPipelineConfigObject:
    def test_fleet_entries_respect_config_fingerprint(
        self, tmp_path, tiny_corpus,
    ):
        images = [b.image for b in tiny_corpus.binaries][:3]
        cache_dir = str(tmp_path / "cache")
        FleetAnalyzer(
            resolver=tiny_corpus.make_resolver(), cache_dir=cache_dir,
        ).analyze_images(images)

        # A fleet with a different budget must not reuse those reports.
        other = FleetAnalyzer(
            resolver=tiny_corpus.make_resolver(),
            budget=AnalysisBudget.generous(),
            cache_dir=cache_dir,
        )
        other.analyze_images(images)
        assert other.artifacts.counters("report")["hits"] == 0

    def test_explicit_pipeline_config_param(self):
        config = PipelineConfig(detect_wrappers=False)
        analyzer = BSideAnalyzer(pipeline_config=config)
        assert analyzer.detect_wrappers is False
        assert "wrapper-detection" not in analyzer.pipeline.pass_names


class TestShardedStorePlacement:
    """PR-6 satellite: shard placement is deterministic, total, and
    stable — every writer and reader agrees on an entry's home shard
    with no coordination, across reopens, forever (rebalance-free)."""

    def test_hex_hashes_place_by_modulo(self, tmp_path):
        store = ShardedArtifactStore(str(tmp_path), shards=4)
        for value in (0, 1, 2, 3, 4, 15, 16, 255, 2**63, 2**128 - 1):
            h = f"{value:x}"
            assert store.shard_index(h) == value % 4

    @pytest.mark.parametrize("key", [
        "deadbeef", "0", "ff" * 32,          # hex hashes
        "not-hex-at-all", "ZZZZ",            # non-hex fallback
        "", None,                            # name-only placement
    ])
    def test_placement_total_and_deterministic(self, tmp_path, key):
        store = ShardedArtifactStore(str(tmp_path), shards=3)
        index = store.shard_index(key, name="subject")
        assert 0 <= index < 3
        assert all(
            store.shard_index(key, name="subject") == index
            for _ in range(10)
        )

    def test_placement_stable_under_reopen(self, tmp_path):
        hashes = [f"{i * 2654435761:x}" for i in range(64)]
        first = ShardedArtifactStore(str(tmp_path), shards=4)
        placed = {h: first.shard_index(h) for h in hashes}
        reopened = ShardedArtifactStore(str(tmp_path), shards=4)
        assert {h: reopened.shard_index(h) for h in hashes} == placed

    def test_no_rebalance_on_reopen_and_read(self, tmp_path):
        """Reopening and reading must not move a single entry file."""
        store = ShardedArtifactStore(str(tmp_path), shards=3)
        for i in range(24):
            store.put("report", f"app-{i}", {"i": i},
                      content_hash=f"{i:x}", fingerprint="f")

        def file_map():
            out = {}
            for root, _dirs, files in os.walk(str(tmp_path)):
                for name in files:
                    out[os.path.join(root, name)] = os.path.getsize(
                        os.path.join(root, name))
            return out

        before = file_map()
        reopened = ShardedArtifactStore(str(tmp_path), shards=3)
        for i in range(24):
            assert reopened.get(
                "report", f"app-{i}", content_hash=f"{i:x}",
                fingerprint="f") == {"i": i}
        assert file_map() == before

    def test_every_entry_lives_in_its_computed_shard(self, tmp_path):
        store = ShardedArtifactStore(str(tmp_path), shards=4)
        for i in range(32):
            h = f"{i * 7919:x}"
            store.put("cfg", f"bin-{i}", {"i": i}, content_hash=h)
        for i in range(32):
            h = f"{i * 7919:x}"
            home = store.shards[store.shard_index(h)]
            assert home.get("cfg", f"bin-{i}", content_hash=h) == {"i": i}


class TestShardedStoreEquivalence:
    """The sharded store is byte-identical to the flat store from every
    consumer's point of view: same payloads, same hit/miss/invalidation
    behaviour, same aggregate stats and prune counts."""

    PUTS = [
        ("report", f"app-{i}", {"syscalls": [i, i + 1], "i": i},
         f"{i * 31:x}", f"fp-{i % 3}")
        for i in range(20)
    ]

    def _fill(self, store):
        for kind, name, payload, h, fp in self.PUTS:
            store.put(kind, name, payload, content_hash=h, fingerprint=fp)

    def test_payloads_identical_to_flat_store(self, tmp_path):
        flat = ArtifactStore(str(tmp_path / "flat"))
        sharded = ShardedArtifactStore(str(tmp_path / "sharded"), shards=3)
        self._fill(flat)
        self._fill(sharded)
        for kind, name, payload, h, fp in self.PUTS:
            a = flat.get(kind, name, content_hash=h, fingerprint=fp)
            b = sharded.get(kind, name, content_hash=h, fingerprint=fp)
            assert a == b == payload
            assert json.dumps(a, sort_keys=True) == \
                json.dumps(b, sort_keys=True)

    def test_warm_analyze_byte_identical_across_store_kinds(self, tmp_path):
        """A report cached through a flat store and one cached through a
        sharded store serialize to the same bytes."""
        prog = build_static_app()
        flat_cold = BSideAnalyzer(
            budget=AnalysisBudget.generous(),
            artifact_store=ArtifactStore(str(tmp_path / "flat")),
        ).analyze(prog.image)
        sharded_store = ShardedArtifactStore(str(tmp_path / "sh"), shards=3)
        BSideAnalyzer(
            budget=AnalysisBudget.generous(), artifact_store=sharded_store,
        ).analyze(prog.image)
        warm_store = ShardedArtifactStore(str(tmp_path / "sh"), shards=3)
        warm = BSideAnalyzer(
            budget=AnalysisBudget.generous(), artifact_store=warm_store,
        ).analyze(prog.image)
        assert warm_store.counters("report")["hits"] == 1
        assert warm.to_json(include_runtime=False) == \
            flat_cold.to_json(include_runtime=False)

    def test_stats_aggregate_equals_flat(self, tmp_path):
        flat = ArtifactStore(str(tmp_path / "flat"))
        sharded = ShardedArtifactStore(str(tmp_path / "sharded"), shards=3)
        self._fill(flat)
        self._fill(sharded)
        flat_doc = flat.stats()
        sharded_doc = sharded.stats()
        assert sharded_doc["total_entries"] == flat_doc["total_entries"]
        assert sharded_doc["total_bytes"] == flat_doc["total_bytes"]
        assert sharded_doc["kinds"] == flat_doc["kinds"]
        # the per-shard breakdown sums back to the totals
        assert sum(s["entries"] for s in sharded_doc["per_shard"]) == \
            sharded_doc["total_entries"]
        assert sum(s["bytes"] for s in sharded_doc["per_shard"]) == \
            sharded_doc["total_bytes"]

    def test_prune_kind_aggregates_across_shards(self, tmp_path):
        sharded = ShardedArtifactStore(str(tmp_path), shards=3)
        self._fill(sharded)
        for i in range(7):
            sharded.put("cfg", f"cfg-{i}", {}, content_hash=f"{i:x}")
        assert sharded.prune("report") == len(self.PUTS)
        assert sharded.stats()["kinds"].get("report", {"entries": 0})[
            "entries"] == 0
        assert sharded.stats()["kinds"]["cfg"]["entries"] == 7
        assert sharded.prune() == 7
        assert sharded.stats()["total_entries"] == 0

    def test_invalidation_behaviour_matches_flat(self, tmp_path):
        flat = ArtifactStore(str(tmp_path / "flat"))
        sharded = ShardedArtifactStore(str(tmp_path / "sharded"), shards=3)
        for store in (flat, sharded):
            store.put("report", "app", {"x": 1},
                      content_hash="ab", fingerprint="f1")
            assert store.get("report", "app", content_hash="ab",
                             fingerprint="OTHER") is None
            assert store.counters("report")["invalidations"] == 1
            assert store.get("report", "app", content_hash="ab",
                             fingerprint="f1") is None
