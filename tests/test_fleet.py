"""Fleet analysis tests: batch runs, statistics, JSON inventory, CLI."""

import json
import os

import pytest

from repro.core.fleet import FleetAnalyzer, FleetReport
from repro.corpus import ProgramBuilder, make_debian_corpus


@pytest.fixture(scope="module")
def small_corpus():
    return make_debian_corpus(scale=0.06, seed=31)


@pytest.fixture(scope="module")
def fleet_report(small_corpus):
    fleet = FleetAnalyzer(resolver=small_corpus.make_resolver())
    return fleet.analyze_images([b.image for b in small_corpus.binaries])


class TestFleetAnalysis:
    def test_entry_per_binary(self, small_corpus, fleet_report):
        assert len(fleet_report.entries) == len(small_corpus.binaries)

    def test_success_rate_in_expected_band(self, fleet_report):
        assert 0.5 <= fleet_report.success_rate() <= 1.0

    def test_average_syscalls_plausible(self, fleet_report):
        assert 10 <= fleet_report.average_syscalls() <= 90

    def test_failure_stages_match_hardness(self, small_corpus, fleet_report):
        hard = sum(1 for b in small_corpus.binaries if b.hardness is not None)
        assert sum(fleet_report.failure_stages().values()) == hard

    def test_common_syscalls_subset_of_everyones(self, fleet_report):
        common = fleet_report.common_syscalls(threshold=1.0)
        for entry in fleet_report.successes:
            assert common <= entry.report.syscalls

    def test_cve_exposure_rates_valid(self, fleet_report):
        exposure = fleet_report.cve_exposure()
        assert len(exposure) == 36
        assert all(0.0 <= rate <= 1.0 for rate in exposure.values())

    def test_json_inventory(self, fleet_report):
        doc = json.loads(fleet_report.to_json())
        assert doc["fleet_size"] == len(fleet_report.entries)
        assert len(doc["binaries"]) == doc["fleet_size"]
        assert "cve_exposure" in doc
        first = doc["binaries"][0]
        assert {"binary", "success", "syscalls"} <= set(first)


class TestFleetDirectory:
    def test_directory_sweep_skips_non_elf(self, tmp_path, small_corpus):
        bindir = tmp_path / "bin"
        bindir.mkdir()
        chosen = [b for b in small_corpus.binaries if b.hardness is None][:4]
        for binary in chosen:
            binary.program.save(str(bindir / binary.name))
        (bindir / "README.txt").write_text("not an elf")
        (bindir / "script.sh").write_text("#!/bin/sh\necho hi\n")

        fleet = FleetAnalyzer(resolver=small_corpus.make_resolver())
        report = fleet.analyze_directory(str(bindir))
        assert len(report.entries) == len(chosen)

    def test_cli_fleet_command(self, tmp_path, small_corpus, capsys):
        from repro.cli import main

        bindir = tmp_path / "fleetbin"
        bindir.mkdir()
        libdir = tmp_path / "fleetlib"
        libdir.mkdir()
        for binary in [b for b in small_corpus.binaries if b.hardness is None][:3]:
            binary.program.save(str(bindir / binary.name))
        for name, lib in small_corpus.libraries.items():
            lib.save(str(libdir / name))

        assert main(["fleet", str(bindir), "--libdir", str(libdir)]) == 0
        out = capsys.readouterr().out
        assert "fleet: 3 binaries" in out

    def test_cli_fleet_json(self, tmp_path, small_corpus, capsys):
        from repro.cli import main

        bindir = tmp_path / "fleetjson"
        bindir.mkdir()
        libdir = tmp_path / "fleetjsonlib"
        libdir.mkdir()
        binary = next(b for b in small_corpus.binaries if b.hardness is None)
        binary.program.save(str(bindir / binary.name))
        for name, lib in small_corpus.libraries.items():
            lib.save(str(libdir / name))

        assert main(["fleet", str(bindir), "--libdir", str(libdir), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["fleet_size"] == 1

    def test_cli_docker_profile(self, tmp_path, capsys):
        from repro.cli import main

        p = ProgramBuilder("dp")
        with p.function("_start"):
            from repro.x86 import EAX

            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        path = str(tmp_path / "dp")
        p.build().save(path)
        assert main(["docker-profile", path]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["syscalls"][0]["names"] == ["exit"]
