"""Extension-feature tests: Docker profiles, DOT export, argument
identification, and failure injection on malformed inputs."""

import json

import pytest

from repro.corpus.progbuilder import ProgramBuilder
from repro.x86 import EAX, Memory, RDI, RSI, RDX


class TestDockerProfiles:
    def _report(self, syscalls, complete=True, success=True):
        from repro.core.report import AnalysisReport

        if not success:
            return AnalysisReport.failed("b-side", "x", "cfg-recovery", "boom")
        return AnalysisReport(tool="b-side", binary="x", success=True,
                              syscalls=set(syscalls), complete=complete)

    def test_profile_structure(self):
        from repro.filters.docker import ACT_ALLOW, ACT_ERRNO, profile_from_report

        profile = profile_from_report(self._report({0, 1, 60}))
        assert profile["defaultAction"] == ACT_ERRNO
        assert profile["architectures"] == ["SCMP_ARCH_X86_64"]
        names = profile["syscalls"][0]["names"]
        assert names == ["exit", "read", "write"]
        assert profile["syscalls"][0]["action"] == ACT_ALLOW

    def test_profile_round_trip(self):
        from repro.filters.docker import parse_profile, profile_from_report, render_profile

        profile = profile_from_report(self._report({0, 1, 60, 231}))
        back = parse_profile(render_profile(profile))
        assert back.allowed == frozenset({0, 1, 60, 231})

    def test_failed_report_yields_allow_all(self):
        from repro.filters.docker import profile_from_report
        from repro.syscalls import NR_SYSCALLS

        profile = profile_from_report(self._report(set(), success=False))
        assert len(profile["syscalls"][0]["names"]) == NR_SYSCALLS

    def test_render_is_valid_json(self):
        from repro.filters.docker import profile_from_report, render_profile

        text = render_profile(profile_from_report(self._report({2})))
        assert json.loads(text)["syscalls"][0]["names"] == ["open"]


class TestDotExport:
    def _automaton(self):
        from repro.core import AnalysisBudget, BSideAnalyzer

        p = ProgramBuilder("dotapp")
        with p.function("_start"):
            p.asm.mov(EAX, 2)
            p.asm.syscall()
            p.asm.label("loop")
            p.asm.mov(EAX, 0)
            p.asm.syscall()
            p.asm.cmp(RDI, 0)
            p.asm.jcc("ne", "loop")
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        analyzer = BSideAnalyzer(budget=AnalysisBudget.generous())
        __, automaton = analyzer.analyze_phases(p.build().image)
        return automaton

    def test_dot_structure(self):
        from repro.phases.dot import to_dot

        automaton = self._automaton()
        dot = to_dot(automaton)
        assert dot.startswith("digraph phases {")
        assert dot.rstrip().endswith("}")
        # One node per phase, start phase double-circled.
        assert dot.count("[label=") >= automaton.n_phases
        assert "doublecircle" in dot
        # Syscall names appear on edges.
        assert "open" in dot or "read" in dot or "exit" in dot

    def test_self_loops_off_by_default(self):
        from repro.phases.dot import to_dot

        automaton = self._automaton()
        without = to_dot(automaton)
        with_loops = to_dot(automaton, include_self_loops=True)
        assert len(with_loops) >= len(without)


class TestArgumentIdentification:
    def _site_setup(self, build):
        from repro.cfg import build_cfg, resolve_indirect_active
        from repro.core import find_sites
        from repro.symex import ExecContext, MemoryBackend

        p = ProgramBuilder("args")
        with p.function("_start"):
            build(p)
            p.asm.hlt()
        p.set_entry("_start")
        prog = p.build()
        cfg = build_cfg(prog.image)
        resolve_indirect_active(cfg, prog.image, [prog.image.entry])
        ctx = ExecContext.for_image(cfg, prog.image)
        sites = find_sites(cfg)
        return cfg, ctx, sites, MemoryBackend([prog.image])

    def test_socket_domain_identified(self):
        from repro.core.arguments import identify_argument

        def body(p):
            p.asm.mov(EAX, 41)   # socket
            p.asm.mov(RDI, 2)    # AF_INET
            p.asm.mov(RSI, 1)    # SOCK_STREAM
            p.asm.syscall()

        cfg, ctx, sites, backend = self._site_setup(body)
        arg0 = identify_argument(cfg, ctx, sites[0], 0, backend)
        assert arg0.values == {2}
        assert arg0.complete and arg0.is_constrained
        arg1 = identify_argument(cfg, ctx, sites[0], 1, backend)
        assert arg1.values == {1}

    def test_multiple_domains_across_paths(self):
        from repro.core.arguments import identify_argument

        def body(p):
            p.asm.test(RDX, RDX)
            p.asm.jcc("e", "inet6")
            p.asm.mov(RDI, 2)    # AF_INET
            p.asm.jmp("go")
            p.asm.label("inet6")
            p.asm.mov(RDI, 10)   # AF_INET6
            p.asm.label("go")
            p.asm.mov(EAX, 41)
            p.asm.syscall()

        cfg, ctx, sites, backend = self._site_setup(body)
        arg0 = identify_argument(cfg, ctx, sites[0], 0, backend)
        assert arg0.values == {2, 10}

    def test_unknown_argument_not_constrained(self):
        from repro.core.arguments import identify_argument

        def body(p):
            p.asm.mov(EAX, 0)    # read
            # rdi arrives from the environment: never defined locally.
            p.asm.syscall()

        cfg, ctx, sites, backend = self._site_setup(body)
        arg0 = identify_argument(cfg, ctx, sites[0], 0, backend)
        assert not arg0.is_constrained

    def test_argument_rules(self):
        from repro.core.arguments import ArgumentRule, build_argument_rules, identify_site_arguments

        def body(p):
            p.asm.mov(EAX, 41)
            p.asm.mov(RDI, 2)
            p.asm.mov(RSI, 1)
            p.asm.mov(RDX, 0)
            p.asm.syscall()

        cfg, ctx, sites, backend = self._site_setup(body)
        args = identify_site_arguments(cfg, ctx, sites[0], n_args=3, backend=backend)
        rules = build_argument_rules({sites[0]: {41}}, {sites[0]: args})
        assert len(rules) == 1
        rule = rules[0]
        assert rule.permits(41, (2, 1, 0))
        assert not rule.permits(41, (17, 1, 0))  # AF_PACKET blocked
        assert not rule.permits(59, (2, 1, 0))   # wrong syscall


class TestFailureInjection:
    def test_bad_elf_magic(self):
        from repro.elf import read_elf
        from repro.errors import ElfError

        with pytest.raises(ElfError):
            read_elf(b"\x7fBAD" + b"\x00" * 100)

    def test_truncated_elf(self):
        from repro.elf import read_elf

        p = ProgramBuilder("trunc")
        with p.function("_start"):
            p.asm.ret()
        p.set_entry("_start")
        data = p.build().elf_bytes
        with pytest.raises(Exception):
            read_elf(data[:80])

    def test_analyzer_handles_garbage_code(self):
        """A binary whose text is random bytes must fail cleanly, not crash."""
        from repro.core import BSideAnalyzer
        from repro.elf import ElfImageSpec, ET_EXEC, write_elf
        from repro.loader import LoadedImage

        spec = ElfImageSpec(
            elf_type=ET_EXEC,
            text_vaddr=0x401000,
            text=bytes(range(7, 250, 7)) * 3,
            entry=0x401000,
        )
        image = LoadedImage.from_bytes("garbage", write_elf(spec))
        report = BSideAnalyzer().analyze(image)
        assert not report.success
        assert report.failure_stage == "load"

    def test_decoder_fuzz_no_crashes(self):
        """Random byte soup either decodes or raises DecodeError — never
        anything else."""
        import random

        from repro.errors import DecodeError
        from repro.x86 import decode

        rng = random.Random(1234)
        for __ in range(3000):
            blob = bytes(rng.randrange(256) for _ in range(rng.randint(1, 16)))
            try:
                insn = decode(blob, 0, 0x1000)
                assert insn.size >= 1
            except DecodeError:
                pass

    def test_emulator_rejects_wild_jump(self):
        from repro.emu import run_traced
        from repro.errors import EmulationError

        p = ProgramBuilder("wild")
        with p.function("_start"):
            p.asm.mov(RDI, 0x123456)
            p.asm.jmp_reg(RDI)
        p.set_entry("_start")
        prog = p.build()
        with pytest.raises(EmulationError):
            run_traced(prog.image)

    def test_stack_overflow_detected(self):
        from repro.emu import run_traced
        from repro.errors import EmulationError

        p = ProgramBuilder("recur")
        with p.function("boom"):
            p.asm.call("boom")
            p.asm.ret()
        with p.function("_start"):
            p.asm.call("boom")
            p.asm.hlt()
        p.set_entry("_start")
        with pytest.raises(EmulationError):
            run_traced(p.build().image)
