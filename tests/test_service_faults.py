"""Fault-injection suite: the distributed service tier under failure.

PR-6 satellite — proves the lease-based multi-worker queue's crash
story end to end:

* a worker killed mid-batch loses nothing: its leases expire, a
  survivor re-claims the jobs, and every submission completes;
* corrupt state (a damaged job record, a damaged cache shard entry) is
  quarantined-and-continued, never a daemon crash, and surfaced via
  ``/v1/stats``;
* the expired-lease double-claim race resolves to exactly-one
  execution: the claim-file ``O_EXCL`` arbitration plus the
  ``owns_lease`` persistence guard mean zero lost and zero
  double-executed jobs.

Worker crashes use real ``spawn`` processes and ``SIGKILL`` — no
cooperative shutdown — so the recovery path exercised here is the one
a production deployment would hit.
"""

import json
import os
import signal
import time

import threading

from repro.corpus import ProgramBuilder
from repro.service import (
    AnalysisService,
    AsyncServiceServer,
    JobQueue,
    ServiceClient,
    ServiceWorker,
    spawn_workers,
)
from repro.service.jobs import STATUS_DONE
from repro.service.worker import EXEC_LOG
from repro.x86 import EAX, RDI


def _build_binary(path: str, numbers=(39, 60)) -> str:
    p = ProgramBuilder(os.path.basename(path))
    with p.function("_start"):
        for nr in numbers:
            p.asm.mov(EAX, nr)
            p.asm.syscall()
        p.asm.mov(EAX, 60)
        p.asm.xor(RDI, RDI)
        p.asm.syscall()
        p.asm.hlt()
    p.set_entry("_start")
    p.build().save(path)
    return path


def _build_binaries(outdir, count):
    # distinct syscall slices -> distinct bytes -> no content-hash dedup
    pool = (0, 1, 2, 3, 4, 5, 9, 12, 21, 39, 41, 42, 57, 59, 79, 89)
    os.makedirs(str(outdir), exist_ok=True)
    return [
        _build_binary(
            os.path.join(str(outdir), f"fault-{i:02d}"),
            numbers=(pool[i % len(pool)], pool[(i + 3) % len(pool)]),
        )
        for i in range(count)
    ]


def _wait(predicate, timeout=60.0, poll=0.05, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(poll)
    raise AssertionError(f"timed out waiting for {message}")


def _journal_events(state_dir):
    path = os.path.join(str(state_dir), "jobs", EXEC_LOG)
    if not os.path.exists(path):
        return []
    with open(path) as f:
        return [json.loads(line) for line in f if line.strip()]


def _front_end(state_dir, **kwargs):
    service = AnalysisService(
        str(state_dir),
        shared=True,
        dispatcher=False,
        lease_ttl=kwargs.pop("lease_ttl", 2.0),
        **kwargs,
    )
    service.write_config()
    return service


class TestWorkerCrash:
    def test_killed_worker_jobs_are_reclaimed_and_complete(self, tmp_path):
        """SIGKILL a worker mid-batch: its leased jobs must be re-leased
        by a replacement and *every* submission must finish — zero lost
        jobs."""
        binaries = _build_binaries(tmp_path / "bin", 10)
        service = _front_end(tmp_path / "state", queue_size=32)
        jobs = [
            service.submit("analyze", {"path": path}) for path in binaries
        ]

        # batch_factor 1: the victim claims one job at a time, so there
        # is always undone work left to prove recovery with
        (victim,) = spawn_workers(
            str(tmp_path / "state"), 1,
            overrides={"poll": 0.05, "batch_factor": 1},
        )
        try:
            # freeze the victim the moment it holds a lease (SIGSTOP is
            # immediate, so it is caught mid-batch), then kill it
            _wait(
                lambda: any(
                    ev["event"] == "claim"
                    for ev in _journal_events(tmp_path / "state")
                ),
                timeout=60.0, poll=0.01, message="first lease claim",
            )
            os.kill(victim.pid, signal.SIGSTOP)
            undone = [
                job for job in jobs
                if service.queue.get(job.id).status != STATUS_DONE
            ]
            assert undone, "victim drained the queue before the fault"
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(10.0)
            assert not victim.is_alive()
        finally:
            if victim.is_alive():
                os.kill(victim.pid, signal.SIGKILL)

        survivors = spawn_workers(
            str(tmp_path / "state"), 1,
            prefix="survivor", overrides={"poll": 0.05},
        )
        try:
            _wait(
                lambda: all(
                    service.queue.get(job.id).status == STATUS_DONE
                    for job in jobs
                ),
                timeout=120.0, message="all jobs done after worker kill",
            )
        finally:
            for process in survivors:
                process.terminate()

        # every job finished exactly once from the front end's view, and
        # the survivor picked up at least part of the victim's work
        records = [service.queue.get(job.id) for job in jobs]
        assert all(job.status == STATUS_DONE for job in records)
        assert all(not job.error for job in records)
        workers_used = {job.metrics.get("worker") for job in records}
        assert any(w and w.startswith("survivor") for w in workers_used)

    def test_abandoned_lease_is_reclaimed_after_ttl(self, tmp_path):
        """A claim that is never heartbeated (worker froze or died
        between claim and execution) expires and the job is re-queued,
        with the reclaim counted."""
        state = tmp_path / "state"
        queue_a = JobQueue(str(state / "jobs"), shared=True, lease_ttl=0.5)
        job = queue_a.submit("analyze", {"path": "/x"})
        claimed = queue_a.claim_batch("wedged", 4, timeout=5.0)
        assert [j.id for j in claimed] == [job.id]
        # queue_a now wedges: no heartbeat, no finish

        queue_b = JobQueue(str(state / "jobs"), shared=True, lease_ttl=0.5)
        time.sleep(0.6)

        def reclaimed():
            batch = queue_b.claim_batch("medic", 4, timeout=0.2)
            return [j.id for j in batch] == [job.id]

        _wait(reclaimed, timeout=10.0, message="expired lease reclaim")
        assert queue_b.counters["reclaimed"] >= 1
        assert queue_b.get(job.id).metrics["worker"] == "medic"


class TestCorruptState:
    def test_corrupt_job_record_is_quarantined_not_fatal(self, tmp_path):
        """Garbage in the queue directory is moved aside, counted, and
        surfaced over /v1/stats while real jobs keep flowing."""
        binaries = _build_binaries(tmp_path / "bin", 2)
        service = _front_end(tmp_path / "state", queue_size=16)
        jobs_dir = os.path.join(str(tmp_path / "state"), "jobs")
        with open(os.path.join(jobs_dir, "job-999990.json"), "w") as f:
            f.write("{ this is not json")
        with open(os.path.join(jobs_dir, "job-999991.json"), "w") as f:
            json.dump({"id": "job-999991", "wrong": "shape"}, f)

        server = AsyncServiceServer(service, port=0)
        server.start(executor=False)
        workers = spawn_workers(
            str(tmp_path / "state"), 1, overrides={"poll": 0.05},
        )
        try:
            client = ServiceClient(server.url, timeout=30.0)
            done = [
                client.wait(client.submit_path(path)["id"], timeout=120.0)
                for path in binaries
            ]
            assert all(job["status"] == "done" for job in done)
            stats = client.stats()
            assert stats["queue"]["quarantined"] >= 2
        finally:
            for process in workers:
                process.terminate()
            server.stop()

        quarantine = os.path.join(jobs_dir, "quarantine")
        assert len(os.listdir(quarantine)) >= 2

    def test_corrupt_shard_entry_is_a_miss_not_a_crash(self, tmp_path):
        """Damaging a cache entry inside a shard mid-run degrades to a
        re-analysis — the daemon survives, the result is identical, and
        the invalidation shows in /v1/stats."""
        binary = _build_binary(str(tmp_path / "app"))
        # local mode: the dispatcher (and so the store counters) live in
        # the daemon process whose /v1/stats we read
        service = AnalysisService(
            str(tmp_path / "state"), shards=2, queue_size=8,
        )
        server = AsyncServiceServer(service, port=0)
        server.start()
        try:
            client = ServiceClient(server.url, timeout=30.0)
            cold = client.wait(client.submit_path(binary)["id"])
            assert cold["status"] == "done"
            cold_report = client.report(cold["id"])

            cache_dir = os.path.join(str(tmp_path / "state"), "cache")
            damaged = 0
            for root, _dirs, files in os.walk(cache_dir):
                for name in files:
                    with open(os.path.join(root, name), "w") as f:
                        f.write('{"cache_version": 2, TRUNCATED')
                    damaged += 1
            assert damaged > 0, "expected cache entries in the shards"

            warm = client.wait(client.submit_path(binary)["id"])
            assert warm["status"] == "done"
            # the damaged entry could not be served: this was a real run
            assert warm["metrics"]["from_cache"] is False
            assert client.report(warm["id"])["syscalls"] == \
                cold_report["syscalls"]

            kinds = client.stats()["cache"]["kinds"]
            assert sum(doc.get("invalidations", 0)
                       for doc in kinds.values()) >= 1
        finally:
            server.stop()


class TestExactlyOnce:
    def test_concurrent_claims_are_exclusive(self, tmp_path):
        """Two workers draining one queue: every job is claimed by
        exactly one of them (O_EXCL claim-file arbitration)."""
        state = tmp_path / "state"
        queue_a = JobQueue(str(state / "jobs"), maxsize=64,
                           shared=True, lease_ttl=30.0)
        queue_b = JobQueue(str(state / "jobs"), maxsize=64,
                           shared=True, lease_ttl=30.0)
        jobs = [
            queue_a.submit("analyze", {"path": f"/bin/{i}"})
            for i in range(24)
        ]

        claims = {"a": [], "b": []}

        def drain(name, queue):
            while True:
                batch = queue.claim_batch(name, 1, timeout=0.3)
                if not batch:
                    return
                for job in batch:
                    claims[name].append(job.id)
                    queue.finish(job)

        threads = [
            threading.Thread(target=drain, args=("a", queue_a)),
            threading.Thread(target=drain, args=("b", queue_b)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60.0)

        executed = claims["a"] + claims["b"]
        assert sorted(executed) == sorted(job.id for job in jobs)
        assert len(executed) == len(set(executed)), "double-claimed job"
        assert set(claims["a"]) & set(claims["b"]) == set()

    def test_expired_lease_double_claim_executes_once(self, tmp_path):
        """The stalled-owner race: worker A claims, stalls past the TTL,
        worker B re-claims and finishes.  A's late result must be
        discarded by the owns_lease guard — the job ends exactly once,
        with B's result."""
        binary = _build_binary(str(tmp_path / "app"))
        state = str(tmp_path / "state")
        front = _front_end(state, queue_size=8, lease_ttl=0.5)
        job = front.submit("analyze", {"path": binary})

        stalled = ServiceWorker(state, "stalled", poll=0.05)
        batch_a = stalled.queue.claim_batch("stalled", 4, timeout=5.0)
        assert [j.id for j in batch_a] == [job.id]

        # the stall: no heartbeat until well past the 0.5s TTL
        time.sleep(0.7)

        medic = ServiceWorker(state, "medic", poll=0.05)
        batch_b = medic.queue.claim_batch("medic", 4, timeout=5.0)
        assert [j.id for j in batch_b] == [job.id]
        medic.service.run_batch(batch_b)

        done = front.queue.get(job.id)
        assert done.status == STATUS_DONE
        assert done.metrics["worker"] == "medic"
        finished_at = done.finished_at

        # the stalled owner wakes up and tries to persist its own run:
        # the owns_lease guard must discard it wholesale
        stalled.service.run_batch(batch_a)
        after = front.queue.get(job.id)
        assert after.status == STATUS_DONE
        assert after.metrics["worker"] == "medic"
        assert after.finished_at == finished_at

    def test_stale_claim_of_finished_job_is_refused(self, tmp_path):
        """A worker whose queued view is stale cannot re-run a job that a
        peer already finished: the post-lease disk re-read refuses the
        claim."""
        state = tmp_path / "state"
        queue_a = JobQueue(str(state / "jobs"), shared=True, lease_ttl=30.0)
        job = queue_a.submit("analyze", {"path": "/x"})

        queue_b = JobQueue(str(state / "jobs"), shared=True, lease_ttl=30.0)
        queue_b.refresh()  # B now sees the job as queued

        # A claims and finishes while B's view goes stale
        (claimed,) = queue_a.claim_batch("a", 4, timeout=5.0)
        queue_a.finish(claimed)
        assert queue_a.get(job.id).status == STATUS_DONE

        # B still believes the job is queued; its claim must come back
        # empty and must not regress the record to running
        assert queue_b.claim_batch("b", 4, timeout=0.3) == []
        assert queue_b.get(job.id).status == STATUS_DONE
        assert queue_a.get(job.id).status == STATUS_DONE


class TestJournal:
    def test_exec_log_shows_claim_and_completion(self, tmp_path):
        """The append-only journal records who claimed and finished
        what — the observability contract the fault tests above rely
        on."""
        binaries = _build_binaries(tmp_path / "bin", 3)
        service = _front_end(tmp_path / "state", queue_size=16)
        jobs = [
            service.submit("analyze", {"path": path}) for path in binaries
        ]
        worker = ServiceWorker(str(tmp_path / "state"), "journaled",
                               poll=0.05)
        worker.run(idle_exit=1.0)

        events = _journal_events(tmp_path / "state")
        claimed = [
            job_id
            for ev in events if ev["event"] == "claim"
            for job_id in ev["jobs"]
        ]
        finished = [
            job_id
            for ev in events if ev["event"] == "batch-done"
            for job_id in ev["jobs"]
        ]
        expected = sorted(job.id for job in jobs)
        assert sorted(claimed) == expected
        assert sorted(finished) == expected
        assert all(ev["worker"] == "journaled" for ev in events)
        for job in jobs:
            assert service.queue.get(job.id).status == STATUS_DONE
