"""Baseline behaviour tests: each tool's documented strengths and failure
modes must reproduce on crafted binaries."""

import pytest

from repro.baselines import (
    CHESTNUT_FALLBACK,
    ChestnutAnalyzer,
    NaiveAnalyzer,
    SysFilterAnalyzer,
)
from repro.corpus.progbuilder import ProgramBuilder
from repro.loader import LibraryResolver
from repro.x86 import EAX, Memory, RAX, RDI, RSP


def simple_static(name="s", wrapper=False, pic=False, has_eh_frame=True):
    p = ProgramBuilder(name, pic=pic, has_eh_frame=has_eh_frame)
    if wrapper:
        with p.function("sysw"):
            p.asm.mov(RAX, RDI)
            p.asm.syscall()
            p.asm.ret()
    with p.function("_start", exported=pic):
        p.asm.mov(EAX, 39)
        p.asm.syscall()
        if wrapper:
            p.asm.mov(RDI, 1)
            p.asm.call("sysw")
        p.asm.mov(EAX, 60)
        p.asm.syscall()
        p.asm.hlt()
    p.set_entry("_start")
    return p.build()


class TestChestnutFallback:
    def test_fallback_size_matches_paper(self):
        # "Chestnut always identifies more than 268 system calls" (§5.2).
        assert 268 <= len(CHESTNUT_FALLBACK) <= 280

    def test_resolves_direct_sites_exactly(self):
        prog = simple_static(pic=True)
        report = ChestnutAnalyzer().analyze(prog.image)
        assert report.success
        assert report.syscalls == {39, 60}

    def test_wrapper_triggers_fallback_on_dynamic(self):
        prog = simple_static(wrapper=True, pic=True)
        report = ChestnutAnalyzer().analyze(prog.image)
        assert report.success
        # Unresolvable wrapper site -> permissive fallback: huge FP set.
        assert len(report.syscalls) >= 268
        assert not report.complete

    def test_wrapper_crashes_on_static(self):
        prog = simple_static(wrapper=True, pic=False)
        report = ChestnutAnalyzer().analyze(prog.image)
        assert not report.success
        assert report.failure_stage == "binalyzer"

    def test_hardcoded_glibc_syscall_wrapper_understood(self):
        p = ProgramBuilder("glibcish", pic=True)
        with p.function("syscall", exported=True):  # the magic name
            p.asm.mov(RAX, RDI)
            p.asm.syscall()
            p.asm.ret()
        with p.function("_start", exported=True):
            p.asm.mov(RDI, 12)  # brk
            p.asm.call("syscall")
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        report = ChestnutAnalyzer().analyze(p.build().image)
        assert report.success
        assert report.syscalls == {12, 60}
        assert report.complete

    def test_go_style_wrapper_crashes_binalyzer(self):
        # Stack-passed numbers crash Chestnut's pipeline (the paper's
        # dynamic-binary failure class, §5.2), even on dynamic binaries.
        p = ProgramBuilder("goish", pic=True)
        with p.function("gosys"):
            p.asm.mov(RAX, Memory(base=RSP, disp=8))
            p.asm.syscall()
            p.asm.ret()
        with p.function("_start", exported=True):
            p.asm.sub(RSP, 0x10)
            p.asm.mov(Memory(base=RSP, disp=0), 41)
            p.asm.call("gosys")
            p.asm.add(RSP, 0x10)
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        report = ChestnutAnalyzer().analyze(p.build().image)
        assert not report.success
        assert "memory" in report.failure_reason

    def test_register_wrapper_falls_back_on_dynamic(self):
        # musl-style register wrappers do not crash it: the unresolved
        # site triggers the permissive fallback instead.
        prog = simple_static(wrapper=True, pic=True)
        report = ChestnutAnalyzer().analyze(prog.image)
        assert report.success
        assert not report.complete
        assert len(report.syscalls) >= 268


class TestSysFilter:
    def test_rejects_non_pic_static(self):
        prog = simple_static(pic=False)
        report = SysFilterAnalyzer().analyze(prog.image)
        assert not report.success
        assert "non-PIC" in report.failure_reason

    def test_rejects_missing_eh_frame(self):
        prog = simple_static(pic=True, has_eh_frame=False)
        report = SysFilterAnalyzer().analyze(prog.image)
        assert not report.success
        assert "eh_frame" in report.failure_reason

    def test_resolves_direct_sites(self):
        prog = simple_static(pic=True)
        report = SysFilterAnalyzer().analyze(prog.image)
        assert report.success
        assert report.syscalls == {39, 60}

    def test_wrapper_syscalls_silently_missed(self):
        prog = simple_static(wrapper=True, pic=True)
        report = SysFilterAnalyzer().analyze(prog.image)
        assert report.success
        # write(1) went through the wrapper: false negative.
        assert 1 not in report.syscalls
        assert not report.complete

    def test_vacuum_includes_unreachable_library_code(self):
        lib = ProgramBuilder("libx.so", soname="libx.so", text_base=0x7F0000001000)
        with lib.function("used", exported=True):
            lib.asm.mov(EAX, 0)
            lib.asm.syscall()
            lib.asm.ret()
        with lib.function("unused", exported=True):
            lib.asm.mov(EAX, 87)  # unlink: never imported by the app
            lib.asm.syscall()
            lib.asm.ret()
        libb = lib.build()
        p = ProgramBuilder("app", pic=True, needed=["libx.so"])
        with p.function("_start", exported=True):
            p.call_import("used")
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        resolver = LibraryResolver(library_map={"libx.so": libb.elf_bytes})
        report = SysFilterAnalyzer(resolver).analyze(p.build().image)
        assert report.success
        # SysFilter vacuums the whole library: unlink appears (FP)...
        assert 87 in report.syscalls
        # ...whereas B-Side's reachable-exports analysis excludes it.
        from repro.core import AnalysisBudget, BSideAnalyzer

        bside = BSideAnalyzer(
            resolver=LibraryResolver(library_map={"libx.so": libb.elf_bytes}),
            budget=AnalysisBudget.generous(),
        )
        bside_report = bside.analyze(p.build().image)
        assert 87 not in bside_report.syscalls


class TestNaive:
    def test_same_block_found(self):
        prog = simple_static(pic=True)
        report = NaiveAnalyzer().analyze(prog.image)
        assert {39, 60} <= report.syscalls

    def test_cross_block_missed_without_predecessors(self):
        p = ProgramBuilder("crossblock")
        with p.function("_start"):
            p.asm.mov(EAX, 2)  # open - defined here
            p.asm.test(RDI, RDI)
            p.asm.jcc("e", "go")
            p.asm.nop()
            p.asm.label("go")
            p.asm.syscall()  # value set two blocks earlier
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        report = NaiveAnalyzer(look_at_predecessors=False).analyze(p.build().image)
        # The "go" block has no rax definition: false negative for open.
        assert 2 not in report.syscalls
        assert not report.complete
