"""Unit coverage for the symbolic engine's interprocedural semantics and
the emulated kernel's syscall behaviours."""

import pytest

from repro.cfg import build_cfg
from repro.corpus import ProgramBuilder
from repro.emu import EmulatedKernel, Machine, run_traced
from repro.symex import BVV, CALLER_SAVED, ExecContext, MemoryBackend, SymState, step
from repro.x86 import EAX, Memory, RAX, RBX, RDI, RDX, RSI


def _ctx_and_state(build, start_label="_start"):
    p = ProgramBuilder("unit")
    build(p)
    p.set_entry(start_label)
    prog = p.build()
    cfg = build_cfg(prog.image)
    ctx = ExecContext.for_image(cfg, prog.image)
    state = SymState.initial(
        prog.image.symbol_addr(start_label),
        backend=MemoryBackend([prog.image]),
    )
    return prog, ctx, state


def _run_steps(ctx, state, n):
    for __ in range(n):
        states = step(state, ctx)
        if not states:
            return None
        state = states[0]
    return state


class TestEngineExternalCalls:
    def test_external_call_clobbers_caller_saved(self):
        def build(p):
            with p.function("_start", exported=True):
                p.asm.mov(RAX, 7)
                p.asm.mov(RBX, 9)
                p.call_import("ext_fn")
                p.asm.ret()
        prog, ctx, state = _ctx_and_state(
            lambda p: (setattr(p, "needed", ["l.so"]),
                       setattr(p, "pic", True), build(p))[-1]
        )
        state = _run_steps(ctx, state, 3)  # mov, mov, call[got]
        # Caller-saved rax is now unknown; callee-saved rbx survives.
        assert state.regs["rax"].value_or_none() is None
        assert state.regs["rbx"] == BVV(9)
        assert state.flags is None

    def test_midpath_syscall_clobbers_linux_abi_registers(self):
        def build(p):
            with p.function("_start"):
                p.asm.mov(EAX, 39)
                p.asm.mov(RBX, 5)
                p.asm.syscall()
                p.asm.ret()
        __, ctx, state = _ctx_and_state(build)
        state = _run_steps(ctx, state, 3)
        assert state.regs["rax"].value_or_none() is None  # return value
        assert state.regs["rcx"].value_or_none() is None
        assert state.regs["r11"].value_or_none() is None
        assert state.regs["rbx"] == BVV(5)

    def test_ret_out_of_frame_ends_path(self):
        def build(p):
            with p.function("_start"):
                p.asm.ret()  # return address never written: path dies
        __, ctx, state = _ctx_and_state(build)
        assert step(state, ctx) == []

    def test_unresolved_indirect_jump_ends_path(self):
        def build(p):
            with p.function("_start"):
                p.asm.jmp_reg(RSI)  # rsi symbolic at entry
        __, ctx, state = _ctx_and_state(build)
        assert step(state, ctx) == []

    def test_concrete_indirect_call_executes_locally(self):
        def build(p):
            with p.function("callee"):
                p.asm.mov(RBX, 0x77)
                p.asm.ret()
            with p.function("_start"):
                p.asm.lea_rip(RSI, "callee")
                p.asm.call_reg(RSI)
                p.asm.ret()
        __, ctx, state = _ctx_and_state(build)
        state = _run_steps(ctx, state, 4)  # lea, call, mov, ret
        assert state.regs["rbx"] == BVV(0x77)

    def test_conditional_with_symbolic_flags_forks(self):
        def build(p):
            with p.function("_start"):
                p.asm.cmp(RDI, 3)
                p.asm.jcc("e", "x")
                p.asm.nop()
                p.asm.label("x")
                p.asm.ret()
        __, ctx, state = _ctx_and_state(build)
        state = _run_steps(ctx, state, 1)  # cmp
        forks = step(state, ctx)           # jcc with unknown rdi
        assert len(forks) == 2
        assert forks[0].pc != forks[1].pc

    def test_conditional_with_concrete_flags_single_successor(self):
        def build(p):
            with p.function("_start"):
                p.asm.mov(RDI, 3)
                p.asm.cmp(RDI, 3)
                p.asm.jcc("e", "x")
                p.asm.nop()
                p.asm.label("x")
                p.asm.ret()
        __, ctx, state = _ctx_and_state(build)
        state = _run_steps(ctx, state, 2)
        forks = step(state, ctx)
        assert len(forks) == 1


class TestEmulatedKernel:
    def test_unknown_syscall_returns_enosys(self):
        p = ProgramBuilder("enosys")
        with p.function("_start"):
            p.asm.mov(EAX, 9999)
            p.asm.syscall()
            p.asm.mov(RDI, RAX)
            p.asm.emit("neg", RDI)  # exit status = -rax = 38
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        result = run_traced(p.build().image)
        assert result.exit_status == 38  # ENOSYS

    def test_fd_allocation_monotone(self):
        p = ProgramBuilder("fds")
        with p.function("_start"):
            p.asm.mov(EAX, 2)  # open -> fd 3
            p.asm.syscall()
            p.asm.mov(EAX, 41)  # socket -> fd 4
            p.asm.syscall()
            p.asm.mov(RDI, RAX)
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        assert run_traced(p.build().image).exit_status == 4

    def test_read_script_consumed_incrementally(self):
        p = ProgramBuilder("reads")
        p.add_zeroed("buf", 8)
        with p.function("_start"):
            for __ in range(2):
                p.asm.xor(EAX, EAX)
                p.asm.xor(RDI, RDI)
                p.asm.lea_rip(RSI, "buf")
                p.asm.mov(RDX, 3)
                p.asm.syscall()
            p.asm.mov(RDI, RAX)  # second read returns remaining 2 bytes
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        result = run_traced(p.build().image, read_script=b"abcde")
        assert result.exit_status == 2

    def test_write_reports_full_length(self):
        p = ProgramBuilder("writes")
        with p.function("_start"):
            p.asm.mov(EAX, 1)
            p.asm.mov(RDX, 17)
            p.asm.syscall()
            p.asm.mov(RDI, RAX)
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        assert run_traced(p.build().image).exit_status == 17

    def test_trace_records_rip(self):
        p = ProgramBuilder("rip")
        with p.function("_start"):
            p.asm.mov(EAX, 39)
            p.asm.syscall()
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        prog = p.build()
        result = run_traced(prog.image)
        for record in result.records:
            assert prog.image.is_code_addr(record.rip - 2)  # rip after syscall insn


class TestElfDetails:
    def test_eh_frame_presence_flag(self):
        for flag in (True, False):
            p = ProgramBuilder("ehf", has_eh_frame=flag)
            with p.function("_start"):
                p.asm.ret()
            p.set_entry("_start")
            image = p.build().image
            assert image.has_eh_frame == flag
            assert (".eh_frame" in image.elf.section_names) == flag

    def test_section_names_exposed(self):
        p = ProgramBuilder("sections")
        p.add_bytes("blob", b"hi")
        with p.function("_start"):
            p.asm.ret()
        p.set_entry("_start")
        names = p.build().image.elf.section_names
        assert {".text", ".data", ".symtab", ".strtab", ".shstrtab"} <= names

    def test_locals_ordered_before_globals_in_symtab(self):
        from repro.elf import ElfImageSpec, ET_EXEC, SymbolSpec, read_elf, write_elf

        spec = ElfImageSpec(
            elf_type=ET_EXEC, text_vaddr=0x401000, text=b"\xc3",
            entry=0x401000,
            symbols=[
                SymbolSpec("g1", 0x401000, 1, "func", "global"),
                SymbolSpec("l1", 0x401000, 1, "func", "local"),
                SymbolSpec("g2", 0x401000, 1, "func", "global"),
            ],
        )
        elf = read_elf(write_elf(spec))
        bindings = [s.binding for s in elf.symbols]
        assert bindings == sorted(bindings, key=lambda b: b != "local")

    def test_data_segment_zero_fill_on_memsz(self):
        from repro.elf.reader import Segment

        seg = Segment(0x1000, b"ab", 6)
        assert seg.contains(0x1001)
        assert not seg.contains(0x1002)
