"""ELF writer/reader round-trip tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.elf import (
    ET_DYN,
    ET_EXEC,
    ElfImageSpec,
    RelocSpec,
    SymbolSpec,
    read_elf,
    write_elf,
)
from repro.errors import ElfError
from repro.loader import LibraryResolver, LoadedImage


def make_static_spec() -> ElfImageSpec:
    return ElfImageSpec(
        elf_type=ET_EXEC,
        text_vaddr=0x401000,
        text=b"\x0f\x05\xc3" + b"\x90" * 13,
        data_vaddr=0x404000,
        data=b"\x00" * 32,
        entry=0x401000,
        symbols=[
            SymbolSpec("_start", 0x401000, 3, "func", "global"),
            SymbolSpec("helper", 0x401003, 4, "func", "local"),
            SymbolSpec("buf", 0x404000, 32, "object", "global"),
        ],
    )


class TestStaticRoundTrip:
    def test_header_fields(self):
        elf = read_elf(write_elf(make_static_spec()))
        assert elf.elf_type == ET_EXEC
        assert elf.entry == 0x401000
        assert not elf.is_pic

    def test_segments(self):
        elf = read_elf(write_elf(make_static_spec()))
        assert len(elf.segments) == 2
        assert elf.text.vaddr == 0x401000
        assert elf.text.data[:3] == b"\x0f\x05\xc3"
        assert elf.data_segment.vaddr == 0x404000
        assert elf.data_segment.writable

    def test_symbols(self):
        elf = read_elf(write_elf(make_static_spec()))
        by_name = {sym.name: sym for sym in elf.symbols}
        assert by_name["_start"].value == 0x401000
        assert by_name["_start"].is_function
        assert by_name["helper"].binding == "local"
        assert by_name["buf"].kind == "object"

    def test_no_dynamic_info(self):
        elf = read_elf(write_elf(make_static_spec()))
        assert elf.needed == []
        assert elf.dynamic_symbols == []
        assert elf.relocations == {}

    def test_read_mem(self):
        elf = read_elf(write_elf(make_static_spec()))
        assert elf.read_mem(0x401000, 2) == b"\x0f\x05"
        with pytest.raises(ElfError):
            elf.read_mem(0x500000, 1)

    def test_misaligned_text_rejected(self):
        spec = make_static_spec()
        spec.text_vaddr = 0x401008
        with pytest.raises(ElfError):
            write_elf(spec)

    def test_overlapping_data_rejected(self):
        spec = make_static_spec()
        spec.data_vaddr = 0x401000
        with pytest.raises(ElfError):
            write_elf(spec)


def make_dynamic_spec() -> ElfImageSpec:
    return ElfImageSpec(
        elf_type=ET_DYN,
        text_vaddr=0x401000,
        text=b"\xff\x25\x00\x00\x00\x00" + b"\x90" * 10,
        data_vaddr=0x404000,
        data=b"\x00" * 64,
        entry=0x401006,
        needed=["libc.so"],
        symbols=[
            SymbolSpec("main", 0x401006, 10, "func", "global", exported=True),
            SymbolSpec("write", defined=False),
            SymbolSpec("read", defined=False),
        ],
        relocations=[
            RelocSpec(0x404000, "write"),
            RelocSpec(0x404008, "read"),
        ],
    )


class TestDynamicRoundTrip:
    def test_needed(self):
        elf = read_elf(write_elf(make_dynamic_spec()))
        assert elf.needed == ["libc.so"]
        assert elf.is_pic

    def test_imports_and_relocs(self):
        elf = read_elf(write_elf(make_dynamic_spec()))
        undefined = {sym.name for sym in elf.dynamic_symbols if not sym.defined}
        assert undefined == {"write", "read"}
        assert elf.relocations == {0x404000: "write", 0x404008: "read"}

    def test_exports(self):
        elf = read_elf(write_elf(make_dynamic_spec()))
        exported = {sym.name for sym in elf.dynamic_symbols if sym.defined}
        assert "main" in exported

    def test_soname(self):
        spec = make_dynamic_spec()
        spec.soname = "libfoo.so"
        elf = read_elf(write_elf(spec))
        assert elf.soname == "libfoo.so"

    def test_reloc_against_unknown_symbol_rejected(self):
        spec = make_dynamic_spec()
        spec.relocations.append(RelocSpec(0x404010, "ghost"))
        with pytest.raises(ElfError):
            write_elf(spec)


class TestLoadedImage:
    def test_static_classification(self):
        img = LoadedImage.from_bytes("a.out", write_elf(make_static_spec()))
        assert img.is_static_executable
        assert not img.is_dynamic_executable
        assert not img.is_shared_library

    def test_dynamic_classification(self):
        img = LoadedImage.from_bytes("b.out", write_elf(make_dynamic_spec()))
        assert img.is_dynamic_executable
        assert img.got_imports == {0x404000: "write", 0x404008: "read"}

    def test_library_classification(self):
        spec = make_dynamic_spec()
        spec.soname = "libx.so"
        img = LoadedImage.from_bytes("libx.so", write_elf(spec))
        assert img.is_shared_library

    def test_function_boundaries(self):
        img = LoadedImage.from_bytes("a.out", write_elf(make_static_spec()))
        bounds = img.function_boundaries
        assert (0x401000, 0x401003) in bounds
        assert img.function_containing(0x401004) == (0x401003, 0x401007)
        assert img.function_containing(0x500000) is None

    def test_symbol_addr(self):
        img = LoadedImage.from_bytes("a.out", write_elf(make_static_spec()))
        assert img.symbol_addr("helper") == 0x401003
        assert img.symbol_addr("buf") == 0x404000


class TestResolver:
    def _lib(self, soname: str, needed=()) -> bytes:
        return write_elf(ElfImageSpec(
            elf_type=ET_DYN,
            text_vaddr=0x7F0000000000 // 0x1000 * 0x1000,
            text=b"\xc3" + b"\x90" * 7,
            soname=soname,
            needed=list(needed),
            symbols=[SymbolSpec("f", 0x7F0000000000, 1, "func", "global", exported=True)],
        ))

    def test_closure_and_caching(self):
        resolver = LibraryResolver(library_map={
            "liba.so": self._lib("liba.so", ["libb.so"]),
            "libb.so": self._lib("libb.so"),
        })
        exe = LoadedImage.from_bytes("app", write_elf(ElfImageSpec(
            elf_type=ET_DYN, text_vaddr=0x401000, text=b"\xc3",
            entry=0x401000, needed=["liba.so"],
            symbols=[SymbolSpec("x", defined=False)],
        )))
        closure = resolver.dependency_closure(exe)
        assert [lib.name for lib in closure] == ["liba.so", "libb.so"]
        assert resolver.resolve("liba.so") is closure[0]  # cached

    def test_topological_order_leaves_first(self):
        resolver = LibraryResolver(library_map={
            "liba.so": self._lib("liba.so", ["libb.so", "libc.so"]),
            "libb.so": self._lib("libb.so", ["libc.so"]),
            "libc.so": self._lib("libc.so"),
        })
        exe = LoadedImage.from_bytes("app", write_elf(ElfImageSpec(
            elf_type=ET_DYN, text_vaddr=0x401000, text=b"\xc3",
            entry=0x401000, needed=["liba.so"],
            symbols=[SymbolSpec("x", defined=False)],
        )))
        order = [lib.name for lib in resolver.topological_order(exe)]
        assert order.index("libc.so") < order.index("libb.so") < order.index("liba.so")

    def test_missing_library(self):
        from repro.errors import LoaderError
        resolver = LibraryResolver(library_map={})
        exe = LoadedImage.from_bytes("app", write_elf(ElfImageSpec(
            elf_type=ET_DYN, text_vaddr=0x401000, text=b"\xc3",
            entry=0x401000, needed=["nope.so"],
            symbols=[SymbolSpec("x", defined=False)],
        )))
        with pytest.raises(LoaderError):
            resolver.dependency_closure(exe)


class TestPropertyElf:
    @settings(max_examples=50, deadline=None)
    @given(
        text=st.binary(min_size=1, max_size=512),
        data=st.binary(min_size=0, max_size=256),
        nsyms=st.integers(0, 10),
    )
    def test_arbitrary_payload_roundtrip(self, text, data, nsyms):
        symbols = [
            SymbolSpec(f"f{i}", 0x401000 + i, 1, "func", "global")
            for i in range(nsyms)
        ]
        spec = ElfImageSpec(
            elf_type=ET_EXEC,
            text_vaddr=0x401000,
            text=text,
            data_vaddr=0x500000 if data else 0,
            data=data,
            entry=0x401000,
            symbols=symbols,
        )
        elf = read_elf(write_elf(spec))
        assert elf.text.data == text
        if data:
            assert elf.data_segment.data == data
        assert len(elf.symbols) == nsyms
