"""The evaluation subsystem (`repro.eval`): ground truth, scoring,
rendering, trajectory gating, and the `bside eval` CLI."""

from __future__ import annotations

import json
import os

import pytest

from repro.baselines import ChestnutAnalyzer
from repro.cli import main as cli_main
from repro.core.artifacts import ArtifactStore
from repro.core.fleet import FleetAnalyzer
from repro.corpus import build_app, make_debian_corpus
from repro.eval import (
    ALL_TOOLS,
    AppEval,
    AppToolResult,
    EvalConfig,
    EvalReport,
    GroundTruthBuilder,
    gate_accuracy,
    parse_tools,
    render_results_markdown,
    run_eval,
)
from repro.metrics import Score
from repro.perf import ACCURACY_WORKLOAD, load_trajectory

SCALE = 0.05
SEED = 42


@pytest.fixture(scope="module")
def small_eval() -> EvalReport:
    """One small full evaluation, shared across rendering tests."""
    return run_eval(EvalConfig(scale=SCALE, seed=SEED))


# ----------------------------------------------------------------------
# Ground truth
# ----------------------------------------------------------------------


class TestGroundTruthCaching:
    def test_second_run_performs_zero_emulation(self, tmp_path):
        bundle = build_app("sqlite")
        store = ArtifactStore(str(tmp_path))
        cold = GroundTruthBuilder(store=store)
        first = cold.ground_truth(
            bundle.program.image, bundle.suite, bundle.resolver,
            extra_images=bundle.module_images,
        )
        assert not first.from_cache
        assert first.runs == len(bundle.suite)
        assert first.steps > 0
        assert cold.emulated_runs == len(bundle.suite)

        warm = GroundTruthBuilder(store=store)
        second = warm.ground_truth(
            bundle.program.image, bundle.suite, bundle.resolver,
            extra_images=bundle.module_images,
        )
        assert second.from_cache
        assert second.syscalls == first.syscalls
        assert (second.runs, second.steps) == (0, 0)
        assert warm.emulated_runs == 0 and warm.emulated_steps == 0
        assert store.counters("gtruth")["hits"] == 1

    def test_truth_matches_spec_runtime_syscalls(self):
        bundle = build_app("redis")
        truth = GroundTruthBuilder().ground_truth(
            bundle.program.image, bundle.suite, bundle.resolver,
            extra_images=bundle.module_images,
        )
        assert truth.syscalls == bundle.expected_runtime_syscalls()

    def test_changed_suite_invalidates(self, tmp_path):
        bundle = build_app("memcached")
        store = ArtifactStore(str(tmp_path))
        builder = GroundTruthBuilder(store=store)
        builder.ground_truth(
            bundle.program.image, bundle.suite, bundle.resolver,
        )
        # A shrunk suite is a different vector set: it must re-emulate
        # (and observe fewer syscalls), not serve the full-suite union.
        partial = builder.ground_truth(
            bundle.program.image, bundle.suite[:1], bundle.resolver,
        )
        assert not partial.from_cache
        full = bundle.expected_runtime_syscalls()
        assert partial.syscalls < full

    def test_uncacheable_without_resolver_closure(self, tmp_path):
        bundle = build_app("nginx")  # dynamic: needs libc via resolver
        store = ArtifactStore(str(tmp_path))
        builder = GroundTruthBuilder(store=store)
        fingerprint = builder.suite_fingerprint(bundle.suite)
        assert builder._dep_hashes(bundle.program.image, None, []) is None
        assert fingerprint != builder.suite_fingerprint(bundle.suite[:1])


# ----------------------------------------------------------------------
# Aggregation math
# ----------------------------------------------------------------------


def _synthetic_report() -> EvalReport:
    report = EvalReport(scale=0.1, seed=7, tools=("b-side", "chestnut"))
    scores = {
        "a": {
            "b-side": Score(8, 2, 0),     # P=0.8  R=1.0
            "chestnut": Score(6, 14, 2),  # P=0.3  R=0.75
        },
        "b": {
            "b-side": Score(9, 1, 0),     # P=0.9  R=1.0
            "chestnut": None,             # failed
        },
    }
    for app, per_tool in scores.items():
        app_eval = AppEval(app=app, ground_truth=10)
        for tool, s in per_tool.items():
            app_eval.results[tool] = AppToolResult(
                tool=tool,
                success=s is not None,
                failure_stage=None if s is not None else "binalyzer",
                policy_size=(
                    s.true_positives + s.false_positives
                    if s is not None else 0
                ),
                score=s,
            )
        report.apps.append(app_eval)
    return report


class TestAggregation:
    def test_means_over_completed_apps_only(self):
        agg = _synthetic_report().aggregates()
        bside = agg["b-side"]
        assert bside["completed_apps"] == 2
        assert bside["precision"] == round((0.8 + 0.9) / 2, 4)
        assert bside["recall"] == 1.0
        assert bside["min_recall"] == 1.0
        assert bside["valid_apps"] == 2
        assert bside["avg_policy"] == 10.0
        chestnut = agg["chestnut"]
        assert chestnut["completed_apps"] == 1  # the failure is excluded
        assert chestnut["precision"] == 0.3
        assert chestnut["min_recall"] == 0.75
        assert chestnut["valid_apps"] == 0

    def test_empty_tool_aggregates_are_zero(self):
        report = EvalReport(scale=1.0, seed=1, tools=("sysfilter",))
        agg = report.aggregates()["sysfilter"]
        assert agg["completed_apps"] == 0
        assert agg["f1"] == 0.0 and agg["min_recall"] == 0.0


# ----------------------------------------------------------------------
# Rendering stability
# ----------------------------------------------------------------------


class TestRendering:
    def test_deterministic_json_across_runs(self, small_eval):
        again = run_eval(EvalConfig(scale=SCALE, seed=SEED))
        assert (
            small_eval.to_json(include_runtime=False)
            == again.to_json(include_runtime=False)
        )
        assert small_eval.to_markdown() == again.to_markdown()
        assert small_eval.to_text() == again.to_text()

    def test_runtime_fields_are_separable(self, small_eval):
        doc = json.loads(small_eval.to_json(include_runtime=False))
        assert "seconds" not in doc
        assert "seconds" not in doc["apps"][0]["tools"]["b-side"]
        full = json.loads(small_eval.to_json())
        assert "seconds" in full and "emulated_runs" in full

    def test_results_table_round_trips_through_record(self, small_eval):
        # The README drift check renders the committed trajectory entry;
        # it must equal what the live report embeds.
        record = small_eval.to_record()
        assert small_eval.results_table() == render_results_markdown(record)
        # JSON round-trip (what the trajectory file actually stores)
        reparsed = json.loads(json.dumps(record))
        assert render_results_markdown(reparsed) == small_eval.results_table()

    def test_markdown_contains_all_layouts(self, small_eval):
        md = small_eval.to_markdown()
        assert "paper Table 1" in md and "paper Table 2" in md
        assert "| **b-side** |" in md
        for tool in ALL_TOOLS:
            assert tool in md


# ----------------------------------------------------------------------
# The pinned small-scale evaluation (acceptance shape)
# ----------------------------------------------------------------------


class TestPinnedSmallScaleEval:
    def test_bside_recall_is_perfect_on_completed_apps(self, small_eval):
        agg = small_eval.aggregates()["b-side"]
        assert agg["completed_apps"] == 6
        assert agg["min_recall"] == 1.0
        assert agg["valid_apps"] == 6

    def test_bside_f1_beats_every_baseline(self, small_eval):
        agg = small_eval.aggregates()
        for tool in ("chestnut", "sysfilter", "naive"):
            assert agg["b-side"]["f1"] >= agg[tool]["f1"]

    def test_corpus_population_shape(self, small_eval):
        agg = small_eval.aggregates()
        assert small_eval.corpus_size > 0
        # B-Side completes most of the corpus; SysFilter's compatibility
        # wall keeps it far below; Chestnut's policies are the loosest.
        bside = agg["b-side"]
        assert bside["corpus_success"] / bside["corpus_total"] > 0.6
        sysfilter = agg["sysfilter"]
        assert sysfilter["corpus_success"] < bside["corpus_success"]
        assert (
            agg["chestnut"]["corpus_avg_syscalls"]
            > bside["corpus_avg_syscalls"]
        )

    def test_failure_modes_recorded(self, small_eval):
        assert small_eval.corpus["sysfilter"].failure_stages.get(
            "compatibility", 0,
        ) > 0

    def test_warm_rerun_does_zero_emulation(self, tmp_path):
        cache = str(tmp_path / "cache")
        cold = run_eval(EvalConfig(
            scale=SCALE, seed=SEED, cache_dir=cache, include_corpus=False,
        ))
        assert cold.emulated_runs > 0
        warm = run_eval(EvalConfig(
            scale=SCALE, seed=SEED, cache_dir=cache, include_corpus=False,
        ))
        assert warm.emulated_runs == 0 and warm.emulated_steps == 0
        assert all(app.gtruth_cached for app in warm.apps)
        assert (
            cold.to_json(include_runtime=False)
            == warm.to_json(include_runtime=False)
        )


# ----------------------------------------------------------------------
# The accuracy gate
# ----------------------------------------------------------------------


def _record(bside_f1=0.84, bside_recall=1.0, min_recall=1.0,
            baseline_f1=0.68) -> dict:
    return {
        "scale": 0.2, "seed": 42, "apps": 6, "corpus_binaries": 111,
        "tools": {
            "b-side": {
                "apps": 6, "completed_apps": 6, "valid_apps": 6,
                "precision": 0.73, "recall": bside_recall,
                "f1": bside_f1, "min_recall": min_recall,
                "avg_policy": 81.0,
            },
            "sysfilter": {
                "apps": 6, "completed_apps": 6, "valid_apps": 0,
                "precision": 0.56, "recall": 0.88,
                "f1": baseline_f1, "min_recall": 0.79,
                "avg_policy": 93.0,
            },
        },
    }


class TestAccuracyGate:
    def _trajectory(self, record=None):
        from repro.perf import Trajectory

        trajectory = Trajectory(workload=ACCURACY_WORKLOAD)
        if record is not None:
            trajectory.append(record, label="base", role="accuracy")
        return trajectory

    def test_pass_path(self):
        result = gate_accuracy(_record(), self._trajectory(_record()))
        assert result.ok and not result.problems
        assert result.baseline_label == "base"

    def test_validity_violation_fails(self):
        result = gate_accuracy(
            _record(min_recall=0.98), self._trajectory(_record()),
        )
        assert not result.ok
        assert any("validity" in p for p in result.problems)

    def test_recall_drop_below_recorded_baseline_fails(self):
        result = gate_accuracy(
            _record(bside_recall=0.99, min_recall=1.0),
            self._trajectory(_record(bside_recall=1.0)),
        )
        assert not result.ok
        assert any("recall regression" in p for p in result.problems)

    def test_recall_slack_tolerates_small_drop(self):
        result = gate_accuracy(
            _record(bside_recall=0.99),
            self._trajectory(_record(bside_recall=1.0)),
            recall_slack=0.02,
        )
        assert result.ok

    def test_baseline_beating_bside_f1_fails(self):
        result = gate_accuracy(
            _record(bside_f1=0.60, baseline_f1=0.68),
            self._trajectory(_record()),
        )
        assert not result.ok
        assert any("ordering violation" in p for p in result.problems)

    def test_empty_trajectory_fails_unless_seeding(self):
        result = gate_accuracy(_record(), self._trajectory())
        assert not result.ok
        seeded = gate_accuracy(
            _record(), self._trajectory(), require_baseline=False,
        )
        assert seeded.ok

    def test_record_without_bside_fails(self):
        record = _record()
        del record["tools"]["b-side"]
        result = gate_accuracy(record, self._trajectory(_record()))
        assert not result.ok

    @staticmethod
    def _with_sig(record, precision_unfiltered=0.70, recall_unfiltered=1.0):
        record["tools"]["b-side"]["sig_filter"] = {
            "precision_unfiltered": precision_unfiltered,
            "recall_unfiltered": recall_unfiltered,
            "f1_unfiltered": 0.82, "min_recall_unfiltered": 1.0,
            "avg_policy_unfiltered": 88.0,
            "precision_gained": round(
                record["tools"]["b-side"]["precision"] - precision_unfiltered,
                4,
            ),
        }
        return record

    def test_refinement_ablation_passes_when_precision_positive(self):
        result = gate_accuracy(
            self._with_sig(_record()), self._trajectory(_record()),
            require_sig_ablation=True,
        )
        assert result.ok and not result.problems

    def test_refinement_precision_regression_fails(self):
        # Filtered precision (0.73) below the unfiltered config's.
        result = gate_accuracy(
            self._with_sig(_record(), precision_unfiltered=0.80),
            self._trajectory(_record()),
        )
        assert not result.ok
        assert any("refinement regression" in p for p in result.problems)

    def test_refinement_recall_must_be_exactly_one(self):
        result = gate_accuracy(
            self._with_sig(_record(bside_recall=0.995)),
            self._trajectory(_record(bside_recall=0.995)),
        )
        assert not result.ok
        assert any("refinement recall" in p for p in result.problems)

    def test_missing_ablation_section_fails_only_when_required(self):
        lenient = gate_accuracy(_record(), self._trajectory(_record()))
        assert lenient.ok
        strict = gate_accuracy(
            _record(), self._trajectory(_record()),
            require_sig_ablation=True,
        )
        assert not strict.ok
        assert any("sig_filter" in p for p in strict.problems)

    def test_floor_only_compares_same_workload_entries(self):
        # A full-scale (or apps-only) record in the trajectory must not
        # become the CI workload's baseline: only same-(scale, seed)
        # entries are comparable.
        trajectory = self._trajectory()
        other = _record(bside_recall=1.0)
        other["scale"], other["seed"] = 1.0, 2024
        trajectory.append(other, label="full-scale", role="accuracy")
        result = gate_accuracy(_record(bside_recall=0.99), trajectory)
        assert not result.ok
        assert any("no comparable baseline" in p for p in result.problems)
        # Shape-incomplete records at the right workload are skipped
        # too: an --apps-only run (no corpus) or a --tools subset
        # without b-side cannot anchor the floor or the README table.
        apps_only = _record(bside_recall=1.0)
        apps_only["corpus_binaries"] = 0
        trajectory.append(apps_only, label="apps-only", role="accuracy")
        no_bside = _record()
        del no_bside["tools"]["b-side"]
        trajectory.append(no_bside, label="no-bside", role="accuracy")
        still = gate_accuracy(_record(bside_recall=0.99), trajectory)
        assert not still.ok
        # With a matching entry present, the incomparable ones are
        # ignored and the latest *comparable* entry is the floor.
        trajectory.append(
            _record(bside_recall=0.99), label="comparable", role="accuracy",
        )
        ok = gate_accuracy(_record(bside_recall=0.99), trajectory)
        assert ok.ok and ok.baseline_label == "comparable"

    def test_committed_trajectory_gates_clean(self):
        # The committed baseline must accept its own numbers: the
        # repo-root trajectory's latest entry gated against itself.
        trajectory = load_trajectory(
            os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_eval_accuracy.json"),
            workload=ACCURACY_WORKLOAD,
        )
        assert trajectory.baseline is not None
        assert gate_accuracy(trajectory.baseline, trajectory).ok


class TestTrajectoryWorkloadValidation:
    def test_mismatch_raises_and_none_accepts_any(self, tmp_path):
        from repro.perf import Trajectory, save_trajectory

        path = str(tmp_path / "t.json")
        save_trajectory(Trajectory(workload=ACCURACY_WORKLOAD), path)
        with pytest.raises(ValueError, match="workload"):
            load_trajectory(path, workload="cold-kernel-v1")
        assert load_trajectory(path).workload == ACCURACY_WORKLOAD
        loaded = load_trajectory(path, workload=ACCURACY_WORKLOAD)
        assert loaded.workload == ACCURACY_WORKLOAD

    def test_absent_file_takes_requested_workload(self, tmp_path):
        loaded = load_trajectory(
            str(tmp_path / "missing.json"), workload=ACCURACY_WORKLOAD,
        )
        assert loaded.workload == ACCURACY_WORKLOAD
        assert loaded.entries == []


# ----------------------------------------------------------------------
# Tool registry + fleet injection
# ----------------------------------------------------------------------


class TestToolsAndFleetInjection:
    def test_parse_tools(self):
        assert parse_tools(None) == ALL_TOOLS
        assert parse_tools("naive, b-side") == ("b-side", "naive")
        with pytest.raises(ValueError):
            parse_tools("b-side,angr")

    def test_injected_analyzer_sweeps_through_fleet(self):
        corpus = make_debian_corpus(scale=SCALE, seed=SEED)
        resolver = corpus.make_resolver()
        fleet = FleetAnalyzer(
            resolver=resolver, analyzer=ChestnutAnalyzer(resolver),
        )
        assert fleet.interfaces is None
        images = [b.image for b in corpus.binaries[:6]]
        assert fleet.warm_interfaces(images) == 0
        report = fleet.analyze_images(images)
        assert len(report.entries) == len(images)
        direct = ChestnutAnalyzer(resolver)
        for image, entry in zip(images, report.entries):
            assert entry.report.syscalls == direct.analyze(image).syscalls


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestEvalCli:
    def test_eval_json_and_trajectory_append(self, tmp_path, capsys):
        trajectory_path = str(tmp_path / "traj.json")
        status = cli_main([
            "eval", "--scale", str(SCALE), "--seed", str(SEED),
            "--json", "--trajectory", trajectory_path, "--label", "t1",
        ])
        assert status == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["aggregates"]["b-side"]["min_recall"] == 1.0
        trajectory = load_trajectory(
            trajectory_path, workload=ACCURACY_WORKLOAD,
        )
        assert trajectory.workload == ACCURACY_WORKLOAD
        assert [e["label"] for e in trajectory.entries] == ["t1"]
        # Append-only: a second run adds a second entry.
        assert cli_main([
            "eval", "--scale", str(SCALE), "--seed", str(SEED),
            "--json", "--trajectory", trajectory_path, "--label", "t2",
            "--apps-only",
        ]) == 0
        capsys.readouterr()
        entries = load_trajectory(trajectory_path).entries
        assert [e["label"] for e in entries] == ["t1", "t2"]
        assert entries[1]["corpus_binaries"] == 0

    def test_eval_no_record_and_markdown(self, tmp_path, capsys):
        trajectory_path = str(tmp_path / "traj.json")
        status = cli_main([
            "eval", "--scale", str(SCALE), "--seed", str(SEED),
            "--markdown", "--apps-only",
            "--trajectory", trajectory_path, "--no-record",
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "paper Table 1" in out
        assert not os.path.exists(trajectory_path)

    def test_eval_rejects_unknown_tool(self, capsys):
        assert cli_main(["eval", "--tools", "ghidra"]) == 2
        assert "unknown evaluation tool" in capsys.readouterr().err

    def test_eval_refuses_wrong_workload_trajectory(self, tmp_path, capsys):
        wrong = tmp_path / "cold.json"
        wrong.write_text(json.dumps({
            "schema": 1, "workload": "cold-kernel-v1", "entries": [],
        }))
        status = cli_main([
            "eval", "--scale", str(SCALE), "--seed", str(SEED),
            "--apps-only", "--trajectory", str(wrong),
        ])
        assert status == 2
        assert "workload" in capsys.readouterr().err

    def test_invalid_run_exits_1_and_is_not_recorded(
        self, tmp_path, capsys, monkeypatch,
    ):
        # A B-Side false negative (or zero completed apps) must exit 1
        # and must NOT append to the trajectory: the latest comparable
        # entry is the gate's recall floor, and a regression must not
        # become its own baseline.
        import repro.eval as eval_module

        def fake_run_eval(config):
            report = _synthetic_report()
            fn_score = Score(9, 0, 1)  # recall 0.9: a false negative
            report.apps[0].results["b-side"].score = fn_score
            return report

        monkeypatch.setattr(eval_module, "run_eval", fake_run_eval)
        trajectory_path = str(tmp_path / "traj.json")
        status = cli_main([
            "eval", "--json", "--trajectory", trajectory_path,
        ])
        assert status == 1
        assert "validity violation" in capsys.readouterr().err
        assert not os.path.exists(trajectory_path)

    def test_zero_completed_apps_exits_1(self, tmp_path, capsys, monkeypatch):
        import repro.eval as eval_module

        def fake_run_eval(config):
            report = _synthetic_report()
            for app in report.apps:
                result = app.results["b-side"]
                result.success = False
                result.failure_stage = "load"
                result.score = None
            return report

        monkeypatch.setattr(eval_module, "run_eval", fake_run_eval)
        trajectory_path = str(tmp_path / "traj.json")
        status = cli_main([
            "eval", "--json", "--trajectory", trajectory_path,
        ])
        assert status == 1
        assert not os.path.exists(trajectory_path)
