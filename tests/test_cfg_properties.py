"""CFG invariants as property tests over generated programs.

The invariants every downstream consumer (identification, phases,
baselines) silently relies on:

* blocks partition the decoded instruction stream (no overlap, no gap);
* every edge references existing blocks; predecessor and successor views
  mirror each other exactly;
* every block belongs to the function whose [entry, end) range covers it;
* active addresses taken are a subset of all addresses taken;
* reachability is monotone in the edge set.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg import (
    all_addresses_taken,
    build_cfg,
    reachable_blocks,
    resolve_indirect_active,
    resolve_indirect_all,
)
from repro.corpus import ProgramBuilder
from repro.x86 import EAX, Immediate, RAX, RDI, RSI


@st.composite
def _program(draw):
    """A random multi-function program with branches, calls, fptrs."""
    n_funcs = draw(st.integers(1, 4))
    ops_per_func = [draw(st.integers(1, 6)) for __ in range(n_funcs)]
    branchy = draw(st.lists(st.booleans(), min_size=n_funcs, max_size=n_funcs))
    take_addr = draw(st.lists(st.booleans(), min_size=n_funcs, max_size=n_funcs))
    return n_funcs, ops_per_func, branchy, take_addr


_COUNTER = [0]


def _build(spec):
    n_funcs, ops_per_func, branchy, take_addr = spec
    _COUNTER[0] += 1
    p = ProgramBuilder(f"cfgprop{_COUNTER[0]}")
    for i in range(n_funcs):
        with p.function(f"fn{i}"):
            for k in range(ops_per_func[i]):
                if branchy[i] and k == 0:
                    p.asm.cmp(RDI, k)
                    p.asm.jcc("e", f"fn{i}.l{k}")
                    p.asm.nop()
                    p.asm.label(f"fn{i}.l{k}")
                p.asm.mov(EAX, 39)
                p.asm.syscall()
            p.asm.ret()
    with p.function("_start"):
        for i in range(n_funcs):
            if take_addr[i]:
                p.asm.lea_rip(RSI, f"fn{i}")
                p.asm.call_reg(RSI)
            else:
                p.asm.call(f"fn{i}")
        p.asm.mov(EAX, 60)
        p.asm.syscall()
        p.asm.hlt()
    p.set_entry("_start")
    return p.build()


@settings(max_examples=80, deadline=None)
@given(spec=_program())
def test_blocks_partition_instruction_stream(spec):
    prog = _build(spec)
    cfg = build_cfg(prog.image)
    spans = sorted((b.addr, b.end) for b in cfg.blocks.values())
    # No overlap, no gap between consecutive blocks.
    for (a1, e1), (a2, __) in zip(spans, spans[1:]):
        assert e1 == a2, "blocks must tile the text segment"
    assert spans[0][0] == prog.image.text_base
    assert spans[-1][1] == prog.image.text_end


@settings(max_examples=80, deadline=None)
@given(spec=_program())
def test_edges_mirror_and_reference_blocks(spec):
    prog = _build(spec)
    cfg = build_cfg(prog.image)
    resolve_indirect_active(cfg, prog.image, [prog.image.entry])
    for addr in cfg.blocks:
        for edge in cfg.successors(addr):
            assert edge.src == addr
            assert edge.dst in cfg.blocks
            assert edge in cfg.predecessors(edge.dst)
        for edge in cfg.predecessors(addr):
            assert edge.dst == addr
            assert edge in cfg.successors(edge.src)


@settings(max_examples=80, deadline=None)
@given(spec=_program())
def test_blocks_assigned_to_covering_function(spec):
    """Blocks inside a function's extent belong to it; alignment-padding
    blocks in inter-function gaps attach to the preceding function."""
    prog = _build(spec)
    cfg = build_cfg(prog.image)
    starts = sorted(cfg.functions)
    for block in cfg.blocks.values():
        func = cfg.functions[block.function]
        assert func.entry <= block.addr
        later = [s for s in starts if s > func.entry]
        upper = later[0] if later else prog.image.text_end
        assert block.addr < upper
        if block.addr >= func.end:
            # Padding gap: must be pure nops and unreachable.
            assert all(i.mnemonic == "nop" for i in block.insns)


@settings(max_examples=60, deadline=None)
@given(spec=_program())
def test_active_subset_of_all_addresses_taken(spec):
    prog = _build(spec)
    cfg1 = build_cfg(prog.image)
    active, __ = resolve_indirect_active(cfg1, prog.image, [prog.image.entry])
    cfg2 = build_cfg(prog.image)
    everything = all_addresses_taken(cfg2, prog.image)
    assert active <= everything


@settings(max_examples=60, deadline=None)
@given(spec=_program())
def test_reachability_monotone_in_resolution(spec):
    """Resolving indirect branches can only grow the reachable set."""
    prog = _build(spec)
    cfg_bare = build_cfg(prog.image)
    bare = reachable_blocks(cfg_bare, [prog.image.entry])

    cfg_active = build_cfg(prog.image)
    resolve_indirect_active(cfg_active, prog.image, [prog.image.entry])
    active = reachable_blocks(cfg_active, [prog.image.entry])

    cfg_all = build_cfg(prog.image)
    resolve_indirect_all(cfg_all, prog.image)
    everything = reachable_blocks(cfg_all, [prog.image.entry])

    assert bare <= active <= everything
