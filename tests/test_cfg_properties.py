"""CFG invariants as property tests over generated programs.

The invariants every downstream consumer (identification, phases,
baselines) silently relies on:

* blocks partition the decoded instruction stream (no overlap, no gap);
* every edge references existing blocks; predecessor and successor views
  mirror each other exactly;
* every block belongs to the function whose [entry, end) range covers it;
* active addresses taken are a subset of all addresses taken;
* reachability is monotone in the edge set;
* the function partition is a total, non-overlapping cover of the text
  section, and per-function closure hashes are stable under edits to
  unrelated functions (the incremental cache's soundness argument).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg import (
    EDGE_ICALL,
    all_addresses_taken,
    build_cfg,
    reachable_blocks,
    resolve_indirect_active,
    resolve_indirect_all,
)
from repro.cfg.signatures import ARG_REG_NAMES, filter_targets
from repro.cfg.funccfg import scan_image
from repro.cfg.partition import FunctionPartition
from repro.corpus import ProgramBuilder
from repro.corpus.mutate import mutate_program
from repro.x86 import EAX, Immediate, RAX, RDI, RSI
from repro.x86.decoder import decode_all


@st.composite
def _program(draw):
    """A random multi-function program with branches, calls, fptrs."""
    n_funcs = draw(st.integers(1, 4))
    ops_per_func = [draw(st.integers(1, 6)) for __ in range(n_funcs)]
    branchy = draw(st.lists(st.booleans(), min_size=n_funcs, max_size=n_funcs))
    take_addr = draw(st.lists(st.booleans(), min_size=n_funcs, max_size=n_funcs))
    return n_funcs, ops_per_func, branchy, take_addr


_COUNTER = [0]


def _build(spec):
    n_funcs, ops_per_func, branchy, take_addr = spec
    _COUNTER[0] += 1
    p = ProgramBuilder(f"cfgprop{_COUNTER[0]}")
    for i in range(n_funcs):
        with p.function(f"fn{i}"):
            for k in range(ops_per_func[i]):
                if branchy[i] and k == 0:
                    p.asm.cmp(RDI, k)
                    p.asm.jcc("e", f"fn{i}.l{k}")
                    p.asm.nop()
                    p.asm.label(f"fn{i}.l{k}")
                p.asm.mov(EAX, 39)
                p.asm.syscall()
            p.asm.ret()
    with p.function("_start"):
        for i in range(n_funcs):
            if take_addr[i]:
                p.asm.lea_rip(RSI, f"fn{i}")
                p.asm.call_reg(RSI)
            else:
                p.asm.call(f"fn{i}")
        p.asm.mov(EAX, 60)
        p.asm.syscall()
        p.asm.hlt()
    p.set_entry("_start")
    return p.build()


@settings(max_examples=80, deadline=None)
@given(spec=_program())
def test_blocks_partition_instruction_stream(spec):
    prog = _build(spec)
    cfg = build_cfg(prog.image)
    spans = sorted((b.addr, b.end) for b in cfg.blocks.values())
    # No overlap, no gap between consecutive blocks.
    for (a1, e1), (a2, __) in zip(spans, spans[1:]):
        assert e1 == a2, "blocks must tile the text segment"
    assert spans[0][0] == prog.image.text_base
    assert spans[-1][1] == prog.image.text_end


@settings(max_examples=80, deadline=None)
@given(spec=_program())
def test_edges_mirror_and_reference_blocks(spec):
    prog = _build(spec)
    cfg = build_cfg(prog.image)
    resolve_indirect_active(cfg, prog.image, [prog.image.entry])
    for addr in cfg.blocks:
        for edge in cfg.successors(addr):
            assert edge.src == addr
            assert edge.dst in cfg.blocks
            assert edge in cfg.predecessors(edge.dst)
        for edge in cfg.predecessors(addr):
            assert edge.dst == addr
            assert edge in cfg.successors(edge.src)


@settings(max_examples=80, deadline=None)
@given(spec=_program())
def test_blocks_assigned_to_covering_function(spec):
    """Blocks inside a function's extent belong to it; alignment-padding
    blocks in inter-function gaps attach to the preceding function."""
    prog = _build(spec)
    cfg = build_cfg(prog.image)
    starts = sorted(cfg.functions)
    for block in cfg.blocks.values():
        func = cfg.functions[block.function]
        assert func.entry <= block.addr
        later = [s for s in starts if s > func.entry]
        upper = later[0] if later else prog.image.text_end
        assert block.addr < upper
        if block.addr >= func.end:
            # Padding gap: must be pure nops and unreachable.
            assert all(i.mnemonic == "nop" for i in block.insns)


@settings(max_examples=60, deadline=None)
@given(spec=_program())
def test_active_subset_of_all_addresses_taken(spec):
    prog = _build(spec)
    cfg1 = build_cfg(prog.image)
    active, __ = resolve_indirect_active(cfg1, prog.image, [prog.image.entry])
    cfg2 = build_cfg(prog.image)
    everything = all_addresses_taken(cfg2, prog.image)
    assert active <= everything


@settings(max_examples=60, deadline=None)
@given(spec=_program())
def test_reachability_monotone_in_resolution(spec):
    """Resolving indirect branches can only grow the reachable set."""
    prog = _build(spec)
    cfg_bare = build_cfg(prog.image)
    bare = reachable_blocks(cfg_bare, [prog.image.entry])

    cfg_active = build_cfg(prog.image)
    resolve_indirect_active(cfg_active, prog.image, [prog.image.entry])
    active = reachable_blocks(cfg_active, [prog.image.entry])

    cfg_all = build_cfg(prog.image)
    resolve_indirect_all(cfg_all, prog.image)
    everything = reachable_blocks(cfg_all, [prog.image.entry])

    assert bare <= active <= everything


def _scan(image):
    insns = decode_all(image.text_bytes, image.text_base)
    return scan_image(image, insns, {i.addr: i for i in insns})


@settings(max_examples=80, deadline=None)
@given(spec=_program())
def test_partition_is_total_nonoverlapping_cover(spec):
    """Function regions tile [text_base, text_end): no gap, no overlap."""
    prog = _build(spec)
    partition = FunctionPartition.from_image(prog.image)
    regions = list(partition)
    assert regions, "a non-empty text section yields at least one region"
    assert regions[0].start == prog.image.text_base
    assert regions[-1].end == prog.image.text_end
    for region, nxt in zip(regions, regions[1:]):
        assert region.start < region.end
        assert region.end == nxt.start, "regions must tile the text section"
    # region_containing agrees with the tiling for every decoded insn.
    for insn in decode_all(prog.image.text_bytes, prog.image.text_base):
        owner = partition.region_containing(insn.addr)
        assert owner is not None
        assert owner.start <= insn.addr < owner.end
    assert partition.region_containing(prog.image.text_base - 1) is None
    assert partition.region_containing(prog.image.text_end) is None


@settings(max_examples=40, deadline=None)
@given(spec=_program(), seed=st.integers(0, 2**16))
def test_closure_hash_stable_under_unrelated_edits(spec, seed):
    """Editing one function may only move the hashes of its dependency
    cone; every region outside the cone keeps its closure hash (so its
    cached funccfg product stays valid)."""
    prog = _build(spec)
    before = _scan(prog.image)
    mutated = mutate_program(prog.elf_bytes, prog.name, 1, seed=seed)
    after = _scan(mutated.image)
    assert sorted(before.regions) == sorted(after.regions)
    cone = FunctionPartition.dependency_cone(after.refs, set(mutated.changed))
    for start in after.regions:
        if start in cone:
            continue
        assert after.closure_hashes[start] == before.closure_hashes[start], (
            f"unrelated region {start:#x} changed its closure hash"
        )
    for start in mutated.changed:
        assert after.body_hashes[start] != before.body_hashes[start]
        assert after.closure_hashes[start] != before.closure_hashes[start]


@settings(max_examples=40, deadline=None)
@given(spec=_program(), seed=st.integers(0, 2**16))
def test_funcid_hash_moves_exactly_for_identification_cone(spec, seed):
    """The combined callee-closure + caller-cone key moves for exactly
    the identification cone (callers* and callees* of the change); every
    region outside it keeps its funcid hash, so its cached
    identification products stay valid."""
    prog = _build(spec)
    before = _scan(prog.image)
    mutated = mutate_program(prog.elf_bytes, prog.name, 1, seed=seed)
    after = _scan(mutated.image)
    cone = FunctionPartition.identification_cone(
        after.refs, set(mutated.changed)
    )
    for start in after.regions:
        if start in cone:
            assert after.funcid_hashes[start] != before.funcid_hashes[start], (
                f"cone region {start:#x} kept its funcid hash"
            )
        else:
            assert after.funcid_hashes[start] == before.funcid_hashes[start], (
                f"unrelated region {start:#x} changed its funcid hash"
            )
            assert after.caller_hashes[start] == before.caller_hashes[start]


_signature = st.one_of(
    st.none(),
    st.sets(st.sampled_from(sorted(ARG_REG_NAMES))).map(frozenset),
)
_targets = st.lists(st.integers(0, 40), unique=True)


@settings(max_examples=200, deadline=None)
@given(
    caller=_signature,
    targets=_targets,
    extra=_targets,
    sigs=st.dictionaries(st.integers(0, 40), _signature),
)
def test_signature_filter_monotone_and_deterministic(caller, targets, extra, sigs):
    """Adding candidates never removes a previously kept target, the
    filter is a pure function of its inputs, and unknown signatures on
    either side always fall back to keeping the target."""
    kept = filter_targets(caller, targets, sigs)
    assert kept == filter_targets(caller, targets, sigs)
    # Order-preserving subsequence of the input.
    assert [t for t in targets if t in set(kept)] == kept
    grown = targets + [t for t in extra if t not in targets]
    kept_grown = set(filter_targets(caller, grown, sigs))
    assert set(kept) <= kept_grown
    if caller is None:
        assert kept == list(targets)
    for t in targets:
        if sigs.get(t) is None:  # missing or explicitly unknown callee
            assert t in kept


@settings(max_examples=40, deadline=None)
@given(spec=_program())
def test_signature_resolution_yields_icall_edge_subset(spec):
    """With the signature filter on, every site's resolved target set is
    a subset of the unfiltered resolution's, on the same program."""
    prog = _build(spec)
    unfiltered = build_cfg(prog.image)
    resolve_indirect_active(unfiltered, prog.image, [prog.image.entry])
    filtered = build_cfg(prog.image)
    resolve_indirect_active(
        filtered, prog.image, [prog.image.entry], signatures=True
    )
    for site in unfiltered.indirect_sites:
        u = {e.dst for e in unfiltered.successors(site, kinds=(EDGE_ICALL,))}
        f = {e.dst for e in filtered.successors(site, kinds=(EDGE_ICALL,))}
        assert f <= u
