"""Pass-pipeline equivalence and pipeline-configuration tests.

``tests/golden/pipeline_reports.json`` holds the deterministic
(``include_runtime=False``) reports for the six §5.1 validation apps
under the default pipeline and every ablation config (regenerated when
the corpus itself changes, never to paper over an analyzer change).
The pass-pipeline analyzer must reproduce every one of them byte for
byte: refactors are pure re-architectures, never behaviour changes.
"""

import json
import os

import pytest

from repro.core import (
    AnalysisBudget,
    AnalysisContext,
    AnalysisReport,
    BSideAnalyzer,
    PassPipeline,
    PipelineConfig,
    build_pipeline,
)
from repro.corpus import APP_NAMES, build_app

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "pipeline_reports.json")

#: analyzer kwargs per golden config key
ABLATION_CONFIGS = {
    "default": {},
    "no-wrappers": {"detect_wrappers": False},
    "no-directed": {"directed_search": False},
    "all-addresses-taken": {"use_active_addresses_taken": False},
    "no-signatures": {"indirect_signatures": False},
}


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as f:
        return json.load(f)


@pytest.fixture(scope="module")
def bundles():
    return {name: build_app(name) for name in APP_NAMES}


class TestSeedEquivalence:
    @pytest.mark.parametrize("config_name", sorted(ABLATION_CONFIGS))
    @pytest.mark.parametrize("app", APP_NAMES)
    def test_byte_identical_to_seed(self, golden, bundles, config_name, app):
        bundle = bundles[app]
        analyzer = BSideAnalyzer(
            resolver=bundle.resolver,
            budget=AnalysisBudget.generous(),
            **ABLATION_CONFIGS[config_name],
        )
        report = analyzer.analyze(
            bundle.program.image, modules=bundle.module_images,
        )
        assert report.to_json(include_runtime=False) == \
            golden[config_name][app]

    def test_report_json_round_trip(self, golden, bundles):
        bundle = bundles[APP_NAMES[0]]
        analyzer = BSideAnalyzer(
            resolver=bundle.resolver, budget=AnalysisBudget.generous(),
        )
        report = analyzer.analyze(
            bundle.program.image, modules=bundle.module_images,
        )
        back = AnalysisReport.from_json(report.to_json())
        assert back.to_json() == report.to_json()
        assert back.to_json(include_runtime=False) == \
            report.to_json(include_runtime=False)
        assert back.syscalls == report.syscalls


class TestOptimizedKernelEquivalence:
    """PR 4's cold-kernel rewrite must be invisible in the reports.

    The table-driven decoder, indexed CFG, bitset reachability, and
    symex dispatch fast path replace the seed kernel's hot loops; these
    tests pin the whole optimized kernel — not just its parts — to the
    seed goldens, including on a *re*-analysis (warm per-process caches:
    interned registers, interface store, CFG indices)."""

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_optimized_kernel_byte_identical_and_stable(self, golden,
                                                        bundles, app):
        bundle = bundles[app]
        analyzer = BSideAnalyzer(
            resolver=bundle.resolver, budget=AnalysisBudget.generous(),
        )
        first = analyzer.analyze(
            bundle.program.image, modules=bundle.module_images,
        )
        again = analyzer.analyze(
            bundle.program.image, modules=bundle.module_images,
        )
        assert first.to_json(include_runtime=False) == golden["default"][app]
        assert again.to_json(include_runtime=False) == golden["default"][app]

    def test_fast_paths_are_active(self, bundles):
        """The equivalence above must actually exercise the new kernel."""
        from repro.cfg.builder import build_cfg
        from repro.symex.engine import _HANDLERS, ExecContext
        from repro.x86.decoder import _DISPATCH

        assert any(_DISPATCH)  # table-driven decoder is in place
        assert "mov" in _HANDLERS and "je" in _HANDLERS
        bundle = bundles[APP_NAMES[0]]
        cfg = build_cfg(bundle.program.image)
        ctx = ExecContext.for_image(cfg, bundle.program.image)
        assert ctx.insn_at is cfg.index.insn_at  # shared, not rebuilt


class TestPipelineShape:
    def test_default_pass_order(self):
        pipeline = build_pipeline(PipelineConfig())
        assert pipeline.pass_names == [
            "cfg-recovery", "reachability", "site-discovery",
            "wrapper-detection", "identification", "external-calls",
        ]

    def test_wrapper_ablation_drops_the_pass(self):
        pipeline = build_pipeline(PipelineConfig(detect_wrappers=False))
        assert "wrapper-detection" not in pipeline.pass_names

    def test_stage_stats_recorded_per_pass(self, bundles):
        bundle = bundles[APP_NAMES[0]]
        analyzer = BSideAnalyzer(
            resolver=bundle.resolver, budget=AnalysisBudget.generous(),
        )
        report = analyzer.analyze(bundle.program.image)
        for name in analyzer.pipeline.pass_names:
            assert name in report.stages, name
        assert report.stages["cfg-recovery"].units > 0
        assert report.stages["reachability"].units > 0
        # identification units snapshot bbs at end of that pass; the
        # external-calls pass may add more afterwards
        assert report.stages["identification"].units <= report.bbs_explored

    def test_fingerprint_sensitive_to_flags_and_budget(self):
        base = PipelineConfig()
        budget = AnalysisBudget()
        assert base.fingerprint(budget) == PipelineConfig().fingerprint(budget)
        assert base.fingerprint(budget) != \
            PipelineConfig(directed_search=False).fingerprint(budget)
        assert base.fingerprint(budget) != \
            PipelineConfig(detect_wrappers=False).fingerprint(budget)
        assert base.fingerprint(budget) != \
            PipelineConfig(indirect_signatures=False).fingerprint(budget)
        assert base.fingerprint(budget) != \
            base.fingerprint(AnalysisBudget.generous())

    def test_custom_pipeline_runs_over_shared_context(self):
        """A pipeline is just passes over a context: a truncated config
        (CFG + reachability only) runs and produces no sites."""
        from repro.corpus.progbuilder import ProgramBuilder
        from repro.x86 import EAX

        p = ProgramBuilder("app")
        with p.function("_start"):
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        image = p.build().image
        config = PipelineConfig(passes=("cfg-recovery", "reachability"))
        ctx = AnalysisContext(
            image=image, roots=[image.entry],
            budget=AnalysisBudget.generous(), config=config,
        )
        build_pipeline(config).run(ctx)
        assert ctx.cfg is not None
        assert ctx.reachable
        assert ctx.sites == []
