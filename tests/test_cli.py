"""CLI tests: every subcommand exercised end to end on real files."""

import json
import os

import pytest

from repro.cli import main
from repro.corpus import ProgramBuilder, build_app
from repro.x86 import EAX, RDI


@pytest.fixture(scope="module")
def demo_binary(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("cli")
    p = ProgramBuilder("demo")
    with p.function("_start"):
        p.asm.mov(EAX, 39)
        p.asm.syscall()
        p.asm.mov(EAX, 60)
        p.asm.xor(RDI, RDI)
        p.asm.syscall()
        p.asm.hlt()
    p.set_entry("_start")
    prog = p.build()
    path = str(tmp / "demo")
    prog.save(path)
    return path


@pytest.fixture(scope="module")
def dynamic_binary(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("cli-dyn")
    bundle = build_app("sqlite")
    binpath = str(tmp / "sqlite-like")
    bundle.program.save(binpath)
    libdir = str(tmp / "libs")
    os.makedirs(libdir, exist_ok=True)
    from repro.corpus import build_libc

    libc = build_libc()
    libc.save(os.path.join(libdir, "libc.so"))
    return binpath, libdir


class TestAnalyze:
    def test_plain_output(self, demo_binary, capsys):
        assert main(["analyze", demo_binary]) == 0
        out = capsys.readouterr().out
        assert "getpid" in out and "exit" in out

    def test_json_output(self, demo_binary, capsys):
        assert main(["analyze", demo_binary, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["success"] is True
        assert 39 in doc["syscalls"] and 60 in doc["syscalls"]

    def test_dynamic_with_libdir(self, dynamic_binary, capsys):
        binpath, libdir = dynamic_binary
        assert main(["analyze", binpath, "--libdir", libdir]) == 0
        out = capsys.readouterr().out
        assert "syscalls" in out

    def test_missing_file(self, capsys):
        assert main(["analyze", "/nonexistent/bin"]) == 2

    def test_incremental_plain_output(self, demo_binary, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["analyze", demo_binary, "--cache-dir", cache,
                     "--incremental"]) == 0
        out = capsys.readouterr().out
        assert "incremental: re-analyzed 1 of 1 functions" in out
        assert "incremental: re-executed 2 of 2 identification sites" in out

    def test_incremental_json_output(self, demo_binary, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["analyze", demo_binary, "--json", "--cache-dir", cache,
                     "--incremental"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["success"] is True
        assert doc["functions_total"] == 1
        assert doc["functions_reanalyzed"] == 1
        assert doc["sites_total"] == 2
        assert doc["sites_reexecuted"] == 2

    def test_cold_output_has_no_function_counters(self, demo_binary, capsys):
        assert main(["analyze", demo_binary, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "functions_total" not in doc
        assert "sites_total" not in doc


class TestOtherCommands:
    def test_phases(self, demo_binary, capsys):
        assert main(["phases", demo_binary]) == 0
        assert "phases over" in capsys.readouterr().out

    def test_filter(self, demo_binary, capsys):
        assert main(["filter", demo_binary]) == 0
        out = capsys.readouterr().out
        assert "jeq" in out and "ret kill" in out

    def test_interface(self, tmp_path, capsys):
        from repro.corpus import build_libc

        libc = build_libc()
        path = str(tmp_path / "libc.so")
        libc.save(path)
        assert main(["interface", path]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["library"] == "libc.so"
        assert "syscall" in doc["exports"]

    def test_trace(self, demo_binary, capsys):
        assert main(["trace", demo_binary]) == 0
        out = capsys.readouterr().out
        assert "getpid" in out and "exited with 0" in out

    def test_corpus_generate(self, tmp_path, capsys):
        outdir = str(tmp_path / "corpus")
        assert main(["corpus", "generate", outdir, "--scale", "0.02"]) == 0
        assert os.path.isdir(os.path.join(outdir, "bin"))
        assert os.path.isdir(os.path.join(outdir, "lib"))
        assert os.listdir(os.path.join(outdir, "bin"))


class TestCache:
    @pytest.fixture()
    def sharded_cache(self, tmp_path):
        from repro.core import ShardedArtifactStore

        root = str(tmp_path / "cache")
        store = ShardedArtifactStore(root, shards=2)
        for i in range(4):
            store.put("report", f"bin-{i}", {"n": i},
                      content_hash=f"{i:02x}" * 8)
        return root

    def test_stats_sharded_human(self, sharded_cache, capsys):
        assert main(["cache", "stats", "--cache-dir", sharded_cache,
                     "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "4 entries" in out
        assert "shard 00" in out and "shard 01" in out

    def test_stats_sharded_json(self, sharded_cache, capsys):
        assert main(["cache", "stats", "--cache-dir", sharded_cache,
                     "--shards", "2", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["shards"] == 2
        assert doc["total_entries"] == 4
        assert sum(s["entries"] for s in doc["per_shard"]) == 4

    def test_funccfg_stats_and_prune(self, demo_binary, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["analyze", demo_binary, "--cache-dir", cache,
                     "--incremental"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "funccfg" in out
        assert main(["cache", "prune", "--cache-dir", cache,
                     "--kind", "funccfg"]) == 0
        assert "removed 1 funccfg entries" in capsys.readouterr().out

    def test_funcid_stats_and_prune(self, demo_binary, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["analyze", demo_binary, "--cache-dir", cache,
                     "--incremental"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "funcid" in out
        assert main(["cache", "prune", "--cache-dir", cache,
                     "--kind", "funcid"]) == 0
        assert "removed 1 funcid entries" in capsys.readouterr().out

    def test_funcid_prune_sharded(self, tmp_path, capsys):
        from repro.core import ShardedArtifactStore

        root = str(tmp_path / "cache")
        store = ShardedArtifactStore(root, shards=2)
        for i in range(4):
            store.put("funcid", f"bin@{i:x}", {"n": i},
                      content_hash=f"{i:02x}" * 8)
        assert main(["cache", "stats", "--cache-dir", root,
                     "--shards", "2"]) == 0
        assert "funcid" in capsys.readouterr().out
        assert main(["cache", "prune", "--cache-dir", root,
                     "--shards", "2", "--kind", "funcid"]) == 0
        assert "removed 4 funcid entries" in capsys.readouterr().out

    def test_prune_and_clear_sharded(self, sharded_cache, capsys):
        assert main(["cache", "prune", "--cache-dir", sharded_cache,
                     "--shards", "2", "--kind", "report"]) == 0
        assert "removed 4 report entries" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", sharded_cache,
                     "--shards", "2"]) == 0
        assert "removed 0 cache entries" in capsys.readouterr().out
