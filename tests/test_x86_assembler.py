"""Tests for the two-pass label assembler."""

import pytest

from repro.errors import AsmError
from repro.x86 import Assembler, Memory, RAX, RDI, RSI, decode_all


class TestLabels:
    def test_forward_and_backward_branches(self):
        a = Assembler(base=0x1000)
        a.label("start")
        a.mov(RAX, 1)
        a.jmp("end")
        a.label("mid")
        a.mov(RAX, 2)
        a.jmp("start")
        a.label("end")
        a.ret()
        code = a.assemble()
        insns = decode_all(code, 0x1000)
        jumps = [i for i in insns if i.mnemonic == "jmp"]
        labels = a.labels()
        assert jumps[0].branch_target() == labels["end"]
        assert jumps[1].branch_target() == labels["start"]

    def test_duplicate_label_rejected(self):
        a = Assembler()
        a.label("x")
        with pytest.raises(AsmError):
            a.label("x")

    def test_undefined_label_rejected(self):
        a = Assembler()
        a.jmp("nowhere")
        with pytest.raises(AsmError):
            a.assemble()

    def test_extern_resolution(self):
        a = Assembler(base=0x1000)
        a.call("puts")
        code = a.assemble(externs={"puts": 0x2000})
        insn = decode_all(code, 0x1000)[0]
        assert insn.branch_target() == 0x2000

    def test_local_shadows_nothing_but_wins(self):
        a = Assembler(base=0x1000)
        a.label("f")
        a.call("f")
        code = a.assemble(externs={"f": 0x9999})
        insn = decode_all(code, 0x1000)[0]
        assert insn.branch_target() == 0x1000


class TestAddressFormation:
    def test_lea_rip_label(self):
        a = Assembler(base=0x1000)
        a.lea_rip(RDI, "data")
        a.ret()
        a.label("data")
        a.nop()
        code = a.assemble()
        insns = decode_all(code, 0x1000)
        assert insns[0].mnemonic == "lea"
        assert insns[0].operands[1].disp == a.labels()["data"]

    def test_load_addr_is_movabs(self):
        a = Assembler(base=0x1000)
        a.load_addr(RAX, "target")
        a.label("target")
        a.ret()
        code = a.assemble()
        insns = decode_all(code, 0x1000)
        assert insns[0].mnemonic == "mov"
        assert insns[0].operands[1].width == 64
        assert insns[0].operands[1].value == a.labels()["target"]

    def test_mov_from_rip(self):
        a = Assembler(base=0x1000)
        a.mov_from_rip(RSI, "blob", addend=8)
        a.label("blob")
        a.ret()
        code = a.assemble()
        insn = decode_all(code, 0x1000)[0]
        assert insn.operands[1].rip_relative
        assert insn.operands[1].disp == a.labels()["blob"] + 8

    def test_mov_to_rip(self):
        a = Assembler(base=0x1000)
        a.mov_to_rip("slot", RAX)
        a.label("slot")
        a.ret()
        code = a.assemble()
        insn = decode_all(code, 0x1000)[0]
        assert isinstance(insn.operands[0], Memory)
        assert insn.operands[0].rip_relative


class TestLayout:
    def test_align_pads_with_nops(self):
        a = Assembler(base=0x1000)
        a.ret()
        a.align(16)
        a.label("aligned")
        a.ret()
        a.assemble()
        assert a.labels()["aligned"] % 16 == 0

    def test_raw_bytes_passthrough(self):
        a = Assembler(base=0)
        a.raw_bytes(b"\x0f\x05")
        code = a.assemble()
        assert code == b"\x0f\x05"

    def test_size_reported(self):
        a = Assembler(base=0)
        a.mov(RAX, 60)
        a.syscall()
        code = a.assemble()
        assert a.size == len(code)

    def test_full_function_roundtrips(self):
        a = Assembler(base=0x401000)
        a.label("exit_group")
        a.mov(RAX, 231)
        a.xor(RDI, RDI)
        a.syscall()
        a.ret()
        code = a.assemble()
        mnems = [i.mnemonic for i in decode_all(code, 0x401000)]
        assert mnems == ["mov", "xor", "syscall", "ret"]
