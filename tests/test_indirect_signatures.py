"""Signature-compatible indirect-call refinement (``repro.cfg.signatures``).

Three layers of coverage:

* unit tests for the instruction effect model and the callee/caller
  signature extractors over hand-assembled functions — register
  reads/writes, early-return scans, and the unknown-instruction
  fallback to the unfiltered candidate set;
* a resolution-level test that the fixpoint with ``signatures=True``
  drops provably incompatible targets while keeping compatible ones;
* a differential suite over all six validation apps pinning that the
  filtered target set at every site is a subset of the unfiltered one
  and that the identified syscall sets keep recall 1.0 against the
  apps' runtime ground truth under both configurations.

Plus the regression test for ``data_segment_addresses_taken`` bounds
handling (unaligned segment start, trailing partial word).
"""

from __future__ import annotations

import struct
import types

import pytest

from repro.cfg import (
    EDGE_ICALL,
    build_cfg,
    data_segment_addresses_taken,
    resolve_indirect_active,
)
from repro.cfg.signatures import (
    ARG_REG_NAMES,
    _insn_effects,
    callee_signature,
    caller_signature,
    compatible,
    entry_signature,
    filter_targets,
    signature_doc,
    signature_from_doc,
)
from repro.core import AnalysisBudget, BSideAnalyzer
from repro.corpus import APP_NAMES, ProgramBuilder, build_app
from repro.elf.reader import Segment
from repro.x86 import EAX, RAX, RBX, RDI, RDX, RSI, Immediate, Memory

getpid, socket, exit_ = 39, 41, 60


def _insn(mnemonic, *operands):
    from repro.x86 import Instruction

    return Instruction(mnemonic, tuple(operands), addr=0x1000, size=2)


class TestInsnEffects:
    def test_mov_reads_src_kills_dst(self):
        reads, kills = _insn_effects(_insn("mov", RAX, RSI))
        assert reads == {"rsi"}
        assert kills == {"rax"}

    def test_mov_immediate_is_pure_kill(self):
        reads, kills = _insn_effects(_insn("mov", RDI, Immediate(7)))
        assert reads == set()
        assert kills == {"rdi"}

    def test_mov_to_memory_reads_address_regs_kills_nothing(self):
        reads, kills = _insn_effects(
            _insn("mov", Memory(base=RDI, index=RSI), RDX)
        )
        assert reads == {"rdi", "rsi", "rdx"}
        assert kills == set()

    def test_xor_self_zero_idiom_is_pure_kill(self):
        reads, kills = _insn_effects(_insn("xor", RDI, RDI))
        assert reads == set()
        assert kills == {"rdi"}

    def test_alu_reads_both_and_kills_dst(self):
        reads, kills = _insn_effects(_insn("add", RAX, RDX))
        assert reads == {"rax", "rdx"}
        assert kills == {"rax"}

    def test_compare_reads_without_killing(self):
        reads, kills = _insn_effects(_insn("cmp", RDI, Immediate(0)))
        assert reads == {"rdi"}
        assert kills == set()

    def test_cmov_never_kills_its_destination(self):
        reads, kills = _insn_effects(_insn("cmove", RAX, RSI))
        assert reads == {"rax", "rsi"}
        assert kills == set()

    def test_push_is_read_free_save_idiom(self):
        reads, kills = _insn_effects(_insn("push", RBX))
        assert reads == set()
        assert kills == set()

    def test_pop_kills_register(self):
        reads, kills = _insn_effects(_insn("pop", RBX))
        assert kills == {"rbx"}

    def test_unclassifiable_shapes_are_unknown(self):
        # mov into an immediate can't come from the decoder; the model
        # must refuse to guess rather than misclassify.
        assert _insn_effects(_insn("mov", Immediate(1), Immediate(2))) is None
        assert _insn_effects(_insn("add", RAX, RBX, RDX)) is None


class TestEntrySignature:
    def test_reads_before_write_become_params(self):
        stream = {
            0x1000: _insn("mov", RAX, RSI),
            0x1002: _insn("add", RAX, RDX),
        }
        assert entry_signature(stream, 0x1000) == frozenset({"rsi", "rdx"})

    def test_killed_register_read_is_not_a_param(self):
        stream = {
            0x1000: _insn("xor", RDI, RDI),
            0x1002: _insn("mov", RAX, RDI),
        }
        assert entry_signature(stream, 0x1000) == frozenset()

    def test_terminator_stops_scan_with_partial_set(self):
        stream = {
            0x1000: _insn("mov", RAX, RDI),
            0x1002: _insn("ret"),
            0x1003: _insn("mov", RAX, RSI),  # past the ret: never scanned
        }
        assert entry_signature(stream, 0x1000) == frozenset({"rdi"})

    def test_insn_bound_stops_scan_with_partial_set(self):
        stream = {
            0x1000: _insn("mov", RAX, RDI),
            0x1002: _insn("mov", RBX, RSI),
        }
        assert entry_signature(stream, 0x1000, max_insns=1) == frozenset(
            {"rdi"}
        )

    def test_unknown_instruction_makes_signature_unknown(self):
        stream = {
            0x1000: _insn("mov", RAX, RDI),
            0x1002: _insn("mov", Immediate(1), Immediate(2)),
        }
        assert entry_signature(stream, 0x1000) is None

    def test_non_instruction_entry_is_unknown(self):
        assert entry_signature({}, 0x2000) is None


def _dispatch_program():
    """A table dispatch whose site prepares only rdi.

    ``takes2`` reads rsi and rdx at entry (incompatible with the site);
    ``takes0`` reads nothing (compatible).  Both are address-taken only
    through the data-segment quad table.
    """
    p = ProgramBuilder("sigsample")
    with p.function("takes2"):
        p.asm.mov(RAX, RSI)
        p.asm.add(RAX, RDX)
        p.asm.mov(EAX, getpid)
        p.asm.syscall()
        p.asm.ret()
    with p.function("takes0"):
        p.asm.xor(RDI, RDI)
        p.asm.mov(RAX, RDI)
        p.asm.ret()
    with p.function("disp"):
        p.asm.call("takes0")
        p.asm.xor(RDI, RDI)
        p.asm.mov_from_rip(RAX, "table")
        p.asm.call_reg(RAX)
        p.asm.ret()
    with p.function("_start"):
        p.asm.call("disp")
        p.asm.mov(EAX, exit_)
        p.asm.syscall()
        p.asm.hlt()
    p.set_entry("_start")
    p.add_quads("table", ["takes2", "takes0"])
    return p.build()


def _icall_targets(cfg, site):
    return {e.dst for e in cfg.successors(site, kinds=(EDGE_ICALL,))}


class TestCfgSignatures:
    def test_callee_signatures_on_assembled_functions(self):
        prog = _dispatch_program()
        cfg = build_cfg(prog.image)
        assert callee_signature(
            cfg, prog.image.symbol_addr("takes2")
        ) == frozenset({"rsi", "rdx"})
        assert callee_signature(
            cfg, prog.image.symbol_addr("takes0")
        ) == frozenset()

    def test_callee_signature_outside_cfg_is_unknown(self):
        prog = _dispatch_program()
        cfg = build_cfg(prog.image)
        assert callee_signature(cfg, 0xDEAD) is None

    def test_caller_signature_stops_at_callret_boundary(self):
        prog = _dispatch_program()
        cfg = build_cfg(prog.image)
        (site,) = cfg.indirect_sites
        # Backward walk over the site block stops at the callret in-edge
        # from the preceding `call takes0`: only the xor rdi,rdi after
        # the call counts as prepared.
        assert caller_signature(cfg, site) == frozenset({"rdi"})

    def test_caller_signature_at_entry_block_is_unknown(self):
        p = ProgramBuilder("entrysite")
        with p.function("handler"):
            p.asm.mov(EAX, exit_)
            p.asm.syscall()
            p.asm.ret()
        with p.function("_start"):
            p.asm.lea_rip(RAX, "handler")
            p.asm.call_reg(RAX)
            p.asm.hlt()
        p.set_entry("_start")
        prog = p.build()
        cfg = build_cfg(prog.image)
        (site,) = cfg.indirect_sites
        # A predecessor-less entry block could be entered with any
        # argument registers live: the walk escapes and reports unknown.
        assert caller_signature(cfg, site) is None
        active, __ = resolve_indirect_active(
            cfg, prog.image, [prog.image.entry], signatures=True
        )
        # Unknown caller signature keeps the full candidate set.
        assert prog.image.symbol_addr("handler") in _icall_targets(cfg, site)

    def test_resolution_drops_incompatible_targets_only(self):
        prog = _dispatch_program()
        takes2 = prog.image.symbol_addr("takes2")
        takes0 = prog.image.symbol_addr("takes0")

        unfiltered = build_cfg(prog.image)
        resolve_indirect_active(unfiltered, prog.image, [prog.image.entry])
        filtered = build_cfg(prog.image)
        resolve_indirect_active(
            filtered, prog.image, [prog.image.entry], signatures=True
        )

        (site,) = unfiltered.indirect_sites
        assert _icall_targets(unfiltered, site) == {takes2, takes0}
        assert _icall_targets(filtered, site) == {takes0}

    def test_filter_changes_identified_syscalls(self):
        prog = _dispatch_program()
        filtered = BSideAnalyzer().analyze(prog.image)
        unfiltered = BSideAnalyzer(indirect_signatures=False).analyze(
            prog.image
        )
        assert filtered.success and unfiltered.success
        assert getpid in unfiltered.syscalls
        assert getpid not in filtered.syscalls
        assert set(filtered.syscalls) < set(unfiltered.syscalls)


class TestCompatibility:
    def test_unknown_on_either_side_is_compatible(self):
        assert compatible(None, frozenset({"rdi"}))
        assert compatible(frozenset(), None)
        assert compatible(None, None)

    def test_subset_rule(self):
        assert compatible(frozenset({"rdi", "rsi"}), frozenset({"rdi"}))
        assert not compatible(frozenset({"rdi"}), frozenset({"rdi", "rsi"}))

    def test_filter_targets_identity_on_unknown_caller(self):
        sigs = {1: frozenset({"rsi"}), 2: frozenset()}
        assert filter_targets(None, [1, 2], sigs) == [1, 2]

    def test_filter_targets_keeps_unknown_callees(self):
        caller = frozenset({"rdi"})
        sigs = {1: None, 2: frozenset({"rsi"}), 3: frozenset({"rdi"})}
        assert filter_targets(caller, [1, 2, 3, 4], sigs) == [1, 3, 4]

    def test_signature_doc_roundtrip(self):
        for sig in (None, frozenset(), frozenset({"rdi", "r9"})):
            assert signature_from_doc(signature_doc(sig)) == sig
        with pytest.raises(ValueError):
            signature_from_doc("rdi")
        with pytest.raises(ValueError):
            signature_from_doc([1])
        assert signature_doc(frozenset(ARG_REG_NAMES)) == sorted(
            ARG_REG_NAMES
        )


class TestDataSegmentBounds:
    """Regression: unaligned segment start and trailing partial word."""

    @staticmethod
    def _image(vaddr, data):
        elf = types.SimpleNamespace(
            data_segment=Segment(vaddr=vaddr, data=data, flags=6)
        )
        code = {0x401000, 0x401010}
        return types.SimpleNamespace(
            elf=elf, is_code_addr=lambda value: value in code
        )

    def test_unaligned_start_and_trailing_partial_word(self):
        # Segment starts 4 bytes past alignment and ends mid-word: the
        # scan must begin at the first 8-aligned virtual address and
        # never read the trailing partial word (which holds the first 5
        # bytes of a valid code pointer).
        data = (
            b"\x00" * 4
            + struct.pack("<Q", 0x401000)
            + struct.pack("<Q", 0x999)
            + struct.pack("<Q", 0x401010)[:5]
        )
        image = self._image(0x500004, data)
        assert data_segment_addresses_taken(image) == {0x401000}

    def test_aligned_segment_with_partial_tail(self):
        data = struct.pack("<Q", 0x401010) + b"\x01\x02\x03"
        image = self._image(0x600000, data)
        assert data_segment_addresses_taken(image) == {0x401010}

    def test_segment_smaller_than_one_word(self):
        image = self._image(0x600000, b"\x01" * 7)
        assert data_segment_addresses_taken(image) == set()

    def test_missing_data_segment(self):
        image = types.SimpleNamespace(
            elf=types.SimpleNamespace(data_segment=None)
        )
        assert data_segment_addresses_taken(image) == set()


class TestAppDifferential:
    """The six validation apps: filtered ⊆ unfiltered, recall intact."""

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_filtered_targets_subset_and_recall_one(self, name):
        bundle = build_app(name)
        image = bundle.program.image
        roots = [image.entry]

        unfiltered = build_cfg(image)
        resolve_indirect_active(unfiltered, image, roots)
        filtered = build_cfg(image)
        resolve_indirect_active(filtered, image, roots, signatures=True)

        for site in unfiltered.indirect_sites:
            u = _icall_targets(unfiltered, site)
            f = _icall_targets(filtered, site)
            assert f <= u, f"{name}: site {site:#x} gained targets"

        truth = bundle.expected_runtime_syscalls()
        reports = {}
        for sig in (True, False):
            report = BSideAnalyzer(
                resolver=bundle.resolver,
                budget=AnalysisBudget.generous(),
                indirect_signatures=sig,
            ).analyze(image, modules=bundle.module_images)
            assert report.success, f"{name}: analysis failed (sig={sig})"
            missed = truth - set(report.syscalls)
            assert not missed, (
                f"{name}: false negatives {sorted(missed)} (sig={sig})"
            )
            reports[sig] = set(report.syscalls)
        assert reports[True] <= reports[False], (
            f"{name}: the filter may only remove identified syscalls"
        )

    def test_filter_strictly_improves_some_app(self):
        # The corpus was built so the dead error-dispatch handlers are
        # signature-incompatible: at least one app must actually shrink.
        improved = 0
        for name in APP_NAMES:
            bundle = build_app(name)
            sizes = {}
            for sig in (True, False):
                report = BSideAnalyzer(
                    resolver=bundle.resolver,
                    budget=AnalysisBudget.generous(),
                    indirect_signatures=sig,
                ).analyze(
                    bundle.program.image, modules=bundle.module_images
                )
                sizes[sig] = len(report.syscalls)
            if sizes[True] < sizes[False]:
                improved += 1
        assert improved == len(APP_NAMES)
