"""Cold-kernel optimisation tests (PR 4).

The table-driven decoder, the indexed CFG, and the bitset reachability
rewrite are pure performance work: each must be observationally
identical to the original implementation.  This suite pins that down
with differential tests against the preserved reference decoder and
against naive reference reimplementations of the graph queries, plus
direct unit tests for the new index structures (bisect containment,
invalidation on mutation, SCC closure).
"""

import random
from collections import deque

import pytest

from repro.cfg.builder import build_cfg
from repro.cfg.model import FLOW_KINDS, BasicBlock, CFG
from repro.cfg.reachability import reachable_blocks, reachable_functions
from repro.corpus import APP_NAMES, build_app
from repro.errors import DecodeError
from repro.symex.engine import ExecContext
from repro.x86 import decoder, refdecoder
from repro.x86.registers import RAX


@pytest.fixture(scope="module")
def corpus_images():
    """Every image of the six validation apps: programs, modules, libs."""
    images = []
    seen = set()
    for name in APP_NAMES:
        bundle = build_app(name)
        for image in [bundle.program.image, *bundle.module_images,
                      *bundle.resolver.topological_order(bundle.program.image)]:
            key = (image.name, image.content_hash)
            if key not in seen:
                seen.add(key)
                images.append(image)
    return images


@pytest.fixture(scope="module")
def corpus_cfgs(corpus_images):
    return {image.name: build_cfg(image) for image in corpus_images}


class TestDecoderDifferential:
    def test_all_corpus_text_decodes_identically(self, corpus_images):
        """Table-driven vs reference decode over every corpus text byte."""
        total = 0
        for image in corpus_images:
            reference = refdecoder.decode_all(image.text_bytes, image.text_base)
            fast = decoder.decode_all(image.text_bytes, image.text_base)
            assert fast == reference, image.name
            total += len(reference)
        assert total > 1000  # the corpus is not trivially empty

    def test_single_decode_matches_decode_all(self, corpus_images):
        image = corpus_images[0]
        sweep = decoder.decode_all(image.text_bytes, image.text_base)
        pos = 0
        for insn in sweep[:200]:
            assert decoder.decode(image.text_bytes, pos, image.text_base + pos) == insn
            pos += insn.size

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_error_behaviour_matches_reference(self, seed):
        """Unsupported/truncated byte soup raises identical DecodeErrors."""
        rng = random.Random(seed)
        cases = [bytes([b]) for b in range(256)]
        cases += [bytes([0x0F, b]) for b in range(256)]
        cases += [bytes([0x48, b]) for b in range(0, 256, 3)]
        cases += [
            bytes(rng.randrange(256) for __ in range(rng.randrange(1, 12)))
            for __ in range(2000)
        ]
        for raw in cases:
            try:
                expected = ("ok", refdecoder.decode(raw, 0, 0x1000))
            except DecodeError as error:
                expected = ("err", str(error))
            try:
                got = ("ok", decoder.decode(raw, 0, 0x1000))
            except DecodeError as error:
                got = ("err", str(error))
            assert got == expected, raw.hex()

    def test_registers_are_interned(self):
        a = decoder.decode(bytes.fromhex("4889c3"))  # mov rbx, rax
        b = decoder.decode(bytes.fromhex("4889d8"))  # mov rax, rbx
        (rax_dst,) = [op for op in b.operands if op == RAX]
        (rax_src,) = [op for op in a.operands if op == RAX]
        assert rax_dst is rax_src


def _reference_reachable(cfg, roots):
    """The original set-based BFS over typed edge lists."""
    seen = set()
    queue = deque(a for a in roots if a in cfg.blocks)
    seen.update(queue)
    while queue:
        addr = queue.popleft()
        for edge in cfg.successors(addr, kinds=FLOW_KINDS):
            if edge.dst not in seen and edge.dst in cfg.blocks:
                seen.add(edge.dst)
                queue.append(edge.dst)
    return seen


class TestBitsetReachability:
    def test_matches_reference_from_entry(self, corpus_images, corpus_cfgs):
        for image in corpus_images:
            cfg = corpus_cfgs[image.name]
            roots = [image.entry] if image.entry else [
                sym.value for sym in image.exported_functions.values()
            ]
            assert reachable_blocks(cfg, roots) == _reference_reachable(cfg, roots)

    def test_matches_reference_per_export(self, corpus_images, corpus_cfgs):
        for image in corpus_images:
            if not image.exported_functions:
                continue
            cfg = corpus_cfgs[image.name]
            for sym in image.exported_functions.values():
                roots = [sym.value]
                assert reachable_blocks(cfg, roots) == \
                    _reference_reachable(cfg, roots)

    def test_reachable_functions_matches_block_owners(self, corpus_images,
                                                      corpus_cfgs):
        image = corpus_images[0]
        cfg = corpus_cfgs[image.name]
        roots = [image.entry]
        blocks = reachable_blocks(cfg, roots)
        assert reachable_functions(cfg, roots) == \
            {cfg.blocks[a].function for a in blocks}

    def test_closure_union_matches_per_root_bfs(self, corpus_images,
                                                corpus_cfgs):
        """SCC closure == (BFS per block + union) for arbitrary annotations."""
        rng = random.Random(42)
        for image in corpus_images[:4]:
            cfg = corpus_cfgs[image.name]
            annot = {
                addr: frozenset(rng.sample(range(100), rng.randrange(1, 4)))
                for addr in cfg.blocks
                if rng.random() < 0.3
            }
            index = cfg.index
            closure = index.closure_union(annot)
            for addr in cfg.blocks:
                expected = set()
                for reached in _reference_reachable(cfg, [addr]):
                    expected |= annot.get(reached, set())
                assert closure[index.idx_of[addr]] == expected, hex(addr)


class TestCfgIndex:
    def test_block_containing_bisect(self):
        """Direct unit test: containment hits, misses, and gap addresses."""
        mov_eax_1 = bytes.fromhex("b801000000")  # 5 bytes
        cfg = CFG()
        # Three 5-byte blocks with gaps between them.
        for base in (0x1000, 0x1010, 0x1030):
            block = BasicBlock(addr=base)
            block.insns.append(decoder.decode(mov_eax_1, 0, base))
            cfg.add_block(block)
        assert cfg.block_containing(0x1000).addr == 0x1000  # exact start
        assert cfg.block_containing(0x1001).addr == 0x1000  # interior
        assert cfg.block_containing(0x1004).addr == 0x1000  # last byte
        assert cfg.block_containing(0x1005) is None         # first gap
        assert cfg.block_containing(0x1015) is None         # second gap
        assert cfg.block_containing(0x102F) is None         # still the gap
        assert cfg.block_containing(0x1030).addr == 0x1030
        assert cfg.block_containing(0x0FFF) is None         # before all blocks
        assert cfg.block_containing(0x1040) is None         # past the end

    def test_block_containing_matches_linear_scan(self, corpus_images,
                                                  corpus_cfgs):
        image = corpus_images[0]
        cfg = corpus_cfgs[image.name]

        def linear(addr):
            for block in cfg.blocks.values():
                if block.addr <= addr < block.end:
                    return block
            return None

        for addr in range(image.text_base - 2, image.text_end + 2, 7):
            assert cfg.block_containing(addr) is linear(addr)

    def test_index_invalidated_by_mutation(self, corpus_images, corpus_cfgs):
        image = corpus_images[0]
        cfg = build_cfg(image)
        index_before = cfg.index
        addrs = sorted(cfg.blocks)
        src, dst = addrs[-1], addrs[0]
        roots = [src]
        before = reachable_blocks(cfg, roots)
        assert dst not in before or len(addrs) < 2
        assert cfg.add_edge(src, dst, "jump")
        index_after = cfg.index
        assert index_after is not index_before
        assert dst in reachable_blocks(cfg, roots)
        # Block-level maps survive edge-only mutation (no rebuild).
        assert index_after.insn_at is index_before.insn_at

    def test_duplicate_edges_rejected(self, corpus_images):
        cfg = build_cfg(corpus_images[0])
        addrs = sorted(cfg.blocks)
        assert cfg.add_edge(addrs[0], addrs[-1], "icall")
        assert not cfg.add_edge(addrs[0], addrs[-1], "icall")
        assert cfg.add_edge(addrs[0], addrs[-1], "call")  # other kind is new

    def test_exec_context_shares_index_insn_map(self, corpus_images):
        image = corpus_images[0]
        cfg = build_cfg(image)
        ctx = ExecContext.for_image(cfg, image)
        assert ctx.insn_at is cfg.index.insn_at
        first = next(iter(ctx.insn_at))
        assert ctx.fetch(first).addr == first


class TestFingerprintMemo:
    def test_memoized_and_still_sensitive(self):
        from repro.core import AnalysisBudget
        from repro.core.pipeline import PipelineConfig

        config = PipelineConfig()
        budget = AnalysisBudget()
        first = config.fingerprint(budget)
        assert config.fingerprint(budget) == first
        assert PipelineConfig().fingerprint(AnalysisBudget()) == first
        assert config.fingerprint(AnalysisBudget.generous()) != first
        assert PipelineConfig(detect_wrappers=False).fingerprint(budget) != first
        # Mutating a budget changes the key (no stale memo hit).
        mutated = AnalysisBudget()
        mutated.max_cfg_iterations += 1
        assert config.fingerprint(mutated) != first


class TestSpoolHashReuse:
    def test_from_bytes_accepts_preseeded_hash(self, tmp_path):
        import hashlib

        from repro.corpus.progbuilder import ProgramBuilder
        from repro.loader.image import LoadedImage
        from repro.x86 import EAX

        p = ProgramBuilder("app")
        with p.function("_start"):
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        program = p.build()
        path = tmp_path / "app.bin"
        program.save(str(path))
        data = path.read_bytes()
        digest = hashlib.sha256(data).hexdigest()
        image = LoadedImage.from_path(str(path), content_hash=digest)
        assert image.__dict__["content_hash"] == digest  # no re-hash needed
        assert image.content_hash == \
            LoadedImage.from_path(str(path)).content_hash

    def test_spool_records_content_hash_in_spec(self, tmp_path):
        import base64
        import hashlib

        from repro.service.executor import AnalysisService

        service = AnalysisService(str(tmp_path / "state"))
        payload = b"\x7fELF-not-really" * 10
        spec = {
            "binary_b64": base64.b64encode(payload).decode(),
            "name": "sample.bin",
        }
        path = service._spool(spec)
        assert spec["content_sha256"] == hashlib.sha256(payload).hexdigest()
        with open(path, "rb") as f:
            assert f.read() == payload
        # The spool file name keeps the short-digest convention.
        assert spec["content_sha256"][:16] in path

    def test_client_supplied_content_hash_is_stripped(self, tmp_path):
        """A forged content_sha256 on a path job must not survive
        admission: it would poison the content-addressed report cache."""
        from repro.service.executor import AnalysisService

        service = AnalysisService(str(tmp_path / "state"))
        target = tmp_path / "victim.bin"
        target.write_bytes(b"\x7fELF-bytes")
        job = service.submit("analyze", {
            "path": str(target),
            "content_sha256": "0" * 64,  # digest of some *other* binary
        })
        assert "content_sha256" not in job.spec
