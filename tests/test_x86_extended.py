"""Extended ISA tests: inc/dec/neg/not, movzx/movsx/movsxd, cmovcc —
round-trips plus concrete and symbolic semantics."""

import pytest

from repro.corpus.progbuilder import ProgramBuilder
from repro.emu import run_traced
from repro.x86 import (
    EAX,
    Immediate,
    Instruction,
    Memory,
    RAX,
    RBX,
    RDI,
    RSI,
    RSP,
    Register,
    decode,
    encode,
)


def roundtrip(insn: Instruction, addr: int = 0x400000) -> Instruction:
    code = encode(insn, addr)
    back = decode(code, 0, addr)
    assert encode(back, addr) == code
    return back


class TestRoundTrips:
    @pytest.mark.parametrize("mn", ["inc", "dec", "neg", "not"])
    def test_unary_reg(self, mn):
        back = roundtrip(Instruction(mn, (RAX,)))
        assert back.mnemonic == mn

    @pytest.mark.parametrize("mn", ["inc", "dec"])
    def test_unary_mem(self, mn):
        mem = Memory(base=RSP, disp=8)
        back = roundtrip(Instruction(mn, (mem,)))
        assert back.operands[0] == mem

    @pytest.mark.parametrize("mn,width", [
        ("movzx", 8), ("movzx", 16), ("movsx", 8), ("movsx", 16),
    ])
    def test_movx(self, mn, width):
        mem = Memory(base=RDI, disp=4, width=width)
        back = roundtrip(Instruction(mn, (RAX, mem)))
        assert back.mnemonic == mn
        assert back.operands[1].width == width

    def test_movsxd(self):
        back = roundtrip(Instruction("movsxd", (RAX, Register("rdi", 32))))
        assert back.mnemonic == "movsxd"

    @pytest.mark.parametrize("cc", ["e", "ne", "l", "g", "b", "a"])
    def test_cmov(self, cc):
        back = roundtrip(Instruction(f"cmov{cc}", (RAX, RDI)))
        assert back.mnemonic == f"cmov{cc}"

    def test_cmov_mem_source(self):
        mem = Memory(base=RSI, disp=0x10)
        back = roundtrip(Instruction("cmove", (RAX, mem)))
        assert back.operands[1] == mem


def run_exit_status(build) -> int:
    """Build a tiny program with ``build(p)`` and return its exit status."""
    p = ProgramBuilder("t")
    with p.function("_start"):
        build(p)
        p.asm.mov(EAX, 60)
        p.asm.syscall()
        p.asm.hlt()
    p.set_entry("_start")
    return run_traced(p.build().image).exit_status


class TestConcreteSemantics:
    def test_inc_dec(self):
        def body(p):
            p.asm.mov(RDI, 5)
            p.asm.emit("inc", RDI)
            p.asm.emit("inc", RDI)
            p.asm.emit("dec", RDI)
        assert run_exit_status(body) == 6

    def test_neg(self):
        def body(p):
            p.asm.mov(RDI, 7)
            p.asm.emit("neg", RDI)
            p.asm.emit("neg", RDI)
        assert run_exit_status(body) == 7

    def test_not(self):
        def body(p):
            p.asm.mov(RDI, 0)
            p.asm.emit("not", RDI)
            p.asm.and_(RDI, 0xFF)
        assert run_exit_status(body) == 0xFF

    def test_movzx_from_memory(self):
        def body(p):
            p.asm.sub(RSP, 0x10)
            p.asm.mov(Memory(base=RSP, disp=0), 0x1234ABCD)
            p.asm.emit("movzx", RDI, Memory(base=RSP, disp=0, width=8))
            p.asm.add(RSP, 0x10)
        assert run_exit_status(body) == 0xCD

    def test_movsx_from_memory(self):
        def body(p):
            p.asm.sub(RSP, 0x10)
            p.asm.mov(Memory(base=RSP, disp=0), 0x80)  # -128 as int8
            p.asm.emit("movsx", RDI, Memory(base=RSP, disp=0, width=8))
            p.asm.emit("neg", RDI)
            p.asm.add(RSP, 0x10)
        assert run_exit_status(body) == 128

    def test_movsxd(self):
        def body(p):
            p.asm.mov(RBX, 0xFFFFFFFF)  # -1 as int32
            p.asm.emit("movsxd", RDI, Register("rbx", 32))
            p.asm.emit("neg", RDI)  # 1
        assert run_exit_status(body) == 1

    def test_cmov_taken_and_skipped(self):
        def body(p):
            p.asm.mov(RDI, 1)
            p.asm.mov(RBX, 42)
            p.asm.cmp(RDI, 1)
            p.asm.emit("cmove", RDI, RBX)   # taken: rdi = 42
            p.asm.mov(RBX, 99)
            p.asm.cmp(RDI, 0)
            p.asm.emit("cmove", RDI, RBX)   # not taken
        assert run_exit_status(body) == 42


class TestSymbolicSemantics:
    def _identify(self, build):
        from repro.cfg import build_cfg, resolve_indirect_active
        from repro.symex import ExecContext, MemoryBackend, backward_identify, query_rax

        p = ProgramBuilder("sym")
        with p.function("_start"):
            build(p)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        prog = p.build()
        cfg = build_cfg(prog.image)
        resolve_indirect_active(cfg, prog.image, [prog.image.entry])
        ctx = ExecContext.for_image(cfg, prog.image)
        block = cfg.syscall_blocks()[0]
        return backward_identify(
            cfg, ctx, block.addr, block.terminator.addr, query_rax,
            backend=MemoryBackend([prog.image]),
        )

    def test_inc_chain_tracked(self):
        def body(p):
            p.asm.mov(EAX, 0)
            p.asm.emit("inc", RAX)  # rax = 1 (write)
        assert self._identify(body).values == {1}

    def test_neg_tracked(self):
        def body(p):
            p.asm.mov(RAX, -39)
            p.asm.emit("neg", RAX)  # getpid
        assert self._identify(body).values == {39}

    def test_movzx_tracked_through_memory(self):
        def body(p):
            p.asm.sub(RSP, 0x10)
            p.asm.mov(Memory(base=RSP, disp=0), 0x27)  # 39 in low byte
            p.asm.emit("movzx", RAX, Memory(base=RSP, disp=0, width=8))
            p.asm.add(RSP, 0x10)
        assert self._identify(body).values == {39}

    def test_cmov_with_concrete_flags_tracked(self):
        def body(p):
            p.asm.mov(EAX, 0)
            p.asm.mov(RBX, 60)
            p.asm.cmp(RBX, 60)
            p.asm.emit("cmove", RAX, RBX)  # taken: rax = 60
        assert self._identify(body).values == {60}

    def test_cmov_with_symbolic_flags_is_unknown(self):
        def body(p):
            p.asm.mov(EAX, 0)
            p.asm.mov(RBX, 60)
            p.asm.cmp(RDI, 1)  # rdi symbolic at entry
            p.asm.emit("cmove", RAX, RBX)
        result = self._identify(body)
        # The destination is unknowable: identification must not invent a
        # single concrete value silently.
        assert not result.complete or result.values >= {0, 60} or result.values == set()
