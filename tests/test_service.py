"""Service suite: the ``bside serve`` daemon over a real socket.

Covers the tentpole claims end to end:

* submit → poll → fetch over HTTP (path, inline-bytes, and fleet jobs);
* warm resubmission served from the content-addressed artifact store
  with **zero pipeline passes executed** (and a renamed copy still hits
  via the content-hash index);
* bounded-queue backpressure (HTTP 429);
* restart recovery: queued and running jobs survive a daemon restart,
  finished jobs keep serving their results;
* derived enforcement artifacts (seccomp filter, Docker profile);
* API error contract (400 / 404 / 409 / 429) and CLI exit codes.
"""

import json
import os

import pytest

from repro.core.pipeline import pipeline_runs
from repro.corpus import ProgramBuilder, build_app, build_libc
from repro.service import (
    AnalysisService,
    JobQueue,
    QueueFull,
    ServiceClient,
    ServiceError,
    ServiceServer,
)
from repro.x86 import EAX, RDI


def _demo_program(name: str = "svc-demo", nr: int = 39):
    p = ProgramBuilder(name)
    with p.function("_start"):
        p.asm.mov(EAX, nr)
        p.asm.syscall()
        p.asm.mov(EAX, 60)
        p.asm.xor(RDI, RDI)
        p.asm.syscall()
        p.asm.hlt()
    p.set_entry("_start")
    return p.build()


@pytest.fixture()
def demo_binary(tmp_path):
    path = str(tmp_path / "svc-demo")
    _demo_program().save(path)
    return path


@pytest.fixture()
def server(tmp_path):
    service = AnalysisService(
        str(tmp_path / "state"), workers=2, queue_size=8,
    )
    srv = ServiceServer(service, port=0)
    srv.start()
    yield srv
    srv.stop()


@pytest.fixture()
def client(server):
    return ServiceClient(server.url, timeout=10.0)


class TestEndToEnd:
    def test_submit_poll_fetch(self, client, demo_binary):
        job = client.submit_path(demo_binary)
        assert job["status"] == "queued" and job["kind"] == "analyze"
        job = client.wait(job["id"])
        assert job["status"] == "done"
        report = client.report(job["id"])
        assert report["success"] is True
        assert 39 in report["syscalls"] and 60 in report["syscalls"]
        metrics = job["metrics"]
        assert metrics["from_cache"] is False
        assert metrics["seconds"] >= 0 and metrics["batch_size"] >= 1

    def test_inline_bytes_submission(self, client):
        prog = _demo_program("inline-demo", nr=102)  # getuid
        job = client.wait(client.submit_bytes("inline-demo", prog.elf_bytes)["id"])
        assert job["status"] == "done"
        assert 102 in client.report(job["id"])["syscalls"]

    def test_derived_filter_and_profile(self, client, demo_binary):
        job = client.wait(client.submit_path(demo_binary)["id"])
        filt = client.filter(job["id"])
        assert filt["sound"] is True
        assert set(filt["allowed"]) == {39, 60}
        assert "getpid" in filt["allowed_names"]
        assert "jeq" in filt["rendered"]
        profile = client.profile(job["id"])
        assert profile["defaultAction"] == "SCMP_ACT_ERRNO"
        assert "getpid" in profile["syscalls"][0]["names"]

    def test_fleet_job(self, client, tmp_path):
        bindir = tmp_path / "fleetbin"
        bindir.mkdir()
        _demo_program("a", nr=39).save(str(bindir / "a"))
        _demo_program("b", nr=102).save(str(bindir / "b"))
        job = client.wait(client.submit_directory(str(bindir))["id"])
        assert job["status"] == "done"
        doc = client.report(job["id"])["report"]
        assert doc["fleet_size"] == 2
        assert doc["success_rate"] == 1.0

    def test_dynamic_binary_with_libdir(self, client, tmp_path):
        bundle = build_app("sqlite")
        binpath = str(tmp_path / "sqlite-like")
        bundle.program.save(binpath)
        libdir = tmp_path / "libs"
        libdir.mkdir()
        build_libc().save(str(libdir / "libc.so"))
        job = client.wait(
            client.submit_path(binpath, libdir=str(libdir))["id"],
            timeout=120.0,
        )
        assert job["status"] == "done"
        assert client.report(job["id"])["success"] is True

    def test_jobs_listing_and_stats(self, client, demo_binary):
        client.wait(client.submit_path(demo_binary)["id"])
        jobs = client.jobs()
        assert len(jobs) == 1 and "result" not in jobs[0]
        stats = client.stats()
        assert stats["queue"]["submitted"] == 1
        assert stats["workers"] == 2
        assert "report" in stats["cache"]["kinds"]
        assert client.health()["status"] == "ok"


class TestWarmPath:
    def test_resubmission_runs_zero_passes(self, client, demo_binary):
        cold = client.wait(client.submit_path(demo_binary)["id"])
        assert cold["metrics"]["from_cache"] is False
        runs_before = pipeline_runs()
        warm = client.wait(client.submit_path(demo_binary)["id"])
        assert warm["metrics"]["from_cache"] is True
        # The acceptance claim: a warm submission executes zero analysis
        # passes — the report is served from the artifact store.
        assert pipeline_runs() == runs_before
        assert client.report(warm["id"])["syscalls"] == \
            client.report(cold["id"])["syscalls"]

    def test_renamed_copy_hits_by_content_hash(self, client, demo_binary, tmp_path):
        client.wait(client.submit_path(demo_binary)["id"])
        renamed = str(tmp_path / "other-name")
        with open(demo_binary, "rb") as f:
            data = f.read()
        with open(renamed, "wb") as f:
            f.write(data)
        runs_before = pipeline_runs()
        warm = client.wait(client.submit_path(renamed)["id"])
        assert warm["metrics"]["from_cache"] is True
        assert pipeline_runs() == runs_before
        assert client.report(warm["id"])["binary"] == "other-name"

    def test_inline_resubmission_hits(self, client, demo_binary):
        client.wait(client.submit_path(demo_binary)["id"])
        with open(demo_binary, "rb") as f:
            data = f.read()
        warm = client.wait(client.submit_bytes("uploaded-copy", data)["id"])
        assert warm["metrics"]["from_cache"] is True

    def test_lookup_never_deletes_mismatched_entries(self, tmp_path):
        """The serving path (`ArtifactStore.lookup`) must not evict an
        entry that fails this client's key: it may still be valid under
        its own (regression test for cache thrash between clients whose
        binaries share a basename or dependency sets differ)."""
        from repro.core.artifacts import ArtifactStore

        store = ArtifactStore(str(tmp_path / "cache"))
        key = {"content_hash": "h1", "fingerprint": "f1", "dep_hashes": ["d1"]}
        store.put("report", "app", {"x": 1}, **key)
        # Same name, different content (a basename collision): miss,
        # but the entry survives.
        assert store.lookup("report", "app", content_hash="h2",
                            fingerprint="f1", dep_hashes=["d1"]) is None
        # Alias probe under different deps: also a miss, no deletion.
        assert store.lookup("report", "other", content_hash="h1",
                            fingerprint="f1", dep_hashes=["d2"]) is None
        assert store.counters("report")["invalidations"] == 0
        assert store.counters("report")["misses"] == 2
        # The original key still hits — directly or via the alias, and
        # an alias hit counts exactly one hit, no phantom miss.
        assert store.lookup("report", "renamed", **key) == {"x": 1}
        assert store.counters("report")["hits"] == 1
        assert store.counters("report")["misses"] == 2


class TestBatchIntegrity:
    def _stopped_server(self, tmp_path):
        service = AnalysisService(str(tmp_path / "state"), workers=4,
                                  queue_size=16)
        srv = ServiceServer(service, port=0)
        srv.start(executor=False)  # everything lands in one batch
        return service, srv

    def test_same_basename_different_content(self, tmp_path):
        """Two submissions whose files share a basename but differ in
        content must each get their own report (regression test for the
        report-swap when cached entries resolve before analyzed ones)."""
        dir_a = tmp_path / "a"
        dir_b = tmp_path / "b"
        dir_a.mkdir()
        dir_b.mkdir()
        _demo_program("appA", nr=39).save(str(dir_a / "nginx"))   # getpid
        _demo_program("appB", nr=102).save(str(dir_b / "nginx"))  # getuid
        service, srv = self._stopped_server(tmp_path)
        try:
            client = ServiceClient(srv.url)
            job_a = client.submit_path(str(dir_a / "nginx"))
            # Warm the cache for B's content under another name so B is
            # cache-served (resolves before A analyzes) in the batch.
            job_pre = client.submit_path(str(dir_b / "nginx"))
            job_b = client.submit_path(str(dir_b / "nginx"))
            service.start()
            report_a = client.report(client.wait(job_a["id"])["id"])
            client.wait(job_pre["id"])
            report_b = client.report(client.wait(job_b["id"])["id"])
            assert 39 in report_a["syscalls"] and 102 not in report_a["syscalls"]
            assert 102 in report_b["syscalls"] and 39 not in report_b["syscalls"]
        finally:
            srv.stop()

    def test_identical_submissions_in_one_batch_analyzed_once(self, tmp_path):
        """Thundering herd: N submissions of the same bytes in a single
        batch run one analysis; the twins are dedup-served."""
        path = str(tmp_path / "herd-bin")
        _demo_program("herd").save(path)
        service, srv = self._stopped_server(tmp_path)
        try:
            client = ServiceClient(srv.url)
            jobs = [client.submit_path(path) for __ in range(4)]
            runs_before = pipeline_runs()
            service.start()
            finished = [client.wait(j["id"]) for j in jobs]
            assert all(j["status"] == "done" for j in finished)
            assert sum(1 for j in finished
                       if not j["metrics"]["from_cache"]) == 1
            # One pipeline run for the binary (its libc-free, so no
            # interface runs) — not four.
            assert pipeline_runs() - runs_before == 1
        finally:
            srv.stop()


class TestIncrementalService:
    def test_stats_expose_incremental_totals(self, tmp_path, demo_binary):
        service = AnalysisService(
            str(tmp_path / "state"), workers=1, queue_size=8,
            incremental=True,
        )
        srv = ServiceServer(service, port=0)
        srv.start()
        try:
            client = ServiceClient(srv.url)
            job = client.wait(client.submit_path(demo_binary)["id"])
            assert job["status"] == "done"
            # Runtime-only counters surface as job metrics...
            assert job["metrics"]["functions_total"] == 1
            assert job["metrics"]["functions_reanalyzed"] == 1
            assert job["metrics"]["sites_total"] == 2
            assert job["metrics"]["sites_reexecuted"] == 2
            # ...and aggregate across jobs in /v1/stats.
            stats = client.stats()
            assert stats["incremental"] is True
            totals = stats["incremental_totals"]
            assert totals["functions_total"] == 1
            assert totals["functions_reanalyzed"] == 1
            assert totals["sites_total"] == 2
            assert totals["sites_reexecuted"] == 2
        finally:
            srv.stop()

    def test_cold_service_stats_have_no_incremental_totals(self, client):
        stats = client.stats()
        assert stats["incremental"] is False
        assert "incremental_totals" not in stats


class TestBackpressure:
    def test_queue_full_returns_429(self, tmp_path, demo_binary):
        service = AnalysisService(str(tmp_path / "state"), queue_size=3)
        srv = ServiceServer(service, port=0)
        srv.start(executor=False)  # nothing drains the queue
        try:
            # retries=0: this test counts *server-side* rejections, so
            # the client's 429 retry-with-backoff must stay out of it
            client = ServiceClient(srv.url, retries=0)
            for __ in range(3):
                client.submit_path(demo_binary)
            with pytest.raises(ServiceError) as excinfo:
                client.submit_path(demo_binary)
            assert excinfo.value.status == 429
            stats = client.stats()
            assert stats["queue"]["depth"] == 3
            assert stats["queue"]["rejected"] == 1
            # Draining the queue reopens admission.
            service.start()
            client.wait(client.jobs()[0]["id"])
            client.submit_path(demo_binary)
        finally:
            srv.stop()


class TestRestartRecovery:
    def test_queued_jobs_survive_restart(self, tmp_path, demo_binary):
        state_dir = str(tmp_path / "state")
        service = AnalysisService(state_dir, queue_size=8)
        srv = ServiceServer(service, port=0)
        srv.start(executor=False)
        client = ServiceClient(srv.url)
        ids = [client.submit_path(demo_binary)["id"] for __ in range(2)]
        srv.stop()  # daemon dies with jobs still queued

        revived = AnalysisService(state_dir, queue_size=8)
        assert revived.queue.stats()["recovered"] == 2
        srv2 = ServiceServer(revived, port=0)
        srv2.start()
        try:
            client2 = ServiceClient(srv2.url)
            for job_id in ids:
                job = client2.wait(job_id)
                assert job["status"] == "done"
                assert client2.report(job_id)["success"] is True
        finally:
            srv2.stop()

    def test_finished_results_survive_restart(self, tmp_path, demo_binary):
        state_dir = str(tmp_path / "state")
        service = AnalysisService(state_dir)
        srv = ServiceServer(service, port=0)
        srv.start()
        client = ServiceClient(srv.url)
        job_id = client.wait(client.submit_path(demo_binary)["id"])["id"]
        srv.stop()

        revived = ServiceServer(AnalysisService(state_dir), port=0)
        revived.start()
        try:
            client2 = ServiceClient(revived.url)
            assert client2.job(job_id)["status"] == "done"
            assert client2.report(job_id)["success"] is True
        finally:
            revived.stop()

    def test_running_jobs_are_requeued(self, tmp_path):
        queue = JobQueue(str(tmp_path / "jobs"), maxsize=4)
        job = queue.submit("analyze", {"path": "/x"})
        taken = queue.take_batch(4)
        assert taken[0].status == "running"
        # Simulate a crash: a fresh queue over the same directory.
        revived = JobQueue(str(tmp_path / "jobs"), maxsize=4)
        recovered = revived.get(job.id)
        assert recovered.status == "queued"
        assert revived.depth() == 1


class TestJobQueue:
    def test_bounded_submit(self, tmp_path):
        queue = JobQueue(str(tmp_path / "jobs"), maxsize=2)
        queue.submit("analyze", {"path": "/a"})
        queue.submit("analyze", {"path": "/b"})
        with pytest.raises(QueueFull):
            queue.submit("analyze", {"path": "/c"})
        assert queue.counters["rejected"] == 1

    def test_batch_groups_by_libdir(self, tmp_path):
        queue = JobQueue(str(tmp_path / "jobs"), maxsize=8)
        queue.submit("analyze", {"path": "/a", "libdir": "/libs1"})
        queue.submit("analyze", {"path": "/b", "libdir": "/libs2"})
        queue.submit("analyze", {"path": "/c", "libdir": "/libs1"})
        batch = queue.take_batch(8)
        assert [j.spec["path"] for j in batch] == ["/a", "/c"]
        assert queue.depth() == 1  # /libs2 job kept its place
        assert [j.spec["path"] for j in queue.take_batch(8)] == ["/b"]

    def test_take_batch_respects_max(self, tmp_path):
        queue = JobQueue(str(tmp_path / "jobs"), maxsize=8)
        for index in range(5):
            queue.submit("analyze", {"path": f"/bin{index}"})
        assert len(queue.take_batch(3)) == 3
        assert queue.depth() == 2


class TestErrorContract:
    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.job("job-999999")
        assert excinfo.value.status == 404

    def test_bad_spec_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.request("POST", "/v1/jobs", {"kind": "analyze"})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.request("POST", "/v1/jobs", {"kind": "bogus"})
        assert excinfo.value.status == 400

    def test_unreadable_path_fails_job(self, client):
        job = client.wait(client.submit_path("/nonexistent/binary")["id"])
        assert job["status"] == "failed"
        assert job["error"]
        with pytest.raises(ServiceError) as excinfo:
            client.report(job["id"])
        assert excinfo.value.status == 409

    def test_report_of_unfinished_job_409(self, tmp_path, demo_binary):
        service = AnalysisService(str(tmp_path / "state"))
        srv = ServiceServer(service, port=0)
        srv.start(executor=False)
        try:
            client = ServiceClient(srv.url)
            job = client.submit_path(demo_binary)
            with pytest.raises(ServiceError) as excinfo:
                client.report(job["id"])
            assert excinfo.value.status == 409
        finally:
            srv.stop()

    def test_filter_of_fleet_job_400(self, client, tmp_path):
        bindir = tmp_path / "bin"
        bindir.mkdir()
        _demo_program().save(str(bindir / "a"))
        job = client.wait(client.submit_directory(str(bindir))["id"])
        with pytest.raises(ServiceError) as excinfo:
            client.filter(job["id"])
        assert excinfo.value.status == 400

    def test_analysis_failure_is_a_done_job(self, client, tmp_path):
        # A dynamic binary with no resolvable libc: analysis fails, but
        # that is a *result*, not a service error.
        bundle = build_app("sqlite")
        binpath = str(tmp_path / "no-libs")
        bundle.program.save(binpath)
        job = client.wait(client.submit_path(binpath)["id"])
        assert job["status"] == "done"
        report = client.report(job["id"])
        assert report["success"] is False


class TestCliIntegration:
    def test_submit_cli_roundtrip(self, server, demo_binary, capsys):
        from repro.cli import main

        assert main(["submit", demo_binary, "--url", server.url]) == 0
        out = capsys.readouterr().out
        assert "syscalls" in out and "getpid" in out

    def test_submit_cli_json_and_filter(self, server, demo_binary, capsys):
        from repro.cli import main

        assert main(["submit", demo_binary, "--url", server.url,
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["result"]["success"] is True
        assert main(["submit", demo_binary, "--url", server.url,
                     "--filter"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["sound"] is True

    def test_submit_cli_unreachable_daemon(self, capsys, demo_binary):
        from repro.cli import main

        assert main(["submit", demo_binary,
                     "--url", "http://127.0.0.1:9"]) == 2

    def test_fleet_cli_exit_code_on_failures(self, tmp_path, capsys):
        """The exit-code satellite: per-binary failures exit 1."""
        from repro.cli import main

        bindir = tmp_path / "bin"
        bindir.mkdir()
        _demo_program("ok").save(str(bindir / "ok"))
        # Dynamic binary without its libraries: a per-binary failure.
        build_app("sqlite").program.save(str(bindir / "broken"))
        assert main(["fleet", str(bindir)]) == 1
        assert main(["fleet", str(bindir), "--json"]) == 1
        capsys.readouterr()
        # All-success directories still exit 0.
        os.remove(str(bindir / "broken"))
        assert main(["fleet", str(bindir)]) == 0
