"""Bitvector expression tests, including simplifier soundness properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symex import BVS, BVV, binop, concrete_eval, to_signed, truncate
from repro.symex.bitvec import _FOLDS, _mask


class TestFolding:
    def test_concrete_fold(self):
        assert binop("add", BVV(2), BVV(3)) == BVV(5)
        assert binop("sub", BVV(2), BVV(3)) == BVV((2 - 3) % 2**64)
        assert binop("xor", BVV(0xFF), BVV(0x0F)) == BVV(0xF0)

    def test_width_masking(self):
        assert binop("add", BVV(0xFFFFFFFF), BVV(1), width=32) == BVV(0)
        assert binop("shl", BVV(1), BVV(40), width=32) == BVV(0)

    def test_xor_self_symbolic_is_zero(self):
        x = BVS("x")
        assert binop("xor", x, x) == BVV(0)
        assert binop("sub", x, x) == BVV(0)

    def test_identity_elimination(self):
        x = BVS("x")
        assert binop("add", x, BVV(0)) is x
        assert binop("or", BVV(0), x) is x
        assert binop("and", x, BVV(0)) == BVV(0)
        assert binop("mul", BVV(0), x) == BVV(0)

    def test_symbolic_stays_symbolic(self):
        x = BVS("x")
        e = binop("add", x, BVV(4))
        assert not e.is_concrete
        assert e.value_or_none() is None

    def test_truncate(self):
        assert truncate(BVV(0x1_0000_0001), 32) == BVV(1)
        x = BVS("x")
        t = truncate(x, 32)
        assert not t.is_concrete

    def test_distinct_symbols_not_equal(self):
        assert BVS("x") != BVS("x")  # fresh uids
        x = BVS("x")
        assert binop("xor", x, BVS("x")).value_or_none() is None


class TestSigned:
    def test_to_signed(self):
        assert to_signed(2**64 - 1) == -1
        assert to_signed(5) == 5
        assert to_signed(0x80000000, 32) == -(2**31)


_OPS = ["add", "sub", "xor", "and", "or", "mul", "shl", "shr"]


class TestSimplifierSoundness:
    @settings(max_examples=500, deadline=None)
    @given(
        op=st.sampled_from(_OPS),
        a=st.integers(0, 2**64 - 1),
        b=st.integers(0, 2**64 - 1),
        width=st.sampled_from([32, 64]),
    )
    def test_fold_matches_reference(self, op, a, b, width):
        expr = binop(op, BVV(a), BVV(b), width)
        assert expr.is_concrete
        assert expr.value_or_none() == _mask(_FOLDS[op](a, b), width)

    @settings(max_examples=500, deadline=None)
    @given(
        op=st.sampled_from(_OPS),
        a=st.integers(0, 2**64 - 1),
        x=st.integers(0, 2**64 - 1),
        width=st.sampled_from([32, 64]),
        sym_on_left=st.booleans(),
    )
    def test_simplified_symbolic_matches_substitution(self, op, a, x, width, sym_on_left):
        """Simplifications must preserve the value under any substitution."""
        sym = BVS("x")
        if sym_on_left:
            expr = binop(op, sym, BVV(a), width)
            expected = _mask(_FOLDS[op](x, a), width)
        else:
            expr = binop(op, BVV(a), sym, width)
            expected = _mask(_FOLDS[op](a, x), width)
        evaluated = concrete_eval(expr, {sym.uid: x})
        assert evaluated == expected
