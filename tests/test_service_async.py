"""Asyncio daemon under concurrency: stress, dedup, client robustness.

PR-6 satellites, all against :class:`AsyncServiceServer` (the asyncio
front end) over real sockets:

* 500+ interleaved submit/poll/fetch client conversations against one
  daemon instance, checking the 202/404/409 API contract holds under
  load and every submission completes;
* bounded-queue backpressure (429) under concurrent submission bursts,
  with the daemon staying healthy throughout;
* thundering herd: many clients concurrently submitting *identical*
  bytes cause exactly one pipeline execution — everyone else is served
  from the content-addressed artifact store;
* ``FleetReport.merge()`` of partitioned runs equals the
  single-run report modulo runtime fields;
* the :class:`ServiceClient` robustness contract — a daemon that
  accepts connections but never answers raises after ``read_timeout``
  instead of blocking forever, and 429s are retried with bounded
  backoff.
"""

import socket
import threading
import time

import pytest

from repro.core.fleet import FleetAnalyzer, FleetReport
from repro.core.pipeline import pipeline_runs
from repro.corpus import ProgramBuilder, make_debian_corpus
from repro.service import (
    AnalysisService,
    AsyncServiceServer,
    ServiceClient,
    ServiceError,
)
from repro.service.client import MAX_BACKOFF_SECONDS
from repro.x86 import EAX, RDI


def _program_bytes(nr: int) -> bytes:
    p = ProgramBuilder(f"async-{nr}")
    with p.function("_start"):
        p.asm.mov(EAX, nr)
        p.asm.syscall()
        p.asm.mov(EAX, 60)
        p.asm.xor(RDI, RDI)
        p.asm.syscall()
        p.asm.hlt()
    p.set_entry("_start")
    return p.build().elf_bytes


@pytest.fixture(scope="module")
def payloads():
    # distinct first syscalls -> distinct bytes -> distinct cache keys
    return {nr: _program_bytes(nr) for nr in (0, 1, 2, 3, 9, 12, 21, 39)}


class TestStress:
    N_THREADS = 25
    CONVERSATIONS_EACH = 20  # 25 x 20 = 500 client conversations

    def test_500_interleaved_conversations(self, tmp_path, payloads):
        service = AnalysisService(
            str(tmp_path / "state"), workers=2, queue_size=64,
        )
        server = AsyncServiceServer(service, port=0)
        server.start()
        numbers = sorted(payloads)
        outcomes = {"done": 0, "not_found": 0, "not_ready": 0}
        errors: list[str] = []
        lock = threading.Lock()

        def conversation(thread_index: int, turn: int) -> None:
            client = ServiceClient(server.url, timeout=60.0)
            nr = numbers[(thread_index + turn) % len(numbers)]
            job = client.submit_bytes(f"stress-{nr}", payloads[nr])
            assert job["status"] in ("queued", "running", "done")
            if turn % 5 == 0:
                # a result fetched before completion must 409, never
                # block or 500; after completion it must serve
                try:
                    client.report(job["id"])
                except ServiceError as error:
                    assert error.status == 409, error
                    with lock:
                        outcomes["not_ready"] += 1
            if turn % 7 == 0:
                try:
                    client.job("job-does-not-exist")
                except ServiceError as error:
                    assert error.status == 404, error
                    with lock:
                        outcomes["not_found"] += 1
            done = client.wait(job["id"], timeout=60.0, poll=0.02)
            assert done["status"] == "done", done.get("error", "")
            report = client.report(job["id"])
            assert nr in report["syscalls"] and 60 in report["syscalls"]
            with lock:
                outcomes["done"] += 1

        def client_main(thread_index: int) -> None:
            for turn in range(self.CONVERSATIONS_EACH):
                try:
                    conversation(thread_index, turn)
                except Exception as error:  # surfaced collectively below
                    with lock:
                        errors.append(f"t{thread_index}/{turn}: {error!r}")

        threads = [
            threading.Thread(target=client_main, args=(i,), daemon=True)
            for i in range(self.N_THREADS)
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(240.0)
        finally:
            server.stop()

        assert not errors, errors[:10]
        assert outcomes["done"] == self.N_THREADS * self.CONVERSATIONS_EACH
        assert outcomes["not_found"] > 0
        # the daemon survived 500 conversations; stats still coherent
        assert outcomes["done"] >= 500

    def test_backpressure_429_under_burst(self, tmp_path, payloads):
        """A full queue answers 429 (with Retry-After) under a
        concurrent burst, and the daemon keeps serving afterwards."""
        service = AnalysisService(
            str(tmp_path / "state"),
            queue_size=2,
            shared=True, dispatcher=False,  # nothing drains the queue
        )
        server = AsyncServiceServer(service, port=0)
        server.start(executor=False)
        rejected = []
        accepted = []
        lock = threading.Lock()

        def submit_one(index: int) -> None:
            client = ServiceClient(server.url, timeout=10.0, retries=0)
            blob = payloads[sorted(payloads)[index % len(payloads)]]
            try:
                job = client.submit_bytes(f"burst-{index}", blob)
                with lock:
                    accepted.append(job["id"])
            except ServiceError as error:
                assert error.status == 429, error
                with lock:
                    rejected.append(index)

        threads = [
            threading.Thread(target=submit_one, args=(i,), daemon=True)
            for i in range(12)
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30.0)
            assert len(accepted) == 2, "queue admitted more than capacity"
            assert len(rejected) == 10
            # the daemon is still alive and coherent after the burst
            client = ServiceClient(server.url, timeout=10.0)
            assert client.health()["status"] == "ok"
            assert client.stats()["queue"]["rejected"] >= 10
        finally:
            server.stop()


class TestThunderingHerd:
    def test_identical_bytes_analyzed_once(self, tmp_path, payloads):
        """20 concurrent submissions of the same binary: one pipeline
        execution, nineteen cache-served results, all identical."""
        service = AnalysisService(
            str(tmp_path / "state"), workers=2, queue_size=64,
        )
        server = AsyncServiceServer(service, port=0)
        server.start()
        blob = payloads[39]
        results: list[dict] = []
        errors: list[str] = []
        lock = threading.Lock()
        barrier = threading.Barrier(20)

        def herd_member(index: int) -> None:
            client = ServiceClient(server.url, timeout=60.0)
            barrier.wait()
            try:
                job = client.submit_bytes("herd-app", blob)
                done = client.wait(job["id"], timeout=60.0, poll=0.02)
                assert done["status"] == "done"
                with lock:
                    results.append(client.report(job["id"]))
            except Exception as error:
                with lock:
                    errors.append(repr(error))

        runs_before = pipeline_runs()
        threads = [
            threading.Thread(target=herd_member, args=(i,), daemon=True)
            for i in range(20)
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(120.0)
        finally:
            server.stop()

        assert not errors, errors[:5]
        assert len(results) == 20
        assert pipeline_runs() - runs_before == 1, (
            "identical bytes must be analyzed exactly once"
        )
        first = results[0]
        assert all(r["syscalls"] == first["syscalls"] for r in results)


class TestFleetReportMerge:
    def test_merged_partitions_equal_single_run(self, tmp_path):
        corpus = make_debian_corpus(scale=0.04, seed=23)
        images = [b.image for b in corpus.binaries]
        assert len(images) >= 3

        single = FleetAnalyzer(
            resolver=corpus.make_resolver(),
            cache_dir=str(tmp_path / "cache-single"),
        ).analyze_images(images)

        # partition into three "workers", each with its own cache
        parts = [images[0::3], images[1::3], images[2::3]]
        shards = [
            FleetAnalyzer(
                resolver=corpus.make_resolver(),
                cache_dir=str(tmp_path / f"cache-{i}"),
            ).analyze_images(part)
            for i, part in enumerate(parts) if part
        ]
        merged = FleetReport.merge(shards)

        # merge() canonicalizes entry order by name; put the single run
        # through the same canonicalization before comparing
        assert merged.to_json(include_runtime=False) == \
            FleetReport.merge([single]).to_json(include_runtime=False)
        # runtime fields (timings, per-run cache counters) may differ —
        # that is exactly why they are excluded from the canonical form
        assert len(merged.entries) == len(single.entries)


class _HungServer:
    """Accepts TCP connections and never sends a byte."""

    def __init__(self):
        self.sock = socket.create_server(("127.0.0.1", 0))
        self.port = self.sock.getsockname()[1]
        self._accepted: list[socket.socket] = []
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self):
        self.sock.settimeout(0.2)
        while not self._stop.is_set():
            try:
                conn, _ = self.sock.accept()
                self._accepted.append(conn)  # hold open, stay silent
            except socket.timeout:
                continue
            except OSError:
                return

    def close(self):
        self._stop.set()
        self._thread.join(2.0)
        for conn in self._accepted:
            conn.close()
        self.sock.close()


class _FlakyServer:
    """Answers 429 (with Retry-After) n times, then 200."""

    def __init__(self, reject_first: int):
        self.reject_first = reject_first
        self.requests = 0
        self.sock = socket.create_server(("127.0.0.1", 0))
        self.port = self.sock.getsockname()[1]
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self):
        while True:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            with conn:
                try:
                    conn.recv(65536)
                except OSError:
                    continue
                self.requests += 1
                if self.requests <= self.reject_first:
                    body = b'{"error": "queue full"}'
                    head = (
                        "HTTP/1.1 429 Too Many Requests\r\n"
                        "Content-Type: application/json\r\n"
                        "Retry-After: 1\r\n"
                        f"Content-Length: {len(body)}\r\n"
                        "Connection: close\r\n\r\n"
                    )
                else:
                    body = b'{"ok": true}'
                    head = (
                        "HTTP/1.1 200 OK\r\n"
                        "Content-Type: application/json\r\n"
                        f"Content-Length: {len(body)}\r\n"
                        "Connection: close\r\n\r\n"
                    )
                try:
                    conn.sendall(head.encode() + body)
                except OSError:
                    continue

    def close(self):
        self.sock.close()


class TestClientRobustness:
    def test_hung_socket_raises_after_read_timeout(self):
        """The satellite fix: a daemon that accepts but never answers
        must raise, not block the caller forever."""
        hung = _HungServer()
        client = ServiceClient(
            f"http://127.0.0.1:{hung.port}", read_timeout=0.3,
            connect_timeout=2.0, retries=0,
        )
        try:
            t0 = time.monotonic()
            with pytest.raises(ServiceError) as excinfo:
                client.health()
            elapsed = time.monotonic() - t0
        finally:
            hung.close()
        assert excinfo.value.status == 0
        assert "timed out" in str(excinfo.value)
        assert elapsed < 5.0, "read timeout did not bound the wait"

    def test_unreachable_daemon_raises_transport_error(self):
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more
        client = ServiceClient(f"http://127.0.0.1:{port}",
                               timeout=2.0, retries=0)
        with pytest.raises(ServiceError) as excinfo:
            client.health()
        assert excinfo.value.status == 0
        assert "cannot reach" in str(excinfo.value)

    def test_429_retried_with_backoff_until_success(self):
        flaky = _FlakyServer(reject_first=2)
        client = ServiceClient(
            f"http://127.0.0.1:{flaky.port}",
            timeout=5.0, retries=3, backoff=0.01,
        )
        try:
            assert client.request("GET", "/v1/healthz") == {"ok": True}
            assert flaky.requests == 3  # 2 rejections + 1 success
        finally:
            flaky.close()

    def test_429_raises_once_retries_exhausted(self):
        flaky = _FlakyServer(reject_first=100)
        client = ServiceClient(
            f"http://127.0.0.1:{flaky.port}",
            timeout=5.0, retries=2, backoff=0.01,
        )
        try:
            with pytest.raises(ServiceError) as excinfo:
                client.request("GET", "/v1/healthz")
            assert excinfo.value.status == 429
            assert flaky.requests == 3  # initial try + 2 retries
        finally:
            flaky.close()

    def test_retry_delay_is_bounded(self):
        client = ServiceClient("http://127.0.0.1:1", backoff=0.1)
        # exponential growth and huge Retry-After are both capped
        assert client._retry_delay(0, None) == pytest.approx(0.1)
        assert client._retry_delay(1, None) == pytest.approx(0.2)
        assert client._retry_delay(30, None) == MAX_BACKOFF_SECONDS
        assert client._retry_delay(0, "99999") == MAX_BACKOFF_SECONDS
        assert client._retry_delay(0, "not-a-number") == pytest.approx(0.1)
