"""Concrete emulator tests: execution, tracing, linking, filtering."""

import pytest

from repro.corpus.progbuilder import ProgramBuilder
from repro.errors import EmulationError
from repro.loader import LibraryResolver
from repro.emu import run_traced, trace_test_suite
from repro.syscalls import number_of
from repro.x86 import EAX, Memory, RAX, RBX, RDI, RDX, RSI, RSP


def build_exit42():
    p = ProgramBuilder("exit42")
    with p.function("_start"):
        p.asm.mov(EAX, 60)
        p.asm.mov(RDI, 42)
        p.asm.syscall()
        p.asm.hlt()
    p.set_entry("_start")
    return p.build()


class TestBasicExecution:
    def test_exit_status(self):
        result = run_traced(build_exit42().image)
        assert result.exit_status == 42
        assert result.syscall_names == {"exit"}

    def test_trace_records_args(self):
        result = run_traced(build_exit42().image)
        rec = result.records[0]
        assert rec.nr == 60
        assert rec.args[0] == 42

    def test_arithmetic_and_branches(self):
        p = ProgramBuilder("arith")
        with p.function("_start"):
            p.asm.mov(RBX, 10)
            p.asm.mov(RDI, 0)
            p.asm.label("loop")
            p.asm.add(RDI, RBX)
            p.asm.sub(RBX, 1)
            p.asm.cmp(RBX, 0)
            p.asm.jcc("ne", "loop")
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        result = run_traced(p.build().image)
        assert result.exit_status == 55  # sum(1..10)

    def test_stack_and_calls(self):
        p = ProgramBuilder("calls")
        with p.function("callee"):
            p.asm.mov(RDI, 7)
            p.asm.ret()
        with p.function("_start"):
            p.asm.call("callee")
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        assert run_traced(p.build().image).exit_status == 7

    def test_memory_roundtrip(self):
        p = ProgramBuilder("mem")
        with p.function("_start"):
            p.asm.sub(RSP, 0x10)
            p.asm.mov(Memory(base=RSP, disp=8), 99)
            p.asm.mov(RDI, Memory(base=RSP, disp=8))
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        assert run_traced(p.build().image).exit_status == 99

    def test_function_pointer_dispatch(self):
        p = ProgramBuilder("fptr")
        with p.function("handler"):
            p.asm.mov(RDI, 5)
            p.asm.ret()
        with p.function("_start"):
            p.asm.lea_rip(RSI, "handler")
            p.asm.call_reg(RSI)
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        assert run_traced(p.build().image).exit_status == 5

    def test_inputs_drive_branches(self):
        p = ProgramBuilder("branchy")
        with p.function("_start"):
            p.asm.cmp(RDI, 1)
            p.asm.jcc("e", "one")
            p.asm.mov(EAX, 39)  # getpid
            p.asm.syscall()
            p.asm.jmp("out")
            p.asm.label("one")
            p.asm.mov(EAX, 102)  # getuid
            p.asm.syscall()
            p.asm.label("out")
            p.asm.mov(EAX, 60)
            p.asm.xor(RDI, RDI)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        prog = p.build()
        r0 = run_traced(prog.image, inputs=(0,))
        r1 = run_traced(prog.image, inputs=(1,))
        assert "getpid" in r0.syscall_names and "getuid" not in r0.syscall_names
        assert "getuid" in r1.syscall_names and "getpid" not in r1.syscall_names

    def test_test_suite_union(self):
        p = ProgramBuilder("suite")
        with p.function("_start"):
            p.asm.cmp(RDI, 1)
            p.asm.jcc("e", "one")
            p.asm.mov(EAX, 39)
            p.asm.syscall()
            p.asm.jmp("out")
            p.asm.label("one")
            p.asm.mov(EAX, 102)
            p.asm.syscall()
            p.asm.label("out")
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        prog = p.build()
        union, runs = trace_test_suite(prog.image, [(0,), (1,)])
        assert union == {39, 102, 60}
        assert len(runs) == 2


class TestDynamicLinking:
    def _libc(self):
        lib = ProgramBuilder("libtiny.so", soname="libtiny.so", text_base=0x7F0000001000)
        with lib.function("do_write", exported=True):
            lib.asm.mov(EAX, 1)
            lib.asm.syscall()
            lib.asm.ret()
        return lib.build()

    def test_cross_image_call_via_got(self):
        lib = self._libc()
        p = ProgramBuilder("app", pic=True, needed=["libtiny.so"])
        with p.function("_start", exported=True):
            p.call_import("do_write")
            p.asm.mov(EAX, 60)
            p.asm.xor(RDI, RDI)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        prog = p.build()
        resolver = LibraryResolver(library_map={"libtiny.so": lib.elf_bytes})
        result = run_traced(prog.image, resolver)
        assert result.syscall_names == {"write", "exit"}

    def test_plt_stub_call(self):
        lib = self._libc()
        p = ProgramBuilder("app2", pic=True, needed=["libtiny.so"])
        p.make_plt_stub("do_write")
        with p.function("_start", exported=True):
            p.call_plt("do_write")
            p.asm.mov(EAX, 60)
            p.asm.xor(RDI, RDI)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        prog = p.build()
        resolver = LibraryResolver(library_map={"libtiny.so": lib.elf_bytes})
        result = run_traced(prog.image, resolver)
        assert result.syscall_names == {"write", "exit"}

    def test_unresolved_import_fails_at_link(self):
        p = ProgramBuilder("app3", pic=True, needed=["libtiny.so"])
        with p.function("_start", exported=True):
            p.call_import("missing_fn")
            p.asm.hlt()
        p.set_entry("_start")
        prog = p.build()
        lib = self._libc()
        resolver = LibraryResolver(library_map={"libtiny.so": lib.elf_bytes})
        with pytest.raises(EmulationError):
            run_traced(prog.image, resolver)


class TestFiltering:
    def test_filter_allows_traced_set(self):
        prog = build_exit42()
        result = run_traced(prog.image, filter_allowed={60})
        assert result.exit_status == 42
        assert result.killed_by_filter is None

    def test_filter_kills_on_violation(self):
        prog = build_exit42()
        result = run_traced(prog.image, filter_allowed={number_of("read")})
        assert result.exit_status is None
        assert result.killed_by_filter == 60

    def test_read_script(self):
        p = ProgramBuilder("reader")
        p.add_zeroed("buf", 16)
        with p.function("_start"):
            p.asm.xor(EAX, EAX)  # read
            p.asm.xor(RDI, RDI)
            p.asm.lea_rip(RSI, "buf")
            p.asm.mov(RDX, 4)
            p.asm.syscall()
            p.asm.mov(RDI, RAX)  # exit status = bytes read
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        result = run_traced(p.build().image, read_script=b"abcd")
        assert result.exit_status == 4
