"""Differential equivalence harness for incremental analysis.

The incremental pipeline's whole contract is *observational equivalence
with the cold pipeline*: for any binary — including one rebuilt with K
functions changed — the incremental path must produce a byte-identical
report (modulo runtime-only fields) while re-analyzing only the changed
functions plus their reverse-dependency cone.

These tests drive that contract end to end with the in-repo mutator
(:mod:`repro.corpus.mutate`): size-preserving immediate edits that change
K function bodies and nothing else.  Fault cases corrupt or truncate
cached ``funccfg``/``funcid`` entries and require graceful degradation to
a per-function (or per-site) cold re-analysis (miss, never crash), on
flat and sharded stores alike.

The symex tier gets the same treatment: ``sites_total`` /
``sites_reexecuted`` are pinned against an independent oracle — the
anchors a cold pipeline enumerates, intersected with the identification
cone (callers* and callees* of the change) — and a dedicated caller-cone
program proves that mutating a *callee* (an in-image wrapper)
re-identifies the wrapper-calling callers while unrelated functions
replay from cache.
"""

import glob
import os

import pytest

from repro.cfg.funccfg import product_name, scan_image
from repro.cfg.partition import FunctionPartition
from repro.core import (
    ArtifactStore,
    BSideAnalyzer,
    PersistentInterfaceStore,
    ShardedArtifactStore,
)
from repro.core.artifacts import _safe_filename
from repro.core.identify import wrapper_call_blocks
from repro.core.pipeline import (
    AnalysisContext,
    CfgRecoveryPass,
    PassPipeline,
    PipelineConfig,
    ReachabilityPass,
    SiteDiscoveryPass,
    WrapperDetectionPass,
)
from repro.core.report import AnalysisBudget
from repro.corpus.apps import APP_NAMES, build_app
from repro.corpus.mutate import mutate_program, mutate_regions
from repro.loader.image import LoadedImage
from repro.x86.decoder import decode_all


def _incremental_analyzer(bundle, store):
    return BSideAnalyzer(
        resolver=bundle.resolver,
        budget=AnalysisBudget(),
        interface_store=PersistentInterfaceStore(store=store),
        artifact_store=store,
        incremental=True,
    )


def _cold_analyzer(bundle):
    return BSideAnalyzer(resolver=bundle.resolver, budget=AnalysisBudget())


def _stable(report) -> str:
    """The report serialization with runtime-only fields stripped."""
    return report.to_json(include_runtime=False)


def _scan(image: LoadedImage):
    insns = decode_all(image.text_bytes, image.text_base)
    return scan_image(image, insns, {insn.addr: insn for insn in insns})


def _expected_reanalysis(image: LoadedImage, changed: list[int]) -> set[int]:
    """Region starts the incremental pass must re-analyze: every region
    whose closure hash moved (changed functions plus transitive callers)
    plus any region that is never cacheable (unaligned decode)."""
    scan = _scan(image)
    cone = FunctionPartition.dependency_cone(scan.refs, set(changed))
    unaligned = {
        rs.start for rs in scan.regions.values() if not rs.aligned
    }
    return cone | unaligned


def _anchor_addrs(image: LoadedImage) -> list[int]:
    """Identification anchors a cold pipeline visits, independently
    re-derived: plain-site instruction addresses plus wrapper call-site
    block addresses (the oracle for ``sites_total``)."""
    ctx = AnalysisContext(
        image=image,
        roots=[image.entry] if image.entry else [],
        budget=AnalysisBudget(),
        config=PipelineConfig(),
    )
    PassPipeline([
        CfgRecoveryPass(), ReachabilityPass(),
        SiteDiscoveryPass(), WrapperDetectionPass(),
    ]).run(ctx)
    anchors = [
        site.insn_addr
        for site in ctx.sites
        if ctx.wrappers.get(site.func_entry) is None
    ]
    for info in ctx.wrappers.values():
        if info is None or info.param is None:
            continue
        anchors.extend(wrapper_call_blocks(ctx.cfg, info))
    return anchors


def _expected_sites(image: LoadedImage, changed: list[int]) -> tuple[int, int]:
    """``(sites_total, sites_reexecuted)`` the incremental symex tier
    must report for a mutation: anchors whose region lies in the
    identification cone (callers* and callees* of the change) or in a
    never-cacheable (unaligned) region re-execute; the rest replay."""
    scan = _scan(image)
    cone = FunctionPartition.identification_cone(scan.refs, set(changed))
    stale = cone | {
        rs.start for rs in scan.regions.values() if not rs.aligned
    }
    anchors = _anchor_addrs(image)
    reexecuted = sum(
        1 for addr in anchors
        if scan.partition.region_containing(addr).start in stale
    )
    return len(anchors), reexecuted


def _prune_derived(store) -> None:
    """Drop every artifact that would short-circuit a re-run, keeping
    only the per-function ``funccfg``/``funcid`` products (and
    interfaces)."""
    for kind in ("report", "wrappers", "cfg"):
        store.prune(kind)


def _entry_files(root: str, kind: str) -> list[str]:
    files = glob.glob(os.path.join(root, "**", f"*.{kind}.json"),
                      recursive=True)
    assert files, f"no {kind} entries under {root}"
    return files


def _funccfg_files(root: str) -> list[str]:
    return _entry_files(root, "funccfg")


def _funcid_files(root: str) -> list[str]:
    return _entry_files(root, "funcid")


# ---------------------------------------------------------------------------
# Differential equivalence: mutated rebuilds
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("k", [1, 3, 10])
@pytest.mark.parametrize("name", APP_NAMES)
def test_incremental_equals_cold_on_mutation(name, k, tmp_path):
    bundle = build_app(name)
    store = ArtifactStore(str(tmp_path / "cache"))
    warm = _incremental_analyzer(bundle, store)
    original = LoadedImage.from_bytes(name, bundle.program.elf_bytes)
    warm_report = warm.analyze(original, modules=bundle.module_images)
    assert warm_report.success
    assert warm_report.functions_total == len(
        FunctionPartition.from_image(original)
    )
    # Cold store: every function was analyzed live, every site executed.
    assert warm_report.functions_reanalyzed == warm_report.functions_total
    assert warm_report.sites_reexecuted == warm_report.sites_total

    mutated = mutate_program(bundle.program.elf_bytes, name, k, seed=k)
    incremental = _incremental_analyzer(bundle, store)
    inc_report = incremental.analyze(
        mutated.image, modules=bundle.module_images
    )
    cold_report = _cold_analyzer(bundle).analyze(
        mutated.image, modules=bundle.module_images
    )

    assert _stable(inc_report) == _stable(cold_report)
    expected = _expected_reanalysis(mutated.image, mutated.changed)
    assert inc_report.functions_reanalyzed == len(expected)
    assert inc_report.functions_total == len(
        FunctionPartition.from_image(mutated.image)
    )
    # The mutation touched K functions; the cone can only be larger.
    assert len(expected) >= len(mutated.changed)
    # Symex tier: exactly the anchors in the identification cone (plus
    # never-cacheable regions) re-executed; everything else replayed.
    sites_total, sites_reexecuted = _expected_sites(
        mutated.image, mutated.changed
    )
    assert inc_report.sites_total == sites_total
    assert inc_report.sites_reexecuted == sites_reexecuted
    assert inc_report.sites_reexecuted <= inc_report.sites_total


def test_unchanged_rerun_reanalyzes_nothing(tmp_path):
    bundle = build_app("redis")
    store = ArtifactStore(str(tmp_path / "cache"))
    image = LoadedImage.from_bytes("redis", bundle.program.elf_bytes)
    first = _incremental_analyzer(bundle, store).analyze(image)
    _prune_derived(store)
    rerun_store = ArtifactStore(str(tmp_path / "cache"))
    second = _incremental_analyzer(bundle, rerun_store).analyze(image)
    assert _stable(first) == _stable(second)
    assert second.functions_total == first.functions_total
    assert second.functions_reanalyzed == 0
    counters = rerun_store.counters("funccfg")
    assert counters["hits"] == second.functions_total
    assert counters["misses"] == 0
    # Symex tier: every identification anchor replayed from cache.
    assert first.sites_total > 0
    assert second.sites_total == first.sites_total
    assert second.sites_reexecuted == 0
    funcid = rerun_store.counters("funcid")
    assert funcid["hits"] == second.functions_total
    assert funcid["misses"] == 0


# ---------------------------------------------------------------------------
# Fault injection: corrupt / truncated funccfg entries
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("layout", ["flat", "sharded"])
def test_corrupt_funccfg_degrades_to_cold(layout, tmp_path):
    bundle = build_app("nginx")
    root = str(tmp_path / "cache")
    make_store = (
        (lambda: ArtifactStore(root)) if layout == "flat"
        else (lambda: ShardedArtifactStore(root, shards=2))
    )
    store = make_store()
    image = LoadedImage.from_bytes("nginx", bundle.program.elf_bytes)
    first = _incremental_analyzer(bundle, store).analyze(
        image, modules=bundle.module_images
    )
    for path in _funccfg_files(root):
        with open(path, "wb") as f:
            f.write(b"\x00garbage, not json\xff")
    _prune_derived(store)
    rerun = _incremental_analyzer(bundle, make_store()).analyze(
        image, modules=bundle.module_images
    )
    assert _stable(rerun) == _stable(first)
    # Every entry was unusable: full per-function cold re-analysis.
    assert rerun.functions_reanalyzed == rerun.functions_total


def test_truncated_funcid_entry_is_a_per_region_miss(tmp_path):
    bundle = build_app("memcached")
    root = str(tmp_path / "cache")
    image = LoadedImage.from_bytes("memcached", bundle.program.elf_bytes)
    first = _incremental_analyzer(bundle, ArtifactStore(root)).analyze(image)
    assert first.sites_total > 0
    # Pick the region owning the most identification anchors and
    # truncate exactly its funcid entry.
    scan = _scan(image)
    by_region: dict[int, int] = {}
    for addr in _anchor_addrs(image):
        start = scan.partition.region_containing(addr).start
        by_region[start] = by_region.get(start, 0) + 1
    victim_start = max(by_region, key=lambda s: (by_region[s], -s))
    victim = os.path.join(
        root,
        _safe_filename(product_name("memcached", victim_start), "funcid"),
    )
    assert victim in _funcid_files(root)
    data = open(victim, "rb").read()
    with open(victim, "wb") as f:
        f.write(data[: len(data) // 2])
    _prune_derived(ArtifactStore(root))
    rerun = _incremental_analyzer(bundle, ArtifactStore(root)).analyze(image)
    assert _stable(rerun) == _stable(first)
    assert rerun.functions_reanalyzed == 0
    # Only the victim region's anchors re-executed.
    assert rerun.sites_total == first.sites_total
    assert rerun.sites_reexecuted == by_region[victim_start]
    # The miss was re-stored: a further run replays everything again.
    _prune_derived(ArtifactStore(root))
    healed = _incremental_analyzer(bundle, ArtifactStore(root)).analyze(image)
    assert _stable(healed) == _stable(first)
    assert healed.sites_reexecuted == 0


@pytest.mark.parametrize("layout", ["flat", "sharded"])
def test_corrupt_funcid_degrades_to_site_misses(layout, tmp_path):
    bundle = build_app("nginx")
    root = str(tmp_path / "cache")
    make_store = (
        (lambda: ArtifactStore(root)) if layout == "flat"
        else (lambda: ShardedArtifactStore(root, shards=2))
    )
    image = LoadedImage.from_bytes("nginx", bundle.program.elf_bytes)
    first = _incremental_analyzer(bundle, make_store()).analyze(
        image, modules=bundle.module_images
    )
    assert first.sites_total > 0
    for path in _funcid_files(root):
        with open(path, "wb") as f:
            f.write(b"\x00garbage, not json\xff")
    _prune_derived(make_store())
    rerun = _incremental_analyzer(bundle, make_store()).analyze(
        image, modules=bundle.module_images
    )
    assert _stable(rerun) == _stable(first)
    # funccfg entries survived, so no function re-analysis — but every
    # identification anchor lost its cached product and re-executed.
    steady_funcs = len(_expected_reanalysis(image, []))
    assert rerun.functions_reanalyzed == steady_funcs
    assert rerun.sites_total == first.sites_total
    assert rerun.sites_reexecuted == rerun.sites_total
    # The misses were re-stored: a further run replays everything.
    sites_total, steady_sites = _expected_sites(image, [])
    _prune_derived(make_store())
    healed = _incremental_analyzer(bundle, make_store()).analyze(
        image, modules=bundle.module_images
    )
    assert _stable(healed) == _stable(first)
    assert healed.sites_total == sites_total
    assert healed.sites_reexecuted == steady_sites


def test_truncated_funccfg_entry_is_a_single_miss(tmp_path):
    bundle = build_app("memcached")
    root = str(tmp_path / "cache")
    image = LoadedImage.from_bytes("memcached", bundle.program.elf_bytes)
    first = _incremental_analyzer(bundle, ArtifactStore(root)).analyze(image)
    victim = sorted(_funccfg_files(root))[0]
    data = open(victim, "rb").read()
    with open(victim, "wb") as f:
        f.write(data[: len(data) // 2])
    _prune_derived(ArtifactStore(root))
    rerun = _incremental_analyzer(bundle, ArtifactStore(root)).analyze(image)
    assert _stable(rerun) == _stable(first)
    assert rerun.functions_reanalyzed == 1
    # The miss was re-stored: a further run is all-hit again.
    _prune_derived(ArtifactStore(root))
    healed = _incremental_analyzer(bundle, ArtifactStore(root)).analyze(image)
    assert _stable(healed) == _stable(first)
    assert healed.functions_reanalyzed == 0


# ---------------------------------------------------------------------------
# Caller-cone invalidation: mutating a callee re-identifies its callers
# ---------------------------------------------------------------------------


def _wrapper_program():
    """A program whose identification crosses function boundaries.

    ``wrapnr`` is an in-image syscall wrapper (number arrives in
    ``%rdi``); ``alpha``/``beta`` call it with concrete numbers, so
    *their* identification records anchor on call sites that depend on
    the callee's classification.  ``gamma`` is an unrelated plain site.
    The ``cmp`` immediate in ``wrapnr`` is an analysis-neutral mutable
    site: editing it moves only body hashes, never the syscall set.
    """
    from repro.corpus import ProgramBuilder
    from repro.x86 import EAX, RAX, RDI

    p = ProgramBuilder("callercone")
    with p.function("wrapnr"):
        p.asm.cmp(RDI, 0x40)
        p.asm.mov(RAX, RDI)
        p.asm.syscall()
        p.asm.ret()
    with p.function("alpha"):
        p.asm.mov(RDI, 39)
        p.asm.call("wrapnr")
        p.asm.ret()
    with p.function("beta"):
        p.asm.mov(RDI, 60)
        p.asm.call("wrapnr")
        p.asm.ret()
    with p.function("gamma"):
        p.asm.mov(EAX, 39)
        p.asm.syscall()
        p.asm.ret()
    with p.function("_start"):
        p.asm.call("alpha")
        p.asm.call("beta")
        p.asm.call("gamma")
        p.asm.mov(EAX, 231)
        p.asm.syscall()
        p.asm.hlt()
    p.set_entry("_start")
    return p.build()


def _region_start(image: LoadedImage, name: str) -> int:
    for region in FunctionPartition.from_image(image):
        if region.name == name:
            return region.start
    raise AssertionError(f"no region named {name!r}")


def _standalone_analyzer(store=None):
    return BSideAnalyzer(
        budget=AnalysisBudget(),
        artifact_store=store,
        incremental=store is not None,
    )


def test_mutating_wrapper_callee_reidentifies_callers(tmp_path):
    prog = _wrapper_program()
    root = str(tmp_path / "cache")
    warm = _standalone_analyzer(ArtifactStore(root)).analyze(prog.image)
    assert warm.success
    # Plain sites in gamma and _start, wrapper call sites in alpha/beta.
    assert warm.sites_total == 4
    assert warm.sites_reexecuted == 4

    wrap_start = _region_start(prog.image, "wrapnr")
    mutated = mutate_regions(prog.elf_bytes, prog.name, [wrap_start], seed=1)
    inc = _standalone_analyzer(ArtifactStore(root)).analyze(mutated.image)
    cold = _standalone_analyzer().analyze(mutated.image)
    assert _stable(inc) == _stable(cold)
    # Mutating the *callee* invalidates the wrapper-calling callers:
    # alpha/beta re-identify their call sites and _start (a transitive
    # caller) re-executes too; only gamma replays from cache.
    assert inc.functions_reanalyzed == 4  # wrapnr, alpha, beta, _start
    assert inc.sites_total == 4
    assert inc.sites_reexecuted == 3
    assert (inc.sites_total, inc.sites_reexecuted) == _expected_sites(
        mutated.image, mutated.changed
    )


def test_mutating_leaf_keeps_wrapper_products_cached(tmp_path):
    prog = _wrapper_program()
    root = str(tmp_path / "cache")
    warm = _standalone_analyzer(ArtifactStore(root)).analyze(prog.image)
    assert warm.success

    gamma_start = _region_start(prog.image, "gamma")
    mutated = mutate_regions(prog.elf_bytes, prog.name, [gamma_start], seed=1)
    inc = _standalone_analyzer(ArtifactStore(root)).analyze(mutated.image)
    cold = _standalone_analyzer().analyze(mutated.image)
    assert _stable(inc) == _stable(cold)
    # Only gamma and its caller _start re-execute; the wrapper's
    # classification and both callers' call-site records replay.
    assert inc.functions_reanalyzed == 2  # gamma, _start
    assert inc.sites_total == 4
    assert inc.sites_reexecuted == 2
    assert (inc.sites_total, inc.sites_reexecuted) == _expected_sites(
        mutated.image, mutated.changed
    )


# ---------------------------------------------------------------------------
# Signature-aware invalidation: argument-setup edits move funcid products
# ---------------------------------------------------------------------------


def _sig_dispatch_program():
    """A signature-filtered dispatch whose handler is dead code.

    ``handler`` reads ``rsi``/``rdx`` at entry (its ``cmp`` immediate is
    a mutable argument-setup site) and is address-taken only through the
    ``tab`` quad table; the dispatch site in ``disp`` prepares only
    ``rdi``, so the signature filter drops the handler — and its
    ``socket`` (41) syscall — from the identified set.
    """
    from repro.corpus import ProgramBuilder
    from repro.x86 import EAX, RAX, RDI, RDX, RSI

    p = ProgramBuilder("sigdisp")
    with p.function("handler"):
        p.asm.cmp(RSI, 0x10)
        p.asm.mov(RAX, RSI)
        p.asm.add(RAX, RDX)
        p.asm.mov(EAX, 41)
        p.asm.syscall()
        p.asm.ret()
    with p.function("plain"):
        p.asm.mov(EAX, 39)
        p.asm.syscall()
        p.asm.ret()
    with p.function("disp"):
        p.asm.call("plain")
        p.asm.xor(RDI, RDI)
        p.asm.mov_from_rip(RAX, "tab")
        p.asm.call_reg(RAX)
        p.asm.ret()
    with p.function("_start"):
        p.asm.call("disp")
        p.asm.mov(EAX, 60)
        p.asm.syscall()
        p.asm.hlt()
    p.set_entry("_start")
    p.add_quads("tab", ["handler"])
    return p.build()


def _payloads_for(root: str, kind: str, start: int) -> list[dict]:
    import json

    key = {"funccfg": "function_cfg", "funcid": "function_id"}[kind]
    out = []
    for path in _entry_files(root, kind):
        with open(path) as handle:
            doc = json.load(handle)
        if doc.get(key, {}).get("start") == start:
            out.append(doc[key])
    return out


@pytest.mark.parametrize("layout", ["flat", "sharded"])
def test_cached_products_carry_entry_signatures(layout, tmp_path):
    prog = _sig_dispatch_program()
    root = str(tmp_path / "cache")
    make_store = (
        (lambda: ArtifactStore(root)) if layout == "flat"
        else (lambda: ShardedArtifactStore(root, shards=2))
    )
    warm = _standalone_analyzer(make_store()).analyze(prog.image)
    assert warm.success
    # The filter removed the dead handler's syscall from the policy.
    assert sorted(warm.syscalls) == [39, 60]

    handler = prog.image.symbol_addr("handler")
    for kind in ("funccfg", "funcid"):
        payloads = _payloads_for(root, kind, handler)
        assert payloads, f"no cached {kind} product for the handler"
        for payload in payloads:
            assert payload["arg_signature"] == ["rdx", "rsi"]

    # Replaying the warm cache must validate those signatures (a replay
    # re-analyzes nothing and reproduces the report byte for byte).
    _prune_derived(make_store())
    replay = _standalone_analyzer(make_store()).analyze(prog.image)
    assert replay.functions_reanalyzed == 0
    assert _stable(replay) == _stable(warm)


@pytest.mark.parametrize("layout", ["flat", "sharded"])
def test_mutating_argument_setup_invalidates_handler_products(
    layout, tmp_path
):
    prog = _sig_dispatch_program()
    root = str(tmp_path / "cache")
    make_store = (
        (lambda: ArtifactStore(root)) if layout == "flat"
        else (lambda: ShardedArtifactStore(root, shards=2))
    )
    assert _standalone_analyzer(make_store()).analyze(prog.image).success

    handler = _region_start(prog.image, "handler")
    mutated = mutate_regions(prog.elf_bytes, prog.name, [handler], seed=3)
    inc = _standalone_analyzer(make_store()).analyze(mutated.image)
    cold = _standalone_analyzer().analyze(mutated.image)
    assert _stable(inc) == _stable(cold)
    # The handler has no direct callers (it is reached only through the
    # data table), so its cone is itself: exactly one function
    # re-analyzes, and the dependent dispatch site re-resolves against
    # the fresh signature without losing the filter's effect.
    expected = _expected_reanalysis(mutated.image, mutated.changed)
    assert handler in expected
    assert inc.functions_reanalyzed == len(expected)
    assert 41 not in inc.syscalls


def test_unrelated_mutation_replays_handler_products(tmp_path):
    prog = _sig_dispatch_program()
    root = str(tmp_path / "cache")
    assert _standalone_analyzer(ArtifactStore(root)).analyze(
        prog.image
    ).success

    handler = _region_start(prog.image, "handler")
    plain = _region_start(prog.image, "plain")
    mutated = mutate_regions(prog.elf_bytes, prog.name, [plain], seed=3)
    inc = _standalone_analyzer(ArtifactStore(root)).analyze(mutated.image)
    cold = _standalone_analyzer().analyze(mutated.image)
    assert _stable(inc) == _stable(cold)
    # The handler is outside the change's dependency cone: its funccfg
    # and funcid products — signatures included — replay from cache.
    expected = _expected_reanalysis(mutated.image, mutated.changed)
    assert handler not in expected
    assert inc.functions_reanalyzed == len(expected)


def test_ablation_config_does_not_share_cache_entries(tmp_path):
    """``indirect_signatures`` is part of the cache fingerprint: an
    ablated run against a warm filtered cache must miss everything and
    produce the unfiltered (superset) policy."""
    prog = _sig_dispatch_program()
    root = str(tmp_path / "cache")
    warm = _standalone_analyzer(ArtifactStore(root)).analyze(prog.image)
    assert warm.success

    ablated = BSideAnalyzer(
        budget=AnalysisBudget(),
        artifact_store=ArtifactStore(root),
        incremental=True,
        indirect_signatures=False,
    ).analyze(prog.image)
    assert ablated.functions_reanalyzed == warm.functions_reanalyzed
    assert 41 in ablated.syscalls
    assert set(warm.syscalls) < set(ablated.syscalls)

    # Store entries are keyed by product name, so the ablated run
    # recycled the slots under its own fingerprint: a filtered replay
    # must *miss* on every one (fingerprint mismatch) rather than reuse
    # an ablated product, and still reproduce the warm report exactly.
    _prune_derived(ArtifactStore(root))
    replay = _standalone_analyzer(ArtifactStore(root)).analyze(prog.image)
    assert replay.functions_reanalyzed == replay.functions_total
    assert _stable(replay) == _stable(warm)
