"""Differential equivalence harness for incremental analysis.

The incremental pipeline's whole contract is *observational equivalence
with the cold pipeline*: for any binary — including one rebuilt with K
functions changed — the incremental path must produce a byte-identical
report (modulo runtime-only fields) while re-analyzing only the changed
functions plus their reverse-dependency cone.

These tests drive that contract end to end with the in-repo mutator
(:mod:`repro.corpus.mutate`): size-preserving immediate edits that change
K function bodies and nothing else.  Fault cases corrupt or truncate
cached ``funccfg`` entries and require graceful degradation to a
per-function cold re-analysis (miss, never crash), on flat and sharded
stores alike.
"""

import glob
import os

import pytest

from repro.cfg.funccfg import scan_image
from repro.cfg.partition import FunctionPartition
from repro.core import (
    ArtifactStore,
    BSideAnalyzer,
    PersistentInterfaceStore,
    ShardedArtifactStore,
)
from repro.core.report import AnalysisBudget
from repro.corpus.apps import APP_NAMES, build_app
from repro.corpus.mutate import mutate_program
from repro.loader.image import LoadedImage
from repro.x86.decoder import decode_all


def _incremental_analyzer(bundle, store):
    return BSideAnalyzer(
        resolver=bundle.resolver,
        budget=AnalysisBudget(),
        interface_store=PersistentInterfaceStore(store=store),
        artifact_store=store,
        incremental=True,
    )


def _cold_analyzer(bundle):
    return BSideAnalyzer(resolver=bundle.resolver, budget=AnalysisBudget())


def _stable(report) -> str:
    """The report serialization with runtime-only fields stripped."""
    return report.to_json(include_runtime=False)


def _expected_reanalysis(image: LoadedImage, changed: list[int]) -> set[int]:
    """Region starts the incremental pass must re-analyze: every region
    whose closure hash moved (changed functions plus transitive callers)
    plus any region that is never cacheable (unaligned decode)."""
    insns = decode_all(image.text_bytes, image.text_base)
    by_addr = {insn.addr: insn for insn in insns}
    scan = scan_image(image, insns, by_addr)
    cone = FunctionPartition.dependency_cone(scan.refs, set(changed))
    unaligned = {
        rs.start for rs in scan.regions.values() if not rs.aligned
    }
    return cone | unaligned


def _prune_derived(store) -> None:
    """Drop every artifact that would short-circuit a re-run, keeping
    only the per-function ``funccfg`` products (and interfaces)."""
    for kind in ("report", "wrappers", "cfg"):
        store.prune(kind)


def _funccfg_files(root: str) -> list[str]:
    files = glob.glob(os.path.join(root, "**", "*.funccfg.json"),
                      recursive=True)
    assert files, f"no funccfg entries under {root}"
    return files


# ---------------------------------------------------------------------------
# Differential equivalence: mutated rebuilds
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("k", [1, 3, 10])
@pytest.mark.parametrize("name", APP_NAMES)
def test_incremental_equals_cold_on_mutation(name, k, tmp_path):
    bundle = build_app(name)
    store = ArtifactStore(str(tmp_path / "cache"))
    warm = _incremental_analyzer(bundle, store)
    original = LoadedImage.from_bytes(name, bundle.program.elf_bytes)
    warm_report = warm.analyze(original, modules=bundle.module_images)
    assert warm_report.success
    assert warm_report.functions_total == len(
        FunctionPartition.from_image(original)
    )
    # Cold store: every function was analyzed live.
    assert warm_report.functions_reanalyzed == warm_report.functions_total

    mutated = mutate_program(bundle.program.elf_bytes, name, k, seed=k)
    incremental = _incremental_analyzer(bundle, store)
    inc_report = incremental.analyze(
        mutated.image, modules=bundle.module_images
    )
    cold_report = _cold_analyzer(bundle).analyze(
        mutated.image, modules=bundle.module_images
    )

    assert _stable(inc_report) == _stable(cold_report)
    expected = _expected_reanalysis(mutated.image, mutated.changed)
    assert inc_report.functions_reanalyzed == len(expected)
    assert inc_report.functions_total == len(
        FunctionPartition.from_image(mutated.image)
    )
    # The mutation touched K functions; the cone can only be larger.
    assert len(expected) >= len(mutated.changed)


def test_unchanged_rerun_reanalyzes_nothing(tmp_path):
    bundle = build_app("redis")
    store = ArtifactStore(str(tmp_path / "cache"))
    image = LoadedImage.from_bytes("redis", bundle.program.elf_bytes)
    first = _incremental_analyzer(bundle, store).analyze(image)
    _prune_derived(store)
    rerun_store = ArtifactStore(str(tmp_path / "cache"))
    second = _incremental_analyzer(bundle, rerun_store).analyze(image)
    assert _stable(first) == _stable(second)
    assert second.functions_total == first.functions_total
    assert second.functions_reanalyzed == 0
    counters = rerun_store.counters("funccfg")
    assert counters["hits"] == second.functions_total
    assert counters["misses"] == 0


# ---------------------------------------------------------------------------
# Fault injection: corrupt / truncated funccfg entries
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("layout", ["flat", "sharded"])
def test_corrupt_funccfg_degrades_to_cold(layout, tmp_path):
    bundle = build_app("nginx")
    root = str(tmp_path / "cache")
    make_store = (
        (lambda: ArtifactStore(root)) if layout == "flat"
        else (lambda: ShardedArtifactStore(root, shards=2))
    )
    store = make_store()
    image = LoadedImage.from_bytes("nginx", bundle.program.elf_bytes)
    first = _incremental_analyzer(bundle, store).analyze(
        image, modules=bundle.module_images
    )
    for path in _funccfg_files(root):
        with open(path, "wb") as f:
            f.write(b"\x00garbage, not json\xff")
    _prune_derived(store)
    rerun = _incremental_analyzer(bundle, make_store()).analyze(
        image, modules=bundle.module_images
    )
    assert _stable(rerun) == _stable(first)
    # Every entry was unusable: full per-function cold re-analysis.
    assert rerun.functions_reanalyzed == rerun.functions_total


def test_truncated_funccfg_entry_is_a_single_miss(tmp_path):
    bundle = build_app("memcached")
    root = str(tmp_path / "cache")
    image = LoadedImage.from_bytes("memcached", bundle.program.elf_bytes)
    first = _incremental_analyzer(bundle, ArtifactStore(root)).analyze(image)
    victim = sorted(_funccfg_files(root))[0]
    data = open(victim, "rb").read()
    with open(victim, "wb") as f:
        f.write(data[: len(data) // 2])
    _prune_derived(ArtifactStore(root))
    rerun = _incremental_analyzer(bundle, ArtifactStore(root)).analyze(image)
    assert _stable(rerun) == _stable(first)
    assert rerun.functions_reanalyzed == 1
    # The miss was re-stored: a further run is all-hit again.
    _prune_derived(ArtifactStore(root))
    healed = _incremental_analyzer(bundle, ArtifactStore(root)).analyze(image)
    assert _stable(healed) == _stable(first)
    assert healed.functions_reanalyzed == 0
