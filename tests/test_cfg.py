"""CFG recovery tests: blocks, edges, functions, indirect resolution."""

import pytest

from repro.cfg import (
    EDGE_CALL,
    EDGE_CALLRET,
    EDGE_FALL,
    EDGE_ICALL,
    EDGE_JUMP,
    all_addresses_taken,
    build_cfg,
    called_external_symbols,
    reachable_blocks,
    resolve_indirect_active,
    resolve_indirect_all,
)
from repro.corpus.progbuilder import ProgramBuilder
from repro.x86 import RAX, RDI, RSI


def build_simple():
    """exit(0) program with a helper function and a conditional."""
    p = ProgramBuilder("simple")
    with p.function("helper"):
        p.asm.mov(RAX, 1)
        p.asm.ret()
    with p.function("_start"):
        p.asm.test(RDI, RDI)
        p.asm.jcc("e", "skip")
        p.asm.call("helper")
        p.asm.label("skip")
        p.asm.mov(RAX, 60)
        p.asm.syscall()
        p.asm.hlt()
    p.set_entry("_start")
    return p.build()


class TestBlocksAndEdges:
    def test_blocks_partition_text(self):
        prog = build_simple()
        cfg = build_cfg(prog.image)
        covered = sorted((b.addr, b.end) for b in cfg.blocks.values())
        for (a1, e1), (a2, __) in zip(covered, covered[1:]):
            assert e1 <= a2  # no overlap

    def test_conditional_edges(self):
        prog = build_simple()
        cfg = build_cfg(prog.image)
        start = prog.image.symbol_addr("_start")
        block = cfg.blocks[start]
        kinds = {e.kind for e in cfg.successors(block.addr)}
        assert kinds == {EDGE_JUMP, EDGE_FALL}

    def test_call_and_callret_edges(self):
        prog = build_simple()
        cfg = build_cfg(prog.image)
        helper = prog.image.symbol_addr("helper")
        call_edges = cfg.predecessors(helper, kinds=(EDGE_CALL,))
        assert len(call_edges) == 1
        call_block = call_edges[0].src
        rets = cfg.successors(call_block, kinds=(EDGE_CALLRET,))
        assert len(rets) == 1
        # The return site continues to the syscall block.
        assert cfg.blocks[rets[0].dst] is not None

    def test_function_assignment(self):
        prog = build_simple()
        cfg = build_cfg(prog.image)
        helper = prog.image.symbol_addr("helper")
        start = prog.image.symbol_addr("_start")
        assert cfg.blocks[helper].function == helper
        assert cfg.blocks[start].function == start
        assert set(cfg.functions) >= {helper, start}

    def test_syscall_block_found(self):
        prog = build_simple()
        cfg = build_cfg(prog.image)
        sys_blocks = cfg.syscall_blocks()
        assert len(sys_blocks) == 1
        assert sys_blocks[0].terminator.is_syscall

    def test_reachability_from_entry(self):
        prog = build_simple()
        cfg = build_cfg(prog.image)
        reach = reachable_blocks(cfg, [prog.image.entry])
        helper = prog.image.symbol_addr("helper")
        assert helper in reach
        assert prog.image.entry in reach


def build_with_fptr(style: str, reachable: bool = True):
    """A program calling a handler through a function pointer.

    style: "lea" (PIC-style address taken), "movabs" (non-PIC), or
    "data" (pointer table in the data segment).
    """
    p = ProgramBuilder("fptr")
    with p.function("handler"):
        p.asm.mov(RAX, 39)  # getpid
        p.asm.syscall()
        p.asm.ret()
    with p.function("taker"):
        if style == "lea":
            p.asm.lea_rip(RSI, "handler")
        elif style == "movabs":
            p.asm.load_addr(RSI, "handler")
        p.asm.ret()
    with p.function("_start"):
        if reachable:
            p.asm.call("taker")
        p.asm.call_reg(RSI)
        p.asm.mov(RAX, 60)
        p.asm.syscall()
        p.asm.hlt()
    if style == "data":
        p.add_quads("table", ["handler"])
    p.set_entry("_start")
    return p.build()


class TestIndirectResolution:
    @pytest.mark.parametrize("style", ["lea", "movabs", "data"])
    def test_addresses_taken_found(self, style):
        prog = build_with_fptr(style)
        cfg = build_cfg(prog.image)
        taken = all_addresses_taken(cfg, prog.image)
        assert prog.image.symbol_addr("handler") in taken

    def test_resolve_all_adds_icall_edges(self):
        prog = build_with_fptr("lea")
        cfg = build_cfg(prog.image)
        resolve_indirect_all(cfg, prog.image)
        handler = prog.image.symbol_addr("handler")
        assert any(
            e.kind == EDGE_ICALL
            for e in cfg.predecessors(handler)
        )

    def test_active_resolution_reaches_handler(self):
        prog = build_with_fptr("lea")
        cfg = build_cfg(prog.image)
        active, iters = resolve_indirect_active(cfg, prog.image, [prog.image.entry])
        handler = prog.image.symbol_addr("handler")
        assert handler in active
        assert iters >= 1
        reach = reachable_blocks(cfg, [prog.image.entry])
        assert handler in reach

    def test_active_excludes_unreachable_taker(self):
        # The lea that takes handler's address sits in a function that is
        # never called: active addresses taken must NOT include handler.
        prog = build_with_fptr("lea", reachable=False)
        cfg = build_cfg(prog.image)
        active, __ = resolve_indirect_active(cfg, prog.image, [prog.image.entry])
        handler = prog.image.symbol_addr("handler")
        assert handler not in active
        # ... while the SysFilter-style overestimation does include it.
        cfg2 = build_cfg(prog.image)
        assert handler in all_addresses_taken(cfg2, prog.image)

    def test_iterative_discovery_through_indirection(self):
        # handler2's address is only taken inside handler1, which itself is
        # only reachable through an indirect call: needs >1 iteration.
        p = ProgramBuilder("iter")
        with p.function("handler2"):
            p.asm.mov(RAX, 41)
            p.asm.syscall()
            p.asm.ret()
        with p.function("handler1"):
            p.asm.lea_rip(RSI, "handler2")
            p.asm.call_reg(RSI)
            p.asm.ret()
        with p.function("_start"):
            p.asm.lea_rip(RSI, "handler1")
            p.asm.call_reg(RSI)
            p.asm.mov(RAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        prog = p.build()
        cfg = build_cfg(prog.image)
        active, iters = resolve_indirect_active(cfg, prog.image, [prog.image.entry])
        assert prog.image.symbol_addr("handler2") in active
        assert iters >= 2


class TestExternalCalls:
    def test_got_call_resolves_to_symbol(self):
        p = ProgramBuilder("dyn", pic=True, needed=["libc.so"])
        with p.function("main", exported=True):
            p.call_import("write")
            p.asm.ret()
        p.set_entry("main")
        prog = p.build()
        cfg = build_cfg(prog.image)
        reach = reachable_blocks(cfg, [prog.image.entry])
        assert called_external_symbols(cfg, reach) == {"write"}

    def test_plt_stub_resolves_to_symbol(self):
        p = ProgramBuilder("dyn2", pic=True, needed=["libc.so"])
        p.make_plt_stub("read")
        with p.function("main", exported=True):
            p.call_plt("read")
            p.asm.ret()
        p.set_entry("main")
        prog = p.build()
        cfg = build_cfg(prog.image)
        reach = reachable_blocks(cfg, [prog.image.entry])
        assert called_external_symbols(cfg, reach) == {"read"}

    def test_unreachable_import_not_reported(self):
        p = ProgramBuilder("dyn3", pic=True, needed=["libc.so"])
        with p.function("dead"):
            p.call_import("unlink")
            p.asm.ret()
        with p.function("main", exported=True):
            p.asm.ret()
        p.set_entry("main")
        prog = p.build()
        cfg = build_cfg(prog.image)
        reach = reachable_blocks(cfg, [prog.image.entry])
        assert called_external_symbols(cfg, reach) == set()
