"""On-disk interface caching, syscall categories, and libc golden checks."""

import json
import os

import pytest

from repro.core import AnalysisBudget, BSideAnalyzer, InterfaceStore
from repro.corpus import LIBC_NAME, build_libc, libc_direct_numbers
from repro.corpus.libc import LIBC_COMPOSITES, LIBC_DIRECT_SYSCALLS, LIBC_WRAPPED_SYSCALLS
from repro.loader import LibraryResolver
from repro.syscalls import SYSCALL_NUMBERS, numbers_of
from repro.syscalls.categories import CATEGORIES, categorize, category_of, category_summary


class TestDiskInterfaceCache:
    def test_interface_persisted_and_reloaded(self, tmp_path):
        cache_dir = str(tmp_path / "ifaces")
        libc = build_libc()

        store1 = InterfaceStore(cache_dir=cache_dir)
        analyzer1 = BSideAnalyzer(
            budget=AnalysisBudget.generous(), interface_store=store1,
        )
        first = analyzer1.analyze_library(libc.image)
        path = os.path.join(cache_dir, f"{LIBC_NAME}.interface.json")
        assert os.path.exists(path)
        with open(path) as f:
            doc = json.load(f)
        assert doc["library"] == LIBC_NAME

        # A fresh session must load from disk without re-analysis.
        store2 = InterfaceStore(cache_dir=cache_dir)
        assert LIBC_NAME in store2
        reloaded = store2.get(LIBC_NAME)
        assert reloaded.exports.keys() == first.exports.keys()
        for name in first.exports:
            assert reloaded.exports[name].syscalls == first.exports[name].syscalls

    def test_analyzer_uses_disk_cache(self, tmp_path):
        cache_dir = str(tmp_path / "ifaces2")
        libc = build_libc()
        resolver = LibraryResolver(library_map={LIBC_NAME: libc.elf_bytes})

        a1 = BSideAnalyzer(
            resolver=resolver, budget=AnalysisBudget.generous(),
            interface_store=InterfaceStore(cache_dir=cache_dir),
        )
        a1.analyze_library(libc.image)

        store = InterfaceStore(cache_dir=cache_dir)
        a2 = BSideAnalyzer(
            resolver=resolver, budget=AnalysisBudget.generous(),
            interface_store=store,
        )
        # get() hits disk: no fresh analysis object needed.
        cached = a2.analyze_library(libc.image)
        assert cached.exports["c_read"].syscalls == {0}


class TestLibcGolden:
    """Structural golden checks over the corpus libc's interface."""

    @pytest.fixture(scope="class")
    def interface(self):
        analyzer = BSideAnalyzer(budget=AnalysisBudget.generous())
        return analyzer.analyze_library(build_libc().image)

    def test_every_direct_export_maps_to_its_syscall(self, interface):
        for name in LIBC_DIRECT_SYSCALLS:
            export = interface.exports[f"c_{name}"]
            assert export.syscalls == {SYSCALL_NUMBERS[name]}, name

    def test_every_wrapped_export_maps_to_its_syscall(self, interface):
        for name in LIBC_WRAPPED_SYSCALLS:
            export = interface.exports[f"c_{name}"]
            assert export.syscalls == {SYSCALL_NUMBERS[name]}, name

    def test_composites_union_their_callees(self, interface):
        for comp, callees in LIBC_COMPOSITES.items():
            expected = set()
            for callee in callees:
                expected |= interface.exports[callee].syscalls
            assert interface.exports[comp].syscalls == expected, comp

    def test_syscall_export_is_wrapper(self, interface):
        export = interface.exports["syscall"]
        assert export.is_wrapper
        assert export.wrapper_param == ("reg", "rdi")
        assert export.syscalls == set()

    def test_fptr_dispatch_export(self, interface):
        assert interface.exports["c_run_atexit"].syscalls == \
            {SYSCALL_NUMBERS["munmap"]}

    def test_direct_numbers_helper_consistent(self, interface):
        all_direct = set()
        for name in LIBC_DIRECT_SYSCALLS:
            all_direct |= interface.exports[f"c_{name}"].syscalls
        all_direct.add(SYSCALL_NUMBERS["munmap"])
        assert all_direct == libc_direct_numbers()


class TestCategories:
    def test_categories_are_disjoint(self):
        seen: dict[int, str] = {}
        for name, members in CATEGORIES.items():
            for nr in members:
                assert nr not in seen, f"{nr} in both {seen.get(nr)} and {name}"
                seen[nr] = name

    def test_category_of(self):
        assert category_of(SYSCALL_NUMBERS["read"]) == "file"
        assert category_of(SYSCALL_NUMBERS["socket"]) == "network"
        assert category_of(SYSCALL_NUMBERS["execve"]) == "process"
        assert category_of(SYSCALL_NUMBERS["bpf"]) == "admin"

    def test_categorize_partition(self):
        syscalls = numbers_of("read", "write", "socket", "execve", "getrandom")
        grouped = categorize(syscalls)
        assert grouped["file"] == numbers_of("read", "write")
        assert grouped["network"] == numbers_of("socket")
        total = set()
        for members in grouped.values():
            total |= members
        assert total == syscalls

    def test_summary_ordering(self):
        syscalls = numbers_of("read", "write", "open", "socket")
        summary = category_summary(syscalls)
        assert summary.startswith("file:3")
        assert "network:1" in summary

    def test_most_of_table_categorized(self):
        from repro.syscalls import ALL_SYSCALLS

        uncategorized = [nr for nr in ALL_SYSCALLS if category_of(nr) == "other"]
        # The long tail is fine, but the bulk must be categorized.
        assert len(uncategorized) < 0.25 * len(ALL_SYSCALLS)
