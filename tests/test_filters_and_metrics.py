"""Filters, phase policies, CVE database, and scoring tests."""

import pytest

from repro.core.report import AnalysisReport
from repro.filters import ACTION_ALLOW, ACTION_KILL, FilterProgram, PhasePolicy, protected_against
from repro.metrics import Score, histogram, score
from repro.syscalls import ALL_SYSCALLS, number_of
from repro.syscalls.cves import CVE_DATABASE, Cve, protection_rate


class TestFilterProgram:
    def test_allow_list_semantics(self):
        f = FilterProgram.allow_list({0, 1, 60})
        assert f.permits(0) and f.permits(60)
        assert f.blocks(59)
        assert f.execute(60) == ACTION_ALLOW
        assert f.execute(59) == ACTION_KILL

    def test_from_successful_report(self):
        report = AnalysisReport(tool="x", binary="b", success=True,
                                syscalls={1, 2}, complete=True)
        f = FilterProgram.from_report(report)
        assert f.allowed == {1, 2}

    def test_from_failed_report_allows_all(self):
        report = AnalysisReport.failed("x", "b", "timeout", "budget")
        f = FilterProgram.from_report(report)
        assert f.allowed == frozenset(ALL_SYSCALLS)
        assert f.n_blocked == 0

    def test_from_incomplete_report_allows_all(self):
        report = AnalysisReport(tool="x", binary="b", success=True,
                                syscalls={1}, complete=False)
        f = FilterProgram.from_report(report)
        assert f.n_blocked == 0

    def test_render_mentions_names(self):
        f = FilterProgram.allow_list({number_of("execve")})
        assert "execve" in f.render()

    def test_enforced_in_emulator(self):
        from repro.corpus.progbuilder import ProgramBuilder
        from repro.emu import run_traced
        from repro.x86 import EAX

        p = ProgramBuilder("victim")
        with p.function("_start"):
            p.asm.mov(EAX, 39)
            p.asm.syscall()
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        prog = p.build()
        ok = run_traced(prog.image, filter_allowed=FilterProgram.allow_list({39, 60}).allowed)
        assert ok.exit_status == 0 or ok.exit_status is not None
        killed = run_traced(prog.image, filter_allowed=FilterProgram.allow_list({60}).allowed)
        assert killed.killed_by_filter == 39


class TestCveDatabase:
    def test_exactly_36_cves(self):
        assert len(CVE_DATABASE) == 36

    def test_all_syscall_names_valid(self):
        for cve in CVE_DATABASE:
            assert cve.numbers, f"{cve.ident} resolves no syscalls"

    def test_protection_rate_blocked(self):
        cve = Cve("test-1", ("bpf",), ("L",))
        # Three programs, none identifying bpf: all protected.
        rate = protection_rate(cve, [{0, 1}, {60}, {2, 3}])
        assert rate == 1.0

    def test_protection_rate_exposed(self):
        bpf = number_of("bpf")
        cve = Cve("test-2", ("bpf",), ("L",))
        rate = protection_rate(cve, [{bpf}, {0}])
        assert rate == 0.5

    def test_multi_syscall_cve_partial_block_protects(self):
        # Blocking ANY of the involved syscalls protects (§5.5).
        clone, unshare = number_of("clone"), number_of("unshare")
        cve = Cve("test-3", ("clone", "unshare"), ("UaF",))
        assert protection_rate(cve, [{clone}]) == 1.0  # unshare blocked
        assert protection_rate(cve, [{clone, unshare}]) == 0.0


class TestScores:
    def test_perfect(self):
        s = score({1, 2, 3}, {1, 2, 3})
        assert s.precision == s.recall == s.f1 == 1.0
        assert s.is_valid

    def test_false_positives_reduce_precision(self):
        s = score({1, 2, 3, 4, 5, 6}, {1, 2, 3})
        assert s.recall == 1.0
        assert s.precision == 0.5
        assert s.is_valid
        assert abs(s.f1 - 2 / 3) < 1e-9

    def test_false_negatives_invalidate(self):
        s = score({1}, {1, 2})
        assert not s.is_valid
        assert s.false_negatives == 1

    def test_paper_shaped_f1(self):
        # identified ~1.5x ground truth with full recall -> F1 ~0.8.
        truth = set(range(50))
        identified = set(range(74))
        s = score(identified, truth)
        assert 0.75 <= s.f1 <= 0.85

    def test_empty_sets(self):
        s = score(set(), set())
        assert s.f1 == 0.0
        assert s.is_valid

    def test_histogram(self):
        h = histogram([3, 7, 43, 271, 272, 95], bin_width=10, top=280)
        assert h[0] == 2
        assert h[40] == 1
        assert h[270] == 2
        assert h[90] == 1


class TestPhasePolicy:
    def _automaton(self):
        from repro.core import AnalysisBudget, BSideAnalyzer
        from repro.corpus.progbuilder import ProgramBuilder
        from repro.x86 import EAX, RDI

        p = ProgramBuilder("phased")
        with p.function("_start"):
            p.asm.mov(EAX, 2)
            p.asm.syscall()
            p.asm.label("loop")
            p.asm.mov(EAX, 0)
            p.asm.syscall()
            p.asm.cmp(RDI, 0)
            p.asm.jcc("ne", "loop")
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        analyzer = BSideAnalyzer(budget=AnalysisBudget.generous())
        report, automaton = analyzer.analyze_phases(p.build().image)
        return report, automaton

    def test_policy_filters_per_phase(self):
        report, automaton = self._automaton()
        policy = PhasePolicy.from_automaton(automaton)
        assert len(policy.filters) == automaton.n_phases

    def test_phase_hook_accepts_legal_run(self):
        from repro.corpus.progbuilder import ProgramBuilder
        from repro.emu import EmulatedKernel, Machine
        from repro.x86 import EAX, RDI

        report, automaton = self._automaton()
        policy = PhasePolicy.from_automaton(automaton)

        p = ProgramBuilder("phased2")
        with p.function("_start"):
            p.asm.mov(EAX, 2)
            p.asm.syscall()
            p.asm.mov(EAX, 0)
            p.asm.syscall()
            p.asm.mov(EAX, 60)
            p.asm.xor(RDI, RDI)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        prog = p.build()
        kernel = EmulatedKernel()
        kernel.filter_hook = policy.make_kernel_hook()
        machine = Machine(kernel)
        machine.load(prog.image)
        status = machine.run()
        assert status == 0

    def test_strictness_gain_positive_without_propagation(self):
        report, automaton = self._automaton()
        automaton.propagated = None  # measure raw phase strictness
        policy = PhasePolicy.from_automaton(automaton, use_propagated=False)
        whole = FilterProgram.allow_list(report.syscalls)
        gain = policy.strictness_gain_over(whole)
        assert gain > 0.0

    def test_protected_against_helper(self):
        f = FilterProgram.allow_list({0, 1, 60})
        assert protected_against(f, {number_of("bpf")})
        assert not protected_against(f, {0})
