"""Phase detection tests: NFA/DFA construction, merging, back-propagation,
runtime tracking, and the analyzer integration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AnalysisBudget, BSideAnalyzer
from repro.corpus.progbuilder import ProgramBuilder
from repro.phases import (
    EPSILON,
    NFA,
    PhaseTracker,
    build_nfa,
    determinize,
    detect_phases,
    detect_phases_cfg_navigation,
    merge_states,
)
from repro.x86 import EAX, RDI


def build_phased_app():
    """init (open/socket) -> serve loop (read/write) -> shutdown (close/exit)."""
    p = ProgramBuilder("phased")
    with p.function("_start"):
        # --- init phase
        p.asm.mov(EAX, 2)  # open
        p.asm.syscall()
        p.asm.mov(EAX, 41)  # socket
        p.asm.syscall()
        # --- serve loop
        p.asm.label("serve")
        p.asm.mov(EAX, 0)  # read
        p.asm.syscall()
        p.asm.mov(EAX, 1)  # write
        p.asm.syscall()
        p.asm.cmp(RDI, 0)
        p.asm.jcc("ne", "serve")
        # --- shutdown
        p.asm.mov(EAX, 3)  # close
        p.asm.syscall()
        p.asm.mov(EAX, 60)  # exit
        p.asm.syscall()
        p.asm.hlt()
    p.set_entry("_start")
    return p.build()


class TestNfaDfa:
    def test_manual_nfa_determinization(self):
        # a tiny 3-state NFA: 0 -e-> 1 -s1-> 2, 1 -s2-> 1
        nfa = NFA(start=0)
        nfa.add(0, EPSILON, 1)
        nfa.add(1, 1, 2)
        nfa.add(1, 2, 1)
        dfa = determinize(nfa)
        assert dfa.states[dfa.start] == frozenset({0, 1})
        assert dfa.alphabet == {1, 2}
        s = dfa.successor(dfa.start, 2)
        assert s is not None
        assert dfa.states[s] == frozenset({1})

    def test_epsilon_closure_transitive(self):
        nfa = NFA(start=0)
        nfa.add(0, EPSILON, 1)
        nfa.add(1, EPSILON, 2)
        nfa.add(2, 5, 0)
        closure = nfa.epsilon_closure(frozenset({0}))
        assert closure == frozenset({0, 1, 2})

    def test_dfa_single_transition_per_label(self):
        nfa = NFA(start=0)
        nfa.add(0, 7, 1)
        nfa.add(0, 7, 2)  # non-deterministic on 7
        dfa = determinize(nfa)
        dst = dfa.successor(dfa.start, 7)
        assert dfa.states[dst] == frozenset({1, 2})

    def test_dfa_budget(self):
        from repro.errors import BudgetExceeded

        nfa = NFA(start=0)
        # A chain of distinct labels creates a new DFA state per step.
        for i in range(50):
            nfa.add(i, 100 + i, i + 1)
        with pytest.raises(BudgetExceeded):
            determinize(nfa, max_states=10)


class TestMerging:
    def test_overlapping_states_merge(self):
        nfa = NFA(start=0)
        nfa.add(0, 1, 1)
        nfa.add(1, EPSILON, 0)
        nfa.add(1, 2, 0)
        dfa = determinize(nfa)
        groups = merge_states(dfa, similarity=0.1)
        assert sum(len(g) for g in groups) == dfa.n_states

    def test_disjoint_states_stay_separate(self):
        nfa = NFA(start=0)
        nfa.add(0, 1, 1)
        nfa.add(1, 2, 2)
        dfa = determinize(nfa)
        groups = merge_states(dfa, similarity=0.5)
        assert len(groups) == dfa.n_states  # all disjoint singleton blocks


class TestPhaseDetection:
    def test_phased_app_structure(self):
        prog = build_phased_app()
        analyzer = BSideAnalyzer(budget=AnalysisBudget.generous())
        report, automaton = analyzer.analyze_phases(prog.image)
        assert report.success
        assert automaton is not None
        assert automaton.n_phases >= 2
        # Union over phases matches the report.
        assert automaton.all_syscalls() == report.syscalls == {2, 41, 0, 1, 3, 60}

    def test_early_phase_strictness_before_propagation(self):
        prog = build_phased_app()
        analyzer = BSideAnalyzer(budget=AnalysisBudget.generous())
        __, automaton = analyzer.analyze_phases(prog.image, back_propagate=False)
        start_allowed = automaton.phases[automaton.start].allowed
        # The start phase must not allow the serve-loop syscalls that
        # cannot be the first syscall (read=0 can only come after open).
        assert 2 in start_allowed
        assert len(start_allowed) < len(automaton.all_syscalls())

    def test_back_propagation_monotone(self):
        prog = build_phased_app()
        analyzer = BSideAnalyzer(budget=AnalysisBudget.generous())
        __, automaton = analyzer.analyze_phases(prog.image, back_propagate=True)
        for pid, phase in automaton.phases.items():
            assert phase.allowed <= automaton.propagated[pid]

    def test_tracker_accepts_legal_trace(self):
        prog = build_phased_app()
        analyzer = BSideAnalyzer(budget=AnalysisBudget.generous())
        __, automaton = analyzer.analyze_phases(prog.image)
        tracker = PhaseTracker(automaton)
        for sysno in [2, 41, 0, 1, 0, 1, 3, 60]:
            assert tracker.observe(sysno), f"legal syscall {sysno} rejected"
        assert tracker.violations == []

    def test_tracker_rejects_out_of_phase_syscall(self):
        prog = build_phased_app()
        analyzer = BSideAnalyzer(budget=AnalysisBudget.generous())
        __, automaton = analyzer.analyze_phases(prog.image, back_propagate=False)
        tracker = PhaseTracker(automaton, use_propagated=False)
        # exit (60) as the very first event: should not be allowed in the
        # strict start phase of this program.
        assert not tracker.observe(60)
        assert tracker.violations == [60]

    def test_strictness_summary(self):
        prog = build_phased_app()
        analyzer = BSideAnalyzer(budget=AnalysisBudget.generous())
        __, automaton = analyzer.analyze_phases(prog.image, back_propagate=False)
        summary = automaton.strictness_summary(len(automaton.all_syscalls()))
        assert 0.0 <= summary["strictness_gain"] <= 1.0
        assert summary["avg_allowed"] <= len(automaton.all_syscalls())

    def test_cfg_navigation_reference_agrees_on_union(self):
        """The slow reference method must report the same syscall union."""
        from repro.baselines.naive import _block_local_value
        from repro.cfg import build_cfg, resolve_indirect_active

        prog = build_phased_app()
        cfg = build_cfg(prog.image)
        resolve_indirect_active(cfg, prog.image, [prog.image.entry])
        block_syscalls = {}
        for block in cfg.syscall_blocks():
            value = _block_local_value(cfg, block.addr, block.terminator.addr)
            if value is not None:
                block_syscalls[block.addr] = {value}
        ref = detect_phases_cfg_navigation(cfg, block_syscalls, prog.image.entry)
        ref_union = set().union(*ref.values()) if ref else set()
        assert ref_union == {2, 41, 0, 1, 3, 60}
        assert len(ref) >= 2  # it does find phase structure


class TestDfaEquivalenceProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        edges=st.lists(
            st.tuples(
                st.integers(0, 5),  # src
                st.sampled_from([EPSILON, 1, 2, 3]),  # label
                st.integers(0, 5),  # dst
            ),
            min_size=1,
            max_size=15,
        ),
        word=st.lists(st.sampled_from([1, 2, 3]), max_size=6),
    )
    def test_dfa_accepts_same_words_as_nfa(self, edges, word):
        """Subset construction must preserve the transition relation: a
        word is traceable in the DFA iff traceable in the NFA."""
        nfa = NFA(start=0)
        nfa.states.add(0)
        for src, label, dst in edges:
            nfa.add(src, label, dst)
        dfa = determinize(nfa)

        # NFA trace.
        current = nfa.epsilon_closure(frozenset({0}))
        nfa_ok = True
        for symbol in word:
            nxt: set[int] = set()
            for s in current:
                nxt |= nfa.successors(s, symbol)
            if not nxt:
                nfa_ok = False
                break
            current = nfa.epsilon_closure(frozenset(nxt))

        # DFA trace.
        state = dfa.start
        dfa_ok = True
        for symbol in word:
            succ = dfa.successor(state, symbol)
            if succ is None:
                dfa_ok = False
                break
            state = succ

        assert nfa_ok == dfa_ok
