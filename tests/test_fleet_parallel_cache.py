"""Parallel fleet engine + persistent interface cache tests.

Covers the cache's failure modes (corruption, version skew, content
drift), the warm-run guarantee (zero library re-analysis), and the
determinism contract (serial == parallel == merged shards, byte for
byte, once run-dependent fields are excluded).
"""

import json
import logging
import os

import pytest

from repro.core import (
    AnalysisBudget,
    BSideAnalyzer,
    CACHE_VERSION,
    PersistentInterfaceStore,
)
from repro.core.fleet import FleetAnalyzer, FleetReport
from repro.corpus import LIBC_NAME, build_libc, make_debian_corpus


@pytest.fixture(scope="module")
def tiny_corpus():
    return make_debian_corpus(scale=0.04, seed=7)


@pytest.fixture(scope="module")
def tiny_images(tiny_corpus):
    return [b.image for b in tiny_corpus.binaries]


def _fleet(corpus, **kwargs) -> FleetAnalyzer:
    return FleetAnalyzer(resolver=corpus.make_resolver(), **kwargs)


class TestPersistentStore:
    def test_round_trip_and_hit_counters(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        libc = build_libc()

        store1 = PersistentInterfaceStore(cache_dir)
        a1 = BSideAnalyzer(
            budget=AnalysisBudget.generous(), interface_store=store1,
        )
        built = a1.analyze_library(libc.image)
        assert store1.hits == 0 and store1.misses == 1

        store2 = PersistentInterfaceStore(cache_dir)
        a2 = BSideAnalyzer(
            budget=AnalysisBudget.generous(), interface_store=store2,
        )
        reloaded = a2.analyze_library(libc.image)
        assert store2.hits == 1 and store2.misses == 0
        assert reloaded.exports.keys() == built.exports.keys()
        for name in built.exports:
            assert reloaded.exports[name].syscalls == built.exports[name].syscalls

    def test_corrupted_cache_file_recovers(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        libc = build_libc()
        a1 = BSideAnalyzer(
            budget=AnalysisBudget.generous(),
            interface_store=PersistentInterfaceStore(cache_dir),
        )
        a1.analyze_library(libc.image)
        (cache_file,) = [
            f for f in os.listdir(cache_dir) if f.endswith(".iface.json")
        ]
        path = os.path.join(cache_dir, cache_file)
        with open(path, "w") as f:
            f.write('{"cache_version": 1, "content_hash": TRUNCATED')

        store = PersistentInterfaceStore(cache_dir)
        a2 = BSideAnalyzer(
            budget=AnalysisBudget.generous(), interface_store=store,
        )
        interface = a2.analyze_library(libc.image)  # must re-analyze, not crash
        assert interface.exports["c_read"].syscalls == {0}
        assert store.misses == 1 and store.invalidations == 1
        # The recovered analysis re-wrote a valid entry.
        with open(path) as f:
            assert json.load(f)["interface"]["library"] == LIBC_NAME

    def test_version_mismatch_invalidates(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        libc = build_libc()
        a1 = BSideAnalyzer(
            budget=AnalysisBudget.generous(),
            interface_store=PersistentInterfaceStore(cache_dir),
        )
        a1.analyze_library(libc.image)

        stale = PersistentInterfaceStore(cache_dir, version=CACHE_VERSION + 1)
        stale.bind_image(libc.image)
        assert stale.get(LIBC_NAME) is None
        assert stale.misses == 1 and stale.invalidations == 1
        # The stale file is gone; a rebuilt entry uses the new version.
        a2 = BSideAnalyzer(
            budget=AnalysisBudget.generous(), interface_store=stale,
        )
        a2.analyze_library(libc.image)
        fresh = PersistentInterfaceStore(cache_dir, version=CACHE_VERSION + 1)
        fresh.bind_image(libc.image)
        assert fresh.get(LIBC_NAME) is not None

    def test_content_hash_mismatch_invalidates(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        libc = build_libc()
        store1 = PersistentInterfaceStore(cache_dir)
        a1 = BSideAnalyzer(
            budget=AnalysisBudget.generous(), interface_store=store1,
        )
        a1.analyze_library(libc.image)

        # Same soname, different content: entry must not be served.
        from repro.loader.image import LoadedImage

        changed = LoadedImage.from_bytes(LIBC_NAME, libc.elf_bytes + b"\x00")
        assert changed.content_hash != libc.image.content_hash
        store2 = PersistentInterfaceStore(cache_dir)
        store2.bind_image(changed)
        assert store2.get(LIBC_NAME) is None
        assert store2.invalidations == 1

    def test_invalidate_all_clears_directory(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        libc = build_libc()
        store = PersistentInterfaceStore(cache_dir)
        analyzer = BSideAnalyzer(
            budget=AnalysisBudget.generous(), interface_store=store,
        )
        analyzer.analyze_library(libc.image)
        assert any(f.endswith(".iface.json") for f in os.listdir(cache_dir))
        store.invalidate()
        assert not any(
            f.endswith(".iface.json") for f in os.listdir(cache_dir)
        )
        assert len(store) == 0


class TestResolverSpec:
    def test_spec_prefers_registered_images_like_resolve_does(self):
        from repro.loader import LibraryResolver, LoadedImage

        libc = build_libc()
        resolver = LibraryResolver(library_map={LIBC_NAME: b"stale bytes"})
        resolver.register(
            LIBC_NAME, LoadedImage.from_bytes(LIBC_NAME, libc.elf_bytes),
        )
        spec = resolver.spec()
        assert spec["library_map"][LIBC_NAME] == libc.elf_bytes

    def test_spec_refuses_unreproducible_registered_image(self):
        from repro.elf import read_elf
        from repro.loader import LibraryResolver, LoadedImage

        libc = build_libc()
        resolver = LibraryResolver(library_map={LIBC_NAME: libc.elf_bytes})
        raw_less = LoadedImage(name=LIBC_NAME, elf=read_elf(libc.elf_bytes))
        resolver.register(LIBC_NAME, raw_less)
        assert resolver.spec() is None

    def test_cache_filenames_injective_after_sanitising(self):
        from repro.core.ifacecache import _safe_filename

        assert _safe_filename("lib@1.so") != _safe_filename("lib#1.so")


class TestWarmRunEquivalence:
    def test_warm_run_zero_reanalysis_and_same_results(
        self, tmp_path, tiny_corpus, tiny_images
    ):
        cache_dir = str(tmp_path / "cache")
        cold = _fleet(tiny_corpus, cache_dir=cache_dir)
        cold_report = cold.analyze_images(tiny_images)
        assert cold.interfaces.hits == 0
        n_libraries = cold.interfaces.stats()["resident"]
        assert cold.interfaces.misses == n_libraries

        warm = _fleet(tiny_corpus, cache_dir=cache_dir)
        warm_report = warm.analyze_images(tiny_images)
        # Fully warm: every *report* came from the artifact store, so no
        # per-binary analysis ran — and therefore no library analysis
        # (or even interface lookup) happened at all.
        assert warm.artifacts.counters("report")["misses"] == 0
        assert warm.artifacts.counters("report")["hits"] == len(tiny_images)
        assert all(e.from_cache for e in warm_report.entries)
        assert warm.interfaces.misses == 0

        assert cold_report.to_json(include_runtime=False) == \
            warm_report.to_json(include_runtime=False)

        # Interface-warm tier: dropping the report artifacts forces
        # per-binary analysis again, now served by cached interfaces.
        warm.artifacts.prune("report")
        iface_warm = _fleet(tiny_corpus, cache_dir=cache_dir)
        iface_report = iface_warm.analyze_images(tiny_images)
        assert iface_warm.interfaces.misses == 0
        assert iface_warm.interfaces.hits == n_libraries
        assert cold_report.to_json(include_runtime=False) == \
            iface_report.to_json(include_runtime=False)

    def test_serial_and_parallel_reports_identical(
        self, tmp_path, tiny_corpus, tiny_images
    ):
        cache_dir = str(tmp_path / "cache")
        serial = _fleet(tiny_corpus, cache_dir=cache_dir, workers=1)
        serial_report = serial.analyze_images(tiny_images)
        parallel = _fleet(tiny_corpus, cache_dir=cache_dir, workers=2)
        parallel_report = parallel.analyze_images(tiny_images)
        assert serial_report.to_json(include_runtime=False) == \
            parallel_report.to_json(include_runtime=False)

    def test_parallel_without_cache_dir_still_matches(
        self, tiny_corpus, tiny_images
    ):
        serial_report = _fleet(tiny_corpus).analyze_images(tiny_images)
        parallel_report = _fleet(tiny_corpus, workers=2).analyze_images(
            tiny_images
        )
        assert serial_report.to_json(include_runtime=False) == \
            parallel_report.to_json(include_runtime=False)

    def test_runtime_fields_present_by_default(self, tiny_corpus, tiny_images):
        report = _fleet(tiny_corpus).analyze_images(tiny_images[:3])
        doc = json.loads(report.to_json())
        assert "total_seconds" in doc
        assert {"seconds", "cache_hits", "cache_misses"} <= set(
            doc["binaries"][0]
        )
        lean = json.loads(report.to_json(include_runtime=False))
        assert "total_seconds" not in lean
        assert "seconds" not in lean["binaries"][0]


class TestDegradedFleets:
    def test_missing_library_fails_per_binary_not_whole_fleet(
        self, tiny_corpus
    ):
        dynamic = [b.image for b in tiny_corpus.binaries if not b.is_static][:2]
        fleet = FleetAnalyzer()  # empty resolver: every dep unresolvable
        report = fleet.analyze_images(dynamic)
        assert len(report.entries) == len(dynamic)
        assert all(not e.report.success for e in report.entries)
        assert set(report.failure_stages()) == {"load"}

    def test_provider_resolver_falls_back_to_serial(
        self, tiny_corpus, tiny_images, caplog
    ):
        from repro.loader import LibraryResolver

        bytes_by_name = {
            name: prog.elf_bytes
            for name, prog in tiny_corpus.libraries.items()
        }
        resolver = LibraryResolver(provider=bytes_by_name.__getitem__)
        assert resolver.spec() is None
        fleet = FleetAnalyzer(resolver=resolver, workers=2)
        with caplog.at_level(logging.WARNING, logger="repro.core.fleet"):
            report = fleet.analyze_images(tiny_images)
        assert any(
            "falling back to serial" in r.message for r in caplog.records
        )
        serial = FleetAnalyzer(
            resolver=tiny_corpus.make_resolver()
        ).analyze_images(tiny_images)
        assert report.to_json(include_runtime=False) == \
            serial.to_json(include_runtime=False)


class TestShardMerge:
    def test_merge_is_partition_independent(self, tiny_corpus, tiny_images):
        whole = _fleet(tiny_corpus).analyze_images(tiny_images)
        half = len(tiny_images) // 2
        shard_a = _fleet(tiny_corpus).analyze_images(tiny_images[:half])
        shard_b = _fleet(tiny_corpus).analyze_images(tiny_images[half:])
        merged = FleetReport.merge([shard_a, shard_b])
        canonical = FleetReport.merge([whole])
        assert merged.to_json(include_runtime=False) == \
            canonical.to_json(include_runtime=False)

    def test_merge_sums_interface_stats(self):
        a = FleetReport(interface_stats={"hits": 2, "misses": 1})
        b = FleetReport(interface_stats={"hits": 3, "invalidations": 4})
        merged = FleetReport.merge([a, b])
        assert merged.interface_stats == {
            "hits": 5, "misses": 1, "invalidations": 4,
        }


class TestDirectorySweep:
    def test_non_elf_files_are_counted_and_logged(
        self, tmp_path, tiny_corpus, caplog
    ):
        bindir = tmp_path / "bin"
        bindir.mkdir()
        chosen = [b for b in tiny_corpus.binaries if b.hardness is None][:2]
        for binary in chosen:
            binary.program.save(str(bindir / binary.name))
        (bindir / "README.txt").write_text("not an elf")
        (bindir / "notes.md").write_text("# also not an elf")

        fleet = _fleet(tiny_corpus)
        with caplog.at_level(logging.INFO, logger="repro.core.fleet"):
            report = fleet.analyze_directory(str(bindir))
        assert len(report.entries) == len(chosen)
        assert sorted(report.skipped) == ["README.txt", "notes.md"]
        assert sum(
            "skipping non-ELF" in record.message for record in caplog.records
        ) == 2
        doc = json.loads(report.to_json(include_runtime=False))
        assert doc["skipped_files"] == ["README.txt", "notes.md"]

    def test_cli_fleet_cache_and_workers(self, tmp_path, tiny_corpus, capsys):
        from repro.cli import main

        bindir = tmp_path / "bin"
        bindir.mkdir()
        libdir = tmp_path / "lib"
        libdir.mkdir()
        cache_dir = tmp_path / "cache"
        for binary in [
            b for b in tiny_corpus.binaries
            if b.hardness is None and not b.is_static
        ][:2]:
            binary.program.save(str(bindir / binary.name))
        for name, lib in tiny_corpus.libraries.items():
            lib.save(str(libdir / name))

        argv = ["fleet", str(bindir), "--libdir", str(libdir),
                "--cache-dir", str(cache_dir), "--workers", "2"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "interface cache:" in out

        # Second (warm) run: whole reports come from the artifact store,
        # so neither binaries nor interfaces are re-analyzed.
        assert main(argv + ["--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["interface_cache"]["misses"] == 0
        assert doc["report_cache"]["misses"] == 0
        assert doc["report_cache"]["hits"] == len(doc["binaries"])
        assert all(entry["cached"] for entry in doc["binaries"])
