"""Backward identification tests over assembled binaries.

Covers the paper's motivating scenarios:

* Figure 1 A — immediate in the same basic block as ``syscall``;
* Figure 1 B — immediate defined in a different basic block;
* Figure 1 C — immediate propagated through stack memory;
* Figure 2 A — a popular function called between definition and syscall;
* Figure 2 B — a syscall wrapper called with different numbers.
"""

from repro.cfg import build_cfg, resolve_indirect_active
from repro.corpus.progbuilder import ProgramBuilder
from repro.symex import (
    ExecContext,
    MemoryBackend,
    SearchBudget,
    backward_identify,
    make_param_query,
    query_rax,
)
from repro.x86 import EAX, Memory, RAX, RDI, RSI, RSP


def analyze_site(prog, *, wrapper_entry=None, param=None):
    """Run backward identification on the program's single relevant target."""
    cfg = build_cfg(prog.image)
    resolve_indirect_active(cfg, prog.image, [prog.image.entry])
    ctx = ExecContext.for_image(cfg, prog.image)
    backend = MemoryBackend([prog.image])
    if wrapper_entry is not None:
        entry = prog.image.symbol_addr(wrapper_entry)
        return backward_identify(
            cfg, ctx, entry, entry, make_param_query(param), backend=backend,
        )
    sys_blocks = cfg.syscall_blocks()
    assert len(sys_blocks) >= 1
    results = []
    for block in sys_blocks:
        site = block.terminator.addr
        results.append(backward_identify(
            cfg, ctx, block.addr, site, query_rax, backend=backend,
        ))
    merged = results[0]
    for extra in results[1:]:
        merged.values |= extra.values
        merged.complete = merged.complete and extra.complete
    return merged


class TestFigure1Scenarios:
    def test_a_immediate_in_same_block(self):
        p = ProgramBuilder("fig1a")
        with p.function("_start"):
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        result = analyze_site(p.build())
        assert result.values == {60}
        assert result.complete

    def test_a_xor_zero_idiom(self):
        p = ProgramBuilder("fig1a_xor")
        with p.function("_start"):
            p.asm.xor(EAX, EAX)  # read, syscall 0
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        result = analyze_site(p.build())
        assert result.values == {0}

    def test_b_immediate_in_predecessor_block(self):
        p = ProgramBuilder("fig1b")
        with p.function("_start"):
            p.asm.test(RDI, RDI)
            p.asm.jcc("e", "path_b")
            p.asm.mov(EAX, 0)  # read
            p.asm.jmp("do_sys")
            p.asm.label("path_b")
            p.asm.mov(EAX, 2)  # open
            p.asm.label("do_sys")
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        result = analyze_site(p.build())
        assert result.values == {0, 2}
        assert result.complete

    def test_c_immediate_through_stack_memory(self):
        p = ProgramBuilder("fig1c")
        with p.function("_start"):
            p.asm.sub(RSP, 0x20)
            p.asm.mov(Memory(base=RSP, disp=0x10), 1)  # write(1) number on stack
            p.asm.nop()
            p.asm.mov(RAX, Memory(base=RSP, disp=0x10))
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        result = analyze_site(p.build())
        assert result.values == {1}
        assert result.complete


class TestInterprocedural:
    def test_immediate_defined_before_popular_callee(self):
        """Figure 2 A: mov imm; call helper; syscall — the callee must be
        executed through, and its other callers must not pollute values."""
        p = ProgramBuilder("fig2a")
        with p.function("memcpyish"):
            # Clobbers rcx/rdx but preserves rax.
            p.asm.mov(RDI, RSI)
            p.asm.ret()
        with p.function("other_user"):
            # Another caller of memcpyish with a different potential value.
            p.asm.mov(EAX, 99)
            p.asm.call("memcpyish")
            p.asm.ret()
        with p.function("_start"):
            p.asm.mov(EAX, 3)  # close
            p.asm.call("memcpyish")
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        result = analyze_site(p.build())
        assert result.values == {3}
        assert result.complete

    def test_syscall_in_called_helper(self):
        """Value set in caller, syscall inside the callee (non-wrapper-like
        but cross-function: the backward walk must escape to call sites)."""
        p = ProgramBuilder("helper_sys")
        with p.function("do_it"):
            p.asm.mov(EAX, 12)  # brk — defined here, same function
            p.asm.syscall()
            p.asm.ret()
        with p.function("_start"):
            p.asm.call("do_it")
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        result = analyze_site(p.build())
        assert result.values == {12, 60}


class TestWrapper:
    def _wrapper_prog(self, stack_args: bool):
        """glibc-style (register arg) or Go-style (stack arg) wrapper."""
        p = ProgramBuilder("wrap")
        with p.function("my_syscall"):
            if stack_args:
                p.asm.mov(RAX, Memory(base=RSP, disp=8))
            else:
                p.asm.mov(RAX, RDI)
            p.asm.syscall()
            p.asm.ret()
        with p.function("_start"):
            if stack_args:
                p.asm.sub(RSP, 0x10)
                p.asm.mov(Memory(base=RSP, disp=0), 1)
                # Adjust: callee sees [rsp+8] after the call pushes ret addr,
                # so the argument must sit at [rsp] before the call.
                p.asm.call("my_syscall")
                p.asm.mov(Memory(base=RSP, disp=0), 39)
                p.asm.call("my_syscall")
                p.asm.add(RSP, 0x10)
            else:
                p.asm.mov(RDI, 1)
                p.asm.call("my_syscall")
                p.asm.mov(RDI, 39)
                p.asm.call("my_syscall")
            p.asm.mov(EAX, 60)
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        return p.build()

    def test_register_wrapper_values_at_entry(self):
        prog = self._wrapper_prog(stack_args=False)
        result = analyze_site(prog, wrapper_entry="my_syscall", param=("reg", "rdi"))
        assert result.values == {1, 39}
        assert result.complete

    def test_stack_wrapper_values_at_entry(self):
        prog = self._wrapper_prog(stack_args=True)
        result = analyze_site(prog, wrapper_entry="my_syscall", param=("stack", 8))
        assert result.values == {1, 39}
        assert result.complete

    def test_undirected_rax_at_wrapper_site_is_incomplete(self):
        """Without wrapper handling, querying rax at the wrapper's syscall
        yields an incomplete result (number comes from the argument)."""
        prog = self._wrapper_prog(stack_args=False)
        result = analyze_site(prog)
        # The wrapper site cannot resolve rax to a constant on all paths...
        # but the _start site (60) still resolves.
        assert 60 in result.values
        assert 1 in result.values and 39 in result.values or not result.complete


class TestBudget:
    def test_budget_exceeded_raises(self):
        import pytest

        from repro.errors import BudgetExceeded

        p = ProgramBuilder("budget")
        with p.function("_start"):
            # A long chain of blocks between definition and use.
            p.asm.mov(EAX, 7)
            for i in range(30):
                p.asm.jmp(f"l{i}")
                p.asm.label(f"l{i}")
            p.asm.syscall()
            p.asm.hlt()
        p.set_entry("_start")
        prog = p.build()
        cfg = build_cfg(prog.image)
        ctx = ExecContext.for_image(cfg, prog.image)
        block = cfg.syscall_blocks()[0]
        with pytest.raises(BudgetExceeded):
            backward_identify(
                cfg, ctx, block.addr, block.terminator.addr, query_rax,
                budget=SearchBudget(max_nodes=5),
            )
