"""Legacy setup shim.

The offline evaluation environment lacks the ``wheel`` package, which PEP 660
editable installs require; ``python setup.py develop`` (or
``pip install -e . --no-build-isolation``) works without it.
"""

from setuptools import setup

setup()
