"""The CVE database of Table 5 (§5.5).

36 kernel-level CVEs triggered through system calls, collected by the
paper from SysFilter, Confine and Kite (2014+).  Each entry maps the CVE
to the syscall(s) involved in the attack and its impact class.
"""

from __future__ import annotations

from dataclasses import dataclass

from .table import SYSCALL_NUMBERS

#: impact classes, as in Table 5's legend
CVE_TYPES = {
    "B": "check bypass",
    "L": "info leak",
    "UaF": "use after free",
    "R": "memory read primitive",
    "W": "memory write primitive",
    "DoS": "denial of service",
    "P": "privilege escalation",
}


@dataclass(frozen=True, slots=True)
class Cve:
    """One kernel CVE and the syscalls its exploitation requires."""

    ident: str
    syscalls: tuple[str, ...]
    types: tuple[str, ...]

    @property
    def numbers(self) -> set[int]:
        return {SYSCALL_NUMBERS[name] for name in self.syscalls
                if name in SYSCALL_NUMBERS}


#: Table 5, verbatim.  compat_* entries map to their 64-bit counterparts
#: (the compat path is reached through the same syscall number under
#: x86-64's 64-bit ABI table used here).
CVE_DATABASE: tuple[Cve, ...] = (
    Cve("2021-35039", ("init_module",), ("B",)),
    Cve("2019-13272", ("ptrace",), ("P",)),
    Cve("2019-11815", ("clone", "unshare"), ("UaF",)),
    Cve("2019-10125", ("io_submit",), ("UaF",)),
    Cve("2019-9857", ("inotify_add_watch",), ("DoS",)),
    Cve("2019-3901", ("execve",), ("L",)),
    Cve("2018-18281", ("ftruncate", "mremap"), ("UaF",)),
    Cve("2018-14634", ("execve", "execveat"), ("P",)),
    Cve("2018-13053", ("clock_nanosleep",), ("DoS",)),
    Cve("2018-12233", ("setxattr",), ("P", "L", "DoS")),
    Cve("2018-11508", ("adjtimex",), ("L",)),
    Cve("2018-1068", ("setsockopt",), ("W",)),
    Cve("2017-18509", ("setsockopt", "getsockopt"), ("P", "DoS")),
    Cve("2017-18344", ("timer_create",), ("R",)),
    Cve("2017-17712", ("sendto", "sendmsg"), ("P",)),
    Cve("2017-17053", ("modify_ldt", "clone"), ("UaF",)),
    Cve("2017-14954", ("waitid",), ("B", "P", "L")),
    Cve("2017-11176", ("mq_notify",), ("DoS",)),
    Cve("2017-6001", ("perf_event_open",), ("P",)),
    Cve("2016-7911", ("ioprio_get",), ("P", "DoS")),
    Cve("2016-6198", ("rename",), ("DoS",)),
    Cve("2016-6197", ("rename", "unlink"), ("DoS",)),
    Cve("2016-4998", ("setsockopt",), ("P", "DoS")),
    Cve("2016-4997", ("setsockopt",), ("P", "DoS")),
    Cve("2016-3134", ("setsockopt",), ("P", "DoS")),
    Cve("2016-2383", ("bpf",), ("L",)),
    Cve("2016-0728", ("keyctl",), ("P", "DoS")),
    Cve("2015-8543", ("socket",), ("P", "DoS")),
    Cve("2015-7613", ("semget", "msgget", "shmget"), ("P",)),
    Cve("2014-9903", ("sched_getattr",), ("L",)),
    Cve("2014-9529", ("keyctl",), ("DoS",)),
    Cve("2014-8133", ("set_thread_area",), ("B",)),
    Cve("2014-7970", ("pivot_root",), ("DoS",)),
    Cve("2014-5207", ("mount",), ("P",)),
    Cve("2014-4699", ("fork", "clone", "ptrace"), ("P", "DoS")),
    Cve("2014-3180", ("nanosleep",), ("R",)),
)

assert len(CVE_DATABASE) == 36


def protection_rate(cve: Cve, identified_sets: list[set[int]]) -> float:
    """Fraction of programs protected against ``cve`` by allow-list filters.

    A program is protected when at least one of the CVE's trigger syscalls
    is absent from its identified set (hence blocked by the derived
    filter) — §5.5's criterion.
    """
    if not identified_sets:
        return 0.0
    numbers = cve.numbers
    protected = sum(
        1 for identified in identified_sets
        if any(nr not in identified for nr in numbers)
    )
    return protected / len(identified_sets)
