"""System call knowledge: the x86-64 table, categories, the CVE database."""

from .categories import CATEGORIES, categorize, category_of, category_summary
from .table import (
    ALL_SYSCALLS,
    DANGEROUS_SYSCALLS,
    NR_SYSCALLS,
    SYSCALL_NAMES,
    SYSCALL_NUMBERS,
    name_of,
    number_of,
    numbers_of,
)

__all__ = [
    "ALL_SYSCALLS",
    "DANGEROUS_SYSCALLS",
    "NR_SYSCALLS",
    "SYSCALL_NAMES",
    "SYSCALL_NUMBERS",
    "name_of",
    "number_of",
    "numbers_of",
    "CATEGORIES",
    "categorize",
    "category_of",
    "category_summary",
]
