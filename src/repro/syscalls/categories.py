"""Functional categories over the syscall table.

Policy review tools group syscalls by subsystem (what does this binary
touch: files? network? process control?).  The categories follow the
kernel's own grouping of ``syscall_64.tbl`` entries; everything not
explicitly listed falls into ``other``.
"""

from __future__ import annotations

from .table import SYSCALL_NAMES, SYSCALL_NUMBERS


def _nums(*names: str) -> frozenset[int]:
    return frozenset(
        SYSCALL_NUMBERS[n] for n in names if n in SYSCALL_NUMBERS
    )


CATEGORIES: dict[str, frozenset[int]] = {
    "file": _nums(
        "read", "write", "open", "close", "stat", "fstat", "lstat",
        "lseek", "pread64", "pwrite64", "readv", "writev", "access",
        "dup", "dup2", "dup3", "fcntl", "flock", "fsync", "fdatasync",
        "truncate", "ftruncate", "getdents", "getdents64", "getcwd",
        "chdir", "fchdir", "rename", "renameat", "renameat2", "mkdir",
        "rmdir", "creat", "link", "unlink", "symlink", "readlink",
        "chmod", "fchmod", "chown", "fchown", "lchown", "umask",
        "openat", "mkdirat", "mknodat", "fchownat", "newfstatat",
        "unlinkat", "linkat", "symlinkat", "readlinkat", "fchmodat",
        "faccessat", "faccessat2", "utimensat", "fallocate", "statx",
        "copy_file_range", "sendfile", "splice", "tee", "sync",
        "sync_file_range", "syncfs", "mknod", "utime", "utimes",
        "futimesat", "statfs", "fstatfs", "openat2", "close_range",
    ),
    "network": _nums(
        "socket", "connect", "accept", "accept4", "sendto", "recvfrom",
        "sendmsg", "recvmsg", "sendmmsg", "recvmmsg", "shutdown", "bind",
        "listen", "getsockname", "getpeername", "socketpair",
        "setsockopt", "getsockopt",
    ),
    "memory": _nums(
        "mmap", "mprotect", "munmap", "brk", "mremap", "msync",
        "mincore", "madvise", "mlock", "munlock", "mlockall",
        "munlockall", "memfd_create", "mbind", "migrate_pages",
        "move_pages", "pkey_mprotect", "pkey_alloc", "pkey_free",
        "userfaultfd", "remap_file_pages", "process_madvise",
    ),
    "process": _nums(
        "clone", "clone3", "fork", "vfork", "execve", "execveat", "exit",
        "exit_group", "wait4", "waitid", "kill", "tkill", "tgkill",
        "getpid", "getppid", "gettid", "setsid", "setpgid", "getpgid",
        "getpgrp", "prctl", "arch_prctl", "ptrace", "set_tid_address",
        "sched_yield", "sched_setparam", "sched_getparam",
        "sched_setscheduler", "sched_getscheduler", "sched_setaffinity",
        "sched_getaffinity", "sched_setattr", "sched_getattr",
        "setpriority", "getpriority", "personality", "prlimit64",
        "getrlimit", "setrlimit", "getrusage", "pidfd_open",
        "pidfd_getfd", "pidfd_send_signal",
    ),
    "signals": _nums(
        "rt_sigaction", "rt_sigprocmask", "rt_sigreturn", "rt_sigpending",
        "rt_sigtimedwait", "rt_sigqueueinfo", "rt_sigsuspend",
        "rt_tgsigqueueinfo", "sigaltstack", "pause", "signalfd",
        "signalfd4", "restart_syscall",
    ),
    "ipc": _nums(
        "pipe", "pipe2", "shmget", "shmat", "shmctl", "shmdt", "semget",
        "semop", "semctl", "semtimedop", "msgget", "msgsnd", "msgrcv",
        "msgctl", "mq_open", "mq_unlink", "mq_timedsend",
        "mq_timedreceive", "mq_notify", "mq_getsetattr", "eventfd",
        "eventfd2", "futex",
    ),
    "time": _nums(
        "nanosleep", "clock_nanosleep", "gettimeofday", "settimeofday",
        "time", "times", "clock_gettime", "clock_settime", "clock_getres",
        "clock_adjtime", "adjtimex", "alarm", "getitimer", "setitimer",
        "timer_create", "timer_settime", "timer_gettime",
        "timer_getoverrun", "timer_delete", "timerfd_create",
        "timerfd_settime", "timerfd_gettime",
    ),
    "events": _nums(
        "poll", "ppoll", "select", "pselect6", "epoll_create",
        "epoll_create1", "epoll_wait", "epoll_pwait", "epoll_ctl",
        "epoll_ctl_old", "epoll_wait_old", "inotify_init",
        "inotify_init1", "inotify_add_watch", "inotify_rm_watch",
        "fanotify_init", "fanotify_mark", "io_setup", "io_destroy",
        "io_getevents", "io_submit", "io_cancel", "io_pgetevents",
        "io_uring_setup", "io_uring_enter", "io_uring_register",
    ),
    "identity": _nums(
        "getuid", "getgid", "geteuid", "getegid", "setuid", "setgid",
        "setreuid", "setregid", "getgroups", "setgroups", "setresuid",
        "getresuid", "setresgid", "getresgid", "setfsuid", "setfsgid",
        "capget", "capset",
    ),
    "admin": _nums(
        "mount", "umount2", "swapon", "swapoff", "reboot", "sethostname",
        "setdomainname", "init_module", "finit_module", "delete_module",
        "kexec_load", "kexec_file_load", "pivot_root", "chroot", "acct",
        "quotactl", "sysfs", "ustat", "syslog", "vhangup", "iopl",
        "ioperm", "modify_ldt", "bpf", "perf_event_open", "seccomp",
        "setns", "unshare", "nfsservctl", "sysinfo", "uname",
    ),
    "keys": _nums("add_key", "request_key", "keyctl"),
    "xattr": _nums(
        "setxattr", "lsetxattr", "fsetxattr", "getxattr", "lgetxattr",
        "fgetxattr", "listxattr", "llistxattr", "flistxattr",
        "removexattr", "lremovexattr", "fremovexattr",
    ),
    "random": _nums("getrandom"),
}


def category_of(nr: int) -> str:
    """The category of one syscall number (``other`` when unlisted)."""
    for name, members in CATEGORIES.items():
        if nr in members:
            return name
    return "other"


def categorize(syscalls: set[int]) -> dict[str, set[int]]:
    """Split a syscall set by category; empty categories omitted."""
    out: dict[str, set[int]] = {}
    for nr in syscalls:
        out.setdefault(category_of(nr), set()).add(nr)
    return out


def category_summary(syscalls: set[int]) -> str:
    """One-line profile like ``file:12 network:8 process:5 …``."""
    grouped = categorize(syscalls)
    parts = [
        f"{name}:{len(grouped[name])}"
        for name in sorted(grouped, key=lambda n: -len(grouped[n]))
    ]
    return " ".join(parts)
