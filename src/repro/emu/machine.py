"""Concrete x86-64 emulator.

The ground-truth executor: loads a program (and, for dynamic executables,
its library dependency closure), performs GOT relocation the way a runtime
loader would, and interprets instructions concretely.  System calls are
delegated to an :class:`~repro.emu.kernel.EmulatedKernel`, which records
the trace — the reproduction's ``strace``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import EmulationError
from ..loader.image import LoadedImage
from ..loader.resolve import LibraryResolver
from ..x86.decoder import decode_all
from ..x86.insn import Immediate, Instruction, Memory
from ..x86.registers import GPR64, Register
from ..x86.insn import CONDITION_CODES

MASK64 = (1 << 64) - 1
STACK_TOP = 0x7FFF_FFFF_0000
STACK_SIZE = 0x40000


def _signed(value: int, width: int = 64) -> int:
    sign = 1 << (width - 1)
    return (value & ((1 << width) - 1)) - ((value & sign) << 1)


@dataclass(slots=True)
class _Region:
    base: int
    data: bytearray

    @property
    def end(self) -> int:
        return self.base + len(self.data)

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class Memory64:
    """Flat memory composed of writable regions."""

    def __init__(self) -> None:
        self._regions: list[_Region] = []

    def map_region(self, base: int, data: bytes) -> None:
        region = _Region(base, bytearray(data))
        for other in self._regions:
            if region.base < other.end and other.base < region.end:
                raise EmulationError(
                    f"mapping {base:#x}+{len(data):#x} overlaps existing region"
                )
        self._regions.append(region)

    def _find(self, addr: int, size: int) -> _Region:
        for region in self._regions:
            if region.contains(addr) and addr + size <= region.end:
                return region
        raise EmulationError(f"unmapped memory access at {addr:#x} size {size}")

    def read(self, addr: int, size: int) -> int:
        region = self._find(addr, size)
        off = addr - region.base
        return int.from_bytes(region.data[off:off + size], "little")

    def write(self, addr: int, value: int, size: int) -> None:
        region = self._find(addr, size)
        off = addr - region.base
        region.data[off:off + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")

    def read_bytes(self, addr: int, size: int) -> bytes:
        region = self._find(addr, size)
        off = addr - region.base
        return bytes(region.data[off:off + size])

    def write_bytes(self, addr: int, payload: bytes) -> None:
        region = self._find(addr, len(payload))
        off = addr - region.base
        region.data[off:off + len(payload)] = payload


class ProcessExit(Exception):
    """Raised by the kernel on exit/exit_group."""

    def __init__(self, status: int):
        super().__init__(f"process exited with status {status}")
        self.status = status


class Machine:
    """A concrete CPU with loaded images and an attached kernel."""

    def __init__(self, kernel) -> None:
        self.kernel = kernel
        self.memory = Memory64()
        self.regs: dict[str, int] = {name: 0 for name in GPR64}
        self.rip = 0
        self._flags: tuple[str, int, int] | None = None
        self._insn_at: dict[int, Instruction] = {}
        self.images: list[LoadedImage] = []
        self.steps = 0

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def load(
        self,
        program: LoadedImage,
        resolver: LibraryResolver | None = None,
        extra_images: list[LoadedImage] | None = None,
    ) -> None:
        """Map the program, its dependency closure, stack; apply relocations.

        ``extra_images`` models dlopen-style modules: prelinked shared
        objects mapped alongside the program (their own deps included).
        """
        images = [program]
        if program.needed:
            if resolver is None:
                raise EmulationError(f"{program.name} needs libraries but no resolver given")
            images.extend(resolver.dependency_closure(program))
        for extra in extra_images or []:
            if any(i.name == extra.name for i in images):
                continue
            images.append(extra)
            if extra.needed and resolver is not None:
                for dep in resolver.dependency_closure(extra):
                    if not any(i.name == dep.name for i in images):
                        images.append(dep)
        self.images = images

        for image in images:
            for seg in image.elf.segments:
                self.memory.map_region(seg.vaddr, seg.data)
            for insn in decode_all(image.text_bytes, image.text_base):
                self._insn_at[insn.addr] = insn

        # Runtime linking: fill every image's GOT import slots.
        exports: dict[str, int] = {}
        for image in images:
            for name, sym in image.exported_functions.items():
                exports.setdefault(name, sym.value)
            for sym in image.elf.dynamic_symbols:
                if sym.defined and not sym.is_function:
                    exports.setdefault(sym.name, sym.value)
        for image in images:
            for got_addr, symbol in image.got_imports.items():
                if symbol not in exports:
                    raise EmulationError(
                        f"{image.name}: unresolved import {symbol!r} at link time"
                    )
                self.memory.write(got_addr, exports[symbol], 8)

        self.memory.map_region(STACK_TOP - STACK_SIZE, b"\x00" * STACK_SIZE)
        self.regs["rsp"] = STACK_TOP - 0x1000
        self.rip = program.entry
        if not self.rip:
            raise EmulationError(f"{program.name} has no entry point")

    def set_inputs(self, inputs: tuple[int, ...] = ()) -> None:
        """Install the run's input vector in argument registers.

        The corpus convention: ``rdi, rsi, rdx, rcx, r8, r9`` carry up to
        six input words the program branches on (the stand-in for
        argv/config/test-suite stimuli).
        """
        arg_regs = ("rdi", "rsi", "rdx", "rcx", "r8", "r9")
        for name, value in zip(arg_regs, inputs):
            self.regs[name] = value & MASK64

    # ------------------------------------------------------------------
    # Operand access
    # ------------------------------------------------------------------

    def _mem_addr(self, mem: Memory) -> int:
        if mem.rip_relative or (mem.base is None and mem.index is None):
            return mem.disp & MASK64
        total = mem.disp
        if mem.base is not None:
            total += self.regs[mem.base.name]
        if mem.index is not None:
            total += self.regs[mem.index.name] * mem.scale
        return total & MASK64

    def read_operand(self, op) -> int:
        if isinstance(op, Register):
            value = self.regs[op.name]
            return value & 0xFFFFFFFF if op.width == 32 else value
        if isinstance(op, Immediate):
            return op.value & MASK64
        if isinstance(op, Memory):
            return self.memory.read(self._mem_addr(op), op.width // 8)
        raise EmulationError(f"cannot read operand {op!r}")

    def write_operand(self, op, value: int) -> None:
        if isinstance(op, Register):
            if op.width == 32:
                value &= 0xFFFFFFFF  # implicit zero extension
            self.regs[op.name] = value & MASK64
            return
        if isinstance(op, Memory):
            self.memory.write(self._mem_addr(op), value, op.width // 8)
            return
        raise EmulationError(f"cannot write operand {op!r}")

    # ------------------------------------------------------------------
    # Flags
    # ------------------------------------------------------------------

    def _set_flags(self, kind: str, a: int, b: int) -> None:
        self._flags = (kind, a & MASK64, b & MASK64)

    def _condition(self, cc: str) -> bool:
        if self._flags is None:
            raise EmulationError("conditional jump with undefined flags")
        kind, a, b = self._flags
        if kind == "and":
            lhs, rhs = a & b, 0
        else:
            lhs, rhs = a, b
        if cc == "e":
            return lhs == rhs
        if cc == "ne":
            return lhs != rhs
        if cc in ("l", "ge", "le", "g"):
            sa, sb = _signed(lhs), _signed(rhs)
            return {"l": sa < sb, "ge": sa >= sb, "le": sa <= sb, "g": sa > sb}[cc]
        if cc in ("b", "ae", "be", "a"):
            return {"b": lhs < rhs, "ae": lhs >= rhs, "be": lhs <= rhs, "a": lhs > rhs}[cc]
        if cc == "s":
            return _signed((lhs - rhs) & MASK64) < 0
        if cc == "ns":
            return _signed((lhs - rhs) & MASK64) >= 0
        raise EmulationError(f"unsupported condition {cc!r}")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def push(self, value: int) -> None:
        self.regs["rsp"] = (self.regs["rsp"] - 8) & MASK64
        self.memory.write(self.regs["rsp"], value, 8)

    def pop(self) -> int:
        value = self.memory.read(self.regs["rsp"], 8)
        self.regs["rsp"] = (self.regs["rsp"] + 8) & MASK64
        return value

    def step(self) -> None:
        insn = self._insn_at.get(self.rip)
        if insn is None:
            raise EmulationError(f"rip {self.rip:#x} is not decodable code")
        self.steps += 1
        m = insn.mnemonic
        ops = insn.operands

        if m in ("mov", "movabs", "movzx"):
            # Memory reads are already zero-extended to the read size.
            self.write_operand(ops[0], self.read_operand(ops[1]))
        elif m in ("movsx", "movsxd"):
            src = ops[1]
            src_width = src.width if isinstance(src, (Register, Memory)) else 32
            value = self.read_operand(src)
            self.write_operand(ops[0], _signed(value, src_width) & MASK64)
        elif m.startswith("cmov") and not insn.is_conditional:
            if self._condition(m[4:]):
                self.write_operand(ops[0], self.read_operand(ops[1]))
        elif m in ("inc", "dec"):
            width = ops[0].width if isinstance(ops[0], (Register, Memory)) else 64
            mask = (1 << width) - 1
            value = self.read_operand(ops[0])
            result = (value + (1 if m == "inc" else -1)) & mask
            self.write_operand(ops[0], result)
            self._set_flags("sub", result, 0)
        elif m == "neg":
            width = ops[0].width if isinstance(ops[0], (Register, Memory)) else 64
            value = self.read_operand(ops[0])
            self.write_operand(ops[0], (-value) & ((1 << width) - 1))
            self._set_flags("sub", 0, value)
        elif m == "not":
            width = ops[0].width if isinstance(ops[0], (Register, Memory)) else 64
            value = self.read_operand(ops[0])
            self.write_operand(ops[0], (~value) & ((1 << width) - 1))
        elif m == "lea":
            assert isinstance(ops[1], Memory)
            self.write_operand(ops[0], self._mem_addr(ops[1]))
        elif m in ("add", "sub", "xor", "and", "or", "shl", "shr", "imul"):
            width = ops[0].width if isinstance(ops[0], (Register, Memory)) else 64
            a = self.read_operand(ops[0])
            b = self.read_operand(ops[1])
            mask = (1 << width) - 1
            if m == "add":
                result = (a + b) & mask
                self._set_flags("sub", result, 0)
            elif m == "sub":
                result = (a - b) & mask
                self._set_flags("sub", a, b)
            elif m == "xor":
                result = (a ^ b) & mask
                self._set_flags("and", result, mask)
            elif m == "and":
                result = a & b & mask
                self._set_flags("and", result, mask)
            elif m == "or":
                result = (a | b) & mask
                self._set_flags("and", result, mask)
            elif m == "shl":
                result = (a << (b & 63)) & mask
            elif m == "shr":
                result = (a & mask) >> (b & 63)
            else:  # imul
                result = (a * b) & mask
            self.write_operand(ops[0], result)
        elif m == "cmp":
            self._set_flags("sub", self.read_operand(ops[0]), self.read_operand(ops[1]))
        elif m == "test":
            self._set_flags("and", self.read_operand(ops[0]), self.read_operand(ops[1]))
        elif m == "push":
            self.push(self.read_operand(ops[0]))
        elif m == "pop":
            self.write_operand(ops[0], self.pop())
        elif m == "nop":
            pass
        elif m in ("cdq", "cqo"):
            self.regs["rdx"] = MASK64 if _signed(self.regs["rax"]) < 0 else 0
        elif m == "syscall":
            self.kernel.dispatch(self)
        elif m == "ret":
            self.rip = self.pop()
            return
        elif m == "call":
            target = self._branch_destination(insn)
            self.push(insn.end)
            self.rip = target
            return
        elif m == "jmp":
            self.rip = self._branch_destination(insn)
            return
        elif insn.is_conditional:
            if self._condition(m[1:]):
                target = insn.branch_target()
                assert target is not None
                self.rip = target
                return
        elif m in ("hlt", "ud2", "int3"):
            raise EmulationError(f"cpu trap: {m} at {insn.addr:#x}")
        else:
            raise EmulationError(f"no concrete semantics for {m!r}")

        self.rip = insn.end

    def _branch_destination(self, insn: Instruction) -> int:
        target = insn.branch_target()
        if target is not None:
            return target
        dest = self.read_operand(insn.operands[0])
        if dest == 0:
            raise EmulationError(f"indirect branch to NULL at {insn.addr:#x}")
        return dest

    def run(self, max_steps: int = 2_000_000) -> int:
        """Run until the process exits; returns the exit status."""
        try:
            while self.steps < max_steps:
                self.step()
            raise EmulationError(f"step budget exhausted after {max_steps} steps")
        except ProcessExit as exited:
            return exited.status
