"""Trace collection: the reproduction's ``strace`` + test-suite runner.

Ground truth for the validation experiment (§5.1) is built by running a
program's entire "test suite" — a list of input vectors — under the
emulator and taking the union of system calls observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import EmulationError, FilterViolation
from ..loader.image import LoadedImage
from ..loader.resolve import LibraryResolver
from .kernel import EmulatedKernel, SyscallRecord
from .machine import Machine


@dataclass(slots=True)
class TraceResult:
    """Outcome of one traced run."""

    exit_status: int | None
    records: list[SyscallRecord]
    steps: int
    killed_by_filter: int | None = None  # syscall nr that tripped the filter

    @property
    def syscall_numbers(self) -> set[int]:
        return {r.nr for r in self.records}

    @property
    def syscall_names(self) -> set[str]:
        return {r.name for r in self.records}


def run_traced(
    program: LoadedImage,
    resolver: LibraryResolver | None = None,
    inputs: tuple[int, ...] = (),
    *,
    read_script: bytes = b"",
    filter_allowed=None,
    filter_hook=None,
    extra_images: list[LoadedImage] | None = None,
    max_steps: int = 2_000_000,
) -> TraceResult:
    """Run one execution of ``program`` and collect its syscall trace."""
    kernel = EmulatedKernel(read_script=read_script)
    if filter_allowed is not None:
        kernel.install_filter(filter_allowed)
    if filter_hook is not None:
        kernel.filter_hook = filter_hook
    machine = Machine(kernel)
    machine.load(program, resolver, extra_images=extra_images)
    machine.set_inputs(inputs)
    try:
        status = machine.run(max_steps=max_steps)
    except FilterViolation as violation:
        return TraceResult(
            exit_status=None,
            records=kernel.trace,
            steps=machine.steps,
            killed_by_filter=violation.sysno,
        )
    return TraceResult(exit_status=status, records=kernel.trace, steps=machine.steps)


def trace_test_suite(
    program: LoadedImage,
    suite: list[tuple[int, ...]],
    resolver: LibraryResolver | None = None,
    *,
    filter_allowed=None,
    extra_images: list[LoadedImage] | None = None,
    max_steps: int = 2_000_000,
) -> tuple[set[int], list[TraceResult]]:
    """Run every input vector of ``suite``; returns (union of syscalls, runs).

    With a filter installed, a run killed by the filter models the paper's
    "legitimate system call flagged as illegal" failure — callers assert
    that no run is killed when validating B-Side-derived rules.
    """
    union: set[int] = set()
    runs: list[TraceResult] = []
    for inputs in suite:
        result = run_traced(
            program, resolver, inputs,
            filter_allowed=filter_allowed, extra_images=extra_images,
            max_steps=max_steps,
        )
        union |= result.syscall_numbers
        runs.append(result)
    return union, runs
