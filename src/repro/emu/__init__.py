"""Concrete emulation: machine, emulated kernel, strace-style tracing."""

from .kernel import EmulatedKernel, SyscallRecord
from .machine import Machine, Memory64, ProcessExit
from .strace import TraceResult, run_traced, trace_test_suite

__all__ = [
    "Machine",
    "Memory64",
    "ProcessExit",
    "EmulatedKernel",
    "SyscallRecord",
    "TraceResult",
    "run_traced",
    "trace_test_suite",
]
