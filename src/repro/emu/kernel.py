"""Emulated Linux kernel: syscall dispatch, trace recording, filtering.

The kernel implements just enough semantics for corpus programs to run to
completion (exit terminates, read fills buffers from scripted input, time
and id calls return stable values, everything else succeeds with 0) while
recording every invocation — the ``strace`` side of the evaluation.

A seccomp-like filter can be installed; a filtered syscall kills the
process with :class:`~repro.errors.FilterViolation`, which is exactly the
observable consequence of a false negative in a derived policy (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import FilterViolation
from ..syscalls.table import SYSCALL_NAMES, name_of, number_of
from .machine import Machine, ProcessExit

MASK64 = (1 << 64) - 1


@dataclass(slots=True)
class SyscallRecord:
    """One traced system call invocation."""

    nr: int
    name: str
    args: tuple[int, ...]
    rip: int


@dataclass
class EmulatedKernel:
    """Syscall dispatcher with tracing and optional filtering."""

    trace: list[SyscallRecord] = field(default_factory=list)
    #: scripted bytes returned by read(2), consumed front-to-back
    read_script: bytes = b""
    #: installed filter: allowed syscall numbers (None = allow all)
    filter_allowed: frozenset[int] | None = None
    #: phase-aware filter callback: (kernel, nr) -> bool, overrides the set
    filter_hook: object = None

    _read_cursor: int = 0
    _next_fd: int = 3
    _brk: int = 0x6000_0000

    def install_filter(self, allowed) -> None:
        self.filter_allowed = frozenset(allowed)

    @property
    def invoked_numbers(self) -> set[int]:
        return {rec.nr for rec in self.trace}

    @property
    def invoked_names(self) -> set[str]:
        return {rec.name for rec in self.trace}

    # ------------------------------------------------------------------

    def dispatch(self, machine: Machine) -> None:
        nr = machine.regs["rax"] & MASK64
        args = tuple(
            machine.regs[r] for r in ("rdi", "rsi", "rdx", "r10", "r8", "r9")
        )
        record = SyscallRecord(nr=nr, name=name_of(nr), args=args,
                               rip=machine.rip)
        self._check_filter(nr, machine)
        self.trace.append(record)
        result = self._execute(nr, args, machine)
        machine.regs["rax"] = result & MASK64
        # Linux clobbers rcx (return rip) and r11 (rflags) on syscall.
        machine.regs["rcx"] = machine.rip + 2
        machine.regs["r11"] = 0x246

    def _check_filter(self, nr: int, machine: Machine) -> None:
        if self.filter_hook is not None:
            if not self.filter_hook(self, nr):
                raise FilterViolation(nr, name_of(nr))
            return
        if self.filter_allowed is not None and nr not in self.filter_allowed:
            raise FilterViolation(nr, name_of(nr))

    # ------------------------------------------------------------------

    def _execute(self, nr: int, args: tuple[int, ...], machine: Machine) -> int:
        name = SYSCALL_NAMES.get(nr)
        if name is None:
            return -38  # -ENOSYS
        if name in ("exit", "exit_group"):
            raise ProcessExit(args[0] & 0xFF)
        if name == "read":
            return self._sys_read(args, machine)
        if name == "write":
            return args[2]  # pretend full write
        if name in ("open", "openat", "creat"):
            fd = self._next_fd
            self._next_fd += 1
            return fd
        if name == "close":
            return 0
        if name == "brk":
            if args[0]:
                self._brk = args[0]
            return self._brk
        if name == "mmap":
            return 0x7F00_0000_0000
        if name == "getpid":
            return 4242
        if name in ("getuid", "geteuid", "getgid", "getegid"):
            return 1000
        if name == "gettid":
            return 4242
        if name == "time":
            return 1_700_000_000
        if name in ("fork", "vfork", "clone"):
            return 4243  # parent view; children are not emulated
        if name == "socket":
            fd = self._next_fd
            self._next_fd += 1
            return fd
        if name in ("accept", "accept4", "dup", "dup2", "dup3", "epoll_create",
                    "epoll_create1", "eventfd", "eventfd2", "timerfd_create",
                    "signalfd", "signalfd4", "inotify_init", "inotify_init1",
                    "memfd_create", "userfaultfd", "io_uring_setup"):
            fd = self._next_fd
            self._next_fd += 1
            return fd
        return 0

    def _sys_read(self, args: tuple[int, ...], machine: Machine) -> int:
        __fd, buf, count = args[0], args[1], args[2]
        available = self.read_script[self._read_cursor:self._read_cursor + count]
        if available and buf:
            machine.memory.write_bytes(buf, available)
        self._read_cursor += len(available)
        return len(available)


def exit_group_nr() -> int:
    return number_of("exit_group")
