"""B-Side reproduction: binary-level static system call identification.

Public API re-exports the pieces a downstream user needs:

* :class:`repro.core.analyzer.BSideAnalyzer` — the paper's contribution,
* the baselines (:mod:`repro.baselines`),
* the corpus generators (:mod:`repro.corpus`),
* the ground-truth emulator (:mod:`repro.emu`),
* phase detection (:mod:`repro.phases`) and filter generation
  (:mod:`repro.filters`).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
