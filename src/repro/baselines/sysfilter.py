"""SysFilter re-implementation (DeMarinis et al., RAID 2020).

Faithful to the published design as characterised in the B-Side paper:

* works **only** on dynamically-compiled / PIC binaries — non-PIC static
  executables are rejected outright (§3, §5.2);
* disassembly is driven by stack-unwinding metadata: a main binary without
  ``.eh_frame`` cannot be processed (the stand-in for SysFilter's
  real-world compatibility failures on most Debian binaries);
* the CFG over-approximates indirect calls with **all** addresses taken
  (no reachability refinement) and the tool *vacuums entire images*: the
  main binary and every byte of every shared library in the dependency
  closure are analysed, reachable or not;
* per-site value recovery is **intra-procedural use-define chains over
  registers only** — immediates travelling through memory or arriving as
  function arguments (wrappers) are silently missed: the tool's documented
  false-negative source.
"""

from __future__ import annotations

import time

from ..core.report import AnalysisReport, StageStats
from ..errors import AnalysisFailure, CfgError, DecodeError, ElfError, LoaderError
from ..loader.image import LoadedImage
from ..loader.resolve import LibraryResolver
from .common import RegisterScanPass, run_image_scan

TOOL_NAME = "sysfilter"


class SysFilterAnalyzer:
    """Binary-wide syscall enumeration, SysFilter style."""

    def __init__(self, resolver: LibraryResolver | None = None):
        self.resolver = resolver or LibraryResolver()
        self._lib_cache: dict[str, tuple[set[int], bool]] = {}

    def analyze(self, image: LoadedImage) -> AnalysisReport:
        started = time.perf_counter()
        try:
            report = self._analyze(image)
        except AnalysisFailure as failure:
            report = AnalysisReport.failed(
                TOOL_NAME, image.name, "compatibility", failure.reason,
            )
        except (CfgError, DecodeError, ElfError, LoaderError) as error:
            report = AnalysisReport.failed(TOOL_NAME, image.name, "load", str(error))
        report.stages.setdefault("total", StageStats())
        report.stages["total"].seconds = time.perf_counter() - started
        return report

    def _analyze(self, image: LoadedImage) -> AnalysisReport:
        if not image.is_pic:
            raise AnalysisFailure(
                TOOL_NAME, "non-PIC (static ET_EXEC) binaries are not supported",
            )
        if not image.has_eh_frame:
            raise AnalysisFailure(
                TOOL_NAME, "missing .eh_frame: unwind-driven disassembly impossible",
            )

        syscalls, complete = self._scan_image(image)
        for lib in self.resolver.dependency_closure(image):
            lib_syscalls, lib_complete = self._scan_library(lib)
            syscalls |= lib_syscalls
            complete = complete and lib_complete

        return AnalysisReport(
            tool=TOOL_NAME,
            binary=image.name,
            success=True,
            syscalls=syscalls,
            complete=complete,  # False records the known FN exposure
        )

    def _scan_library(self, lib: LoadedImage) -> tuple[set[int], bool]:
        if lib.name not in self._lib_cache:
            self._lib_cache[lib.name] = self._scan_image(lib)
        return self._lib_cache[lib.name]

    def _scan_image(self, image: LoadedImage) -> tuple[set[int], bool]:
        # Alternate pipeline config: all-addresses-taken CFG recovery
        # (no refinement), whole-image site vacuum, then unbounded
        # register-only scans.  Unresolved sites are silent false
        # negatives — the tool's documented weakness.
        ctx = run_image_scan(image, RegisterScanPass(window=None), indirect="all")
        return ctx.extras["scan_values"], ctx.extras["scan_resolved"]
