"""Chestnut (Binalyzer) re-implementation (Canella et al., CCSW 2021).

Faithful to the published design as characterised in the B-Side paper:

* per-site value recovery is a **backward scan of at most 30 instructions**
  tracking ``mov``/``xor`` on registers only (the paper's footnote 1 links
  the exact code);
* one hard-coded wrapper is understood: glibc's exported ``syscall()``
  function, recognised **by symbol name**; number values are then scanned
  at its call sites with the same 30-instruction window.  Wrappers in
  other libcs/languages (musl internals, Go runtimes) are *not* detected;
* any site it cannot resolve makes Chestnut fall back to its permissive
  default allow-list (~271 of the 352 modelled syscalls) — precision
  collapses but false negatives stay rare;
* on **static** binaries, unresolvable wrapper-style sites crash the
  Binalyzer pipeline (observed in §5.2: 227/231 static failures) —
  modelled as an :class:`AnalysisFailure`.
"""

from __future__ import annotations

import time

from ..cfg.model import CFG, EDGE_CALL, EDGE_ICALL
from ..core.pipeline import AnalysisContext
from ..core.report import AnalysisReport, StageStats
from ..errors import AnalysisFailure, CfgError, DecodeError, ElfError, LoaderError
from ..loader.image import LoadedImage
from ..loader.resolve import LibraryResolver
from ..syscalls.table import ALL_SYSCALLS, DANGEROUS_SYSCALLS, SYSCALL_NAMES, numbers_of
from .common import RegisterScanPass, collect_register_values, run_image_scan

TOOL_NAME = "chestnut"

#: Chestnut's backward-scan window (instructions).
SCAN_WINDOW = 30

#: Syscalls excluded from the permissive fallback: the >334 additions (not
#: in Chestnut's era) plus its security denylist of dangerous / rarely
#: needed calls.  What remains is the ~271-entry fallback the paper's
#: Figure 7/8 show Chestnut converging to.
_FALLBACK_DENYLIST: frozenset[int] = (
    frozenset(nr for nr in ALL_SYSCALLS if nr > 334)
    | DANGEROUS_SYSCALLS
    | numbers_of(
        "afs_syscall", "tuxcall", "security", "create_module",
        "get_kernel_syms", "query_module", "nfsservctl", "getpmsg",
        "putpmsg", "vserver", "uselib", "_sysctl", "personality",
        "iopl", "ioperm", "modify_ldt", "kexec_file_load", "acct",
        "swapon", "swapoff", "quotactl", "lookup_dcookie", "add_key",
        "request_key", "keyctl", "migrate_pages", "move_pages", "mbind",
        "set_mempolicy", "get_mempolicy", "userfaultfd", "io_setup",
        "io_destroy", "io_getevents", "io_submit", "io_cancel",
        "remap_file_pages", "epoll_ctl_old", "epoll_wait_old",
        "vhangup", "pivot_root", "reboot", "sethostname",
        "setdomainname", "ustat", "sysfs",
    )
)

#: The permissive fallback allow-list (applied when any site is unresolved).
CHESTNUT_FALLBACK: frozenset[int] = frozenset(ALL_SYSCALLS - _FALLBACK_DENYLIST)


class ChestnutAnalyzer:
    """Chestnut's Binalyzer: bounded backward scans + permissive fallback."""

    def __init__(self, resolver: LibraryResolver | None = None):
        self.resolver = resolver or LibraryResolver()
        self._lib_cache: dict[str, tuple[set[int], bool]] = {}

    def analyze(self, image: LoadedImage) -> AnalysisReport:
        started = time.perf_counter()
        try:
            report = self._analyze(image)
        except AnalysisFailure as failure:
            report = AnalysisReport.failed(
                TOOL_NAME, image.name, "binalyzer", failure.reason,
            )
        except (CfgError, DecodeError, ElfError, LoaderError) as error:
            report = AnalysisReport.failed(TOOL_NAME, image.name, "load", str(error))
        report.stages.setdefault("total", StageStats())
        report.stages["total"].seconds = time.perf_counter() - started
        return report

    def _analyze(self, image: LoadedImage) -> AnalysisReport:
        syscalls, resolved_all, saw_memory = self._scan_image(image)
        if saw_memory:
            # Stack-passed syscall numbers (Go-style wrappers, Figure 1 C
            # flows) crash the Binalyzer pipeline outright — the dynamic
            # failure class of §5.2.
            raise AnalysisFailure(
                TOOL_NAME, "syscall number loaded from memory (no wrapper support)",
            )
        if image.is_static_executable and not resolved_all:
            # The paper traces Chestnut's near-total failure on static
            # binaries to its lack of wrapper management: the pipeline
            # crashes on sites whose number is not a visible immediate.
            raise AnalysisFailure(
                TOOL_NAME,
                "unresolvable syscall site in static binary (no wrapper support)",
            )
        for lib in self.resolver.dependency_closure(image):
            lib_syscalls, lib_resolved, __ = self._scan_library(lib)
            syscalls |= lib_syscalls
            resolved_all = resolved_all and lib_resolved

        if not resolved_all:
            syscalls = set(syscalls) | set(CHESTNUT_FALLBACK)

        return AnalysisReport(
            tool=TOOL_NAME,
            binary=image.name,
            success=True,
            syscalls=syscalls,
            complete=resolved_all,
        )

    def _scan_library(self, lib: LoadedImage) -> tuple[set[int], bool, bool]:
        if lib.name not in self._lib_cache:
            self._lib_cache[lib.name] = self._scan_image(lib)
        return self._lib_cache[lib.name]

    def _scan_image(self, image: LoadedImage) -> tuple[set[int], bool, bool]:
        """Returns (values, every site resolved?, memory-sourced number seen?)."""
        # Alternate pipeline config: shares B-Side's cfg-recovery pass
        # (all-addresses-taken mode) and the whole-image site vacuum;
        # identification is the 30-instruction bounded scan with the
        # hard-coded glibc-wrapper special case.
        ctx = run_image_scan(image, ChestnutScanPass(), indirect="all")
        return (
            ctx.extras["scan_values"],
            ctx.extras["scan_resolved"],
            ctx.extras["scan_from_memory"],
        )

    @staticmethod
    def _glibc_wrapper_entry(image: LoadedImage) -> int | None:
        """Chestnut's hard-coded detector: a function *named* ``syscall``."""
        sym = image.functions_by_name.get("syscall") \
            or image.exported_functions.get("syscall")
        return sym.value if sym else None


class ChestnutScanPass(RegisterScanPass):
    """Chestnut's ``identification`` pass: bounded scans + the one
    wrapper it understands (glibc's exported ``syscall()``, recognised
    by symbol name; numbers scanned in ``%rdi`` at its call sites)."""

    def __init__(self):
        super().__init__(window=SCAN_WINDOW)

    def run(self, ctx: AnalysisContext) -> None:
        self._wrapper_entry = ChestnutAnalyzer._glibc_wrapper_entry(ctx.image)
        super().run(ctx)

    def scan_site(
        self, ctx: AnalysisContext, block_addr: int, insn_addr: int,
        func_entry: int,
    ) -> None:
        if self._wrapper_entry is not None and func_entry == self._wrapper_entry:
            values, ok = _scan_wrapper_callers(ctx.cfg, self._wrapper_entry)
            ctx.extras["scan_values"] |= values
            ctx.extras["scan_resolved"] = ctx.extras["scan_resolved"] and ok
            return
        super().scan_site(ctx, block_addr, insn_addr, func_entry)


def _scan_wrapper_callers(cfg: CFG, wrapper_entry: int) -> tuple[set[int], bool]:
    """Scan ``mov edi/rdi, imm`` within the 30-insn window before each
    call to glibc's ``syscall()``."""
    values: set[int] = set()
    ok = True
    for edge in cfg.predecessors(wrapper_entry, kinds=(EDGE_CALL, EDGE_ICALL)):
        call_block = cfg.blocks[edge.src]
        tracked = collect_register_values(
            cfg, call_block.function, call_block.terminator.addr,
            "rdi", insn_limit=SCAN_WINDOW,
        )
        values |= tracked.values
        ok = ok and tracked.resolved
    return values, ok
