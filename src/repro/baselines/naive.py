"""Naive block-local identification (the Confine / plain-angr strategy).

For each ``syscall`` occurrence only the containing basic block (optionally
its direct predecessors) is inspected for an immediate load into ``%rax``
— the strategy §2.4 and Figure 1 show to be insufficient.  Kept as an
ablation baseline: it quantifies how much of the corpus needs CFG-aware
and memory-aware tracking.
"""

from __future__ import annotations

import time

from ..cfg.model import CFG
from ..core.pipeline import AnalysisContext
from ..core.report import AnalysisReport, StageStats
from ..errors import CfgError, DecodeError, ElfError, LoaderError
from ..loader.image import LoadedImage
from ..loader.resolve import LibraryResolver
from ..x86.insn import Immediate
from ..x86.registers import Register
from .common import RegisterScanPass, run_image_scan

TOOL_NAME = "naive"


def _block_local_value(cfg: CFG, block_addr: int, before: int) -> int | None:
    """Last immediate loaded into rax within one block before ``before``."""
    block = cfg.blocks[block_addr]
    value: int | None = None
    for insn in block.insns:
        if insn.addr >= before:
            break
        if insn.mnemonic in ("mov", "movabs") and len(insn.operands) == 2:
            dst, src = insn.operands
            if isinstance(dst, Register) and dst.name == "rax":
                value = src.value if isinstance(src, Immediate) else None
        elif insn.mnemonic == "xor" and len(insn.operands) == 2:
            dst, src = insn.operands
            if (
                isinstance(dst, Register) and dst.name == "rax"
                and isinstance(src, Register) and src.name == "rax"
            ):
                value = 0
    return value


class NaiveAnalyzer:
    """Block-local scanning with one level of predecessor lookup."""

    def __init__(self, resolver: LibraryResolver | None = None,
                 look_at_predecessors: bool = True):
        self.resolver = resolver or LibraryResolver()
        self.look_at_predecessors = look_at_predecessors

    def analyze(self, image: LoadedImage) -> AnalysisReport:
        started = time.perf_counter()
        try:
            report = self._analyze(image)
        except (CfgError, DecodeError, ElfError, LoaderError) as error:
            report = AnalysisReport.failed(TOOL_NAME, image.name, "load", str(error))
        report.stages.setdefault("total", StageStats())
        report.stages["total"].seconds = time.perf_counter() - started
        return report

    def _analyze(self, image: LoadedImage) -> AnalysisReport:
        syscalls, complete = self._scan_image(image)
        if image.needed:
            for lib in self.resolver.dependency_closure(image):
                lib_syscalls, lib_complete = self._scan_image(lib)
                syscalls |= lib_syscalls
                complete = complete and lib_complete
        return AnalysisReport(
            tool=TOOL_NAME, binary=image.name, success=True,
            syscalls=syscalls, complete=complete,
        )

    def _scan_image(self, image: LoadedImage) -> tuple[set[int], bool]:
        # Alternate pipeline config: direct-edge CFG only (no indirect
        # resolution at all), whole-image vacuum, block-local scans.
        scan = NaiveScanPass(self.look_at_predecessors)
        ctx = run_image_scan(image, scan, indirect="none")
        return ctx.extras["scan_values"], ctx.extras["scan_resolved"]


class NaiveScanPass(RegisterScanPass):
    """Block-local ``identification``: the containing block, optionally
    plus one level of direct predecessors."""

    def __init__(self, look_at_predecessors: bool = True):
        super().__init__()
        self.look_at_predecessors = look_at_predecessors

    def scan_site(
        self, ctx: AnalysisContext, block_addr: int, insn_addr: int,
        func_entry: int,
    ) -> None:
        cfg = ctx.cfg
        value = _block_local_value(cfg, block_addr, insn_addr)
        if value is not None:
            ctx.extras["scan_values"].add(value)
            return
        found = False
        if self.look_at_predecessors:
            for edge in cfg.predecessors(block_addr):
                pred_value = _block_local_value(
                    cfg, edge.src, cfg.blocks[edge.src].end,
                )
                if pred_value is not None:
                    ctx.extras["scan_values"].add(pred_value)
                    found = True
        if not found:
            ctx.extras["scan_resolved"] = False
