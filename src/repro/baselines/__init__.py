"""Baseline re-implementations: SysFilter, Chestnut, and a naive scanner.

These follow the algorithms described in the original papers (as
characterised by B-Side's §3) so the evaluation compares *identification
strategies* on identical substrates.
"""

from .chestnut import CHESTNUT_FALLBACK, ChestnutAnalyzer
from .common import TrackResult, collect_register_values, full_image_sites
from .naive import NaiveAnalyzer
from .sysfilter import SysFilterAnalyzer

__all__ = [
    "ChestnutAnalyzer",
    "CHESTNUT_FALLBACK",
    "SysFilterAnalyzer",
    "NaiveAnalyzer",
    "TrackResult",
    "collect_register_values",
    "full_image_sites",
]
