"""Shared machinery for the baseline re-implementations.

Both SysFilter and Chestnut perform register-only value tracking (no
memory).  :func:`collect_register_values` implements the use-define-chain
style both papers describe: walk the containing function's instructions
backwards from an anchor, collecting every immediate that can flow into
the tracked register through ``mov``/``xor`` register chains.  The walk is
linear over addresses — the same approximation the originals make for
straight-line compiler output — and reports whether any definition came
from memory, a call, or was missing entirely (unresolvable at this site).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfg.model import CFG
from ..x86.insn import Immediate, Instruction
from ..x86.registers import Register


@dataclass(slots=True)
class TrackResult:
    """Values found for a tracked register, plus a resolvability verdict."""

    values: set[int]
    resolved: bool  # False when some path's value is not a visible immediate
    #: True when an unresolved definition loaded the register from memory
    #: (stack-passed wrapper arguments, Figure 1 C) — the pattern that
    #: crashes Chestnut's Binalyzer outright
    from_memory: bool = False


def _function_insns_before(
    cfg: CFG, func_entry: int, anchor: int, limit: int | None = None
) -> list[Instruction]:
    func = cfg.functions.get(func_entry)
    if func is None:
        return []
    insns: list[Instruction] = []
    for addr in sorted(func.block_addrs):
        block = cfg.blocks[addr]
        for insn in block.insns:
            if insn.addr < anchor:
                insns.append(insn)
    insns.sort(key=lambda i: i.addr)
    if limit is not None and len(insns) > limit:
        insns = insns[-limit:]
    return insns


def collect_register_values(
    cfg: CFG,
    func_entry: int,
    anchor: int,
    register: str = "rax",
    insn_limit: int | None = None,
) -> TrackResult:
    """Backward register-only value tracking within one function.

    ``insn_limit`` bounds how many instructions before the anchor are
    examined (Chestnut's 30-instruction window); ``None`` scans the whole
    function (SysFilter's intra-procedural use-define chains).
    """
    insns = _function_insns_before(cfg, func_entry, anchor, insn_limit)
    values: set[int] = set()
    resolved = False
    unresolvable = False
    from_memory = False
    tracked = {register}

    for insn in reversed(insns):
        if not tracked:
            break
        if insn.mnemonic in ("mov", "movabs") and len(insn.operands) == 2:
            dst, src = insn.operands
            if isinstance(dst, Register) and dst.name in tracked:
                tracked.discard(dst.name)
                if isinstance(src, Immediate):
                    values.add(src.value)
                    resolved = True
                elif isinstance(src, Register):
                    tracked.add(src.name)
                else:
                    unresolvable = True  # through memory: invisible
                    from_memory = True
        elif insn.mnemonic == "xor" and len(insn.operands) == 2:
            dst, src = insn.operands
            if (
                isinstance(dst, Register) and dst.name in tracked
                and isinstance(src, Register) and src.name == dst.name
            ):
                tracked.discard(dst.name)
                values.add(0)
                resolved = True
        elif insn.mnemonic == "pop" and insn.operands \
                and isinstance(insn.operands[0], Register) \
                and insn.operands[0].name in tracked:
            tracked.discard(insn.operands[0].name)
            unresolvable = True
            from_memory = True
        elif insn.is_call and register in tracked:
            # A call clobbers rax before our anchor: value from callee.
            tracked.discard(register)
            unresolvable = True

    if tracked:
        # Ran out of instructions with the register still undefined: the
        # value comes from outside the function (wrapper argument).
        unresolvable = True
    return TrackResult(
        values=values,
        resolved=resolved and not unresolvable,
        from_memory=from_memory,
    )


def full_image_sites(cfg: CFG) -> list[tuple[int, int, int]]:
    """(block, insn, function) for every syscall instruction — *not*
    restricted to reachable blocks (the baselines vacuum whole images)."""
    out = []
    for block in cfg.blocks.values():
        for insn in block.insns:
            if insn.is_syscall:
                out.append((block.addr, insn.addr, block.function))
    return sorted(out, key=lambda t: t[1])
