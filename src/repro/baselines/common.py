"""Shared machinery for the baseline re-implementations.

Both SysFilter and Chestnut perform register-only value tracking (no
memory).  :func:`collect_register_values` implements the use-define-chain
style both papers describe: walk the containing function's instructions
backwards from an anchor, collecting every immediate that can flow into
the tracked register through ``mov``/``xor`` register chains.  The walk is
linear over addresses — the same approximation the originals make for
straight-line compiler output — and reports whether any definition came
from memory, a call, or was missing entirely (unresolvable at this site).

Since PR 2 the baselines are expressed as **alternate pipeline
configurations** over :mod:`repro.core.pipeline`: they share the
``cfg-recovery`` pass (in ``all``-addresses-taken or ``none`` mode)
with B-Side and swap in their own implementations of the
``site-discovery`` (whole-image vacuum, :class:`FullImageSitesPass`)
and ``identification`` (register-only scans, :class:`RegisterScanPass`)
passes.  :func:`run_image_scan` assembles and runs such a pipeline over
one image.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfg.model import CFG
from ..core.pipeline import (
    AnalysisContext,
    CfgRecoveryPass,
    Pass,
    PassPipeline,
    PipelineConfig,
)
from ..core.report import AnalysisBudget
from ..loader.image import LoadedImage
from ..x86.insn import Immediate, Instruction
from ..x86.registers import Register


@dataclass(slots=True)
class TrackResult:
    """Values found for a tracked register, plus a resolvability verdict."""

    values: set[int]
    resolved: bool  # False when some path's value is not a visible immediate
    #: True when an unresolved definition loaded the register from memory
    #: (stack-passed wrapper arguments, Figure 1 C) — the pattern that
    #: crashes Chestnut's Binalyzer outright
    from_memory: bool = False


def _function_insns_before(
    cfg: CFG, func_entry: int, anchor: int, limit: int | None = None
) -> list[Instruction]:
    func = cfg.functions.get(func_entry)
    if func is None:
        return []
    insns: list[Instruction] = []
    for addr in sorted(func.block_addrs):
        block = cfg.blocks[addr]
        for insn in block.insns:
            if insn.addr < anchor:
                insns.append(insn)
    insns.sort(key=lambda i: i.addr)
    if limit is not None and len(insns) > limit:
        insns = insns[-limit:]
    return insns


def collect_register_values(
    cfg: CFG,
    func_entry: int,
    anchor: int,
    register: str = "rax",
    insn_limit: int | None = None,
) -> TrackResult:
    """Backward register-only value tracking within one function.

    ``insn_limit`` bounds how many instructions before the anchor are
    examined (Chestnut's 30-instruction window); ``None`` scans the whole
    function (SysFilter's intra-procedural use-define chains).
    """
    insns = _function_insns_before(cfg, func_entry, anchor, insn_limit)
    values: set[int] = set()
    resolved = False
    unresolvable = False
    from_memory = False
    tracked = {register}

    for insn in reversed(insns):
        if not tracked:
            break
        if insn.mnemonic in ("mov", "movabs") and len(insn.operands) == 2:
            dst, src = insn.operands
            if isinstance(dst, Register) and dst.name in tracked:
                tracked.discard(dst.name)
                if isinstance(src, Immediate):
                    values.add(src.value)
                    resolved = True
                elif isinstance(src, Register):
                    tracked.add(src.name)
                else:
                    unresolvable = True  # through memory: invisible
                    from_memory = True
        elif insn.mnemonic == "xor" and len(insn.operands) == 2:
            dst, src = insn.operands
            if (
                isinstance(dst, Register) and dst.name in tracked
                and isinstance(src, Register) and src.name == dst.name
            ):
                tracked.discard(dst.name)
                values.add(0)
                resolved = True
        elif insn.mnemonic == "pop" and insn.operands \
                and isinstance(insn.operands[0], Register) \
                and insn.operands[0].name in tracked:
            tracked.discard(insn.operands[0].name)
            unresolvable = True
            from_memory = True
        elif insn.is_call and register in tracked:
            # A call clobbers rax before our anchor: value from callee.
            tracked.discard(register)
            unresolvable = True

    if tracked:
        # Ran out of instructions with the register still undefined: the
        # value comes from outside the function (wrapper argument).
        unresolvable = True
    return TrackResult(
        values=values,
        resolved=resolved and not unresolvable,
        from_memory=from_memory,
    )


def full_image_sites(cfg: CFG) -> list[tuple[int, int, int]]:
    """(block, insn, function) for every syscall instruction — *not*
    restricted to reachable blocks (the baselines vacuum whole images)."""
    out = []
    for block in cfg.blocks.values():
        for insn in block.insns:
            if insn.is_syscall:
                out.append((block.addr, insn.addr, block.function))
    return sorted(out, key=lambda t: t[1])


# ----------------------------------------------------------------------
# Baseline pass implementations (alternate pipeline configurations)
# ----------------------------------------------------------------------


class FullImageSitesPass(Pass):
    """``site-discovery``, baseline flavour: vacuum the whole image.

    No reachability restriction — SysFilter and Chestnut analyse every
    byte of every image (§3)."""

    name = "site-discovery"

    def run(self, ctx: AnalysisContext) -> None:
        ctx.extras["raw_sites"] = full_image_sites(ctx.cfg)

    def units(self, ctx: AnalysisContext) -> int:
        return len(ctx.extras["raw_sites"])


class RegisterScanPass(Pass):
    """``identification``, baseline flavour: register-only backward scans.

    ``window=None`` scans the whole containing function (SysFilter's
    intra-procedural use-define chains); an integer bounds the scan
    (Chestnut's 30-instruction window).  Results land in
    ``ctx.extras``: ``scan_values`` (set), ``scan_resolved`` (every site
    resolved?), ``scan_from_memory`` (memory-sourced number seen?).
    Chestnut subclasses :meth:`scan_site` for its hard-coded glibc
    ``syscall()`` wrapper special case.
    """

    name = "identification"

    def __init__(self, window: int | None = None, register: str = "rax"):
        self.window = window
        self.register = register

    def run(self, ctx: AnalysisContext) -> None:
        ctx.extras.setdefault("scan_values", set())
        ctx.extras.setdefault("scan_resolved", True)
        ctx.extras.setdefault("scan_from_memory", False)
        for block_addr, insn_addr, func_entry in ctx.extras["raw_sites"]:
            self.scan_site(ctx, block_addr, insn_addr, func_entry)
        ctx.complete = ctx.complete and ctx.extras["scan_resolved"]

    def scan_site(
        self, ctx: AnalysisContext, block_addr: int, insn_addr: int,
        func_entry: int,
    ) -> None:
        tracked = collect_register_values(
            ctx.cfg, func_entry, insn_addr, self.register,
            insn_limit=self.window,
        )
        ctx.extras["scan_values"] |= tracked.values
        if not tracked.resolved:
            ctx.extras["scan_resolved"] = False
        if tracked.from_memory:
            ctx.extras["scan_from_memory"] = True

    def units(self, ctx: AnalysisContext) -> int:
        return len(ctx.extras["raw_sites"])


def run_image_scan(
    image: LoadedImage, scan_pass: Pass, *, indirect: str = "all",
) -> AnalysisContext:
    """Run a baseline scan pipeline over one whole image.

    Shares B-Side's ``cfg-recovery`` pass (``indirect`` selects the
    resolution mode, with no symbolic-execution context) and the
    whole-image site vacuum, then the given identification pass.
    Baselines are unbudgeted, so the context gets a generous budget.
    """
    ctx = AnalysisContext(
        image=image,
        roots=[],
        budget=AnalysisBudget.generous(),
        config=PipelineConfig(
            detect_wrappers=False,
            use_active_addresses_taken=(indirect == "active"),
        ),
    )
    PassPipeline([
        CfgRecoveryPass(indirect=indirect, make_exec=False),
        FullImageSitesPass(),
        scan_pass,
    ]).run(ctx)
    return ctx
