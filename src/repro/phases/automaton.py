"""Phase automaton: merged DFA states, allowed lists, back-propagation.

A *phase* is a set of merged DFA states (each itself a set of basic
blocks).  Its **allowed list** is the set of syscalls labelling its
outgoing transitions (self-loops included) — invoking any other syscall in
that phase is a violation.  Cross-phase transitions say which syscall
moves the program to which next phase.

``back_propagate`` implements §4.7's final step for seccomp-style
enforcement: seccomp can only *tighten* filters, so every phase must also
allow whatever its successor phases allow; the propagation runs to a
fixpoint over the (cyclic) phase graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .dfa import DFA


@dataclass
class Phase:
    """One detected phase of execution."""

    pid: int
    dfa_states: set[int] = field(default_factory=set)
    blocks: frozenset[int] = frozenset()
    #: syscall -> destination phase id (self-transitions included)
    transitions: dict[int, int] = field(default_factory=dict)

    @property
    def allowed(self) -> set[int]:
        return set(self.transitions)

    def code_size(self, cfg) -> int:
        """Summed byte size of the phase's basic blocks."""
        return cfg.total_block_bytes(set(self.blocks))


@dataclass
class PhaseAutomaton:
    """The per-program phase machine."""

    start: int
    phases: dict[int, Phase] = field(default_factory=dict)
    #: allowed sets after back-propagation (None until computed)
    propagated: dict[int, set[int]] | None = None

    @property
    def n_phases(self) -> int:
        return len(self.phases)

    def phase_allowed(self, pid: int) -> set[int]:
        """Allowed list (post back-propagation when available)."""
        if self.propagated is not None:
            return self.propagated[pid]
        return self.phases[pid].allowed

    def all_syscalls(self) -> set[int]:
        out: set[int] = set()
        for phase in self.phases.values():
            out |= phase.allowed
        return out

    # ------------------------------------------------------------------
    # Construction from a merged DFA
    # ------------------------------------------------------------------

    @classmethod
    def from_merged_dfa(cls, dfa: DFA, groups: list[set[int]]) -> "PhaseAutomaton":
        """Build phases from DFA state groups (the merge step's output)."""
        phase_of_state: dict[int, int] = {}
        automaton = cls(start=0)
        for pid, group in enumerate(groups):
            blocks: set[int] = set()
            for state in group:
                blocks |= dfa.states[state]
                phase_of_state[state] = pid
            automaton.phases[pid] = Phase(
                pid=pid, dfa_states=set(group), blocks=frozenset(blocks),
            )
        automaton.start = phase_of_state[dfa.start]
        for (state, label), dst in dfa.transitions.items():
            src_phase = phase_of_state[state]
            dst_phase = phase_of_state[dst]
            automaton.phases[src_phase].transitions.setdefault(label, dst_phase)
        return automaton

    # ------------------------------------------------------------------
    # Back-propagation (§4.7, needed for plain seccomp enforcement)
    # ------------------------------------------------------------------

    def back_propagate(self) -> dict[int, set[int]]:
        """allowed'(P) = allowed(P) ∪ ⋃ allowed'(successors of P)."""
        allowed = {pid: set(phase.allowed) for pid, phase in self.phases.items()}
        succs = {
            pid: {dst for dst in phase.transitions.values() if dst != pid}
            for pid, phase in self.phases.items()
        }
        changed = True
        while changed:
            changed = False
            for pid in self.phases:
                union = set(allowed[pid])
                for dst in succs[pid]:
                    union |= allowed[dst]
                if union != allowed[pid]:
                    allowed[pid] = union
                    changed = True
        self.propagated = allowed
        return allowed

    # ------------------------------------------------------------------
    # Reporting (Table 4 analogue)
    # ------------------------------------------------------------------

    def transition_matrix(self) -> dict[tuple[int, int], int]:
        """(src phase, dst phase) -> number of syscall types triggering it."""
        matrix: dict[tuple[int, int], int] = {}
        for pid, phase in self.phases.items():
            for __, dst in phase.transitions.items():
                matrix[(pid, dst)] = matrix.get((pid, dst), 0) + 1
        return matrix

    def strictness_summary(self, total_syscalls: int) -> dict:
        """Per-phase allowed counts and the average strictness gain (§5.4)."""
        per_phase = {
            pid: len(self.phase_allowed(pid)) for pid in self.phases
        }
        if not per_phase or not total_syscalls:
            return {"per_phase": {}, "avg_allowed": 0, "strictness_gain": 0.0}
        avg = sum(per_phase.values()) / len(per_phase)
        return {
            "per_phase": per_phase,
            "avg_allowed": avg,
            "strictness_gain": 1.0 - (avg / total_syscalls),
        }


class PhaseTracker:
    """Runtime companion: tracks the current phase from observed syscalls.

    Used by the emulator-backed enforcement simulation: a syscall outside
    the current phase's allowed list is a violation; an allowed syscall
    may move the tracker to the next phase.

    ``extra_allowed`` carries syscalls permitted in *every* phase without
    triggering transitions — the sound treatment of code the automaton
    cannot place, such as dlopen-loaded modules (§4.5).
    """

    def __init__(
        self,
        automaton: PhaseAutomaton,
        use_propagated: bool = True,
        extra_allowed: set[int] | None = None,
    ):
        self.automaton = automaton
        self.current = automaton.start
        self.use_propagated = use_propagated
        self.extra_allowed = set(extra_allowed or ())
        self.violations: list[int] = []

    def allowed_now(self) -> set[int]:
        if self.use_propagated and self.automaton.propagated is not None:
            return self.automaton.propagated[self.current] | self.extra_allowed
        return self.automaton.phases[self.current].allowed | self.extra_allowed

    def observe(self, syscall: int) -> bool:
        """Feed one syscall; returns True when it was allowed."""
        if syscall not in self.allowed_now():
            self.violations.append(syscall)
            return False
        dst = self.automaton.phases[self.current].transitions.get(syscall)
        if dst is not None:
            self.current = dst
        return True
