"""Phase detection (§4.7): automaton construction and enforcement tracking."""

from .automaton import Phase, PhaseAutomaton, PhaseTracker
from .dfa import DFA, determinize
from .dot import to_dot
from .merge import detect_phases, detect_phases_cfg_navigation, merge_states
from .nfa import EPSILON, NFA, build_nfa

__all__ = [
    "Phase",
    "PhaseAutomaton",
    "PhaseTracker",
    "DFA",
    "determinize",
    "NFA",
    "EPSILON",
    "build_nfa",
    "detect_phases",
    "detect_phases_cfg_navigation",
    "merge_states",
    "to_dot",
]
