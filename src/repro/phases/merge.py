"""DFA-state merging into phases, plus the slow reference method.

The paper merges "highly-connected" DFA states into phases without
pinning down the criterion; this reproduction merges states whose
underlying *basic-block sets* overlap strongly (Jaccard similarity above a
threshold).  The big serving-loop states of a server share most of their
blocks and collapse into large phases, while small strict states (distinct
setup/teardown code) survive on their own — reproducing the two phase
classes of §5.4.

``detect_phases_cfg_navigation`` is the paper's "intuitive method"
(navigating the CFG and merging connected syscall regions) implemented as
the ablation reference: it produces a comparable phase structure but
scales much worse, which is the very motivation for the automaton route.
"""

from __future__ import annotations

import networkx as nx

from ..cfg.model import CFG
from .automaton import PhaseAutomaton
from .dfa import DFA, determinize
from .nfa import build_nfa


class _UnionFind:
    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


def merge_states(dfa: DFA, similarity: float = 0.5) -> list[set[int]]:
    """Group highly-connected DFA states into phases.

    Two criteria, applied together through a union-find:

    * **mutual reachability** — states on a common cycle (a server's event
      loop, a REPL) belong to one phase: they are exactly the "highly
      connected" states §4.7 describes.  Implemented as SCC collapse via
      networkx.
    * **block overlap** — states whose underlying basic-block sets overlap
      strongly (Jaccard >= ``similarity``) describe the same code region
      reached with different histories and merge as well.
    """
    n = dfa.n_states
    uf = _UnionFind(n)

    graph = nx.DiGraph()
    graph.add_nodes_from(range(n))
    for (src, __), dst in dfa.transitions.items():
        if src != dst:
            graph.add_edge(src, dst)
    for component in nx.strongly_connected_components(graph):
        members = sorted(component)
        for other in members[1:]:
            uf.union(members[0], other)

    for i in range(n):
        for j in range(i + 1, n):
            a, b = dfa.states[i], dfa.states[j]
            if not a or not b:
                continue
            inter = len(a & b)
            if inter == 0:
                continue
            union = len(a) + len(b) - inter
            if inter / union >= similarity:
                uf.union(i, j)

    groups: dict[int, set[int]] = {}
    for i in range(n):
        groups.setdefault(uf.find(i), set()).add(i)
    return [groups[root] for root in sorted(groups)]


def detect_phases(
    cfg: CFG,
    block_syscalls: dict[int, set[int]],
    entry: int,
    *,
    reachable: set[int] | None = None,
    similarity: float = 0.5,
    max_dfa_states: int = 20_000,
    back_propagate: bool = True,
) -> PhaseAutomaton:
    """Full §4.7 pipeline: NFA → DFA → merge → (optional) back-propagation."""
    nfa = build_nfa(cfg, block_syscalls, entry, restrict_to=reachable)
    dfa = determinize(nfa, max_states=max_dfa_states)
    groups = merge_states(dfa, similarity=similarity)
    automaton = PhaseAutomaton.from_merged_dfa(dfa, groups)
    if back_propagate:
        automaton.back_propagate()
    return automaton


def detect_phases_cfg_navigation(
    cfg: CFG,
    block_syscalls: dict[int, set[int]],
    entry: int,
    *,
    reachable: set[int] | None = None,
) -> dict[int, set[int]]:
    """The paper's slow "intuitive" method, used as an ablation reference.

    Navigate the CFG from every syscall-bearing node to compute its full
    forward closure; merge *mutually reachable* syscall nodes into phases
    (the "highly connected" sets of §4.7).  One whole-graph traversal per
    syscall node makes the method O(S·E) with a heavy constant — the
    scaling wall that motivates the automaton route (41 s vs 700 s on a
    hello-world in the paper).  Returns phase id -> allowed syscalls.
    """
    flow = ("fall", "jump", "call", "callret", "icall")
    sys_blocks = sorted(
        a for a in block_syscalls if reachable is None or a in reachable
    )

    # Full forward closure per syscall node (deliberately not memoised —
    # this is the naive navigation being measured).
    closures: dict[int, set[int]] = {}
    for block in sys_blocks:
        seen = {block}
        frontier = [block]
        while frontier:
            cur = frontier.pop()
            for edge in cfg.successors(cur, kinds=flow):
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    frontier.append(edge.dst)
        closures[block] = seen

    # Merge mutually-reachable syscall nodes (pairwise comparison).
    order = {block: i for i, block in enumerate(sys_blocks)}
    uf = _UnionFind(len(sys_blocks))
    for i, a in enumerate(sys_blocks):
        for b in sys_blocks[i + 1:]:
            if b in closures[a] and a in closures[b]:
                uf.union(order[a], order[b])

    phases: dict[int, set[int]] = {}
    for block in sys_blocks:
        root = uf.find(order[block])
        phases.setdefault(root, set()).update(block_syscalls[block])
    return {i: allowed for i, allowed in enumerate(phases.values())}
