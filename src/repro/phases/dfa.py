"""NFA → DFA by powerset construction (§4.7).

The determinisation eliminates ε-transitions and guarantees at most one
outgoing transition per syscall type per state.  States of the DFA are
*sets of basic blocks* — the paper's observation that "a basic block can
belong to several phases" follows directly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..errors import BudgetExceeded
from .nfa import NFA


@dataclass
class DFA:
    """Deterministic automaton whose states are frozensets of block addrs."""

    start: int  # index into .states
    states: list[frozenset[int]] = field(default_factory=list)
    #: (state index, syscall) -> state index
    transitions: dict[tuple[int, int], int] = field(default_factory=dict)
    alphabet: set[int] = field(default_factory=set)

    @property
    def n_states(self) -> int:
        return len(self.states)

    def successor(self, state: int, label: int) -> int | None:
        return self.transitions.get((state, label))

    def out_labels(self, state: int) -> set[int]:
        return {label for (s, label) in self.transitions if s == state}


def determinize(nfa: NFA, max_states: int = 20_000) -> DFA:
    """Standard subset construction with ε-closures."""
    start_set = nfa.epsilon_closure(frozenset({nfa.start}))
    index: dict[frozenset[int], int] = {start_set: 0}
    dfa = DFA(start=0, states=[start_set], alphabet=set(nfa.alphabet))
    queue: deque[frozenset[int]] = deque([start_set])

    # Pre-index NFA transitions by state for speed.
    by_state: dict[int, list[tuple[int, set[int]]]] = {}
    for (src, label), dsts in nfa.transitions.items():
        if label != -1:
            by_state.setdefault(src, []).append((label, dsts))

    while queue:
        current = queue.popleft()
        src_idx = index[current]
        moves: dict[int, set[int]] = {}
        for state in current:
            for label, dsts in by_state.get(state, ()):  # non-epsilon only
                moves.setdefault(label, set()).update(dsts)
        for label, dsts in sorted(moves.items()):
            closure = nfa.epsilon_closure(frozenset(dsts))
            if closure not in index:
                if len(index) >= max_states:
                    raise BudgetExceeded("phase-dfa", max_states)
                index[closure] = len(dfa.states)
                dfa.states.append(closure)
                queue.append(closure)
            dfa.transitions[(src_idx, label)] = index[closure]
    return dfa
