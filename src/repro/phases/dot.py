"""Graphviz DOT export of phase automata — the Figure 9 view.

``to_dot`` renders each phase as a node (sized information in the label)
and one edge per (source, destination) pair labelled with the number of
syscall types triggering the transition, exactly like the paper's figure.
"""

from __future__ import annotations

from ..syscalls.table import name_of
from .automaton import PhaseAutomaton


def to_dot(
    automaton: PhaseAutomaton,
    *,
    max_label_syscalls: int = 3,
    include_self_loops: bool = False,
) -> str:
    """Render the automaton in Graphviz DOT format."""
    lines = [
        "digraph phases {",
        "  rankdir=LR;",
        '  node [shape=circle, fontsize=10];',
    ]
    for pid in sorted(automaton.phases):
        phase = automaton.phases[pid]
        shape = "doublecircle" if pid == automaton.start else "circle"
        lines.append(
            f'  p{pid} [label="{pid}\\n{len(phase.allowed)} sys, '
            f'{len(phase.blocks)} bb", shape={shape}];'
        )

    # Group transitions per (src, dst) as in Figure 9.
    grouped: dict[tuple[int, int], list[int]] = {}
    for pid, phase in automaton.phases.items():
        for syscall, dst in sorted(phase.transitions.items()):
            if dst == pid and not include_self_loops:
                continue
            grouped.setdefault((pid, dst), []).append(syscall)
    for (src, dst), syscalls in sorted(grouped.items()):
        names = ", ".join(name_of(nr) for nr in syscalls[:max_label_syscalls])
        if len(syscalls) > max_label_syscalls:
            names += f", … ({len(syscalls)})"
        lines.append(f'  p{src} -> p{dst} [label="{names}", fontsize=8];')
    lines.append("}")
    return "\n".join(lines)
