"""CFG → syscall-labelled NFA (§4.7, first step of phase detection).

States are basic blocks.  Every outgoing edge of a block containing a
system call site is decorated with the site's identified syscall numbers;
all other edges become ε-transitions.  The input alphabet is the set of
syscalls the program can invoke.

Edge semantics differ from the backward-identification view: phase
detection follows *actual* interprocedural flow, so calls into local
functions use the call edge plus synthesized **return edges** (callee
``ret`` block → caller's return site).  The ``callret`` shortcut edge is
only kept for calls with no local callee (imported functions, unresolved
indirect calls) — otherwise it would let the automaton bypass every
syscall inside the callee.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.model import (
    CFG,
    EDGE_CALL,
    EDGE_CALLRET,
    EDGE_FALL,
    EDGE_ICALL,
    EDGE_JUMP,
)

EPSILON = -1  # transition label for non-syscall edges


@dataclass
class NFA:
    """A labelled non-deterministic automaton over basic blocks."""

    start: int
    states: set[int] = field(default_factory=set)
    #: (state, label) -> set of successor states; label -1 is epsilon
    transitions: dict[tuple[int, int], set[int]] = field(default_factory=dict)
    alphabet: set[int] = field(default_factory=set)

    def add(self, src: int, label: int, dst: int) -> None:
        self.states.add(src)
        self.states.add(dst)
        self.transitions.setdefault((src, label), set()).add(dst)
        if label != EPSILON:
            self.alphabet.add(label)

    def successors(self, state: int, label: int) -> set[int]:
        return self.transitions.get((state, label), set())

    def epsilon_closure(self, states: frozenset[int]) -> frozenset[int]:
        out = set(states)
        stack = list(states)
        while stack:
            s = stack.pop()
            for nxt in self.successors(s, EPSILON):
                if nxt not in out:
                    out.add(nxt)
                    stack.append(nxt)
        return frozenset(out)


def _flow_successors(cfg: CFG, block_addr: int, restrict_to: set[int] | None) -> list[int]:
    """Interprocedural successors of a block for phase-detection flow."""
    block = cfg.blocks[block_addr]
    out: list[int] = []

    call_edges = cfg.successors(block_addr, kinds=(EDGE_CALL, EDGE_ICALL))
    plain_edges = cfg.successors(block_addr, kinds=(EDGE_FALL, EDGE_JUMP))
    callret_edges = cfg.successors(block_addr, kinds=(EDGE_CALLRET,))

    for edge in plain_edges:
        out.append(edge.dst)
    if block.ends_in_call or block.terminator.is_indirect_branch:
        if call_edges:
            # Flow enters the callee; the return side is synthesized
            # separately.  The callret shortcut must NOT be taken.
            out.extend(e.dst for e in call_edges)
        else:
            # External or unresolved call: flow continues at the return
            # site (the callee's syscalls are accounted on this block's
            # labels when it calls an imported function).
            out.extend(e.dst for e in callret_edges)
    else:
        out.extend(e.dst for e in call_edges)

    if restrict_to is not None:
        out = [dst for dst in out if dst in restrict_to]
    return out


def _return_edges(cfg: CFG, restrict_to: set[int] | None) -> list[tuple[int, int]]:
    """(ret block, return site) pairs linking callee exits to callers."""
    out: list[tuple[int, int]] = []
    for func_entry, func in cfg.functions.items():
        # All call sites of this function and their return sites.
        return_sites: list[int] = []
        for edge in cfg.predecessors(func_entry, kinds=(EDGE_CALL, EDGE_ICALL)):
            for cr in cfg.successors(edge.src, kinds=(EDGE_CALLRET,)):
                return_sites.append(cr.dst)
        if not return_sites:
            continue
        for block_addr in func.block_addrs:
            block = cfg.blocks.get(block_addr)
            if block is None or not block.ends_in_ret:
                continue
            for site in return_sites:
                if restrict_to is None or (
                    block_addr in restrict_to and site in restrict_to
                ):
                    out.append((block_addr, site))
    return out


def build_nfa(
    cfg: CFG,
    block_syscalls: dict[int, set[int]],
    start: int,
    restrict_to: set[int] | None = None,
) -> NFA:
    """Build the syscall-labelled NFA from a recovered CFG.

    ``block_syscalls`` maps block addresses to identified syscall numbers
    (the analyzer's per-block attribution).  ``restrict_to`` optionally
    limits states to reachable blocks.
    """
    nfa = NFA(start=start)
    nfa.states.add(start)

    def add_block_edges(src: int, dsts: list[int]) -> None:
        labels = block_syscalls.get(src, set())
        for dst in dsts:
            if labels:
                for label in labels:
                    nfa.add(src, label, dst)
            else:
                nfa.add(src, EPSILON, dst)
        if labels and not dsts:
            # Terminal syscall block (e.g. exit): self-loop so the label
            # still appears in the automaton's alphabet.
            for label in labels:
                nfa.add(src, label, src)

    for block in cfg.blocks.values():
        if restrict_to is not None and block.addr not in restrict_to:
            continue
        add_block_edges(block.addr, _flow_successors(cfg, block.addr, restrict_to))

    for ret_block, site in _return_edges(cfg, restrict_to):
        labels = block_syscalls.get(ret_block, set())
        if labels:
            for label in labels:
                nfa.add(ret_block, label, site)
        else:
            nfa.add(ret_block, EPSILON, site)
    return nfa
