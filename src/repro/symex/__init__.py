"""Symbolic execution engine: bitvectors, state, semantics, directed search.

The reproduction's stand-in for angr's symbolic execution (claripy/SimEngine),
scoped to exactly what system-call identification needs: precise tracking of
immediates through registers *and memory*, path-sensitive exploration over
the recovered CFG, and a backward-BFS + directed-forward search (Figure 5).
"""

from .backward import IdentifyResult, SearchBudget, backward_identify
from .bitvec import BVS, BVV, BinOp, Expr, binop, concrete_eval, fresh, to_signed, truncate
from .engine import CALLER_SAVED, ExecContext, read_operand, step, write_operand
from .explorer import ExploreResult, explore, make_param_query, query_rax
from .state import STACK_BASE, Flags, MemoryBackend, SymState

__all__ = [
    "BVV",
    "BVS",
    "BinOp",
    "Expr",
    "binop",
    "truncate",
    "fresh",
    "to_signed",
    "concrete_eval",
    "SymState",
    "Flags",
    "MemoryBackend",
    "STACK_BASE",
    "ExecContext",
    "step",
    "read_operand",
    "write_operand",
    "CALLER_SAVED",
    "explore",
    "ExploreResult",
    "query_rax",
    "make_param_query",
    "backward_identify",
    "IdentifyResult",
    "SearchBudget",
]
