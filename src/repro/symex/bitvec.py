"""Bitvector expressions for the symbolic execution engine.

A deliberately small expression language: concrete values (:class:`BVV`),
free symbols (:class:`BVS`) and binary operations with eager constant
folding.  The identification algorithm only ever asks one question of an
expression — *is it concrete, and what is its value?* — so no SMT solving
is needed; simplification keeps concrete data flowing through registers
and memory folded down to :class:`BVV` nodes.

All values are stored as unsigned 64-bit integers; operation width (32/64)
is applied by masking, which models x86-64's implicit zero extension of
32-bit results.
"""

from __future__ import annotations

import itertools

MASK64 = (1 << 64) - 1

_fresh_ids = itertools.count()


class Expr:
    """Base class for bitvector expressions."""

    __slots__ = ()

    @property
    def is_concrete(self) -> bool:
        return isinstance(self, BVV)

    def value_or_none(self) -> int | None:
        return self.value if isinstance(self, BVV) else None


class BVV(Expr):
    """A concrete 64-bit value."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = value & MASK64

    def __repr__(self) -> str:
        return f"BVV({self.value:#x})"

    def __eq__(self, other) -> bool:
        return isinstance(other, BVV) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("BVV", self.value))


class BVS(Expr):
    """A free symbol (unknown 64-bit value)."""

    __slots__ = ("name", "uid")

    def __init__(self, name: str, uid: int | None = None):
        self.name = name
        self.uid = next(_fresh_ids) if uid is None else uid

    def __repr__(self) -> str:
        return f"BVS({self.name})"

    def __eq__(self, other) -> bool:
        return isinstance(other, BVS) and other.uid == self.uid

    def __hash__(self) -> int:
        return hash(("BVS", self.uid))


class BinOp(Expr):
    """``(a op b) mod 2^width`` for op in +,-,^,&,|,<<,>>,*."""

    __slots__ = ("op", "a", "b", "width")

    def __init__(self, op: str, a: Expr, b: Expr, width: int):
        self.op = op
        self.a = a
        self.b = b
        self.width = width

    def __repr__(self) -> str:
        return f"({self.a!r} {self.op} {self.b!r})[{self.width}]"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, BinOp)
            and other.op == self.op
            and other.width == self.width
            and other.a == self.a
            and other.b == self.b
        )

    def __hash__(self) -> int:
        return hash(("BinOp", self.op, self.width, self.a, self.b))


ZERO = BVV(0)

def _sext(a: int, src_width: int) -> int:
    """Sign-extend the low ``src_width`` bits of ``a`` to 64 bits."""
    a &= (1 << src_width) - 1
    if a & (1 << (src_width - 1)):
        a -= 1 << src_width
    return a & MASK64


_FOLDS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "xor": lambda a, b: a ^ b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "shl": lambda a, b: a << (b & 63),
    "shr": lambda a, b: a >> (b & 63),
    "mul": lambda a, b: a * b,
    # b is the *source width* for sign extension (8, 16 or 32).
    "sext": _sext,
}


def _mask(value: int, width: int) -> int:
    return value & ((1 << width) - 1)


def binop(op: str, a: Expr, b: Expr, width: int = 64) -> Expr:
    """Build ``a op b`` with constant folding and algebraic shortcuts."""
    if op not in _FOLDS:
        raise ValueError(f"unknown bitvector op {op!r}")

    if isinstance(a, BVV) and isinstance(b, BVV):
        return BVV(_mask(_FOLDS[op](a.value, b.value), width))

    # x ^ x = 0, x - x = 0 — even for symbolic x.  The xor form is the
    # classic register-zeroing idiom the engine must fold to track syscall
    # numbers through ``xor eax, eax``.
    if op in ("xor", "sub") and a == b:
        return ZERO

    if isinstance(b, BVV) and b.value == 0:
        if op in ("add", "sub", "xor", "or", "shl", "shr"):
            return _truncate(a, width)
        if op in ("and", "mul"):
            return ZERO
    if isinstance(a, BVV) and a.value == 0:
        if op in ("add", "xor", "or"):
            return _truncate(b, width)
        if op in ("and", "mul", "shl", "shr"):
            return ZERO

    return BinOp(op, a, b, width)


def _truncate(e: Expr, width: int) -> Expr:
    """Mask ``e`` to ``width`` bits (no-op for 64)."""
    if width >= 64:
        return e
    if isinstance(e, BVV):
        return BVV(_mask(e.value, width))
    return BinOp("and", e, BVV((1 << width) - 1), 64)


def truncate(e: Expr, width: int) -> Expr:
    """Public truncation helper."""
    return _truncate(e, width)


def fresh(name: str) -> BVS:
    """A new unique symbol."""
    return BVS(name)


def to_signed(value: int, width: int = 64) -> int:
    """Reinterpret an unsigned value as signed at the given width."""
    sign_bit = 1 << (width - 1)
    return (value & ((1 << width) - 1)) - ((value & sign_bit) << 1)


def concrete_eval(e: Expr, bindings: dict[int, int] | None = None) -> int | None:
    """Evaluate ``e`` to an int, optionally substituting symbol uids.

    Used by property tests to check the simplifier against a reference
    evaluation; returns None if a symbol has no binding.
    """
    if isinstance(e, BVV):
        return e.value
    if isinstance(e, BVS):
        if bindings and e.uid in bindings:
            return bindings[e.uid] & MASK64
        return None
    assert isinstance(e, BinOp)
    a = concrete_eval(e.a, bindings)
    b = concrete_eval(e.b, bindings)
    if a is None or b is None:
        return None
    return _mask(_FOLDS[e.op](a, b), e.width)
