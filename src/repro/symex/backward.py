"""Backward BFS search driver (§4.4, Figure 5).

From a system call site (or wrapper entry), predecessors are visited in
BFS order.  Each visited node seeds a *directed forward* symbolic
execution toward the target; the direction filter is exactly the set of
nodes already discovered by the backward walk (they are the only blocks
that can lie on a path from the seed to the target).

A node whose forward exploration determines the queried value on every
completed path is *immediate-defining*: its own predecessors are not
expanded (the search "stops for a given path", Figure 5).  If the walk
runs out of predecessors while some path still yields a symbolic value,
the result is marked incomplete — the analyzer then over-approximates.

The walk crosses function boundaries in two ways only:

* from a function entry block to its (direct or resolved-indirect) call
  sites — how a search escapes a wrapper to its callers;
* from a call-return site to the calling block (``callret`` edges) —
  which *skips* callee bodies backwards, avoiding the predecessor
  explosion of popular functions (Figure 2A).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field

from ..cfg.model import CFG
from ..errors import BudgetExceeded
from .bitvec import Expr
from .engine import ExecContext
from .explorer import ExploreResult, explore
from .state import MemoryBackend, SymState


@dataclass(slots=True)
class IdentifyResult:
    """Outcome of one site's backward identification."""

    values: set[int] = field(default_factory=set)
    complete: bool = True
    nodes_explored: int = 0
    steps_used: int = 0

    def to_doc(self) -> dict:
        """Cacheable form: values plus the budget spent producing them,
        so a replayed result folds into report counters exactly like the
        live execution it stands in for."""
        return {
            "values": sorted(self.values),
            "complete": self.complete,
            "nodes": self.nodes_explored,
            "steps": self.steps_used,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "IdentifyResult":
        return cls(
            values={int(v) for v in doc["values"]},
            complete=bool(doc["complete"]),
            nodes_explored=int(doc["nodes"]),
            steps_used=int(doc["steps"]),
        )


@dataclass(slots=True)
class SearchBudget:
    """Deterministic budgets standing in for the paper's timeouts."""

    max_nodes: int = 512
    max_total_steps: int = 200_000
    per_exploration_steps: int = 4000

    def check(self, nodes: int, steps: int) -> None:
        if nodes > self.max_nodes:
            raise BudgetExceeded("backward-search-nodes", self.max_nodes)
        if steps > self.max_total_steps:
            raise BudgetExceeded("backward-search-steps", self.max_total_steps)


def _block_of_insn_map(cfg: CFG) -> dict[int, int]:
    """Instruction address -> containing block address.

    Served by the CFG's dense index (built once per graph shape); this
    map was previously rebuilt from every block's instruction list on
    every identified site, which was the single hottest allocation in
    the cold kernel.
    """
    return cfg.index.insn_block


def backward_identify(
    cfg: CFG,
    ctx: ExecContext,
    site_block_addr: int,
    target_addr: int,
    query: Callable[[SymState], Expr],
    *,
    backend: MemoryBackend | None = None,
    budget: SearchBudget | None = None,
    directed: bool = True,
) -> IdentifyResult:
    """Identify all concrete values the query can take at ``target_addr``.

    ``site_block_addr`` is the block containing the target (for plain
    syscall sites) or the wrapper's entry block (for wrapper-mediated
    identification, where ``target_addr`` equals the block address).

    ``directed=False`` disables the direction filter on the forward
    searches (the ablation of §2.4/Figure 2 A): exploration may then
    wander into paths that cannot reach the target, burning budget.
    """
    budget = budget or SearchBudget()
    result = IdentifyResult()
    insn_block = _block_of_insn_map(cfg)

    visited: set[int] = {site_block_addr}
    frontier: deque[int] = deque([site_block_addr])
    total_steps = 0

    def allowed(pc: int) -> bool:
        if pc == target_addr:
            return True
        block = insn_block.get(pc)
        return block is not None and block in visited

    if not directed:
        allowed = None  # type: ignore[assignment]

    while frontier:
        budget.check(result.nodes_explored, total_steps)
        node = frontier.popleft()
        result.nodes_explored += 1

        exploration: ExploreResult = explore(
            ctx,
            node,
            target_addr,
            query,
            allowed=allowed,
            backend=backend,
            max_steps=budget.per_exploration_steps,
        )
        total_steps += exploration.steps_used
        result.values |= exploration.values

        if exploration.fully_concrete and not exploration.budget_exhausted:
            # Immediate-defining node: stop this path of the backward walk.
            continue

        preds = cfg.predecessors(node)
        if not preds and not exploration.fully_concrete:
            # Ran out of predecessors with the value still symbolic on
            # some path (e.g. program entry reached, or value flows from
            # data we cannot see): incomplete.
            if not exploration.values or exploration.saw_symbolic \
                    or exploration.paths_completed == 0:
                result.complete = False
        for edge in preds:
            if edge.src not in visited:
                visited.add(edge.src)
                frontier.append(edge.src)

    result.steps_used = total_steps
    return result
