"""Symbolic machine state: registers, lazy flags, memory.

Memory model
------------

Writes with concrete addresses land in a per-state store keyed by address,
with the value's byte width recorded.  Reads:

* exact-match (same address and size) returns the stored expression;
* otherwise, if the address falls in a loaded image segment, the concrete
  bytes back the read;
* otherwise a *fresh symbol* is returned and memoised, so re-reading the
  same never-written slot yields the same unknown.

Stack-argument symbols get recognisable names (``stackarg_<off>``) so the
wrapper detector can tell "the syscall number came from the function's
stack arguments" apart from arbitrary unknowns (§4.4).

Writes through *symbolic* addresses are recorded but do not alias concrete
reads — a documented over-approximation that matches how the corpus'
compiled code behaves (frame-local, constant-offset addressing).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..x86.registers import GPR64
from .bitvec import BVS, BVV, Expr, binop, fresh, to_signed, truncate

STACK_BASE = 0x7FFF_FFF0_0000


@dataclass(slots=True)
class Flags:
    """Lazy flag state: the last flag-setting operation and its operands."""

    kind: str  # "sub" (cmp/sub), "and" (test/and), "result" (other ALU)
    a: Expr
    b: Expr

    def condition(self, cc: str) -> bool | None:
        """Evaluate a condition code; None when undecidable."""
        a = self.a.value_or_none()
        b = self.b.value_or_none()
        if a is None or b is None:
            return None
        if self.kind == "and":
            masked = a & b
            lhs, rhs = masked, 0
        else:
            lhs, rhs = a, b
        if cc == "e":
            return lhs == rhs
        if cc == "ne":
            return lhs != rhs
        if cc in ("l", "ge", "le", "g"):
            sa, sb = to_signed(lhs), to_signed(rhs)
            return {
                "l": sa < sb, "ge": sa >= sb, "le": sa <= sb, "g": sa > sb,
            }[cc]
        if cc in ("b", "ae", "be", "a"):
            return {
                "b": lhs < rhs, "ae": lhs >= rhs, "be": lhs <= rhs, "a": lhs > rhs,
            }[cc]
        if cc == "s":
            return to_signed(lhs - rhs) < 0
        if cc == "ns":
            return to_signed(lhs - rhs) >= 0
        return None


class MemoryBackend:
    """Read-only concrete memory backing (image segments)."""

    def __init__(self, images=()):
        self._images = list(images)

    def add_image(self, image) -> None:
        self._images.append(image)

    def read(self, addr: int, size: int) -> int | None:
        for image in self._images:
            seg = image.elf.segment_containing(addr)
            if seg is not None and addr + size <= seg.end:
                raw = seg.data[addr - seg.vaddr:addr - seg.vaddr + size]
                return int.from_bytes(raw, "little")
        return None


EMPTY_BACKEND = MemoryBackend()

#: interned initial register files, keyed by state tag (see
#: :meth:`SymState.initial`)
_INITIAL_REGS: dict[str, dict[str, Expr]] = {}


@dataclass(slots=True)
class SymState:
    """One symbolic execution state."""

    pc: int
    regs: dict[str, Expr]
    memory: dict[int, tuple[Expr, int]]
    unknown_reads: dict[tuple[int, int], Expr]
    flags: Flags | None
    backend: MemoryBackend
    entry_rsp: int
    depth: int = 0
    steps: int = 0
    trail: tuple = ()

    @classmethod
    def initial(
        cls,
        pc: int,
        backend: MemoryBackend | None = None,
        concrete_rsp: int = STACK_BASE,
        tag: str = "init",
    ) -> "SymState":
        # The 16 entry-register symbols are interned per tag: explorations
        # never exchange expressions, so sharing the (immutable) initial
        # symbols across states changes nothing semantically while saving
        # 16 allocations per exploration seed — a hot path, as the
        # backward search seeds one exploration per visited block.
        template = _INITIAL_REGS.get(tag)
        if template is None:
            template = {name: BVS(f"{tag}_{name}") for name in GPR64}
            _INITIAL_REGS[tag] = template
        regs: dict[str, Expr] = dict(template)
        regs["rsp"] = BVV(concrete_rsp)
        return cls(
            pc=pc,
            regs=regs,
            memory={},
            unknown_reads={},
            flags=None,
            backend=backend or EMPTY_BACKEND,
            entry_rsp=concrete_rsp,
        )

    def clone(self) -> "SymState":
        return SymState(
            pc=self.pc,
            regs=dict(self.regs),
            memory=dict(self.memory),
            unknown_reads=dict(self.unknown_reads),
            flags=self.flags,
            backend=self.backend,
            entry_rsp=self.entry_rsp,
            depth=self.depth,
            steps=self.steps,
            trail=self.trail,
        )

    # ------------------------------------------------------------------
    # Registers
    # ------------------------------------------------------------------

    def read_reg(self, name: str, width: int = 64) -> Expr:
        value = self.regs[name]
        if width == 32:
            return truncate(value, 32)
        return value

    def write_reg(self, name: str, value: Expr, width: int = 64) -> None:
        if width == 32:
            value = truncate(value, 32)
        self.regs[name] = value

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------

    def read_mem(self, addr: Expr, size: int) -> Expr:
        concrete = addr.value_or_none()
        if concrete is None:
            return fresh("mem_symaddr")
        if concrete in self.memory:
            value, stored_size = self.memory[concrete]
            if stored_size == size:
                return value
            if stored_size > size:
                from .bitvec import truncate

                return truncate(value, size * 8)
            # Partial overwrite of a wider slot: give up precisely.
            return self._unknown_read(concrete, size)
        backed = self.backend.read(concrete, size)
        if backed is not None:
            return BVV(backed)
        return self._unknown_read(concrete, size)

    def _unknown_read(self, addr: int, size: int) -> Expr:
        key = (addr, size)
        if key not in self.unknown_reads:
            offset = addr - self.entry_rsp
            if 0 <= offset <= 0x200:
                name = f"stackarg_{offset}"
            else:
                name = f"mem_{addr:#x}"
            self.unknown_reads[key] = BVS(name)
        return self.unknown_reads[key]

    def write_mem(self, addr: Expr, value: Expr, size: int) -> None:
        concrete = addr.value_or_none()
        if concrete is None:
            # Symbolic store: no aliasing with the concrete store
            # (documented over-approximation).
            return
        self.memory[concrete] = (value, size)

    # ------------------------------------------------------------------
    # Stack helpers
    # ------------------------------------------------------------------

    def push(self, value: Expr) -> None:
        rsp = binop("sub", self.regs["rsp"], BVV(8))
        self.regs["rsp"] = rsp
        self.write_mem(rsp, value, 8)

    def pop(self) -> Expr:
        rsp = self.regs["rsp"]
        value = self.read_mem(rsp, 8)
        self.regs["rsp"] = binop("add", rsp, BVV(8))
        return value
