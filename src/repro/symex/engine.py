"""Per-instruction symbolic semantics.

:func:`step` advances one :class:`~repro.symex.state.SymState` by one
instruction and returns the list of successor states (two for a
conditional branch with undecidable flags, zero when the path dies).

Call handling (within one image, as identification is decoupled per image
— §4.5):

* direct calls to local code are executed for real (push return address,
  jump) — this is what lets immediates travel through memory and through
  "popular functions" (Figure 2A);
* calls/jumps through an imported GOT slot model an external function:
  caller-saved registers and ``rax`` are clobbered with fresh unknowns and
  execution resumes at the return site;
* indirect calls whose target expression is concrete and local are
  executed; anything else is treated like an external call.

``syscall`` instructions encountered mid-path clobber ``rax``/``rcx``/
``r11`` per the Linux ABI and fall through.

:func:`step` is the symbolic kernel's innermost loop (one call per
instruction per path of every exploration), so instruction semantics are
dispatched through a precomputed mnemonic table — one dict lookup per
step — and operand reads/writes through per-type tables, instead of the
original if/elif chains over mnemonic strings and isinstance tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SymexError
from ..x86.insn import CONDITION_CODES, Immediate, Instruction, Memory
from ..x86.registers import Register
from .bitvec import BVV, Expr, binop, fresh, to_signed
from .state import Flags, SymState

#: System V AMD64 caller-saved (volatile) registers.
CALLER_SAVED = ("rax", "rcx", "rdx", "rsi", "rdi", "r8", "r9", "r10", "r11")

_ALU_OPS = {"add": "add", "sub": "sub", "xor": "xor", "and": "and",
            "or": "or", "shl": "shl", "shr": "shr", "imul": "mul"}


@dataclass
class ExecContext:
    """Everything :func:`step` needs besides the state itself."""

    insn_at: dict[int, Instruction]
    text_base: int = 0
    text_end: int = 0
    got_imports: dict[int, str] = field(default_factory=dict)
    #: addresses of local function entries (for indirect call sanity)
    function_entries: frozenset[int] = frozenset()

    def is_local_code(self, addr: int) -> bool:
        return self.text_base <= addr < self.text_end

    def fetch(self, addr: int) -> Instruction | None:
        return self.insn_at.get(addr)

    @classmethod
    def for_image(cls, cfg, image) -> "ExecContext":
        """Build a context for one image's recovered CFG.

        The instruction map is shared with (not copied from) the CFG's
        dense index, which already holds every decoded instruction keyed
        by address — contexts are built per pipeline run, and the map
        was previously rebuilt from scratch each time.
        """
        return cls(
            insn_at=cfg.index.insn_at,
            text_base=image.text_base,
            text_end=image.text_end,
            got_imports=dict(image.got_imports),
            function_entries=frozenset(cfg.functions),
        )


def _mem_address(state: SymState, mem: Memory) -> Expr:
    if mem.rip_relative:
        return BVV(mem.disp)
    if mem.base is None and mem.index is None:
        return BVV(mem.disp)
    total: Expr = BVV(mem.disp)
    if mem.base is not None:
        total = binop("add", total, state.regs[mem.base.name])
    if mem.index is not None:
        scaled = binop("mul", state.regs[mem.index.name], BVV(mem.scale))
        total = binop("add", total, scaled)
    return total


def _read_register(state: SymState, op: Register) -> Expr:
    return state.read_reg(op.name, op.width)


def _read_immediate(state: SymState, op: Immediate) -> Expr:
    return BVV(op.value)


def _read_memory(state: SymState, op: Memory) -> Expr:
    return state.read_mem(_mem_address(state, op), op.width // 8)


_READERS = {
    Register: _read_register,
    Immediate: _read_immediate,
    Memory: _read_memory,
}


def read_operand(state: SymState, op) -> Expr:
    reader = _READERS.get(type(op))
    if reader is None:
        raise SymexError(f"cannot read operand {op!r}")
    return reader(state, op)


def _write_register(state: SymState, op: Register, value: Expr) -> None:
    state.write_reg(op.name, value, op.width)


def _write_memory(state: SymState, op: Memory, value: Expr) -> None:
    state.write_mem(_mem_address(state, op), value, op.width // 8)


_WRITERS = {
    Register: _write_register,
    Memory: _write_memory,
}


def write_operand(state: SymState, op, value: Expr) -> None:
    writer = _WRITERS.get(type(op))
    if writer is None:
        raise SymexError(f"cannot write operand {op!r}")
    writer(state, op, value)


def _external_symbol_for(ctx: ExecContext, insn: Instruction) -> str | None:
    """Imported-symbol name if ``insn`` branches through a GOT import slot."""
    if not insn.is_indirect_branch:
        return None
    op = insn.operands[0]
    if isinstance(op, Memory) and (op.rip_relative or (op.base is None and op.index is None)):
        return ctx.got_imports.get(op.disp)
    return None


def _clobber_external_call(state: SymState) -> None:
    for name in CALLER_SAVED:
        state.regs[name] = fresh(f"ext_{name}")
    state.flags = None


# ----------------------------------------------------------------------
# Per-mnemonic semantics.  Handler signature: (state, ctx, insn) ->
# list[SymState].  Registered in _HANDLERS below; step() is one lookup.
# ----------------------------------------------------------------------


def _do_mov(state, ctx, insn):
    dst, src = insn.operands
    write_operand(state, dst, read_operand(state, src))
    state.pc = insn.addr + insn.size
    return [state]


def _do_movzx(state, ctx, insn):
    dst, src = insn.operands
    # Memory reads are already zero-extended to the read size.
    write_operand(state, dst, read_operand(state, src))
    state.pc = insn.addr + insn.size
    return [state]


def _do_movsx(state, ctx, insn):
    dst, src = insn.operands
    src_width = src.width if isinstance(src, (Memory, Register)) else 32
    value = read_operand(state, src)
    write_operand(state, dst, binop("sext", value, BVV(src_width)))
    state.pc = insn.addr + insn.size
    return [state]


def _make_cmov(cc: str):
    def do_cmov(state, ctx, insn):
        dst, src = insn.operands
        verdict = state.flags.condition(cc) if state.flags is not None else None
        if verdict is True:
            write_operand(state, dst, read_operand(state, src))
        elif verdict is None:
            # Undecidable: the destination becomes unknown (sound merge).
            write_operand(state, dst, fresh("cmov"))
        state.pc = insn.addr + insn.size
        return [state]
    return do_cmov


def _make_incdec(op: str):
    def do_incdec(state, ctx, insn):
        (dst,) = insn.operands
        width = dst.width if isinstance(dst, (Register, Memory)) else 64
        result = binop(op, read_operand(state, dst), BVV(1), width)
        write_operand(state, dst, result)
        state.flags = Flags("sub", result, BVV(0))
        state.pc = insn.addr + insn.size
        return [state]
    return do_incdec


def _do_neg(state, ctx, insn):
    (dst,) = insn.operands
    width = dst.width if isinstance(dst, (Register, Memory)) else 64
    value = read_operand(state, dst)
    result = binop("sub", BVV(0), value, width)
    write_operand(state, dst, result)
    state.flags = Flags("sub", BVV(0), value)
    state.pc = insn.addr + insn.size
    return [state]


def _do_not(state, ctx, insn):
    (dst,) = insn.operands
    width = dst.width if isinstance(dst, (Register, Memory)) else 64
    mask = (1 << width) - 1
    write_operand(state, dst, binop("xor", read_operand(state, dst), BVV(mask), width))
    state.pc = insn.addr + insn.size
    return [state]


def _do_lea(state, ctx, insn):
    dst, src = insn.operands
    assert isinstance(src, Memory)
    write_operand(state, dst, _mem_address(state, src))
    state.pc = insn.addr + insn.size
    return [state]


def _make_alu(mnemonic: str, op: str):
    sets_sub_flags = mnemonic == "sub"
    sets_logic_flags = mnemonic in ("and", "xor", "or")
    sets_result_flags = mnemonic in ("add",)

    def do_alu(state, ctx, insn):
        dst, src = insn.operands
        width = dst.width if isinstance(dst, (Register, Memory)) else 64
        a = read_operand(state, dst)
        b = read_operand(state, src)
        result = binop(op, a, b, width)
        write_operand(state, dst, result)
        if sets_sub_flags:
            state.flags = Flags("sub", a, b)
        elif sets_logic_flags:
            state.flags = Flags("and", result, BVV((1 << 64) - 1))
        elif sets_result_flags:
            state.flags = Flags("sub", result, BVV(0))
        state.pc = insn.addr + insn.size
        return [state]
    return do_alu


def _do_cmp(state, ctx, insn):
    a = read_operand(state, insn.operands[0])
    b = read_operand(state, insn.operands[1])
    state.flags = Flags("sub", a, b)
    state.pc = insn.addr + insn.size
    return [state]


def _do_test(state, ctx, insn):
    a = read_operand(state, insn.operands[0])
    b = read_operand(state, insn.operands[1])
    state.flags = Flags("and", a, b)
    state.pc = insn.addr + insn.size
    return [state]


def _do_push(state, ctx, insn):
    state.push(read_operand(state, insn.operands[0]))
    state.pc = insn.addr + insn.size
    return [state]


def _do_pop(state, ctx, insn):
    write_operand(state, insn.operands[0], state.pop())
    state.pc = insn.addr + insn.size
    return [state]


def _do_cdq(state, ctx, insn):
    # Sign-extension of rax into rdx: rdx becomes unknown unless rax
    # is concrete.
    rax = state.regs["rax"].value_or_none()
    if rax is not None:
        state.regs["rdx"] = BVV(0 if to_signed(rax) >= 0 else (1 << 64) - 1)
    else:
        state.regs["rdx"] = fresh("cqo_rdx")
    state.pc = insn.addr + insn.size
    return [state]


def _do_nop(state, ctx, insn):
    state.pc = insn.addr + insn.size
    return [state]


def _do_syscall(state, ctx, insn):
    # Mid-path syscall: Linux clobbers rax (return value), rcx and r11.
    state.regs["rax"] = fresh("sys_ret")
    state.regs["rcx"] = fresh("sys_rcx")
    state.regs["r11"] = fresh("sys_r11")
    state.pc = insn.addr + insn.size
    return [state]


def _make_jcc(cc: str):
    def do_jcc(state, ctx, insn):
        target = insn.branch_target()
        assert target is not None
        verdict = state.flags.condition(cc) if state.flags is not None else None
        if verdict is True:
            state.pc = target
            return [state]
        if verdict is False:
            state.pc = insn.addr + insn.size
            return [state]
        taken = state.clone()
        taken.pc = target
        state.pc = insn.addr + insn.size
        return [taken, state]
    return do_jcc


def _do_jmp(state, ctx, insn):
    target = insn.branch_target()
    if target is not None:
        state.pc = target
        return [state]
    symbol = _external_symbol_for(ctx, insn)
    if symbol is not None:
        # External tail call: clobber, then behave like ret.
        _clobber_external_call(state)
        return _do_ret(state)
    dest = read_operand(state, insn.operands[0])
    concrete = dest.value_or_none()
    if concrete is not None and ctx.is_local_code(concrete):
        state.pc = concrete
        return [state]
    # Unknown indirect jump: path cannot be followed.
    return []


def _do_halt(state, ctx, insn):
    return []


def step(state: SymState, ctx: ExecContext) -> list[SymState]:
    """Execute the instruction at ``state.pc``; returns successor states."""
    insn = ctx.fetch(state.pc)
    if insn is None:
        return []
    state.steps += 1
    handler = _HANDLERS.get(insn.mnemonic)
    if handler is None:
        raise SymexError(f"no semantics for mnemonic {insn.mnemonic!r}")
    return handler(state, ctx, insn)


def _do_call(state: SymState, ctx: ExecContext, insn: Instruction) -> list[SymState]:
    return_addr = insn.addr + insn.size
    target = insn.branch_target()
    if target is not None and ctx.is_local_code(target):
        state.push(BVV(return_addr))
        state.depth += 1
        state.pc = target
        return [state]

    symbol = _external_symbol_for(ctx, insn)
    if symbol is None:
        dest = read_operand(state, insn.operands[0])
        concrete = dest.value_or_none()
        if concrete is not None and ctx.is_local_code(concrete):
            state.push(BVV(return_addr))
            state.depth += 1
            state.pc = concrete
            return [state]
    # External (or unresolvable) call: clobber and continue at return site.
    _clobber_external_call(state)
    state.pc = return_addr
    return [state]


def _do_ret(state: SymState) -> list[SymState]:
    value = state.pop()
    concrete = value.value_or_none()
    if concrete is None:
        # Returning past the start of the exploration frame: the return
        # address slot was never written in this state.  The explorer
        # treats an empty successor list as path end.
        return []
    state.pc = concrete
    state.depth = max(0, state.depth - 1)
    return [state]


def _build_handlers() -> dict:
    handlers = {
        "mov": _do_mov,
        "movabs": _do_mov,
        "movzx": _do_movzx,
        "movsx": _do_movsx,
        "movsxd": _do_movsx,
        "inc": _make_incdec("add"),
        "dec": _make_incdec("sub"),
        "neg": _do_neg,
        "not": _do_not,
        "lea": _do_lea,
        "cmp": _do_cmp,
        "test": _do_test,
        "push": _do_push,
        "pop": _do_pop,
        "cdq": _do_cdq,
        "cqo": _do_cdq,
        "nop": _do_nop,
        "syscall": _do_syscall,
        "jmp": _do_jmp,
        "call": lambda state, ctx, insn: _do_call(state, ctx, insn),
        "ret": lambda state, ctx, insn: _do_ret(state),
        "hlt": _do_halt,
        "ud2": _do_halt,
        "int3": _do_halt,
    }
    for mnemonic, op in _ALU_OPS.items():
        handlers[mnemonic] = _make_alu(mnemonic, op)
    for cc in CONDITION_CODES.values():
        handlers[f"cmov{cc}"] = _make_cmov(cc)
        handlers[f"j{cc}"] = _make_jcc(cc)
    return handlers


_HANDLERS = _build_handlers()
