"""Per-instruction symbolic semantics.

:func:`step` advances one :class:`~repro.symex.state.SymState` by one
instruction and returns the list of successor states (two for a
conditional branch with undecidable flags, zero when the path dies).

Call handling (within one image, as identification is decoupled per image
— §4.5):

* direct calls to local code are executed for real (push return address,
  jump) — this is what lets immediates travel through memory and through
  "popular functions" (Figure 2A);
* calls/jumps through an imported GOT slot model an external function:
  caller-saved registers and ``rax`` are clobbered with fresh unknowns and
  execution resumes at the return site;
* indirect calls whose target expression is concrete and local are
  executed; anything else is treated like an external call.

``syscall`` instructions encountered mid-path clobber ``rax``/``rcx``/
``r11`` per the Linux ABI and fall through.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SymexError
from ..x86.insn import Immediate, Instruction, Memory
from ..x86.registers import Register
from .bitvec import BVV, Expr, binop, fresh
from .state import Flags, SymState

#: System V AMD64 caller-saved (volatile) registers.
CALLER_SAVED = ("rax", "rcx", "rdx", "rsi", "rdi", "r8", "r9", "r10", "r11")

_ALU_OPS = {"add": "add", "sub": "sub", "xor": "xor", "and": "and",
            "or": "or", "shl": "shl", "shr": "shr", "imul": "mul"}


@dataclass
class ExecContext:
    """Everything :func:`step` needs besides the state itself."""

    insn_at: dict[int, Instruction]
    text_base: int = 0
    text_end: int = 0
    got_imports: dict[int, str] = field(default_factory=dict)
    #: addresses of local function entries (for indirect call sanity)
    function_entries: frozenset[int] = frozenset()

    def is_local_code(self, addr: int) -> bool:
        return self.text_base <= addr < self.text_end

    def fetch(self, addr: int) -> Instruction | None:
        return self.insn_at.get(addr)

    @classmethod
    def for_image(cls, cfg, image) -> "ExecContext":
        """Build a context for one image's recovered CFG."""
        insn_at = {
            insn.addr: insn
            for block in cfg.blocks.values()
            for insn in block.insns
        }
        return cls(
            insn_at=insn_at,
            text_base=image.text_base,
            text_end=image.text_end,
            got_imports=dict(image.got_imports),
            function_entries=frozenset(cfg.functions),
        )


def _mem_address(state: SymState, mem: Memory) -> Expr:
    if mem.rip_relative:
        return BVV(mem.disp)
    if mem.base is None and mem.index is None:
        return BVV(mem.disp)
    total: Expr = BVV(mem.disp)
    if mem.base is not None:
        total = binop("add", total, state.regs[mem.base.name])
    if mem.index is not None:
        scaled = binop("mul", state.regs[mem.index.name], BVV(mem.scale))
        total = binop("add", total, scaled)
    return total


def read_operand(state: SymState, op) -> Expr:
    if isinstance(op, Register):
        return state.read_reg(op.name, op.width)
    if isinstance(op, Immediate):
        return BVV(op.value)
    if isinstance(op, Memory):
        addr = _mem_address(state, op)
        return state.read_mem(addr, op.width // 8)
    raise SymexError(f"cannot read operand {op!r}")


def write_operand(state: SymState, op, value: Expr) -> None:
    if isinstance(op, Register):
        state.write_reg(op.name, value, op.width)
        return
    if isinstance(op, Memory):
        addr = _mem_address(state, op)
        state.write_mem(addr, value, op.width // 8)
        return
    raise SymexError(f"cannot write operand {op!r}")


def _external_symbol_for(ctx: ExecContext, insn: Instruction) -> str | None:
    """Imported-symbol name if ``insn`` branches through a GOT import slot."""
    if not insn.is_indirect_branch:
        return None
    op = insn.operands[0]
    if isinstance(op, Memory) and (op.rip_relative or (op.base is None and op.index is None)):
        return ctx.got_imports.get(op.disp)
    return None


def _clobber_external_call(state: SymState) -> None:
    for name in CALLER_SAVED:
        state.regs[name] = fresh(f"ext_{name}")
    state.flags = None


def step(state: SymState, ctx: ExecContext) -> list[SymState]:
    """Execute the instruction at ``state.pc``; returns successor states."""
    insn = ctx.fetch(state.pc)
    if insn is None:
        return []
    state.steps += 1
    m = insn.mnemonic

    if m in ("mov", "movabs"):
        dst, src = insn.operands
        write_operand(state, dst, read_operand(state, src))
        state.pc = insn.end
        return [state]

    if m == "movzx":
        dst, src = insn.operands
        # Memory reads are already zero-extended to the read size.
        write_operand(state, dst, read_operand(state, src))
        state.pc = insn.end
        return [state]

    if m in ("movsx", "movsxd"):
        dst, src = insn.operands
        src_width = src.width if isinstance(src, (Memory, Register)) else 32
        value = read_operand(state, src)
        write_operand(state, dst, binop("sext", value, BVV(src_width)))
        state.pc = insn.end
        return [state]

    if m.startswith("cmov") and m not in ("cmov",):
        cc = m[4:]
        dst, src = insn.operands
        verdict = state.flags.condition(cc) if state.flags is not None else None
        if verdict is True:
            write_operand(state, dst, read_operand(state, src))
        elif verdict is None:
            # Undecidable: the destination becomes unknown (sound merge).
            write_operand(state, dst, fresh("cmov"))
        state.pc = insn.end
        return [state]

    if m in ("inc", "dec"):
        (dst,) = insn.operands
        width = dst.width if isinstance(dst, (Register, Memory)) else 64
        result = binop("add" if m == "inc" else "sub",
                       read_operand(state, dst), BVV(1), width)
        write_operand(state, dst, result)
        state.flags = Flags("sub", result, BVV(0))
        state.pc = insn.end
        return [state]

    if m == "neg":
        (dst,) = insn.operands
        width = dst.width if isinstance(dst, (Register, Memory)) else 64
        value = read_operand(state, dst)
        result = binop("sub", BVV(0), value, width)
        write_operand(state, dst, result)
        state.flags = Flags("sub", BVV(0), value)
        state.pc = insn.end
        return [state]

    if m == "not":
        (dst,) = insn.operands
        width = dst.width if isinstance(dst, (Register, Memory)) else 64
        mask = (1 << width) - 1
        write_operand(state, dst, binop("xor", read_operand(state, dst), BVV(mask), width))
        state.pc = insn.end
        return [state]

    if m == "lea":
        dst, src = insn.operands
        assert isinstance(src, Memory)
        write_operand(state, dst, _mem_address(state, src))
        state.pc = insn.end
        return [state]

    if m in _ALU_OPS:
        dst, src = insn.operands
        width = dst.width if isinstance(dst, (Register, Memory)) else 64
        a = read_operand(state, dst)
        b = read_operand(state, src)
        result = binop(_ALU_OPS[m], a, b, width)
        write_operand(state, dst, result)
        if m in ("add", "sub", "xor", "and", "or"):
            if m == "sub":
                state.flags = Flags("sub", a, b)
            elif m in ("and", "xor", "or"):
                state.flags = Flags("and", result, BVV((1 << 64) - 1))
            else:
                state.flags = Flags("sub", result, BVV(0))
        state.pc = insn.end
        return [state]

    if m == "cmp":
        a = read_operand(state, insn.operands[0])
        b = read_operand(state, insn.operands[1])
        state.flags = Flags("sub", a, b)
        state.pc = insn.end
        return [state]

    if m == "test":
        a = read_operand(state, insn.operands[0])
        b = read_operand(state, insn.operands[1])
        state.flags = Flags("and", a, b)
        state.pc = insn.end
        return [state]

    if m == "push":
        state.push(read_operand(state, insn.operands[0]))
        state.pc = insn.end
        return [state]

    if m == "pop":
        write_operand(state, insn.operands[0], state.pop())
        state.pc = insn.end
        return [state]

    if m in ("cdq", "cqo"):
        # Sign-extension of rax into rdx: rdx becomes unknown unless rax
        # is concrete.
        rax = state.regs["rax"].value_or_none()
        if rax is not None:
            from .bitvec import to_signed

            state.regs["rdx"] = BVV(0 if to_signed(rax) >= 0 else (1 << 64) - 1)
        else:
            state.regs["rdx"] = fresh("cqo_rdx")
        state.pc = insn.end
        return [state]

    if m == "nop":
        state.pc = insn.end
        return [state]

    if m == "syscall":
        # Mid-path syscall: Linux clobbers rax (return value), rcx and r11.
        state.regs["rax"] = fresh("sys_ret")
        state.regs["rcx"] = fresh("sys_rcx")
        state.regs["r11"] = fresh("sys_r11")
        state.pc = insn.end
        return [state]

    if insn.is_conditional:
        cc = m[1:]
        target = insn.branch_target()
        assert target is not None
        verdict = state.flags.condition(cc) if state.flags is not None else None
        if verdict is True:
            state.pc = target
            return [state]
        if verdict is False:
            state.pc = insn.end
            return [state]
        taken = state.clone()
        taken.pc = target
        state.pc = insn.end
        return [taken, state]

    if m == "jmp":
        target = insn.branch_target()
        if target is not None:
            state.pc = target
            return [state]
        symbol = _external_symbol_for(ctx, insn)
        if symbol is not None:
            # External tail call: clobber, then behave like ret.
            _clobber_external_call(state)
            return _do_ret(state)
        dest = read_operand(state, insn.operands[0])
        concrete = dest.value_or_none()
        if concrete is not None and ctx.is_local_code(concrete):
            state.pc = concrete
            return [state]
        # Unknown indirect jump: path cannot be followed.
        return []

    if m == "call":
        return _do_call(state, ctx, insn)

    if m == "ret":
        return _do_ret(state)

    if insn.is_halt:
        return []

    raise SymexError(f"no semantics for mnemonic {m!r}")


def _do_call(state: SymState, ctx: ExecContext, insn: Instruction) -> list[SymState]:
    return_addr = insn.end
    target = insn.branch_target()
    if target is not None and ctx.is_local_code(target):
        state.push(BVV(return_addr))
        state.depth += 1
        state.pc = target
        return [state]

    symbol = _external_symbol_for(ctx, insn)
    if symbol is None:
        dest = read_operand(state, insn.operands[0])
        concrete = dest.value_or_none()
        if concrete is not None and ctx.is_local_code(concrete):
            state.push(BVV(return_addr))
            state.depth += 1
            state.pc = concrete
            return [state]
    # External (or unresolvable) call: clobber and continue at return site.
    _clobber_external_call(state)
    state.pc = return_addr
    return [state]


def _do_ret(state: SymState) -> list[SymState]:
    value = state.pop()
    concrete = value.value_or_none()
    if concrete is None:
        # Returning past the start of the exploration frame: the return
        # address slot was never written in this state.  The explorer
        # treats an empty successor list as path end.
        return []
    state.pc = concrete
    state.depth = max(0, state.depth - 1)
    return [state]
