"""Directed forward symbolic execution (§4.4, Figure 5).

Given a start block and a target address, the explorer runs states forward
and *directs* the search: at frame depth 0 (the frame the exploration
started in), a state whose program counter leaves the set of blocks known
to lead to the target is discarded.  Inside callees (depth > 0) execution
is unrestricted — the paper's Figure 2A scenario, where a popular function
sits between the immediate definition and the syscall, requires running
straight through the callee.

When a state reaches the target, ``query`` extracts the expression of
interest (``%rax`` for plain syscall sites, the wrapper's number parameter
for wrapper entries).  The result records every concrete value found and
whether any path arrived with a symbolic value — the signal for the
backward search to keep widening (Figure 5).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field

from .bitvec import Expr
from .engine import ExecContext, step
from .state import MemoryBackend, SymState


@dataclass(slots=True)
class ExploreResult:
    """Outcome of one directed forward exploration."""

    values: set[int] = field(default_factory=set)
    saw_symbolic: bool = False
    paths_completed: int = 0
    steps_used: int = 0
    budget_exhausted: bool = False

    @property
    def fully_concrete(self) -> bool:
        """True when at least one path completed and none were symbolic."""
        return self.paths_completed > 0 and not self.saw_symbolic


def explore(
    ctx: ExecContext,
    start_addr: int,
    target_addr: int,
    query: Callable[[SymState], Expr],
    *,
    allowed: Callable[[int], bool] | None = None,
    backend: MemoryBackend | None = None,
    max_steps: int = 4000,
    max_states: int = 256,
    max_depth: int = 24,
    state_tag: str = "init",
) -> ExploreResult:
    """Run directed forward execution from ``start_addr`` to ``target_addr``.

    ``allowed(pc)`` implements the direction: depth-0 states stepping onto
    a disallowed pc are dropped.  ``max_steps`` bounds the *total* number
    of instruction steps across all states (the deterministic stand-in for
    the paper's wall-clock timeout).
    """
    result = ExploreResult()
    initial = SymState.initial(start_addr, backend=backend, tag=state_tag)
    worklist: deque[SymState] = deque([initial])
    total_steps = 0

    while worklist:
        if total_steps >= max_steps:
            result.budget_exhausted = True
            break
        state = worklist.popleft()

        if state.pc == target_addr:
            value = query(state)
            concrete = value.value_or_none()
            result.paths_completed += 1
            if concrete is not None:
                result.values.add(concrete)
            else:
                result.saw_symbolic = True
            continue

        if state.depth == 0 and allowed is not None and not allowed(state.pc):
            continue
        if state.depth > max_depth:
            # Deep recursion: give up on this path, flag as incomplete so
            # the caller does not treat the result as exhaustive.
            result.saw_symbolic = True
            continue

        successors = step(state, ctx)
        total_steps += 1
        for succ in successors:
            if len(worklist) < max_states:
                worklist.append(succ)
            else:
                result.budget_exhausted = True
        if not successors and state.pc != target_addr:
            # Path died (ret out of frame, halt, unresolved jump) without
            # reaching the target: irrelevant to the question asked.
            pass

    result.steps_used = total_steps
    return result


def query_rax(state: SymState) -> Expr:
    """The value of ``%rax`` — what the kernel reads at ``syscall``."""
    return state.regs["rax"]


def make_param_query(location: tuple[str, int | str]) -> Callable[[SymState], Expr]:
    """Query for a wrapper's syscall-number parameter.

    ``location`` is ``("reg", name)`` or ``("stack", offset)`` with the
    offset relative to ``%rsp`` at function entry (so offset 8 is the
    first Go-style stack argument, 0 being the return address).
    """
    kind, where = location

    if kind == "reg":
        def reg_query(state: SymState) -> Expr:
            return state.regs[where]  # type: ignore[index]
        return reg_query

    if kind != "stack":
        raise ValueError(f"unknown parameter location kind {kind!r}")

    offset = int(where)

    def stack_query(state: SymState) -> Expr:
        from .bitvec import BVV, binop

        addr = binop("add", state.regs["rsp"], BVV(offset))
        return state.read_mem(addr, 8)

    return stack_query
