"""Command-line interface: ``bside <command> ...``.

Commands
--------

``analyze <binary> [--libdir DIR] [--json] [--cache-dir DIR] [--no-cache]
[--incremental] [--no-sig-filter]``
    Identify the syscalls a binary can invoke; print names or JSON.
    With ``--cache-dir``, a matching cached report is served without
    re-analysis; ``--incremental`` additionally caches per-function CFG
    and identification products (kinds ``funccfg``/``funcid``) so a
    rebuilt binary re-analyzes only its changed functions plus their
    dependency cone, and re-executes symex only for the affected sites.
    ``--no-sig-filter`` disables the signature-compatibility refinement
    of indirect-call resolution (the ablation configuration).

``profile <binary> [--libdir DIR] [--json] [--repeats N]``
    Time one cold analysis and print the per-pass stage profile
    (wall seconds, work units) from the pass pipeline's stage stats.

``phases <binary> [--libdir DIR]``
    Detect execution phases and print the automaton summary.

``filter <binary> [--libdir DIR]``
    Derive a seccomp-style allow-list and print the filter program.

``interface <library.so> [--libdir DIR]``
    Analyze a shared library and print its shared interface JSON (§4.5).

``corpus generate <outdir> [--scale S] [--seed N]``
    Write the Debian-like corpus (binaries + libraries) to disk.

``trace <binary> [--libdir DIR] [--inputs a,b,c]``
    Run the binary under the emulator and print its syscall trace.

``fleet <dir> [--workers N] [--cache-dir DIR] [--no-cache] [--json]
[--incremental] [--no-sig-filter]``
    Batch-analyze every ELF in a directory: cached per-binary reports are
    served from the artifact store, library interfaces are computed once
    (and cached persistently with ``--cache-dir``), then per-binary
    analysis fans out over ``--workers`` processes.

``cache {stats,clear,prune} --cache-dir DIR [--shards N] [--kind K]``
    Inspect or maintain the content-addressed artifact cache; with
    ``--shards`` the maintenance runs across all shard roots.

``eval [--scale S] [--seed N] [--tools LIST] [--workers N] [--json |
--markdown] [--apps-only] [--cache-dir DIR] [--no-cache]
[--trajectory PATH] [--label L] [--no-record] [--no-sig-filter]``
    Reproduce the paper's §5 accuracy tables: emulated ground truth,
    all four tools over the validation apps and the corpus, and an
    append-only record in ``BENCH_eval_accuracy.json`` (see
    ``docs/evaluation.md``).  By default B-Side is scored under both
    indirect-signature configurations per app (the sig-filter
    ablation); ``--no-sig-filter`` runs only the unfiltered one.

``docker-profile <binary> [--libdir DIR]``
    Emit an OCI/Docker seccomp JSON profile for the binary.

``serve [--host H] [--port P] --state-dir DIR [--cache-dir DIR]
[--workers N] [--worker-procs N] [--shards N] [--join] [--worker-id W]
[--lease-ttl S] [--threaded] [--queue-size N] [--libdir DIR]
[--incremental]``
    Run the analysis daemon: an asyncio HTTP/JSON job API over the
    fleet engine and the (optionally sharded) artifact store.  With
    ``--worker-procs`` the queue is drained by external worker
    processes via lease claims; ``--join`` attaches this process to an
    existing deployment as a worker (see ``docs/service-api.md``).

``submit <target> [--url URL | --endpoint URL] [--fleet] [--inline]
[--libdir DIR] [--no-wait] [--timeout S] [--json] [--filter |
--profile]``
    Submit a binary (or, with ``--fleet``, a directory) to a running
    daemon; by default waits for completion and prints the result.

Exit codes (documented in ``docs/cli.md``): **0** success, **1** the
command completed but analysis failed for at least one binary, **2**
usage / file / service errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .core import AnalysisBudget, BSideAnalyzer
from .errors import ReproError
from .filters import FilterProgram
from .loader import LibraryResolver, LoadedImage
from .syscalls import name_of


def _resolver(args) -> LibraryResolver:
    return LibraryResolver(search_dir=getattr(args, "libdir", None))


def _load(path: str) -> LoadedImage:
    return LoadedImage.from_path(path)


def _cache_dir(args) -> str | None:
    """The effective artifact-cache directory (``--no-cache`` wins)."""
    if getattr(args, "no_cache", False):
        return None
    return getattr(args, "cache_dir", None)


def _sig_filter(args) -> bool:
    """The effective indirect-signature setting (``--no-sig-filter``)."""
    return not getattr(args, "no_sig_filter", False)


def _make_analyzer(args) -> BSideAnalyzer:
    """Analyzer honouring ``--libdir``, the cache flags, and
    ``--no-sig-filter``."""
    cache_dir = _cache_dir(args)
    incremental = getattr(args, "incremental", False)
    if cache_dir is None:
        # Incremental without a store degrades to a cold analysis (the
        # incremental pass needs somewhere to keep funccfg products).
        return BSideAnalyzer(
            resolver=_resolver(args), budget=AnalysisBudget(),
            indirect_signatures=_sig_filter(args),
        )
    from .core import ArtifactStore, PersistentInterfaceStore

    artifacts = ArtifactStore(cache_dir)
    return BSideAnalyzer(
        resolver=_resolver(args),
        budget=AnalysisBudget(),
        interface_store=PersistentInterfaceStore(store=artifacts),
        artifact_store=artifacts,
        incremental=incremental,
        indirect_signatures=_sig_filter(args),
    )


def cmd_analyze(args) -> int:
    analyzer = _make_analyzer(args)
    report = analyzer.analyze(_load(args.binary))
    if args.json:
        print(json.dumps({
            "binary": report.binary,
            "success": report.success,
            "complete": report.complete,
            "failure_stage": report.failure_stage,
            "syscalls": sorted(report.syscalls),
            "syscall_names": sorted(name_of(n) for n in report.syscalls),
            "sites_examined": report.sites_examined,
            "bbs_explored": report.bbs_explored,
            **({
                "functions_total": report.functions_total,
                "functions_reanalyzed": report.functions_reanalyzed,
            } if report.functions_total else {}),
            **({
                "sites_total": report.sites_total,
                "sites_reexecuted": report.sites_reexecuted,
            } if report.sites_total else {}),
        }, indent=2))
        return 0 if report.success else 1
    if not report.success:
        print(f"analysis failed in stage {report.failure_stage}: "
              f"{report.failure_reason}", file=sys.stderr)
        return 1
    print(f"{report.binary}: {len(report.syscalls)} syscalls"
          + ("" if report.complete else " (INCOMPLETE: over-approximate)"))
    if report.functions_total:
        print(f"  incremental: re-analyzed {report.functions_reanalyzed} "
              f"of {report.functions_total} functions")
    if report.sites_total:
        print(f"  incremental: re-executed {report.sites_reexecuted} "
              f"of {report.sites_total} identification sites")
    for nr in sorted(report.syscalls):
        print(f"  {nr:>4}  {name_of(nr)}")
    return 0


def cmd_profile(args) -> int:
    best = None
    for __ in range(max(1, args.repeats)):
        # A fresh analyzer per repeat: every run is a genuinely cold
        # analysis (library interfaces rebuilt, nothing cached).
        analyzer = BSideAnalyzer(
            resolver=_resolver(args), budget=AnalysisBudget(),
        )
        report = analyzer.analyze(_load(args.binary))
        if best is None or report.stage_seconds("total") < best.stage_seconds("total"):
            best = report
    ordered = list(best.stages.items())
    ordered.sort(key=lambda kv: (kv[0] == "total", -kv[1].seconds))
    if args.json:
        print(json.dumps({
            "binary": best.binary,
            "success": best.success,
            "failure_stage": best.failure_stage,
            "repeats": max(1, args.repeats),
            "stages": {
                name: {"seconds": stats.seconds, "units": stats.units}
                for name, stats in ordered
            },
            "bbs_explored": best.bbs_explored,
            "symex_steps": best.symex_steps,
            "sites_examined": best.sites_examined,
        }, indent=2))
        return 0 if best.success else 1
    if not best.success:
        print(f"analysis failed in stage {best.failure_stage}: "
              f"{best.failure_reason}", file=sys.stderr)
        return 1
    total = best.stage_seconds("total") or 1.0
    print(f"{best.binary}: cold analysis profile "
          f"(best of {max(1, args.repeats)})")
    print(f"  {'stage':<20} {'seconds':>10} {'share':>7} {'units':>8}")
    for name, stats in ordered:
        share = stats.seconds / total if name != "total" else 1.0
        print(f"  {name:<20} {stats.seconds:>10.6f} {share:>6.1%} "
              f"{stats.units:>8}")
    print(f"  {'(symex steps)':<20} {best.symex_steps:>10} "
          f"{'':>7} {best.sites_examined:>8}")
    return 0


def cmd_phases(args) -> int:
    analyzer = BSideAnalyzer(resolver=_resolver(args), budget=AnalysisBudget())
    report, automaton = analyzer.analyze_phases(_load(args.binary))
    if not report.success or automaton is None:
        print(f"analysis failed: {report.failure_reason}", file=sys.stderr)
        return 1
    total = len(automaton.all_syscalls())
    print(f"{report.binary}: {automaton.n_phases} phases over {total} syscalls "
          f"(start phase {automaton.start})")
    for pid in sorted(automaton.phases):
        phase = automaton.phases[pid]
        outgoing = {
            dst for dst in phase.transitions.values() if dst != pid
        }
        print(f"  phase {pid:>3}: {len(phase.allowed):>3} allowed, "
              f"{len(phase.blocks):>4} blocks, -> {sorted(outgoing)}")
    return 0


def cmd_filter(args) -> int:
    analyzer = BSideAnalyzer(resolver=_resolver(args), budget=AnalysisBudget())
    report = analyzer.analyze(_load(args.binary))
    filt = FilterProgram.from_report(report)
    print(f"; filter for {args.binary}: allows {len(filt.allowed)}, "
          f"blocks {filt.n_blocked}")
    print(filt.render())
    return 0


def cmd_docker_profile(args) -> int:
    from .filters.docker import profile_from_report, render_profile

    analyzer = BSideAnalyzer(resolver=_resolver(args), budget=AnalysisBudget())
    report = analyzer.analyze(_load(args.binary))
    print(render_profile(profile_from_report(report)))
    return 0 if report.success else 1


def cmd_interface(args) -> int:
    analyzer = BSideAnalyzer(resolver=_resolver(args), budget=AnalysisBudget())
    interface = analyzer.analyze_library(_load(args.library))
    print(interface.to_json())
    return 0


def cmd_corpus_generate(args) -> int:
    from .corpus import make_debian_corpus

    corpus = make_debian_corpus(scale=args.scale, seed=args.seed)
    bindir = os.path.join(args.outdir, "bin")
    libdir = os.path.join(args.outdir, "lib")
    os.makedirs(bindir, exist_ok=True)
    os.makedirs(libdir, exist_ok=True)
    for binary in corpus.binaries:
        binary.program.save(os.path.join(bindir, binary.name))
    for name, library in corpus.libraries.items():
        library.save(os.path.join(libdir, name))
    print(f"wrote {len(corpus.binaries)} binaries to {bindir}")
    print(f"wrote {len(corpus.libraries)} libraries to {libdir}")
    return 0


def cmd_fleet(args) -> int:
    from .core.fleet import FleetAnalyzer

    cache_dir = None if args.no_cache else args.cache_dir
    fleet = FleetAnalyzer(
        resolver=_resolver(args), budget=AnalysisBudget(),
        workers=args.workers, cache_dir=cache_dir,
        incremental=args.incremental and cache_dir is not None,
        indirect_signatures=_sig_filter(args),
    )
    report = fleet.analyze_directory(args.directory)
    # Exit 1 when any binary's analysis failed, so scripted pipelines
    # (CI gates, provisioning hooks) can tell "all clean" from "partial".
    status = 0 if not report.failures else 1
    if args.json:
        print(report.to_json())
        return status
    print(f"fleet: {len(report.entries)} binaries, "
          f"{report.success_rate():.1%} analyzed, "
          f"avg {report.average_syscalls():.1f} syscalls")
    if report.skipped:
        print(f"  skipped {len(report.skipped)} non-ELF files")
    if report.artifact_stats:
        stats = report.artifact_stats
        print(f"  report cache: {stats['hits']} hits, "
              f"{stats['misses']} misses")
    if report.interface_stats:
        stats = report.interface_stats
        print(f"  interface cache: {stats['hits']} hits, "
              f"{stats['misses']} misses, "
              f"{stats['invalidations']} invalidations")
    for stage, count in sorted(report.failure_stages().items()):
        print(f"  failures in {stage}: {count}")
    exposure = report.cve_exposure()
    if exposure:
        worst = sorted(exposure.items(), key=lambda kv: kv[1])[:5]
        print("  least-covered CVEs:")
        for ident, rate in worst:
            print(f"    CVE-{ident}: {rate:.1%} protected")
    return status


def cmd_cache(args) -> int:
    from .core.artifacts import ArtifactStore, ShardedArtifactStore

    shards = getattr(args, "shards", 1)
    if shards > 1:
        store = ShardedArtifactStore(args.cache_dir, shards=shards)
    else:
        store = ArtifactStore(args.cache_dir)
    if args.cache_command == "stats":
        doc = store.stats()
        if args.json:
            print(json.dumps(doc, indent=2))
            return 0
        print(f"artifact cache at {doc['cache_dir']} "
              f"(version {doc['version']}): "
              f"{doc['total_entries']} entries, {doc['total_bytes']} bytes")
        for kind, stats in sorted(doc["kinds"].items()):
            print(f"  {kind:<10} {stats['entries']:>6} entries  "
                  f"{stats['bytes']:>10} bytes")
        for shard in doc.get("per_shard", []):
            print(f"  shard {shard['shard']:02d}   {shard['entries']:>6} entries  "
                  f"{shard['bytes']:>10} bytes")
        return 0
    if args.cache_command == "clear":
        removed = store.prune()
        print(f"removed {removed} cache entries")
        return 0
    if args.cache_command == "prune":
        removed = store.prune(args.kind)
        print(f"removed {removed} {args.kind} entries")
        return 0
    raise AssertionError(f"unknown cache command {args.cache_command!r}")


def cmd_eval(args) -> int:
    from .eval import TOOL_BSIDE, EvalConfig, parse_tools, run_eval
    from .perf import (
        ACCURACY_PATH,
        ACCURACY_WORKLOAD,
        ROLE_ACCURACY,
        load_trajectory,
        save_trajectory,
    )

    try:
        tools = parse_tools(args.tools)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    report = run_eval(EvalConfig(
        scale=args.scale,
        seed=args.seed,
        tools=tools,
        workers=args.workers,
        cache_dir=_cache_dir(args),
        include_corpus=not args.apps_only,
        indirect_signatures=_sig_filter(args),
    ))
    record = report.to_record()
    # Validity check (the paper's disqualifying failure): when B-Side
    # was evaluated it must complete the validation apps with zero
    # false negatives.  min_recall aggregates to 0.0 over an empty
    # completed set, so "completed nothing" also violates.
    bside = record["tools"].get(TOOL_BSIDE)
    invalid = bside is not None and bside["min_recall"] < 1.0
    recorded = None
    if not args.no_record and not invalid:
        # An invalid run is never recorded: the trajectory's latest
        # comparable entry is the accuracy gate's recall floor and the
        # README's results source, and a regression must not become
        # its own baseline.
        path = args.trajectory or ACCURACY_PATH
        try:
            trajectory = load_trajectory(path, workload=ACCURACY_WORKLOAD)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        label = args.label or f"scale{args.scale:g}-seed{args.seed}"
        trajectory.append(record, label=label, role=ROLE_ACCURACY)
        save_trajectory(trajectory, path)
        recorded = (label, path)
    if args.json:
        print(report.to_json())
    elif args.markdown:
        print(report.to_markdown())
    else:
        print(report.to_text())
        if recorded is not None:
            print(f"\nrecorded entry '{recorded[0]}' in {recorded[1]}")
    if invalid:
        print(
            f"error: validity violation — B-Side min per-app recall "
            f"{bside['min_recall']:.4f} < 1.0 over "
            f"{bside['completed_apps']}/{bside['apps']} completed apps; "
            f"run not recorded", file=sys.stderr,
        )
        return 1
    return 0


def cmd_trace(args) -> int:
    from .emu import run_traced

    inputs = tuple(int(x, 0) for x in args.inputs.split(",")) if args.inputs else ()
    result = run_traced(_load(args.binary), _resolver(args), inputs)
    for record in result.records:
        arg_text = ", ".join(f"{a:#x}" for a in record.args[:3])
        print(f"{record.name}({arg_text}, ...) @ {record.rip:#x}")
    print(f"+++ exited with {result.exit_status} "
          f"({len(result.records)} syscalls) +++")
    return 0


def cmd_serve(args) -> int:
    import logging

    from .service import (
        AnalysisService,
        AsyncServiceServer,
        ServiceServer,
        ServiceWorker,
        spawn_workers,
    )

    logging.basicConfig(
        level=getattr(logging, args.log_level.upper(), logging.INFO),
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    if args.join:
        # Worker-only mode: attach to an existing deployment's state
        # directory; shard count / cache root / TTL come from its
        # service.json so this process agrees with the front end.
        worker = ServiceWorker(args.state_dir, worker_id=args.worker_id)
        print(f"bside serve: worker {worker.worker_id} joined "
              f"{args.state_dir} (shards {worker.service.shards}, "
              f"lease ttl {worker.queue.lease_ttl:g}s)")
        try:
            worker.run()
        except KeyboardInterrupt:
            pass
        return 0

    external = max(0, args.worker_procs)
    service = AnalysisService(
        args.state_dir,
        cache_dir=args.cache_dir,
        workers=args.workers,
        queue_size=args.queue_size,
        libdir=args.libdir,
        shards=args.shards,
        shared=external > 0,
        lease_ttl=args.lease_ttl,
        dispatcher=external == 0,
        incremental=args.incremental,
    )
    service.write_config()
    server_cls = ServiceServer if args.threaded else AsyncServiceServer
    server = server_cls(service, host=args.host, port=args.port)
    processes = spawn_workers(args.state_dir, external) if external else []
    print(f"bside serve: listening on {server.url} "
          f"({'threaded' if args.threaded else 'asyncio'})")
    print(f"  state dir:  {service.state_dir}")
    print(f"  cache dir:  {service.cache_dir} (shards {service.shards})")
    if external:
        print(f"  drained by: {external} worker processes "
              f"(lease ttl {service.queue.lease_ttl:g}s)")
    else:
        print(f"  workers:    {service.workers} "
              f"(batch {service.batch_size}, fan-out {service.fleet_workers})")
    try:
        server.serve_forever()
    finally:
        for process in processes:
            process.terminate()
    return 0


def cmd_submit(args) -> int:
    from .service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    libdir = os.path.abspath(args.libdir) if args.libdir else None
    try:
        if args.fleet:
            job = client.submit_directory(
                os.path.abspath(args.target), libdir=libdir,
            )
        elif args.inline:
            with open(args.target, "rb") as f:
                data = f.read()
            job = client.submit_bytes(
                os.path.basename(args.target), data, libdir=libdir,
            )
        else:
            job = client.submit_path(
                os.path.abspath(args.target), libdir=libdir,
            )
        if args.no_wait:
            print(json.dumps({"job": job}, indent=2))
            return 0
        job = client.wait(job["id"], timeout=args.timeout)
        if job["status"] == "failed":
            print(f"error: job {job['id']} failed: {job['error']}",
                  file=sys.stderr)
            return 2
        report = client.report(job["id"])  # one fetch: result + exit code
        if args.filter:
            print(json.dumps(client.filter(job["id"]), indent=2))
        elif args.profile:
            print(json.dumps(client.profile(job["id"]), indent=2))
        elif args.json:
            print(json.dumps({"job": job, "result": report}, indent=2))
        else:
            _print_submit_result(job, report)
        return _submit_status(job, report)
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _submit_status(job: dict, report: dict) -> int:
    """0 all analyses succeeded, 1 at least one failed."""
    if job["kind"] == "fleet":
        binaries = report.get("report", {}).get("binaries", [])
        return 0 if all(b.get("success") for b in binaries) else 1
    return 0 if report.get("success") else 1


def _print_submit_result(job: dict, report: dict) -> None:
    metrics = job.get("metrics", {})
    origin = "cache" if metrics.get("from_cache") else "analysis"
    if job["kind"] == "fleet":
        doc = report.get("report", {})
        print(f"job {job['id']}: fleet of {doc.get('fleet_size')} binaries, "
              f"{doc.get('success_rate', 0):.1%} analyzed "
              f"({metrics.get('seconds', 0):.3f}s)")
        return
    if not report.get("success"):
        print(f"job {job['id']}: analysis failed in stage "
              f"{report.get('failure_stage')}: {report.get('failure_reason')}")
        return
    names = sorted(name_of(nr) for nr in report.get("syscalls", []))
    print(f"job {job['id']}: {len(names)} syscalls via {origin} "
          f"({metrics.get('seconds', 0):.3f}s): {', '.join(names)}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bside",
        description="Binary-level static system call identification "
                    "(B-Side reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--libdir", help="directory with shared-library deps")

    def cache_flags(p):
        p.add_argument("--cache-dir",
                       help="persistent artifact cache directory")
        p.add_argument("--no-cache", action="store_true",
                       help="ignore --cache-dir and analyze everything fresh")

    def incremental_flag(p):
        p.add_argument("--incremental", action="store_true",
                       help="cache per-function CFG and identification "
                            "products (funccfg/funcid) and re-analyze only "
                            "changed functions plus their dependency cone "
                            "(needs --cache-dir)")

    def sig_flag(p):
        p.add_argument("--no-sig-filter", action="store_true",
                       help="disable the signature-compatibility refinement "
                            "of indirect-call resolution (the ablation "
                            "configuration: every address-taken function "
                            "stays a candidate target)")

    p = sub.add_parser("analyze", help="identify a binary's syscalls")
    p.add_argument("binary")
    p.add_argument("--json", action="store_true")
    common(p)
    cache_flags(p)
    incremental_flag(p)
    sig_flag(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("profile",
                       help="per-pass timing profile of one cold analysis")
    p.add_argument("binary")
    p.add_argument("--json", action="store_true")
    p.add_argument("--repeats", type=int, default=3,
                   help="analysis runs; the fastest total is reported")
    common(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("phases", help="detect execution phases")
    p.add_argument("binary")
    common(p)
    p.set_defaults(func=cmd_phases)

    p = sub.add_parser("filter", help="derive a seccomp-style filter")
    p.add_argument("binary")
    common(p)
    p.set_defaults(func=cmd_filter)

    p = sub.add_parser("docker-profile",
                       help="emit an OCI/Docker seccomp JSON profile")
    p.add_argument("binary")
    common(p)
    p.set_defaults(func=cmd_docker_profile)

    p = sub.add_parser("interface", help="print a library's shared interface")
    p.add_argument("library")
    common(p)
    p.set_defaults(func=cmd_interface)

    corpus = sub.add_parser("corpus", help="corpus operations")
    corpus_sub = corpus.add_subparsers(dest="corpus_command", required=True)
    p = corpus_sub.add_parser("generate", help="write the corpus to disk")
    p.add_argument("outdir")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=2024)
    p.set_defaults(func=cmd_corpus_generate)

    p = sub.add_parser("eval",
                       help="reproduce the paper's accuracy tables")
    p.add_argument("--scale", type=float, default=1.0,
                   help="corpus scale factor (1.0 = the 557-binary "
                        "population)")
    p.add_argument("--seed", type=int, default=2024,
                   help="corpus generation seed")
    p.add_argument("--tools",
                   help="comma list of tools to evaluate: "
                        "b-side,chestnut,sysfilter,naive (default: all)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for the B-Side corpus sweep")
    p.add_argument("--json", action="store_true",
                   help="print the full EvalReport JSON")
    p.add_argument("--markdown", action="store_true",
                   help="print the Markdown tables (the docs rendering)")
    p.add_argument("--apps-only", action="store_true",
                   help="skip the corpus sweep (validation apps only)")
    p.add_argument("--trajectory",
                   help="accuracy trajectory file "
                        "(default: BENCH_eval_accuracy.json at the repo "
                        "root)")
    p.add_argument("--label",
                   help="label for the recorded trajectory entry "
                        "(default: scale<S>-seed<N>)")
    p.add_argument("--no-record", action="store_true",
                   help="do not append this run to the trajectory")
    cache_flags(p)
    sig_flag(p)
    p.set_defaults(func=cmd_eval)

    p = sub.add_parser("trace", help="run under the emulator and trace")
    p.add_argument("binary")
    p.add_argument("--inputs", default="")
    common(p)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("fleet", help="batch-analyze a directory of binaries")
    p.add_argument("directory")
    p.add_argument("--json", action="store_true")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for per-binary analysis")
    common(p)
    cache_flags(p)
    incremental_flag(p)
    sig_flag(p)
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser("serve", help="run the analysis-as-a-service daemon")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8649,
                   help="bind port; 0 picks an ephemeral port")
    p.add_argument("--state-dir", required=True,
                   help="directory for job records, spooled binaries, "
                        "and the default cache")
    p.add_argument("--cache-dir",
                   help="artifact cache directory "
                        "(default: <state-dir>/cache)")
    p.add_argument("--workers", type=int, default=1,
                   help="executor workers: scales admission batches and "
                        "the per-batch process fan-out")
    p.add_argument("--worker-procs", type=int, default=0,
                   help="spawn N external worker processes draining the "
                        "queue via leases (0: run the in-process executor)")
    p.add_argument("--shards", type=int, default=1,
                   help="shard the artifact store across N roots by "
                        "content hash")
    p.add_argument("--join", action="store_true",
                   help="join an existing deployment's state dir as a "
                        "worker-only process (reads its service.json)")
    p.add_argument("--worker-id",
                   help="worker name for --join (default: worker-<pid>)")
    p.add_argument("--lease-ttl", type=float, default=30.0,
                   help="seconds before a silent worker's job leases "
                        "expire and are re-queued")
    p.add_argument("--threaded", action="store_true",
                   help="serve with the thread-per-connection front end "
                        "instead of the asyncio event loop")
    p.add_argument("--queue-size", type=int, default=64,
                   help="max queued jobs before submissions get 429")
    p.add_argument("--libdir",
                   help="default shared-library directory for jobs that "
                        "do not name one")
    p.add_argument("--log-level", default="info",
                   help="logging level (debug, info, warning, ...)")
    incremental_flag(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("submit", help="submit a job to a running daemon")
    p.add_argument("target", help="binary path (or directory with --fleet)")
    p.add_argument("--url", "--endpoint", dest="url",
                   default="http://127.0.0.1:8649",
                   help="daemon base URL (--endpoint is an alias)")
    p.add_argument("--fleet", action="store_true",
                   help="submit the target directory as one fleet job")
    p.add_argument("--inline", action="store_true",
                   help="upload the binary's bytes instead of its path")
    p.add_argument("--no-wait", action="store_true",
                   help="enqueue and print the job id without waiting")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="seconds to wait for completion")
    p.add_argument("--json", action="store_true",
                   help="print the full job + report JSON")
    p.add_argument("--filter", action="store_true",
                   help="print the derived seccomp-style filter")
    p.add_argument("--profile", action="store_true",
                   help="print the derived OCI/Docker seccomp profile")
    common(p)
    p.set_defaults(func=cmd_submit)

    cache = sub.add_parser("cache", help="artifact-cache maintenance")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    p = cache_sub.add_parser("stats", help="per-kind entry counts and sizes")
    p.add_argument("--cache-dir", required=True)
    p.add_argument("--shards", type=int, default=1,
                   help="treat the cache as sharded across N roots")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_cache)
    p = cache_sub.add_parser("clear", help="delete every cache entry")
    p.add_argument("--cache-dir", required=True)
    p.add_argument("--shards", type=int, default=1,
                   help="treat the cache as sharded across N roots")
    p.set_defaults(func=cmd_cache)
    p = cache_sub.add_parser("prune", help="delete one artifact kind")
    p.add_argument("--cache-dir", required=True)
    p.add_argument("--shards", type=int, default=1,
                   help="treat the cache as sharded across N roots")
    p.add_argument("--kind", required=True,
                   choices=["iface", "cfg", "funccfg", "funcid", "wrappers",
                            "report", "gtruth"])
    p.set_defaults(func=cmd_cache)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
