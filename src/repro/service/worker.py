"""Worker processes that drain a shared job queue via lease claims.

A :class:`ServiceWorker` is the multi-process counterpart of the
executor's in-process dispatcher thread: it opens the *same* state
directory as the front end (locally or over a shared filesystem),
claims batches of queued jobs with lease files
(:meth:`~repro.service.jobs.JobQueue.claim_batch`), runs them through
the ordinary batch executor, and heartbeats its leases from a
background thread so peers can tell a busy worker from a dead one.

Deployment shapes:

* ``bside serve --workers N`` — the front end spawns N workers next to
  itself (:func:`spawn_workers`) and runs no local dispatcher;
* ``bside serve --join STATE_DIR`` — a worker-only process attaches to
  an existing deployment, reading ``service.json`` so its shard count,
  cache root, and lease TTL agree with the front end.

Workers are crash-safe by construction: a killed worker's leases
expire, a peer (or the next worker to look) re-queues its jobs, and
the content-addressed artifact store makes any repeated analysis a
cache hit.  Every claim and batch completion is appended to
``<jobs>/exec.log`` (one JSON object per line, ``O_APPEND``), which the
fault-injection tests read to prove exactly-once execution.

The worker entry points (:func:`worker_main`) are module-level so the
``spawn`` multiprocessing context can import them — ``spawn`` is used
rather than ``fork`` because the parent daemon runs threads, and
forking a threaded process is a deadlock lottery.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import os
import threading
import time

from ..core.report import AnalysisBudget
from .executor import AnalysisService

logger = logging.getLogger(__name__)

#: execution journal (under the queue directory), append-only JSON lines
EXEC_LOG = "exec.log"


class ServiceWorker:
    """One queue-draining worker over a shared service state directory."""

    def __init__(
        self,
        state_dir: str,
        worker_id: str | None = None,
        *,
        poll: float = 0.2,
        heartbeat_interval: float | None = None,
        **overrides,
    ) -> None:
        config = AnalysisService.load_config(state_dir)
        config.pop("version", None)
        kwargs = {
            "cache_dir": config.get("cache_dir"),
            "shards": config.get("shards", 1),
            "libdir": config.get("libdir"),
            "queue_size": config.get("queue_size", 64),
            "batch_factor": config.get("batch_factor", 4),
            "lease_ttl": config.get("lease_ttl", 30.0),
            "incremental": config.get("incremental", False),
        }
        kwargs.update(overrides)
        self.worker_id = worker_id or f"worker-{os.getpid()}"
        self.service = AnalysisService(
            state_dir,
            shared=True,
            worker_id=self.worker_id,
            dispatcher=False,
            **kwargs,
        )
        self.queue = self.service.queue
        self.poll = poll
        # well under the TTL so a busy-but-alive worker never expires
        self.heartbeat_interval = heartbeat_interval or min(
            5.0, max(0.05, self.queue.lease_ttl / 10.0)
        )
        self._log_path = os.path.join(self.queue.state_dir, EXEC_LOG)

    # ------------------------------------------------------------------
    # Execution journal
    # ------------------------------------------------------------------

    def _journal(self, event: str, job_ids: list[str]) -> None:
        line = json.dumps({
            "ts": time.time(),
            "worker": self.worker_id,
            "event": event,
            "jobs": job_ids,
        }) + "\n"
        try:
            fd = os.open(self._log_path,
                         os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
            try:
                os.write(fd, line.encode())
            finally:
                os.close(fd)
        except OSError:  # observability only — never kills the worker
            logger.warning("worker %s: journal write failed", self.worker_id)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def _heartbeat_loop(self, stop: threading.Event) -> None:
        while not stop.wait(self.heartbeat_interval):
            self.queue.heartbeat(self.worker_id)

    def run(
        self,
        *,
        stop_event: threading.Event | None = None,
        max_batches: int | None = None,
        idle_exit: float | None = None,
    ) -> int:
        """Claim and execute batches until told (or idle long enough) to stop.

        ``idle_exit`` makes the worker return after that many seconds
        without claimable work — drain mode, used by benchmarks and
        tests.  Returns the number of batches executed.
        """
        hb_stop = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop, args=(hb_stop,),
            name=f"{self.worker_id}-heartbeat", daemon=True,
        )
        heartbeat.start()
        batches = 0
        idle_since = time.monotonic()
        try:
            while not (stop_event is not None and stop_event.is_set()):
                try:
                    batch = self.queue.claim_batch(
                        self.worker_id, self.service.batch_size,
                        timeout=self.poll,
                    )
                except Exception:  # keep the worker alive
                    # A claim-path failure (lease I/O race, transient
                    # filesystem error) must not silently kill the
                    # process: with one worker dead, queued jobs would
                    # never drain.
                    logger.exception(
                        "worker %s: claim failed", self.worker_id
                    )
                    self._journal("claim-error", [])
                    time.sleep(self.poll)
                    continue
                if not batch:
                    if (idle_exit is not None
                            and time.monotonic() - idle_since >= idle_exit):
                        break
                    continue
                idle_since = time.monotonic()
                job_ids = [job.id for job in batch]
                self._journal("claim", job_ids)
                try:
                    self.service.run_batch(batch)
                except Exception as error:  # keep the worker alive
                    logger.exception(
                        "worker %s: batch failed", self.worker_id
                    )
                    for job in batch:
                        if job.status == "running":
                            self.queue.finish(
                                job, error=f"internal error: {error}"
                            )
                self._journal("batch-done", job_ids)
                batches += 1
                idle_since = time.monotonic()
                if max_batches is not None and batches >= max_batches:
                    break
        finally:
            hb_stop.set()
            heartbeat.join(2.0)
            for job_id in list(self.queue._held):
                self.queue.release(job_id)
        return batches


def worker_main(state_dir: str, worker_id: str,
                overrides: dict | None = None) -> None:
    """Process entry point (must be importable for ``spawn``)."""
    overrides = dict(overrides or {})
    budget_doc = overrides.pop("budget", None)
    if budget_doc:
        overrides["budget"] = AnalysisBudget(**budget_doc)
    worker = ServiceWorker(state_dir, worker_id, **overrides)
    worker.run()


def spawn_workers(
    state_dir: str,
    count: int,
    *,
    prefix: str = "worker",
    overrides: dict | None = None,
) -> list[multiprocessing.Process]:
    """Start ``count`` worker processes over one state directory.

    Uses the ``spawn`` start method (fork-with-threads is unsafe in the
    daemon).  Workers are daemonic: they die with the front end, and
    their leases expire so a restarted deployment recovers their jobs.
    """
    ctx = multiprocessing.get_context("spawn")
    processes = []
    for index in range(max(1, int(count))):
        process = ctx.Process(
            target=worker_main,
            args=(state_dir, f"{prefix}-{index + 1}", overrides),
            name=f"bside-{prefix}-{index + 1}",
            daemon=True,
        )
        process.start()
        processes.append(process)
    return processes
