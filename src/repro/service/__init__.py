"""Analysis-as-a-service: the ``bside serve`` daemon.

B-Side's consumers — seccomp installers, container profilers, fleet
inventory dashboards — speak request/response, not batch.  This package
turns the repo's analysis substrate (the three-phase
:class:`~repro.core.fleet.FleetAnalyzer` schedule and the
content-addressed :class:`~repro.core.artifacts.ArtifactStore`) into a
long-running daemon with an HTTP/JSON API:

* :mod:`repro.service.jobs` — :class:`Job` records and the bounded,
  disk-persistent :class:`JobQueue` (backpressure, restart recovery).
* :mod:`repro.service.executor` — :class:`AnalysisService`, the
  batch-draining worker-pool executor over the fleet engine.
* :mod:`repro.service.server` — the stdlib ``ThreadingHTTPServer``
  exposing the ``/v1`` API (see ``docs/service-api.md``).
* :mod:`repro.service.client` — :class:`ServiceClient`, the stdlib
  HTTP client used by ``bside submit`` and ``examples/service_client.py``.

Everything is standard library only, like the rest of the repo.
"""

from .client import ServiceClient, ServiceError
from .executor import AnalysisService
from .jobs import Job, JobQueue, QueueFull
from .server import ServiceServer

__all__ = [
    "AnalysisService",
    "Job",
    "JobQueue",
    "QueueFull",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
]
