"""Analysis-as-a-service: the ``bside serve`` daemon.

B-Side's consumers — seccomp installers, container profilers, fleet
inventory dashboards — speak request/response, not batch.  This package
turns the repo's analysis substrate (the three-phase
:class:`~repro.core.fleet.FleetAnalyzer` schedule and the
content-addressed :class:`~repro.core.artifacts.ArtifactStore`) into a
long-running daemon with an HTTP/JSON API, scalable from one process to
a multi-worker deployment over a shared state directory:

* :mod:`repro.service.jobs` — :class:`Job` records and the bounded,
  disk-persistent :class:`JobQueue` (backpressure, restart recovery,
  lease-based multi-worker claims with heartbeat + expiry).
* :mod:`repro.service.executor` — :class:`AnalysisService`, the
  batch-draining executor over the fleet engine (optionally sharding
  its artifact store across N roots).
* :mod:`repro.service.routes` — the single source of the ``/v1`` API
  contract, shared by both front ends.
* :mod:`repro.service.aserver` — :class:`AsyncServiceServer`, the
  default asyncio front end (thousands of keep-alive connections on one
  event loop).
* :mod:`repro.service.server` — :class:`ServiceServer`, the original
  stdlib ``ThreadingHTTPServer`` front end.
* :mod:`repro.service.worker` — :class:`ServiceWorker` processes that
  drain a shared queue via lease claims (``bside serve --workers/--join``).
* :mod:`repro.service.client` — :class:`ServiceClient`, the stdlib
  HTTP client (timeouts + bounded 429 retry) used by ``bside submit``
  and ``examples/service_client.py``.

Everything is standard library only, like the rest of the repo.
"""

from .aserver import AsyncServiceServer
from .client import ServiceClient, ServiceError
from .executor import AnalysisService
from .jobs import Job, JobQueue, QueueFull
from .server import ServiceServer
from .worker import ServiceWorker, spawn_workers, worker_main

__all__ = [
    "AnalysisService",
    "AsyncServiceServer",
    "Job",
    "JobQueue",
    "QueueFull",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ServiceWorker",
    "spawn_workers",
    "worker_main",
]
