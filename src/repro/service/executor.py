"""The analysis service: a batch-draining executor over the fleet engine.

:class:`AnalysisService` owns the daemon's long-lived state — one
bounded :class:`~repro.service.jobs.JobQueue`, one shared
content-addressed :class:`~repro.core.artifacts.ArtifactStore` — and a
dispatcher thread that drains the queue in batches:

1. ``take_batch`` pops up to ``batch_factor × workers`` queued jobs
   sharing a group key (kind + library directory).
2. The batch becomes **one** :class:`~repro.core.fleet.FleetAnalyzer`
   run, which re-uses the engine's three-phase schedule: cached reports
   are served first (content-hash keyed, so identical resubmissions cost
   zero analysis), library interfaces are warmed once *per batch* rather
   than once per request, then per-binary analysis fans out over worker
   processes.
3. Each job is finished with its entry's report and per-job metrics
   (wall seconds, interface-cache hits/misses, ``from_cache``, batch
   size, queue wait).

Two distinct scaling levers fall out of ``workers=N``:

* **batching** — admission batches grow with N, amortising resolver
  construction, dependency hashing, and interface warm-up across jobs
  (this helps even on a single core);
* **fan-out** — the fleet's phase-3 ``ProcessPoolExecutor`` is sized to
  ``min(N, cpu_count)``, so the service never oversubscribes the
  machine with idle worker processes.

A fresh ``FleetAnalyzer`` (and with it a fresh in-memory interface
store) is built per batch: memory stays bounded no matter how many
distinct library pools pass through the daemon, while the persistent
artifact store keeps warm-path costs to a few JSON loads.

Analysis failures (budget exhaustion, unresolvable libraries) are
*results*: the job completes ``done`` with ``report.success = false``.
Only service-level faults — unreadable path, non-ELF bytes — mark a job
``failed``.
"""

from __future__ import annotations

import base64
import hashlib
import json
import logging
import os
import re
import threading
import time

from ..core.artifacts import ArtifactStore, ShardedArtifactStore
from ..core.fleet import FleetAnalyzer, FleetEntry
from ..core.pipeline import pipeline_runs
from ..core.report import AnalysisBudget
from ..errors import ElfError, LoaderError, ReproError
from ..loader.image import LoadedImage
from ..loader.resolve import LibraryResolver
from .jobs import STATUS_RUNNING, Job, JobQueue

logger = logging.getLogger(__name__)

_SAFE_NAME = re.compile(r"[^A-Za-z0-9._+-]")

#: refuse inline submissions larger than this (the HTTP layer enforces
#: the same bound on request bodies)
MAX_INLINE_BYTES = 64 * 1024 * 1024

#: deployment config persisted under the state directory so joining
#: worker processes (``bside serve --join``) agree with the front end
CONFIG_NAME = "service.json"


class AnalysisService:
    """Long-lived analysis daemon state + the batch executor."""

    def __init__(
        self,
        state_dir: str,
        *,
        cache_dir: str | None = None,
        workers: int = 1,
        queue_size: int = 64,
        batch_factor: int = 4,
        libdir: str | None = None,
        budget: AnalysisBudget | None = None,
        shards: int = 1,
        shared: bool = False,
        lease_ttl: float = 30.0,
        worker_id: str | None = None,
        dispatcher: bool = True,
        incremental: bool = False,
    ) -> None:
        self.state_dir = state_dir
        self.workers = max(1, int(workers))
        self.batch_factor = max(1, int(batch_factor))
        self.batch_size = self.workers * self.batch_factor
        #: phase-3 process fan-out, sized to the machine
        self.fleet_workers = max(1, min(self.workers, os.cpu_count() or 1))
        self.default_libdir = libdir
        self.budget = budget if budget is not None else AnalysisBudget()
        #: function-granular incremental analysis for every batch
        self.incremental = bool(incremental)
        self.cache_dir = cache_dir or os.path.join(state_dir, "cache")
        self.spool_dir = os.path.join(state_dir, "spool")
        os.makedirs(self.spool_dir, exist_ok=True)
        self.shards = max(1, int(shards))
        if self.shards > 1:
            self.artifacts: ArtifactStore | ShardedArtifactStore = (
                ShardedArtifactStore(self.cache_dir, shards=self.shards)
            )
        else:
            self.artifacts = ArtifactStore(self.cache_dir)
        #: multi-process mode: the queue directory is shared with worker
        #: processes, which claim jobs through leases
        self.shared = bool(shared)
        #: set on worker processes; guards result persistence on lost leases
        self.worker_id = worker_id
        #: False on a front end whose jobs are drained by external workers
        self.run_dispatcher = bool(dispatcher)
        self.queue = JobQueue(
            os.path.join(state_dir, "jobs"), maxsize=queue_size,
            shared=self.shared, lease_ttl=lease_ttl,
        )
        self.started_at = time.time()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Deployment config (front end writes, joining workers read)
    # ------------------------------------------------------------------

    def write_config(self) -> str:
        """Persist the deployment parameters workers must agree on."""
        doc = {
            "version": 1,
            "cache_dir": os.path.abspath(self.cache_dir),
            "shards": self.shards,
            "libdir": self.default_libdir,
            "queue_size": self.queue.maxsize,
            "batch_factor": self.batch_factor,
            "lease_ttl": self.queue.lease_ttl,
            "incremental": self.incremental,
        }
        path = os.path.join(self.state_dir, CONFIG_NAME)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as f:
            json.dump(doc, f, indent=2)
        os.replace(tmp, path)
        return path

    @staticmethod
    def load_config(state_dir: str) -> dict:
        """Read a deployment config written by :meth:`write_config`.

        Returns ``{}`` when no config exists (fresh state directory)."""
        try:
            with open(os.path.join(state_dir, CONFIG_NAME)) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError):
            return {}
        return doc if isinstance(doc, dict) else {}

    # ------------------------------------------------------------------
    # Submission (called from HTTP handler threads)
    # ------------------------------------------------------------------

    def submit(self, kind: str, spec: dict) -> Job:
        """Validate a job spec and enqueue it.

        Raises :class:`ValueError` for a malformed spec (HTTP 400) and
        :class:`~repro.service.jobs.QueueFull` on backpressure (429).
        """
        spec = dict(spec)
        # content_sha256 is a server-side field (set by _spool when it
        # hashes an inline upload, later seeding LoadedImage.content_hash).
        # A client-supplied value on a path job would poison the
        # content-addressed report cache with a forged digest.
        spec.pop("content_sha256", None)
        if kind == "analyze":
            if "binary_b64" in spec:
                spec["path"] = self._spool(spec)
            if not spec.get("path"):
                raise ValueError(
                    "analyze jobs need 'path' or 'binary_b64' (+ 'name')"
                )
        elif kind == "fleet":
            if not spec.get("directory"):
                raise ValueError("fleet jobs need 'directory'")
        else:
            raise ValueError(f"unknown job kind {kind!r}")
        if not spec.get("libdir") and self.default_libdir:
            spec["libdir"] = self.default_libdir
        return self.queue.submit(kind, spec)

    def _spool(self, spec: dict) -> str:
        """Decode an inline submission into the spool directory.

        Spool files are content-addressed, so resubmitting the same
        bytes reuses one file and — through the artifact store — one
        analysis.  The admission-time digest is recorded in the job spec
        (``content_sha256``) and later seeds ``LoadedImage.content_hash``,
        so the executor never re-hashes bytes the spool already hashed.
        """
        try:
            data = base64.b64decode(spec.pop("binary_b64"), validate=True)
        except (ValueError, TypeError) as error:
            raise ValueError(f"binary_b64 is not valid base64: {error}") from None
        if len(data) > MAX_INLINE_BYTES:
            raise ValueError(
                f"inline binary exceeds {MAX_INLINE_BYTES} bytes"
            )
        name = _SAFE_NAME.sub("_", str(spec.get("name") or "submitted.bin"))
        spec.setdefault("name", name)
        digest = hashlib.sha256(data).hexdigest()
        spec["content_sha256"] = digest
        path = os.path.join(self.spool_dir, f"{digest[:16]}-{name}")
        if not os.path.exists(path):
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "wb") as f:
                f.write(data)
            os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------
    # Executor lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the dispatcher thread (idempotent).

        No-op when this instance was built with ``dispatcher=False`` —
        a front end whose queue is drained by external worker processes
        must never also run jobs locally."""
        if not self.run_dispatcher or self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._dispatch, name="bside-dispatcher", daemon=True,
        )
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def _dispatch(self) -> None:
        while not self._stop.is_set():
            self.step(timeout=0.2)

    def step(self, timeout: float | None = 0.0) -> int:
        """Take and run one batch synchronously; returns its size.

        The dispatcher thread calls this in a loop; tests and the
        throughput benchmark may call it directly on a stopped service.
        """
        batch = self.queue.take_batch(self.batch_size, timeout=timeout)
        if not batch:
            return 0
        try:
            self._run_batch(batch)
        except Exception as error:  # never kill the dispatcher
            logger.exception("service: batch execution failed")
            for job in batch:
                if job.status == "running":
                    self._finish(job, error=f"internal error: {error}")
        return len(batch)

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------

    def _resolver(self, libdir: str | None) -> LibraryResolver:
        return LibraryResolver(search_dir=libdir or None)

    def _finish(self, job: Job, *, error: str = "") -> None:
        """Record a terminal transition, unless our lease was reaped.

        A worker that stalled past the lease TTL may have had this job
        re-leased to a peer; persisting its late result would
        double-complete the job, so the result is discarded instead
        (idempotent anyway: the analysis landed in the shared artifact
        store, and the new owner serves it from cache).
        """
        if (
            self.worker_id is not None
            and not self.queue.owns_lease(job.id, self.worker_id)
        ):
            logger.warning(
                "worker %s lost the lease on %s; discarding its result",
                self.worker_id, job.id,
            )
            return
        self.queue.finish(job, error=error)

    def run_batch(self, batch: list[Job]) -> None:
        """Execute a batch of already-claimed (``running``) jobs.

        Public entry point for worker processes
        (:class:`~repro.service.worker.ServiceWorker`), which claim via
        leases instead of :meth:`JobQueue.take_batch`.
        """
        self._run_batch(batch)

    def _run_batch(self, batch: list[Job]) -> None:
        kind = batch[0].kind
        libdir = batch[0].spec.get("libdir")
        if kind == "fleet":
            for job in batch:
                self._run_fleet_job(job)
            return

        # One fleet pass over the whole analyze batch: resolver and
        # interface warm-up are paid once, cached reports are phase 1.
        images: list[LoadedImage] = []
        image_jobs: list[Job] = []
        for job in batch:
            try:
                image = LoadedImage.from_path(
                    job.spec["path"],
                    content_hash=job.spec.get("content_sha256"),
                )
            except (OSError, ElfError, ValueError) as error:
                self._finish(job, error=str(error))
                continue
            images.append(image)
            image_jobs.append(job)
        if not image_jobs:
            return
        batch_n = len(image_jobs)

        def finish_entry(index: int, entry: FleetEntry) -> None:
            # Fleet entries stream through this hook as they resolve:
            # cache-served jobs complete (and become pollable) while the
            # rest of the batch is still analyzing.  Mapping is by input
            # position — names may collide across submissions.
            self._finish_analyze(image_jobs[index], entry, batch_n)

        fleet = FleetAnalyzer(
            resolver=self._resolver(libdir),
            budget=self.budget,
            workers=self.fleet_workers,
            artifact_store=self.artifacts,
            incremental=self.incremental,
            on_entry=finish_entry,
        )
        try:
            fleet.analyze_images(images)
        except (ReproError, LoaderError) as error:
            for job in image_jobs:
                if job.status == STATUS_RUNNING:
                    self._finish(job, error=str(error))

    def _finish_analyze(self, job: Job, entry: FleetEntry, batch_size: int) -> None:
        job.result = entry.report.to_doc()
        # merge, not replace: lease claims stamp metrics["worker"] first
        job.metrics = {
            **job.metrics,
            "seconds": round(entry.seconds, 6),
            "cache_hits": entry.cache_hits,
            "cache_misses": entry.cache_misses,
            "from_cache": entry.from_cache,
            "batch_size": batch_size,
            "queue_seconds": round(
                (job.started_at or job.submitted_at) - job.submitted_at, 6
            ),
        }
        if entry.report.functions_total:
            job.metrics["functions_total"] = entry.report.functions_total
            job.metrics["functions_reanalyzed"] = (
                entry.report.functions_reanalyzed
            )
        if entry.report.sites_total:
            job.metrics["sites_total"] = entry.report.sites_total
            job.metrics["sites_reexecuted"] = entry.report.sites_reexecuted
        self._finish(job)

    def _run_fleet_job(self, job: Job) -> None:
        directory = job.spec["directory"]
        fleet = FleetAnalyzer(
            resolver=self._resolver(job.spec.get("libdir")),
            budget=self.budget,
            workers=self.fleet_workers,
            artifact_store=self.artifacts,
            incremental=self.incremental,
        )
        started = time.perf_counter()
        try:
            report = fleet.analyze_directory(directory)
        except (OSError, ReproError) as error:
            self._finish(job, error=str(error))
            return
        job.result = {
            "fleet": True,
            "report": json.loads(report.to_json()),
        }
        job.metrics = {
            **job.metrics,
            "seconds": round(time.perf_counter() - started, 6),
            "binaries": len(report.entries),
            "from_cache": all(e.from_cache for e in report.entries)
            if report.entries else False,
            "batch_size": 1,
        }
        self._finish(job)

    # ------------------------------------------------------------------
    # Introspection (the /v1/stats document)
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        doc = {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "mode": "shared" if self.shared else "local",
            "workers": self.workers,
            "fleet_workers": self.fleet_workers,
            "batch_size": self.batch_size,
            "shards": self.shards,
            "incremental": self.incremental,
            "pipeline_runs": pipeline_runs(),
            "queue": self.queue.stats(),
            "cache": self.artifacts.stats(),
        }
        if self.incremental:
            doc["incremental_totals"] = self.queue.metric_totals((
                "functions_total", "functions_reanalyzed",
                "sites_total", "sites_reexecuted",
            ))
        return doc
