"""Stdlib HTTP client for the ``bside serve`` API.

Used by the ``bside submit`` subcommand, ``examples/service_client.py``,
the service test-suite, and the throughput benchmark — one shared
implementation of the submit → poll → fetch conversation so the wire
protocol is exercised the same way everywhere.
"""

from __future__ import annotations

import base64
import json
import time
import urllib.error
import urllib.request

from ..errors import ReproError


class ServiceError(ReproError):
    """An API error response (carries the HTTP status)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Minimal JSON client over ``urllib`` (no third-party deps)."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def request(self, method: str, path: str, body: dict | None = None) -> dict:
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode() or "{}")
        except urllib.error.HTTPError as error:
            try:
                message = json.loads(error.read().decode()).get("error", "")
            except (json.JSONDecodeError, UnicodeDecodeError):
                message = error.reason
            raise ServiceError(error.code, message) from None
        except urllib.error.URLError as error:
            raise ServiceError(0, f"cannot reach {self.base_url}: {error.reason}")

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit_path(self, path: str, libdir: str | None = None) -> dict:
        """Submit a binary by daemon-visible filesystem path."""
        spec: dict = {"kind": "analyze", "path": path}
        if libdir:
            spec["libdir"] = libdir
        return self.request("POST", "/v1/jobs", spec)["job"]

    def submit_bytes(self, name: str, data: bytes,
                     libdir: str | None = None) -> dict:
        """Submit a binary inline (the daemon need not see your disk)."""
        spec: dict = {
            "kind": "analyze",
            "name": name,
            "binary_b64": base64.b64encode(data).decode(),
        }
        if libdir:
            spec["libdir"] = libdir
        return self.request("POST", "/v1/jobs", spec)["job"]

    def submit_directory(self, directory: str,
                         libdir: str | None = None) -> dict:
        """Submit a whole directory as one fleet job."""
        spec: dict = {"kind": "fleet", "directory": directory}
        if libdir:
            spec["libdir"] = libdir
        return self.request("POST", "/v1/jobs", spec)["job"]

    # ------------------------------------------------------------------
    # Polling and results
    # ------------------------------------------------------------------

    def job(self, job_id: str) -> dict:
        return self.request("GET", f"/v1/jobs/{job_id}")["job"]

    def jobs(self) -> list[dict]:
        return self.request("GET", "/v1/jobs")["jobs"]

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 0.05) -> dict:
        """Poll until the job reaches a terminal state; returns the job.

        Raises :class:`ServiceError` (status 0) on timeout.
        """
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["status"] in ("done", "failed"):
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(
                    0, f"job {job_id} still {job['status']} after {timeout}s"
                )
            time.sleep(poll)

    def report(self, job_id: str) -> dict:
        return self.request("GET", f"/v1/jobs/{job_id}/report")

    def filter(self, job_id: str) -> dict:
        return self.request("GET", f"/v1/jobs/{job_id}/filter")

    def profile(self, job_id: str) -> dict:
        return self.request("GET", f"/v1/jobs/{job_id}/profile")

    def stats(self) -> dict:
        return self.request("GET", "/v1/stats")

    def health(self) -> dict:
        return self.request("GET", "/v1/healthz")
