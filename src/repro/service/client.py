"""Stdlib HTTP client for the ``bside serve`` API.

Used by the ``bside submit`` subcommand, ``examples/service_client.py``,
the service test-suite, and the throughput benchmarks — one shared
implementation of the submit → poll → fetch conversation so the wire
protocol is exercised the same way everywhere.

Robustness contract (pinned by ``tests/test_service_async.py``):

* **timeouts** — connect and read deadlines are enforced separately;
  a daemon that accepts the TCP connection but never answers raises
  :class:`ServiceError` after ``read_timeout`` seconds instead of
  blocking the caller forever;
* **backpressure retries** — 429 responses are retried with bounded
  exponential backoff (honouring ``Retry-After``, capped), because a
  full queue is an invitation to come back, not a failure; every other
  error status raises immediately.
"""

from __future__ import annotations

import base64
import http.client
import json
import socket
import time
import urllib.parse

from ..errors import ReproError

#: upper bound on any single retry sleep, Retry-After included
MAX_BACKOFF_SECONDS = 2.0


class ServiceError(ReproError):
    """An API error response (carries the HTTP status).

    Transport-level failures — unreachable daemon, connect or read
    timeout — use status 0.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Minimal JSON client over ``http.client`` (no third-party deps)."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        *,
        connect_timeout: float | None = None,
        read_timeout: float | None = None,
        retries: int = 3,
        backoff: float = 0.1,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.connect_timeout = connect_timeout if connect_timeout is not None else timeout
        self.read_timeout = read_timeout if read_timeout is not None else timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        split = urllib.parse.urlsplit(self.base_url)
        if split.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme in {base_url!r}")
        self._netloc = split.netloc or split.path
        self._prefix = split.path if split.netloc else ""

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _roundtrip(self, method: str, path: str,
                   data: bytes | None) -> tuple[int, bytes, str | None]:
        """One HTTP exchange; returns (status, body, Retry-After)."""
        conn = http.client.HTTPConnection(
            self._netloc, timeout=self.connect_timeout
        )
        try:
            conn.connect()
            if conn.sock is not None:
                # connect succeeded: the remaining budget is read time
                conn.sock.settimeout(self.read_timeout)
            conn.request(
                method, self._prefix + path, body=data,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            body = response.read()
            return response.status, body, response.getheader("Retry-After")
        finally:
            conn.close()

    @staticmethod
    def _error_message(body: bytes, status: int) -> str:
        try:
            return json.loads(body.decode()).get("error", f"status {status}")
        except (json.JSONDecodeError, UnicodeDecodeError):
            return f"status {status}"

    def _retry_delay(self, attempt: int, retry_after: str | None) -> float:
        delay = self.backoff * (2 ** attempt)
        if retry_after:
            try:
                delay = max(delay, float(retry_after) * self.backoff)
            except ValueError:
                pass
        return min(delay, MAX_BACKOFF_SECONDS)

    def request(self, method: str, path: str, body: dict | None = None) -> dict:
        data = json.dumps(body).encode() if body is not None else None
        url = self.base_url + path
        attempt = 0
        while True:
            try:
                status, raw, retry_after = self._roundtrip(method, path, data)
            except socket.timeout:
                raise ServiceError(
                    0, f"request to {url} timed out "
                       f"(connect={self.connect_timeout}s, "
                       f"read={self.read_timeout}s)"
                ) from None
            except (ConnectionError, http.client.HTTPException, OSError) as error:
                raise ServiceError(
                    0, f"cannot reach {self.base_url}: {error}"
                ) from None
            if status == 429 and attempt < self.retries:
                # Backpressure: bounded exponential backoff, then retry.
                time.sleep(self._retry_delay(attempt, retry_after))
                attempt += 1
                continue
            if status >= 400:
                raise ServiceError(status, self._error_message(raw, status))
            try:
                return json.loads(raw.decode() or "{}")
            except (json.JSONDecodeError, UnicodeDecodeError) as error:
                raise ServiceError(
                    0, f"malformed response from {url}: {error}"
                ) from None

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit_path(self, path: str, libdir: str | None = None) -> dict:
        """Submit a binary by daemon-visible filesystem path."""
        spec: dict = {"kind": "analyze", "path": path}
        if libdir:
            spec["libdir"] = libdir
        return self.request("POST", "/v1/jobs", spec)["job"]

    def submit_bytes(self, name: str, data: bytes,
                     libdir: str | None = None) -> dict:
        """Submit a binary inline (the daemon need not see your disk)."""
        spec: dict = {
            "kind": "analyze",
            "name": name,
            "binary_b64": base64.b64encode(data).decode(),
        }
        if libdir:
            spec["libdir"] = libdir
        return self.request("POST", "/v1/jobs", spec)["job"]

    def submit_directory(self, directory: str,
                         libdir: str | None = None) -> dict:
        """Submit a whole directory as one fleet job."""
        spec: dict = {"kind": "fleet", "directory": directory}
        if libdir:
            spec["libdir"] = libdir
        return self.request("POST", "/v1/jobs", spec)["job"]

    # ------------------------------------------------------------------
    # Polling and results
    # ------------------------------------------------------------------

    def job(self, job_id: str) -> dict:
        return self.request("GET", f"/v1/jobs/{job_id}")["job"]

    def jobs(self) -> list[dict]:
        return self.request("GET", "/v1/jobs")["jobs"]

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 0.05) -> dict:
        """Poll until the job reaches a terminal state; returns the job.

        Raises :class:`ServiceError` (status 0) on timeout.
        """
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["status"] in ("done", "failed"):
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(
                    0, f"job {job_id} still {job['status']} after {timeout}s"
                )
            time.sleep(poll)

    def report(self, job_id: str) -> dict:
        return self.request("GET", f"/v1/jobs/{job_id}/report")

    def filter(self, job_id: str) -> dict:
        return self.request("GET", f"/v1/jobs/{job_id}/filter")

    def profile(self, job_id: str) -> dict:
        return self.request("GET", f"/v1/jobs/{job_id}/profile")

    def stats(self) -> dict:
        return self.request("GET", "/v1/stats")

    def health(self) -> dict:
        return self.request("GET", "/v1/healthz")
