"""The HTTP/JSON front end: a stdlib ``ThreadingHTTPServer``.

Endpoint reference (full examples in ``docs/service-api.md``):

=========  ==============================  =====================================
method     path                            meaning
=========  ==============================  =====================================
GET        ``/v1/healthz``                 liveness probe
GET        ``/v1/stats``                   queue depth, cache + pipeline stats
POST       ``/v1/jobs``                    submit a job (202; 429 on backpressure)
GET        ``/v1/jobs``                    list jobs (summaries)
GET        ``/v1/jobs/<id>``               one job's status + metrics
GET        ``/v1/jobs/<id>/report``        the AnalysisReport / FleetReport JSON
GET        ``/v1/jobs/<id>/filter``        derived seccomp-style filter
GET        ``/v1/jobs/<id>/profile``       derived OCI/Docker seccomp profile
=========  ==============================  =====================================

Design notes:

* handlers never run analysis — they only enqueue and read; all
  analysis happens on the executor's dispatcher thread, so a slow
  binary cannot wedge the API;
* every response is JSON (errors as ``{"error": ...}``) with the
  correct status code: 202 accepted, 400 bad spec, 404 unknown,
  409 not-ready-yet, 413 oversized body, 429 queue full;
* request bodies are bounded (:data:`~repro.service.executor.MAX_INLINE_BYTES`
  plus base64 overhead) — backpressure applies to bytes, not just jobs.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..core.report import AnalysisReport
from ..filters.docker import profile_from_report
from ..filters.seccomp import FilterProgram
from ..syscalls.table import name_of
from .executor import MAX_INLINE_BYTES, AnalysisService
from .jobs import QueueFull

logger = logging.getLogger(__name__)

#: request-body cap: the inline-binary bound plus base64 + JSON overhead
MAX_BODY_BYTES = MAX_INLINE_BYTES * 3 // 2


class _Handler(BaseHTTPRequestHandler):
    """Routes ``/v1`` requests onto the bound :class:`AnalysisService`."""

    server_version = "bside-serve/1"
    protocol_version = "HTTP/1.1"

    # quiet the default stderr-per-request logging; keep it on DEBUG
    def log_message(self, fmt: str, *args) -> None:
        logger.debug("%s - %s", self.address_string(), fmt % args)

    @property
    def service(self) -> AnalysisService:
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _send(self, status: int, doc: dict, retry_after: int | None = None) -> None:
        body = (json.dumps(doc, indent=2) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str,
               retry_after: int | None = None, **extra) -> None:
        self._send(status, {"error": message, **extra},
                   retry_after=retry_after)

    def _read_body(self) -> dict | None:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            # The unread body would be parsed as the next request on
            # this keep-alive connection; drop the connection instead.
            self.close_connection = True
            self._error(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
            return None
        raw = self.rfile.read(length) if length else b"{}"
        try:
            doc = json.loads(raw.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self._error(400, f"request body is not valid JSON: {error}")
            return None
        if not isinstance(doc, dict):
            self._error(400, "request body must be a JSON object")
            return None
        return doc

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server contract)
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["v1", "healthz"]:
            return self._send(200, {"status": "ok"})
        if parts == ["v1", "stats"]:
            return self._send(200, self.service.stats())
        if parts == ["v1", "jobs"]:
            return self._send(
                200, {"jobs": [j.summary() for j in self.service.queue.jobs()]}
            )
        if len(parts) in (3, 4) and parts[:2] == ["v1", "jobs"]:
            return self._get_job(parts[2], parts[3] if len(parts) == 4 else None)
        self._error(404, f"no such endpoint: {self.path}")

    def do_POST(self) -> None:  # noqa: N802
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts != ["v1", "jobs"]:
            return self._error(404, f"no such endpoint: {self.path}")
        doc = self._read_body()
        if doc is None:
            return
        kind = doc.pop("kind", "analyze")
        try:
            job = self.service.submit(kind, doc)
        except QueueFull as full:
            return self._error(429, str(full), retry_after=1)
        except ValueError as error:
            return self._error(400, str(error))
        self._send(202, {"job": job.summary()})

    # ------------------------------------------------------------------
    # Job views
    # ------------------------------------------------------------------

    def _get_job(self, job_id: str, view: str | None) -> None:
        job = self.service.queue.get(job_id)
        if job is None:
            return self._error(404, f"no such job: {job_id}")
        if view is None:
            return self._send(200, {"job": job.summary()})
        if job.status in ("queued", "running"):
            return self._error(
                409, f"job {job_id} is {job.status}; poll until done",
                job_status=job.status,
            )
        if job.status == "failed":
            return self._error(409, f"job {job_id} failed: {job.error}")
        if view == "report":
            return self._send(200, job.result or {})
        if view in ("filter", "profile"):
            return self._derived(job, view)
        self._error(404, f"no such job view: {view}")

    def _derived(self, job, view: str) -> None:
        """Filter artifacts derived on demand from a completed report."""
        if job.kind != "analyze":
            return self._error(
                400, f"{view} is only derivable from analyze jobs"
            )
        report = AnalysisReport.from_doc(job.result)
        filt = FilterProgram.from_report(report)
        if view == "profile":
            return self._send(200, profile_from_report(report))
        self._send(200, {
            "binary": report.binary,
            "sound": report.success and report.complete,
            "allowed": sorted(filt.allowed),
            "allowed_names": sorted(name_of(nr) for nr in filt.allowed),
            "n_blocked": filt.n_blocked,
            "rendered": filt.render(),
        })


class ServiceServer:
    """The daemon: an :class:`AnalysisService` behind a threading HTTP server.

    ``port=0`` binds an ephemeral port (tests, examples); the bound
    address is available as :attr:`url` after construction.
    """

    def __init__(self, service: AnalysisService, host: str = "127.0.0.1",
                 port: int = 8649) -> None:
        self.service = service
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.service = service  # type: ignore[attr-defined]
        self.host, self.port = self.httpd.server_address[:2]
        self.url = f"http://{self.host}:{self.port}"
        self._thread: threading.Thread | None = None

    def start(self, executor: bool = True) -> None:
        """Serve requests on a background thread.

        ``executor=False`` leaves the dispatcher stopped — jobs queue up
        but never run (tests use it to pin backpressure and recovery
        behaviour; call ``service.start()`` later to drain).
        """
        if executor:
            self.service.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="bside-http", daemon=True,
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Foreground mode (the ``bside serve`` CLI)."""
        self.service.start()
        try:
            self.httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self.service.stop()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None
