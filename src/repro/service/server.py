"""The threaded HTTP/JSON front end: a stdlib ``ThreadingHTTPServer``.

One of two transports over the same API — the other is the asyncio
server in :mod:`repro.service.aserver`, which is what ``bside serve``
runs by default.  All routing, validation, and status-code logic lives
in :mod:`repro.service.routes` so the two stay contract-identical; this
module only adapts ``http.server`` plumbing onto it.

Design notes:

* handlers never run analysis — they only enqueue and read; all
  analysis happens on the executor's dispatcher thread (or external
  worker processes), so a slow binary cannot wedge the API;
* every response is JSON (errors as ``{"error": ...}``) with the
  correct status code: 202 accepted, 400 bad spec, 404 unknown,
  409 not-ready-yet, 413 oversized body, 429 queue full;
* request bodies are bounded (:data:`~repro.service.executor.MAX_INLINE_BYTES`
  plus base64 overhead) — backpressure applies to bytes, not just jobs.
"""

from __future__ import annotations

import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .executor import MAX_INLINE_BYTES, AnalysisService
from .routes import ApiResult, handle_request

logger = logging.getLogger(__name__)

#: request-body cap: the inline-binary bound plus base64 + JSON overhead
MAX_BODY_BYTES = MAX_INLINE_BYTES * 3 // 2


class _Handler(BaseHTTPRequestHandler):
    """Adapts ``http.server`` requests onto :func:`handle_request`."""

    server_version = "bside-serve/1"
    protocol_version = "HTTP/1.1"

    # quiet the default stderr-per-request logging; keep it on DEBUG
    def log_message(self, fmt: str, *args) -> None:
        logger.debug("%s - %s", self.address_string(), fmt % args)

    @property
    def service(self) -> AnalysisService:
        return self.server.service  # type: ignore[attr-defined]

    def _send(self, result: ApiResult) -> None:
        body = result.body()
        self.send_response(result.status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in result.headers():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (http.server contract)
        self._send(handle_request(self.service, "GET", self.path))

    def do_POST(self) -> None:  # noqa: N802
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            # The unread body would be parsed as the next request on
            # this keep-alive connection; drop the connection instead.
            self.close_connection = True
            self._send(ApiResult(
                413, {"error": f"request body exceeds {MAX_BODY_BYTES} bytes"}
            ))
            return
        raw = self.rfile.read(length) if length else b"{}"
        self._send(handle_request(self.service, "POST", self.path, raw))


class ServiceServer:
    """The daemon: an :class:`AnalysisService` behind a threading HTTP server.

    ``port=0`` binds an ephemeral port (tests, examples); the bound
    address is available as :attr:`url` after construction.
    """

    def __init__(self, service: AnalysisService, host: str = "127.0.0.1",
                 port: int = 8649) -> None:
        self.service = service
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.service = service  # type: ignore[attr-defined]
        self.host, self.port = self.httpd.server_address[:2]
        self.url = f"http://{self.host}:{self.port}"
        self._thread: threading.Thread | None = None

    def start(self, executor: bool = True) -> None:
        """Serve requests on a background thread.

        ``executor=False`` leaves the dispatcher stopped — jobs queue up
        but never run (tests use it to pin backpressure and recovery
        behaviour; call ``service.start()`` later to drain).
        """
        if executor:
            self.service.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="bside-http", daemon=True,
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Foreground mode (the ``bside serve`` CLI)."""
        self.service.start()
        try:
            self.httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self.service.stop()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None
