"""The asyncio HTTP/JSON front end — the default ``bside serve`` transport.

A single-threaded event loop (stdlib ``asyncio.start_server``, no
dependencies) accepts thousands of concurrent keep-alive connections
without the thread-per-connection cost of
:class:`~repro.service.server.ServiceServer`.  Both front ends route
through :mod:`repro.service.routes`, so the ``/v1`` contract is defined
exactly once.

How a request flows:

1. the loop reads the request head (bounded ``readuntil``) and the
   ``Content-Length`` body (bounded; 413 + connection close beyond the
   inline-binary cap);
2. routing and queue/disk work run in :func:`asyncio.to_thread` — the
   loop never blocks on filesystem I/O, so slow disks don't stall
   unrelated connections;
3. the response is written with an explicit ``Content-Length`` and the
   connection is kept alive for HTTP/1.1 clients.

Analysis never runs on the loop *or* its thread pool: the executor's
dispatcher thread (local mode) or external worker processes
(:mod:`repro.service.worker`) drain the queue, exactly as with the
threaded server.
"""

from __future__ import annotations

import asyncio
import logging
import socket
import threading
from http import HTTPStatus

from .executor import AnalysisService
from .routes import ApiResult, handle_request
from .server import MAX_BODY_BYTES

logger = logging.getLogger(__name__)

#: maximum bytes of request line + headers
MAX_HEAD_BYTES = 32 * 1024

#: how long an idle keep-alive connection is held open
IDLE_TIMEOUT = 60.0


def _reason(status: int) -> str:
    try:
        return HTTPStatus(status).phrase
    except ValueError:
        return "Unknown"


class AsyncServiceServer:
    """The daemon: an :class:`AnalysisService` behind an asyncio server.

    API-compatible with :class:`~repro.service.server.ServiceServer`:
    construct (binding happens eagerly, so ``port=0`` resolves and
    :attr:`url` is immediately valid), then ``start()`` /
    ``serve_forever()`` / ``stop()``.
    """

    def __init__(self, service: AnalysisService, host: str = "127.0.0.1",
                 port: int = 8649, *, idle_timeout: float = IDLE_TIMEOUT) -> None:
        self.service = service
        self.idle_timeout = idle_timeout
        self._sock = socket.create_server((host, port))
        self.host, self.port = self._sock.getsockname()[:2]
        self.url = f"http://{self.host}:{self.port}"
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None
        self._ready = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, executor: bool = True) -> None:
        """Serve requests on a background event-loop thread.

        ``executor=False`` leaves the dispatcher stopped, as with the
        threaded server (jobs queue but never run locally).
        """
        if executor:
            self.service.start()
        self._thread = threading.Thread(
            target=asyncio.run, args=(self._main(),),
            name="bside-aio", daemon=True,
        )
        self._thread.start()
        self._ready.wait(10.0)

    def serve_forever(self) -> None:
        """Foreground mode (the ``bside serve`` CLI)."""
        self.service.start()
        try:
            asyncio.run(self._main())
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None and loop.is_running():
            loop.call_soon_threadsafe(shutdown.set)
        if self._thread is not None:
            self._thread.join(10.0)
            self._thread = None
        self.service.stop()
        try:
            self._sock.close()
        except OSError:
            pass

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, sock=self._sock, limit=MAX_HEAD_BYTES,
        )
        self._ready.set()
        async with server:
            await self._shutdown.wait()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while await self._handle_one(reader, writer):
                pass
        except (ConnectionError, asyncio.TimeoutError):
            pass
        except Exception:  # never kill the loop on a handler bug
            logger.exception("aserver: connection handler failed")
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Serve one request; True to keep the connection alive."""
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=self.idle_timeout
            )
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                asyncio.TimeoutError, ConnectionError):
            return False

        lines = head.decode("latin-1").split("\r\n")
        request_parts = lines[0].split(" ")
        if len(request_parts) != 3:
            await self._respond(
                writer, ApiResult(400, {"error": "malformed request line"}),
                keep_alive=False,
            )
            return False
        method, path, version = request_parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()

        try:
            length = int(headers.get("content-length") or 0)
        except ValueError:
            length = -1
        if length < 0:
            await self._respond(
                writer, ApiResult(400, {"error": "bad Content-Length"}),
                keep_alive=False,
            )
            return False
        if length > MAX_BODY_BYTES:
            # Reading the oversized body would be the DoS; drop it.
            await self._respond(
                writer,
                ApiResult(413, {
                    "error": f"request body exceeds {MAX_BODY_BYTES} bytes"
                }),
                keep_alive=False,
            )
            return False
        try:
            body = await reader.readexactly(length) if length else b""
        except (asyncio.IncompleteReadError, ConnectionError):
            return False

        # Queue submission and job reads touch disk and locks: off-loop.
        result = await asyncio.to_thread(
            handle_request, self.service, method, path, body
        )
        keep_alive = (
            version == "HTTP/1.1"
            and headers.get("connection", "").lower() != "close"
        )
        await self._respond(writer, result, keep_alive=keep_alive)
        return keep_alive

    async def _respond(self, writer: asyncio.StreamWriter, result: ApiResult,
                       *, keep_alive: bool) -> None:
        body = result.body()
        head = [
            f"HTTP/1.1 {result.status} {_reason(result.status)}",
            "Server: bside-serve/1",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        head.extend(f"{name}: {value}" for name, value in result.headers())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
        await writer.drain()
