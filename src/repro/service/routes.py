"""Transport-independent ``/v1`` API routing.

The service has two front ends — the original threading server
(:mod:`repro.service.server`) and the asyncio server
(:mod:`repro.service.aserver`).  Both must answer identically: this
module is the single source of the API contract.  A front end reads the
request off its transport (enforcing the body bound, 413) and calls
:func:`handle_request`; everything else — routing, spec validation,
status codes, error shapes — happens here.

Endpoint reference (full examples in ``docs/service-api.md``):

=========  ==============================  =====================================
method     path                            meaning
=========  ==============================  =====================================
GET        ``/v1/healthz``                 liveness probe
GET        ``/v1/stats``                   queue depth, cache + pipeline stats
POST       ``/v1/jobs``                    submit a job (202; 429 on backpressure)
GET        ``/v1/jobs``                    list jobs (summaries)
GET        ``/v1/jobs/<id>``               one job's status + metrics
GET        ``/v1/jobs/<id>/report``        the AnalysisReport / FleetReport JSON
GET        ``/v1/jobs/<id>/filter``        derived seccomp-style filter
GET        ``/v1/jobs/<id>/profile``       derived OCI/Docker seccomp profile
=========  ==============================  =====================================

Status codes: 202 accepted, 400 bad spec, 404 unknown, 405 wrong
method, 409 not-ready-yet / failed, 413 oversized body (transport
layer), 429 queue full.  Every response body is JSON; errors are
``{"error": ...}``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..core.report import AnalysisReport
from ..filters.docker import profile_from_report
from ..filters.seccomp import FilterProgram
from ..syscalls.table import name_of
from .jobs import Job, QueueFull


@dataclass
class ApiResult:
    """One routed response: status code, JSON document, extra headers."""

    status: int
    doc: dict
    retry_after: int | None = None

    def body(self) -> bytes:
        return (json.dumps(self.doc, indent=2) + "\n").encode()

    def headers(self) -> list[tuple[str, str]]:
        extra = []
        if self.retry_after is not None:
            extra.append(("Retry-After", str(self.retry_after)))
        return extra


def _error(status: int, message: str, retry_after: int | None = None,
           **extra) -> ApiResult:
    return ApiResult(status, {"error": message, **extra}, retry_after)


def handle_request(service, method: str, path: str,
                   raw_body: bytes = b"") -> ApiResult:
    """Route one request against an :class:`AnalysisService`.

    ``raw_body`` is the (already bounded) request body; only POST routes
    look at it.
    """
    parts = [p for p in path.split("?")[0].split("/") if p]
    if method == "GET":
        return _handle_get(service, parts, path)
    if method == "POST":
        return _handle_post(service, parts, path, raw_body)
    return _error(405, f"method {method} not allowed")


def _handle_get(service, parts: list[str], path: str) -> ApiResult:
    if parts == ["v1", "healthz"]:
        return ApiResult(200, {"status": "ok"})
    if parts == ["v1", "stats"]:
        return ApiResult(200, service.stats())
    if parts == ["v1", "jobs"]:
        return ApiResult(
            200, {"jobs": [j.summary() for j in service.queue.jobs()]}
        )
    if len(parts) in (3, 4) and parts[:2] == ["v1", "jobs"]:
        return _get_job(service, parts[2], parts[3] if len(parts) == 4 else None)
    return _error(404, f"no such endpoint: {path}")


def _handle_post(service, parts: list[str], path: str,
                 raw_body: bytes) -> ApiResult:
    if parts != ["v1", "jobs"]:
        return _error(404, f"no such endpoint: {path}")
    try:
        doc = json.loads(raw_body.decode() or "{}")
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        return _error(400, f"request body is not valid JSON: {error}")
    if not isinstance(doc, dict):
        return _error(400, "request body must be a JSON object")
    kind = doc.pop("kind", "analyze")
    try:
        job = service.submit(kind, doc)
    except QueueFull as full:
        return _error(429, str(full), retry_after=1)
    except ValueError as error:
        return _error(400, str(error))
    return ApiResult(202, {"job": job.summary()})


def _get_job(service, job_id: str, view: str | None) -> ApiResult:
    job = service.queue.get(job_id)
    if job is None:
        return _error(404, f"no such job: {job_id}")
    if view is None:
        return ApiResult(200, {"job": job.summary()})
    if job.status in ("queued", "running"):
        return _error(
            409, f"job {job_id} is {job.status}; poll until done",
            job_status=job.status,
        )
    if job.status == "failed":
        return _error(409, f"job {job_id} failed: {job.error}")
    if view == "report":
        return ApiResult(200, job.result or {})
    if view in ("filter", "profile"):
        return _derived(job, view)
    return _error(404, f"no such job view: {view}")


def _derived(job: Job, view: str) -> ApiResult:
    """Filter artifacts derived on demand from a completed report."""
    if job.kind != "analyze":
        return _error(400, f"{view} is only derivable from analyze jobs")
    report = AnalysisReport.from_doc(job.result)
    filt = FilterProgram.from_report(report)
    if view == "profile":
        return ApiResult(200, profile_from_report(report))
    return ApiResult(200, {
        "binary": report.binary,
        "sound": report.success and report.complete,
        "allowed": sorted(filt.allowed),
        "allowed_names": sorted(name_of(nr) for nr in filt.allowed),
        "n_blocked": filt.n_blocked,
        "rendered": filt.render(),
    })
