"""Job records and the bounded, disk-persistent job queue.

A :class:`Job` is one unit of service work: analyze a single binary
(kind ``analyze``) or sweep a directory (kind ``fleet``).  Its whole
lifecycle — spec, status, timestamps, result, metrics — lives in one
JSON file under ``<state_dir>/<id>.json``, written atomically on every
transition, so a daemon restart recovers the queue exactly:

* ``done`` / ``failed`` jobs keep serving their results after a restart;
* ``queued`` jobs are re-enqueued in submission order;
* ``running`` jobs (the daemon died mid-batch) are re-enqueued too —
  re-execution is safe because results are content-addressed: a job
  whose analysis already landed in the artifact store is served from
  cache the second time.

The queue is **bounded**: :meth:`JobQueue.submit` raises
:class:`QueueFull` when ``maxsize`` jobs are waiting, which the HTTP
layer surfaces as ``429 Too Many Requests`` — backpressure instead of
unbounded memory growth.

Batching: :meth:`take_batch` hands the executor up to ``max_jobs``
queued jobs that share a *group key* (kind + library directory), so one
:class:`~repro.core.fleet.FleetAnalyzer` run can amortise resolver
construction and interface warm-up across the whole batch.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field

#: job lifecycle states
STATUS_QUEUED = "queued"
STATUS_RUNNING = "running"
STATUS_DONE = "done"
STATUS_FAILED = "failed"

STATUSES = (STATUS_QUEUED, STATUS_RUNNING, STATUS_DONE, STATUS_FAILED)


class QueueFull(Exception):
    """The bounded queue rejected a submission (HTTP 429)."""


@dataclass
class Job:
    """One service work item and its full lifecycle record."""

    id: str
    kind: str  # "analyze" | "fleet"
    spec: dict
    status: str = STATUS_QUEUED
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    #: service-level error (bad path, unreadable ELF) — analysis
    #: failures are *results* (status ``done``, ``report.success=False``)
    error: str = ""
    #: AnalysisReport doc (analyze) or FleetReport doc (fleet)
    result: dict | None = None
    #: per-job timing / cache metrics filled in by the executor
    metrics: dict = field(default_factory=dict)

    def group_key(self) -> tuple:
        """Jobs with equal keys may run in one batched fleet pass."""
        return (self.kind, self.spec.get("libdir") or "")

    def to_doc(self) -> dict:
        return {
            "id": self.id,
            "kind": self.kind,
            "spec": self.spec,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "result": self.result,
            "metrics": self.metrics,
        }

    def summary(self) -> dict:
        """The job listing / status document (result omitted)."""
        doc = self.to_doc()
        doc.pop("result")
        doc["has_result"] = self.result is not None
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> "Job":
        return cls(
            id=doc["id"],
            kind=doc["kind"],
            spec=dict(doc["spec"]),
            status=doc["status"],
            submitted_at=doc.get("submitted_at", 0.0),
            started_at=doc.get("started_at"),
            finished_at=doc.get("finished_at"),
            error=doc.get("error", ""),
            result=doc.get("result"),
            metrics=dict(doc.get("metrics", {})),
        )


class JobQueue:
    """Bounded FIFO of :class:`Job` records, persisted one file per job.

    Thread-safe: HTTP handler threads submit and read, the executor's
    dispatcher thread takes batches and records transitions.
    """

    def __init__(self, state_dir: str, maxsize: int = 64) -> None:
        self.state_dir = state_dir
        self.maxsize = max(1, int(maxsize))
        os.makedirs(state_dir, exist_ok=True)
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        self._queued: list[str] = []  # FIFO of queued job ids
        self._seq = 0
        #: session counters for the stats endpoint
        self.counters = {"submitted": 0, "rejected": 0, "recovered": 0}
        self._recover()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def _path(self, job_id: str) -> str:
        return os.path.join(self.state_dir, f"{job_id}.json")

    def persist(self, job: Job) -> None:
        """Atomically write one job's current state to disk."""
        path = self._path(job.id)
        tmp = path + ".tmp"
        with open(tmp, "w") as f:
            json.dump(job.to_doc(), f, indent=2)
        os.replace(tmp, path)

    def _recover(self) -> None:
        """Reload every job file; re-enqueue interrupted work.

        A ``running`` job means the previous daemon died mid-batch; it
        is re-queued, which is idempotent because a completed analysis
        is served from the artifact store on re-execution.
        """
        for filename in sorted(os.listdir(self.state_dir)):
            if not filename.endswith(".json"):
                continue
            try:
                with open(os.path.join(self.state_dir, filename)) as f:
                    job = Job.from_doc(json.load(f))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                continue  # corrupt record: degrade to "job lost", not crash
            self._jobs[job.id] = job
            self._seq = max(self._seq, self._seq_of(job.id))
            if job.status in (STATUS_QUEUED, STATUS_RUNNING):
                if job.status == STATUS_RUNNING:
                    job.status = STATUS_QUEUED
                    job.started_at = None
                    self.persist(job)
                self._queued.append(job.id)
                self.counters["recovered"] += 1

    @staticmethod
    def _seq_of(job_id: str) -> int:
        try:
            return int(job_id.rsplit("-", 1)[-1])
        except ValueError:
            return 0

    # ------------------------------------------------------------------
    # Producer side (HTTP handlers)
    # ------------------------------------------------------------------

    def submit(self, kind: str, spec: dict) -> Job:
        """Enqueue one job; raises :class:`QueueFull` on backpressure."""
        with self._lock:
            if len(self._queued) >= self.maxsize:
                self.counters["rejected"] += 1
                raise QueueFull(
                    f"queue full ({self.maxsize} jobs waiting); retry later"
                )
            self._seq += 1
            job = Job(
                id=f"job-{self._seq:06d}",
                kind=kind,
                spec=dict(spec),
                submitted_at=time.time(),
            )
            self._jobs[job.id] = job
            self._queued.append(job.id)
            self.counters["submitted"] += 1
            self.persist(job)
            self._not_empty.notify()
            return job

    # ------------------------------------------------------------------
    # Consumer side (executor dispatcher)
    # ------------------------------------------------------------------

    def take_batch(self, max_jobs: int, timeout: float | None = None) -> list[Job]:
        """Pop up to ``max_jobs`` queued jobs sharing one group key.

        Blocks up to ``timeout`` seconds for the first job (empty list on
        timeout).  The batch starts at the head of the FIFO and extends
        with later compatible jobs — incompatible ones keep their place.
        """
        with self._not_empty:
            if not self._queued:
                self._not_empty.wait(timeout)
            if not self._queued:
                return []
            head = self._jobs[self._queued[0]]
            key = head.group_key()
            batch: list[Job] = []
            remaining: list[str] = []
            for job_id in self._queued:
                job = self._jobs[job_id]
                if len(batch) < max_jobs and job.group_key() == key:
                    batch.append(job)
                else:
                    remaining.append(job_id)
            self._queued = remaining
            for job in batch:
                job.status = STATUS_RUNNING
                job.started_at = time.time()
                self.persist(job)
            return batch

    def finish(self, job: Job, *, error: str = "") -> None:
        """Record a job's terminal transition (done, or failed)."""
        with self._lock:
            job.finished_at = time.time()
            if error:
                job.status = STATUS_FAILED
                job.error = error
            else:
                job.status = STATUS_DONE
            self.persist(job)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """Every known job, submission order."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.id)

    def depth(self) -> int:
        with self._lock:
            return len(self._queued)

    def stats(self) -> dict:
        with self._lock:
            by_status = {status: 0 for status in STATUSES}
            for job in self._jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
            return {
                "depth": len(self._queued),
                "capacity": self.maxsize,
                "jobs": by_status,
                **self.counters,
            }
