"""Job records and the bounded, disk-persistent, multi-worker job queue.

A :class:`Job` is one unit of service work: analyze a single binary
(kind ``analyze``) or sweep a directory (kind ``fleet``).  Its whole
lifecycle — spec, status, timestamps, result, metrics — lives in one
JSON file under ``<state_dir>/<id>.json``, written atomically on every
transition, so a daemon restart recovers the queue exactly:

* ``done`` / ``failed`` jobs keep serving their results after a restart;
* ``queued`` jobs are re-enqueued in submission order;
* ``running`` jobs (the daemon died mid-batch) are re-enqueued too —
  re-execution is safe because results are content-addressed: a job
  whose analysis already landed in the artifact store is served from
  cache the second time.

The queue is **bounded**: :meth:`JobQueue.submit` raises
:class:`QueueFull` when ``maxsize`` jobs are waiting, which the HTTP
layer surfaces as ``429 Too Many Requests`` — backpressure instead of
unbounded memory growth.

Batching: :meth:`take_batch` hands the executor up to ``max_jobs``
queued jobs that share a *group key* (kind + library directory), so one
:class:`~repro.core.fleet.FleetAnalyzer` run can amortise resolver
construction and interface warm-up across the whole batch.

Multi-worker mode (``shared=True``)
-----------------------------------

One state directory can be drained by **multiple worker processes**
(:mod:`repro.service.worker`), on one machine or several sharing a
filesystem.  Coordination is lease-based and needs no lock server:

* **claim** — :meth:`claim_batch` takes a job by atomically creating
  ``<state_dir>/leases/<id>.lease`` with ``O_CREAT | O_EXCL``: exactly
  one claimant wins however many race, including re-claims of an
  expired lease.
* **heartbeat** — the owning worker refreshes its lease files' mtimes
  (:meth:`heartbeat`) while it works, including mid-analysis.
* **expiry** — a lease whose mtime is older than ``lease_ttl`` marks a
  dead (or wedged) worker.  :meth:`reclaim_expired` *breaks* such a
  lease by renaming it to a unique reap file — again, exactly one
  breaker wins — and re-queues the job, so a crashed worker's jobs are
  re-leased and completed by its peers.  Because results are
  content-addressed, a re-run of work the dead worker had already
  finished is served from the artifact store.
* **quarantine** — a job record that no longer parses (disk corruption,
  truncated write by a killed process) is moved to
  ``<state_dir>/quarantine/`` and counted, never crashing recovery;
  the count is surfaced through ``/v1/stats``.

Exactly-once caveat: the lease protocol guarantees a single *claimant*
per lease epoch.  A worker that is alive but paused longer than
``lease_ttl`` without heartbeating can lose its lease while mid-job;
workers therefore heartbeat from a background thread and verify lease
ownership (:meth:`owns_lease`) before persisting results, discarding
work they no longer own.  Size ``lease_ttl`` well above the heartbeat
interval (the worker defaults keep a ~10x margin).
"""

from __future__ import annotations

import json
import os
import threading
import time

#: job lifecycle states
STATUS_QUEUED = "queued"
STATUS_RUNNING = "running"
STATUS_DONE = "done"
STATUS_FAILED = "failed"

STATUSES = (STATUS_QUEUED, STATUS_RUNNING, STATUS_DONE, STATUS_FAILED)

#: terminal states: never re-queued, results immutable
TERMINAL = (STATUS_DONE, STATUS_FAILED)

from dataclasses import dataclass, field  # noqa: E402


class QueueFull(Exception):
    """The bounded queue rejected a submission (HTTP 429)."""


@dataclass
class Job:
    """One service work item and its full lifecycle record."""

    id: str
    kind: str  # "analyze" | "fleet"
    spec: dict
    status: str = STATUS_QUEUED
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    #: service-level error (bad path, unreadable ELF) — analysis
    #: failures are *results* (status ``done``, ``report.success=False``)
    error: str = ""
    #: AnalysisReport doc (analyze) or FleetReport doc (fleet)
    result: dict | None = None
    #: per-job timing / cache metrics filled in by the executor
    metrics: dict = field(default_factory=dict)

    def group_key(self) -> tuple:
        """Jobs with equal keys may run in one batched fleet pass."""
        return (self.kind, self.spec.get("libdir") or "")

    def to_doc(self) -> dict:
        return {
            "id": self.id,
            "kind": self.kind,
            "spec": self.spec,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "result": self.result,
            "metrics": self.metrics,
        }

    def summary(self) -> dict:
        """The job listing / status document (result omitted)."""
        doc = self.to_doc()
        doc.pop("result")
        doc["has_result"] = self.result is not None
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> "Job":
        return cls(
            id=doc["id"],
            kind=doc["kind"],
            spec=dict(doc["spec"]),
            status=doc["status"],
            submitted_at=doc.get("submitted_at", 0.0),
            started_at=doc.get("started_at"),
            finished_at=doc.get("finished_at"),
            error=doc.get("error", ""),
            result=doc.get("result"),
            metrics=dict(doc.get("metrics", {})),
        )


class JobQueue:
    """Bounded FIFO of :class:`Job` records, persisted one file per job.

    Thread-safe: HTTP handler threads submit and read, the executor's
    dispatcher thread takes batches and records transitions.  With
    ``shared=True`` the same directory is additionally drained by other
    *processes* (lease-based claims; see the module docstring), and
    reads refresh from disk so one process observes another's
    transitions.
    """

    def __init__(
        self,
        state_dir: str,
        maxsize: int = 64,
        *,
        shared: bool = False,
        lease_ttl: float = 30.0,
    ) -> None:
        self.state_dir = state_dir
        self.maxsize = max(1, int(maxsize))
        self.shared = bool(shared)
        self.lease_ttl = float(lease_ttl)
        self.lease_dir = os.path.join(state_dir, "leases")
        self.quarantine_dir = os.path.join(state_dir, "quarantine")
        os.makedirs(state_dir, exist_ok=True)
        os.makedirs(self.lease_dir, exist_ok=True)
        os.makedirs(self.quarantine_dir, exist_ok=True)
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        self._queued: list[str] = []  # FIFO of queued job ids
        self._seq = 0
        #: job record mtimes at last load (shared-mode refresh bookkeeping)
        self._mtimes: dict[str, float] = {}
        #: leases held by *this* instance: job id -> worker id
        self._held: dict[str, str] = {}
        self._last_refresh = 0.0
        #: session counters for the stats endpoint
        self.counters = {
            "submitted": 0,
            "rejected": 0,
            "recovered": 0,
            "quarantined": 0,
            "reclaimed": 0,
        }
        self._recover()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def _path(self, job_id: str) -> str:
        return os.path.join(self.state_dir, f"{job_id}.json")

    def _lease_path(self, job_id: str) -> str:
        return os.path.join(self.lease_dir, f"{job_id}.lease")

    def persist(self, job: Job) -> None:
        """Atomically write one job's current state to disk."""
        path = self._path(job.id)
        tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        with open(tmp, "w") as f:
            json.dump(job.to_doc(), f, indent=2)
        os.replace(tmp, path)
        try:
            self._mtimes[job.id] = os.stat(path).st_mtime
        except OSError:
            pass

    def _quarantine(self, path: str) -> None:
        """Move an unparseable record aside; recovery must never crash
        on disk corruption, and the loss must be *visible* (counted,
        surfaced in stats), not silent."""
        dest = os.path.join(self.quarantine_dir, os.path.basename(path))
        try:
            os.replace(path, dest)
        except OSError:
            return
        self.counters["quarantined"] += 1

    def _load_job_file(self, job_id: str) -> Job | None:
        path = self._path(job_id)
        try:
            with open(path) as f:
                return Job.from_doc(json.load(f))
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            self._quarantine(path)
            return None

    def _record_ids_on_disk(self) -> list[str]:
        try:
            names = os.listdir(self.state_dir)
        except FileNotFoundError:
            return []
        return sorted(
            name[:-5] for name in names
            if name.endswith(".json") and not name.startswith(".")
        )

    def _recover(self) -> None:
        """Reload every job file; re-enqueue interrupted work.

        A ``running`` job means a previous daemon died mid-batch; it is
        re-queued, which is idempotent because a completed analysis is
        served from the artifact store on re-execution.  In shared mode
        a ``running`` job may belong to a *live* worker in another
        process — it is left alone; :meth:`reclaim_expired` re-queues it
        if its lease goes stale.  Corrupt records are quarantined.
        """
        for job_id in self._record_ids_on_disk():
            job = self._load_job_file(job_id)
            if job is None:
                continue
            self._jobs[job.id] = job
            self._seq = max(self._seq, self._seq_of(job.id))
            try:
                self._mtimes[job.id] = os.stat(self._path(job.id)).st_mtime
            except OSError:
                pass
            if job.status == STATUS_QUEUED:
                self._queued.append(job.id)
                self.counters["recovered"] += 1
            elif job.status == STATUS_RUNNING:
                if self.shared and os.path.exists(self._lease_path(job.id)):
                    continue  # a live worker owns it; expiry handles death
                job.status = STATUS_QUEUED
                job.started_at = None
                self.persist(job)
                self._queued.append(job.id)
                self.counters["recovered"] += 1

    @staticmethod
    def _seq_of(job_id: str) -> int:
        try:
            return int(job_id.rsplit("-", 1)[-1])
        except ValueError:
            return 0

    # ------------------------------------------------------------------
    # Shared-mode disk refresh
    # ------------------------------------------------------------------

    def refresh(self, min_interval: float = 0.0) -> None:
        """Fold other processes' transitions (and submissions) into this
        instance's view.  No-op unless ``shared``; throttled by
        ``min_interval`` so hot paths (submit backpressure, stats) pay
        one directory scan per interval, not per request."""
        if not self.shared:
            return
        now = time.monotonic()
        with self._lock:
            if min_interval and now - self._last_refresh < min_interval:
                return
            self._last_refresh = now
        changed: list[Job] = []
        on_disk = self._record_ids_on_disk()
        for job_id in on_disk:
            try:
                mtime = os.stat(self._path(job_id)).st_mtime
            except OSError:
                continue
            with self._lock:
                if job_id in self._jobs and self._mtimes.get(job_id) == mtime:
                    continue
            job = self._load_job_file(job_id)
            if job is None:
                continue
            with self._lock:
                self._jobs[job.id] = job
                self._mtimes[job.id] = mtime
                self._seq = max(self._seq, self._seq_of(job.id))
            changed.append(job)
        with self._lock:
            # Merge, don't replace: a submission racing this scan may be
            # in _queued but not yet in the directory listing we took.
            queued = {
                job_id for job_id in self._queued
                if self._jobs[job_id].status == STATUS_QUEUED
            }
            queued.update(
                job.id for job in self._jobs.values()
                if job.status == STATUS_QUEUED
            )
            self._queued = sorted(queued)
            if self._queued:
                self._not_empty.notify_all()

    # ------------------------------------------------------------------
    # Producer side (HTTP handlers)
    # ------------------------------------------------------------------

    def submit(self, kind: str, spec: dict) -> Job:
        """Enqueue one job; raises :class:`QueueFull` on backpressure."""
        self.refresh(min_interval=0.05)
        with self._lock:
            if len(self._queued) >= self.maxsize:
                self.counters["rejected"] += 1
                raise QueueFull(
                    f"queue full ({self.maxsize} jobs waiting); retry later"
                )
            self._seq += 1
            job = Job(
                id=f"job-{self._seq:06d}",
                kind=kind,
                spec=dict(spec),
                submitted_at=time.time(),
            )
            self._jobs[job.id] = job
            self._queued.append(job.id)
            self.counters["submitted"] += 1
            self.persist(job)
            self._not_empty.notify()
            return job

    # ------------------------------------------------------------------
    # Consumer side: in-process dispatcher
    # ------------------------------------------------------------------

    def take_batch(self, max_jobs: int, timeout: float | None = None) -> list[Job]:
        """Pop up to ``max_jobs`` queued jobs sharing one group key.

        Blocks up to ``timeout`` seconds for the first job (empty list on
        timeout).  The batch starts at the head of the FIFO and extends
        with later compatible jobs — incompatible ones keep their place.
        """
        with self._not_empty:
            if not self._queued:
                self._not_empty.wait(timeout)
            if not self._queued:
                return []
            head = self._jobs[self._queued[0]]
            key = head.group_key()
            batch: list[Job] = []
            remaining: list[str] = []
            for job_id in self._queued:
                job = self._jobs[job_id]
                if len(batch) < max_jobs and job.group_key() == key:
                    batch.append(job)
                else:
                    remaining.append(job_id)
            self._queued = remaining
            for job in batch:
                job.status = STATUS_RUNNING
                job.started_at = time.time()
                self.persist(job)
            return batch

    # ------------------------------------------------------------------
    # Consumer side: lease-based claims (worker processes)
    # ------------------------------------------------------------------

    def acquire_lease(self, job_id: str, worker_id: str) -> bool:
        """Atomically claim one job for ``worker_id``.

        ``O_CREAT | O_EXCL`` makes the filesystem the arbiter: exactly
        one concurrent claimant succeeds, including the double-claim
        race after a lease expiry.
        """
        path = self._lease_path(job_id)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as f:
            json.dump({"worker": worker_id, "acquired_at": time.time()}, f)
        self._held[job_id] = worker_id
        return True

    def owns_lease(self, job_id: str, worker_id: str) -> bool:
        """True while ``worker_id``'s claim on the job is still on disk.

        Workers check this before persisting results: a worker that
        stalled past ``lease_ttl`` may have been reaped, and must
        discard its work instead of double-completing the job.
        """
        try:
            with open(self._lease_path(job_id)) as f:
                return json.load(f).get("worker") == worker_id
        except (OSError, json.JSONDecodeError):
            return False

    def release(self, job_id: str) -> None:
        """Drop a lease held by this instance (no-op otherwise)."""
        if self._held.pop(job_id, None) is None:
            return
        try:
            os.remove(self._lease_path(job_id))
        except FileNotFoundError:
            pass

    def heartbeat(self, worker_id: str) -> int:
        """Refresh the mtime of every lease this instance holds.

        Returns the number of live leases; a lease that vanished (reaped
        by a peer) is dropped from the held set.
        """
        alive = 0
        for job_id in list(self._held):
            try:
                os.utime(self._lease_path(job_id))
                alive += 1
            except FileNotFoundError:
                self._held.pop(job_id, None)
        return alive

    def claim_batch(
        self,
        worker_id: str,
        max_jobs: int,
        timeout: float | None = None,
        poll: float = 0.05,
    ) -> list[Job]:
        """Lease-claim up to ``max_jobs`` queued jobs sharing a group key.

        The multi-process counterpart of :meth:`take_batch`: candidates
        come from the shared directory (via :meth:`refresh`), and each
        is claimed with :meth:`acquire_lease` so concurrent workers
        never double-take a job.  Expired peers' leases are reclaimed
        first, extending restart recovery to mid-flight crashes.
        """
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while True:
            self.refresh()
            self.reclaim_expired()
            with self._lock:
                candidates = list(self._queued)
            batch: list[Job] = []
            key: tuple | None = None
            claimed_away: list[str] = []
            for job_id in candidates:
                if len(batch) >= max_jobs:
                    break
                with self._lock:
                    job = self._jobs.get(job_id)
                if job is None or job.status != STATUS_QUEUED:
                    claimed_away.append(job_id)
                    continue
                if key is not None and job.group_key() != key:
                    continue  # incompatible: keeps its queue place
                if not self.acquire_lease(job_id, worker_id):
                    claimed_away.append(job_id)  # a peer won the race
                    continue
                # The lease arbitrates *claimants*, but our queued view
                # may be stale (a peer claimed, finished, and released
                # since our last refresh — its lease is gone but the job
                # is done).  Re-read the record under the lease: only a
                # disk-confirmed queued job may run, or a finished job
                # would be re-executed.
                fresh = self._load_job_file(job_id)
                if fresh is None or fresh.status != STATUS_QUEUED:
                    self.release(job_id)
                    claimed_away.append(job_id)
                    if fresh is not None:
                        with self._lock:
                            self._jobs[job_id] = fresh
                    continue
                if key is None:
                    key = fresh.group_key()
                fresh.status = STATUS_RUNNING
                fresh.started_at = time.time()
                fresh.metrics["worker"] = worker_id
                self.persist(fresh)
                with self._lock:
                    self._jobs[job_id] = fresh
                batch.append(fresh)
            with self._lock:
                gone = set(claimed_away) | {job.id for job in batch}
                self._queued = [
                    job_id for job_id in self._queued if job_id not in gone
                ]
            if batch or deadline is None or time.monotonic() >= deadline:
                return batch
            time.sleep(poll)

    def reclaim_expired(self) -> int:
        """Break stale leases and re-queue their non-terminal jobs.

        Breaking is atomic — the lease is renamed to a unique reap file,
        and only one renamer can win — so concurrent reclaimers plus a
        fresh claimant still yield exactly one next owner.
        """
        try:
            names = os.listdir(self.lease_dir)
        except FileNotFoundError:
            return 0
        now = time.time()
        reclaimed = 0
        for name in names:
            if not name.endswith(".lease"):
                continue
            job_id = name[: -len(".lease")]
            if job_id in self._held:
                continue  # never reap our own lease
            path = os.path.join(self.lease_dir, name)
            try:
                if now - os.stat(path).st_mtime < self.lease_ttl:
                    continue
            except FileNotFoundError:
                continue
            reap = f"{path}.reap.{os.getpid()}.{threading.get_ident()}"
            try:
                os.rename(path, reap)  # exactly one breaker wins
            except FileNotFoundError:
                continue
            try:
                os.remove(reap)
            except FileNotFoundError:
                pass
            job = self._load_job_file(job_id)
            if job is None:
                continue
            with self._lock:
                if job.status in TERMINAL:
                    # The owner died between persisting the result and
                    # releasing the lease: result stands, nothing to redo.
                    self._jobs[job.id] = job
                    continue
                job.status = STATUS_QUEUED
                job.started_at = None
                self.persist(job)
                self._jobs[job.id] = job
                if job.id not in self._queued:
                    self._queued.append(job.id)
                    self._queued.sort()
                self.counters["reclaimed"] += 1
                self._not_empty.notify()
            reclaimed += 1
        return reclaimed

    def finish(self, job: Job, *, error: str = "") -> None:
        """Record a job's terminal transition (done, or failed)."""
        with self._lock:
            job.finished_at = time.time()
            if error:
                job.status = STATUS_FAILED
                job.error = error
            else:
                job.status = STATUS_DONE
            self.persist(job)
        self.release(job.id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            job = self._jobs.get(job_id)
            known_terminal = job is not None and job.status in TERMINAL
        if not self.shared or known_terminal:
            return job
        # Another process may have advanced (or created) this job.
        try:
            mtime = os.stat(self._path(job_id)).st_mtime
        except OSError:
            return job
        with self._lock:
            if job is not None and self._mtimes.get(job_id) == mtime:
                return job
        fresh = self._load_job_file(job_id)
        if fresh is None:
            return job
        with self._lock:
            self._jobs[fresh.id] = fresh
            self._mtimes[fresh.id] = mtime
            if fresh.status != STATUS_QUEUED and fresh.id in self._queued:
                self._queued.remove(fresh.id)
            return fresh

    def jobs(self) -> list[Job]:
        """Every known job, submission order."""
        self.refresh(min_interval=0.05)
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.id)

    def depth(self) -> int:
        self.refresh(min_interval=0.05)
        with self._lock:
            return len(self._queued)

    def lease_stats(self) -> dict:
        """Active leases and the worker ids behind them (shared mode)."""
        try:
            names = os.listdir(self.lease_dir)
        except FileNotFoundError:
            names = []
        now = time.time()
        active = 0
        stale = 0
        workers: set[str] = set()
        for name in names:
            if not name.endswith(".lease"):
                continue
            path = os.path.join(self.lease_dir, name)
            try:
                mtime = os.stat(path).st_mtime
                with open(path) as f:
                    owner = json.load(f).get("worker", "?")
            except (OSError, json.JSONDecodeError):
                continue
            if now - mtime >= self.lease_ttl:
                stale += 1
                continue
            active += 1
            workers.add(str(owner))
        return {
            "active": active,
            "stale": stale,
            "workers": sorted(workers),
            "ttl_seconds": self.lease_ttl,
        }

    def stats(self) -> dict:
        self.refresh(min_interval=0.05)
        with self._lock:
            by_status = {status: 0 for status in STATUSES}
            for job in self._jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
            doc = {
                "depth": len(self._queued),
                "capacity": self.maxsize,
                "jobs": by_status,
                **self.counters,
            }
        if self.shared:
            doc["leases"] = self.lease_stats()
        return doc

    def metric_totals(self, keys: tuple[str, ...]) -> dict[str, int]:
        """Sum numeric per-job metrics across every known job.

        Jobs executed by worker processes count too: their metric
        documents land in the shared state directory and ``refresh``
        folds them into ``self._jobs`` — which is what lets the front
        end aggregate incremental-analysis totals it never ran itself.
        """
        self.refresh(min_interval=0.05)
        totals = {key: 0 for key in keys}
        with self._lock:
            for job in self._jobs.values():
                metrics = job.metrics or {}
                for key in keys:
                    value = metrics.get(key)
                    if isinstance(value, (int, float)):
                        totals[key] += int(value)
        return totals
