"""The evaluation runner: reproduce §5.1/§5.2 end-to-end.

One :func:`run_eval` call performs the paper's whole accuracy
experiment:

1. **Ground truth** — every validation app's input-vector suite runs
   under the emulator via :class:`GroundTruthBuilder`; with a cache
   directory the unions persist as ``gtruth`` artifacts, so re-runs
   perform zero emulation.
2. **App accuracy (Table 1)** — each requested tool analyzes each app
   (B-Side with a generous budget and the app's dlopen modules, like
   the paper's per-app runs) and is scored against the traced truth.
3. **Corpus completion (Table 2)** — each tool sweeps the Debian-like
   corpus at ``(scale, seed)`` through the fleet engine: B-Side runs as
   the engine's native analyzer (report artifacts cached, worker
   fan-out honoured); the baselines are injected analyzers, swept
   serially through the same engine so failure accounting and entry
   ordering are identical.

The product is an :class:`EvalReport`; ``bside eval`` renders it and
appends its :meth:`~EvalReport.to_record` to the accuracy trajectory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core import AnalysisBudget
from ..core.artifacts import ArtifactStore
from ..core.fleet import FleetAnalyzer
from ..corpus import APP_NAMES, build_app, make_debian_corpus
from ..metrics import score
from .groundtruth import GroundTruthBuilder
from .report import SLICES, AppEval, AppToolResult, CorpusToolResult, EvalReport
from .tools import ALL_TOOLS, TOOL_BSIDE, make_tool


@dataclass
class EvalConfig:
    """Knobs of one evaluation run (the ``bside eval`` flags)."""

    #: corpus scale factor (1.0 = the paper's 557-binary population)
    scale: float = 1.0
    #: corpus generation seed
    seed: int = 2024
    tools: tuple[str, ...] = ALL_TOOLS
    #: worker processes for the B-Side corpus sweep (fleet fan-out)
    workers: int = 1
    #: artifact-cache directory for ``gtruth`` + B-Side ``report``
    #: artifacts; ``None`` disables caching
    cache_dir: str | None = None
    #: skip the corpus sweep (apps-only runs: quick accuracy checks)
    include_corpus: bool = True
    #: B-Side's signature-compatibility refinement of indirect-call
    #: resolution (``bside eval --no-sig-filter`` clears it).  When set,
    #: each validation app is additionally scored with the refinement
    #: disabled so the precision-gained/recall-risked delta lands in the
    #: report's ``sig_filter`` aggregate.
    indirect_signatures: bool = True


def _evaluate_apps(
    config: EvalConfig, store: ArtifactStore | None, report: EvalReport,
) -> None:
    builder = GroundTruthBuilder(store=store)
    for name in APP_NAMES:
        bundle = build_app(name)
        truth = builder.ground_truth(
            bundle.program.image, bundle.suite, bundle.resolver,
            extra_images=bundle.module_images,
        )
        app_eval = AppEval(
            app=name,
            ground_truth=len(truth.syscalls),
            gtruth_cached=truth.from_cache,
        )
        for tool_name in config.tools:
            # Fresh per-app tool instances: the paper evaluates each app
            # independently, and per-tool library caches keyed by name
            # must not leak across apps that share a libc name.
            tool = make_tool(
                tool_name, bundle.resolver, budget=AnalysisBudget.generous(),
                indirect_signatures=config.indirect_signatures,
            )
            started = time.perf_counter()
            if tool_name == TOOL_BSIDE:
                outcome = tool.analyze(
                    bundle.program.image, modules=bundle.module_images,
                )
            else:
                outcome = tool.analyze(bundle.program.image)
            seconds = time.perf_counter() - started
            result = AppToolResult(
                tool=tool_name,
                success=outcome.success,
                failure_stage=outcome.failure_stage,
                policy_size=len(outcome.syscalls),
                score=(
                    score(outcome.syscalls, truth.syscalls)
                    if outcome.success else None
                ),
                seconds=seconds,
            )
            if tool_name == TOOL_BSIDE:
                result.sig_filter = config.indirect_signatures
                if config.indirect_signatures:
                    # Ablation run: the same app with the signature
                    # refinement disabled, so the report carries both
                    # configurations and the gate can require the
                    # refinement never trades recall for precision.
                    ablated = make_tool(
                        tool_name, bundle.resolver,
                        budget=AnalysisBudget.generous(),
                        indirect_signatures=False,
                    ).analyze(
                        bundle.program.image, modules=bundle.module_images,
                    )
                    if ablated.success:
                        result.unfiltered_policy_size = len(ablated.syscalls)
                        result.unfiltered_score = score(
                            ablated.syscalls, truth.syscalls,
                        )
            app_eval.results[tool_name] = result
        report.apps.append(app_eval)
    report.emulated_runs = builder.emulated_runs
    report.emulated_steps = builder.emulated_steps


def _evaluate_corpus(
    config: EvalConfig, store: ArtifactStore | None, report: EvalReport,
) -> None:
    corpus = make_debian_corpus(scale=config.scale, seed=config.seed)
    resolver = corpus.make_resolver()
    images = [binary.image for binary in corpus.binaries]
    report.corpus_size = len(images)
    slice_members = {
        "all": [True] * len(corpus.binaries),
        "static": [b.is_static for b in corpus.binaries],
        "dynamic": [not b.is_static for b in corpus.binaries],
    }
    for tool_name in config.tools:
        if tool_name == TOOL_BSIDE:
            # Native fleet run: report artifacts cached, fan-out honoured.
            fleet = FleetAnalyzer(
                resolver=resolver,
                budget=AnalysisBudget(),
                workers=config.workers,
                artifact_store=store,
                indirect_signatures=config.indirect_signatures,
            )
        else:
            fleet = FleetAnalyzer(
                resolver=resolver,
                analyzer=make_tool(tool_name, resolver),
            )
        started = time.perf_counter()
        fleet_report = fleet.analyze_images(images)
        seconds = time.perf_counter() - started
        sweep = CorpusToolResult(tool=tool_name, seconds=seconds)
        for slice_name in SLICES:
            members = slice_members[slice_name]
            sub = [
                entry for entry, member
                in zip(fleet_report.entries, members) if member
            ]
            ok = [e for e in sub if e.report.success]
            avg = (
                sum(len(e.report.syscalls) for e in ok) / len(ok)
                if ok else 0.0
            )
            sweep.slices[slice_name] = (
                len(ok), len(sub) - len(ok), avg, len(sub),
            )
        sweep.failure_stages = fleet_report.failure_stages()
        report.corpus[tool_name] = sweep


def run_eval(config: EvalConfig | None = None) -> EvalReport:
    """Run the full evaluation and return its :class:`EvalReport`."""
    config = config if config is not None else EvalConfig()
    store = (
        ArtifactStore(config.cache_dir)
        if config.cache_dir is not None else None
    )
    report = EvalReport(
        scale=config.scale, seed=config.seed, tools=tuple(config.tools),
    )
    started = time.perf_counter()
    _evaluate_apps(config, store, report)
    if config.include_corpus:
        _evaluate_corpus(config, store, report)
    report.seconds = time.perf_counter() - started
    return report
