"""The accuracy gate: B-Side's headline claim, enforced in CI.

The paper's core result is an *accuracy* claim — perfect recall (no
false negatives on anything the tool completes) with a tighter policy
than the baselines.  :func:`gate_accuracy` turns that claim into a CI
invariant over the ``BENCH_eval_accuracy.json`` trajectory:

* **validity** — B-Side's minimum per-app recall must be 1.0: a single
  false negative on a completed validation app breaks applications
  under the derived filter and fails the gate outright;
* **recall floor** — B-Side's aggregate recall may not drop below the
  latest recorded trajectory entry's (no silent accuracy regressions);
* **ordering** — no baseline's aggregate F1 may beat B-Side's: if a
  30-line register scan scores better, the identification pipeline has
  regressed in a way raw recall cannot see;
* **refinement** — when the record carries the signature-filter
  ablation (both configurations scored per app), the filtered
  configuration's precision must be at least the unfiltered one's and
  its aggregate recall must be exactly 1.0: the refinement may only
  ever *remove* false positives, never trade recall for precision.

``tools/accuracy_gate.py`` drives this from ``make eval-gate`` and
additionally *requires* the ablation section to be present.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..perf.trajectory import Trajectory
from .tools import TOOL_BSIDE

#: the CI gate's fixed workload: small enough for CI, big enough that
#: the scaled corpus keeps every population class.  Shared by
#: ``tools/accuracy_gate.py`` and the README results drift check.
GATE_SCALE = 0.2
GATE_SEED = 42


def latest_comparable(
    trajectory: Trajectory, scale: float, seed: int,
) -> dict | None:
    """The latest *full-shape* trajectory entry at this exact workload.

    Accuracy numbers are only comparable between runs of the *same*
    corpus: the trajectory may also hold entries at other scales/seeds
    (full-scale runs), and gating the CI workload against one of those
    would compare different populations.  Shape-incomplete records are
    skipped too — an ``--apps-only`` run (no corpus) or a ``--tools``
    subset without B-Side is legitimate history, but it can neither
    anchor the recall floor nor render the README results table.
    """
    for entry in reversed(trajectory.entries):
        if (
            entry.get("scale") == scale
            and entry.get("seed") == seed
            and entry.get("corpus_binaries")
            and TOOL_BSIDE in entry.get("tools", {})
        ):
            return entry
    return None


@dataclass
class AccuracyGateResult:
    """Outcome of gating one evaluation record against the trajectory."""

    ok: bool
    problems: list[str] = field(default_factory=list)
    #: current B-Side aggregate recall / F1
    recall: float = 0.0
    f1: float = 0.0
    #: the trajectory entry compared against (None when seeding)
    baseline_label: str | None = None


def gate_accuracy(
    record: dict,
    trajectory: Trajectory,
    *,
    recall_slack: float = 0.0,
    f1_margin: float = 0.0,
    require_baseline: bool = True,
    require_sig_ablation: bool = False,
) -> AccuracyGateResult:
    """Apply the accuracy gates to a fresh evaluation record.

    ``recall_slack`` loosens the trajectory floor (0.0 = B-Side recall
    may never drop at all); ``f1_margin`` lets a baseline come within
    that margin of B-Side's F1 without failing.  The floor compares
    against the latest trajectory entry recorded at the *same*
    ``(scale, seed)`` workload (:func:`latest_comparable`) — entries
    from other workloads are not comparable and are skipped.  With
    ``require_baseline=False`` a trajectory with no comparable entry
    applies only the structural gates (used when seeding the first
    entry).  ``require_sig_ablation`` makes a record *without* the
    signature-filter ablation section fail outright (CI runs both
    configurations; a record missing one cannot certify the
    refinement gate).
    """
    result = AccuracyGateResult(ok=True)
    tools = record.get("tools", {})
    bside = tools.get(TOOL_BSIDE)
    if bside is None:
        result.ok = False
        result.problems.append(
            f"record has no '{TOOL_BSIDE}' aggregate: the evaluation must "
            f"include the tool the gate protects (bside eval --tools)"
        )
        return result
    result.recall = bside["recall"]
    result.f1 = bside["f1"]

    # Gate 1: validity — zero false negatives on every completed app.
    if bside["min_recall"] < 1.0:
        result.ok = False
        result.problems.append(
            f"validity violation: B-Side min per-app recall is "
            f"{bside['min_recall']:.4f} (< 1.0) — some completed validation "
            f"app has false negatives "
            f"({bside['valid_apps']}/{bside['completed_apps']} apps valid)"
        )

    # Gate 2: ordering — no baseline may beat B-Side's aggregate F1.
    for tool, agg in tools.items():
        if tool == TOOL_BSIDE:
            continue
        if agg["f1"] > bside["f1"] + f1_margin:
            result.ok = False
            result.problems.append(
                f"ordering violation: baseline '{tool}' F1 {agg['f1']:.4f} "
                f"beats B-Side's {bside['f1']:.4f} "
                f"(margin {f1_margin:.4f})"
            )

    # Gate 4: refinement — the signature filter must be precision-
    # positive at zero recall risk (both configs scored per app).
    sig = bside.get("sig_filter")
    if sig is None:
        if require_sig_ablation:
            result.ok = False
            result.problems.append(
                "record has no 'sig_filter' ablation aggregate: the "
                "evaluation must score both indirect-signature "
                "configurations (run bside eval without --no-sig-filter)"
            )
    else:
        if bside["precision"] < sig["precision_unfiltered"]:
            result.ok = False
            result.problems.append(
                f"refinement regression: sig-filter precision "
                f"{bside['precision']:.4f} is below the unfiltered "
                f"configuration's {sig['precision_unfiltered']:.4f} — "
                f"the signature filter must never lose precision"
            )
        if bside["recall"] != 1.0:
            result.ok = False
            result.problems.append(
                f"refinement recall violation: sig-filter aggregate "
                f"recall {bside['recall']:.4f} != 1.0 — the signature "
                f"filter may only remove false positives"
            )

    # Gate 3: recall floor vs the recorded trajectory (same workload).
    baseline = latest_comparable(
        trajectory, record.get("scale"), record.get("seed"),
    )
    if baseline is None:
        if require_baseline:
            result.ok = False
            result.problems.append(
                f"no comparable baseline entry (scale "
                f"{record.get('scale')}, seed {record.get('seed')}) in the "
                f"accuracy trajectory: record one first "
                f"(tools/accuracy_gate.py --record <label>)"
            )
        return result
    result.baseline_label = baseline.get("label")
    base_bside = baseline.get("tools", {}).get(TOOL_BSIDE)
    if base_bside is None:
        result.ok = False
        result.problems.append(
            f"trajectory entry '{result.baseline_label}' has no "
            f"'{TOOL_BSIDE}' aggregate to gate against"
        )
        return result
    floor = base_bside["recall"] - recall_slack
    if bside["recall"] < floor:
        result.ok = False
        result.problems.append(
            f"recall regression: B-Side aggregate recall "
            f"{bside['recall']:.4f} dropped below the recorded baseline "
            f"'{result.baseline_label}' ({base_bside['recall']:.4f}, "
            f"slack {recall_slack:.4f})"
        )
    return result


def format_gate_diff(record: dict, trajectory: Trajectory) -> str:
    """A readable current-vs-recorded diff for gate failures and logs."""
    baseline = latest_comparable(
        trajectory, record.get("scale"), record.get("seed"),
    ) or {}
    base_tools = baseline.get("tools", {})
    lines = [
        "{:<11}{:>18}{:>18}{:>18}".format(
            "tool", "precision", "recall", "f1",
        )
    ]

    def cell(current: float | None, recorded: float | None) -> str:
        now = "-" if current is None else f"{current:.3f}"
        then = "-" if recorded is None else f"{recorded:.3f}"
        return "{:>18}".format(f"{now} (was {then})")

    for tool, agg in record.get("tools", {}).items():
        base = base_tools.get(tool, {})
        lines.append(
            "{:<11}".format(tool)
            + cell(agg.get("precision"), base.get("precision"))
            + cell(agg.get("recall"), base.get("recall"))
            + cell(agg.get("f1"), base.get("f1"))
        )
    label = baseline.get("label", "<none>")
    lines.append(f"(recorded baseline: '{label}', "
                 f"scale {baseline.get('scale', '?')}, "
                 f"seed {baseline.get('seed', '?')})")
    return "\n".join(lines)
