"""Ground-truth construction (§5.1): trace the test suite, cache the union.

The paper's validation experiment defines ground truth as the union of
system calls a program makes while its whole test suite — a list of
input vectors — runs under instrumentation.  This module owns that
step for the evaluation subsystem:

* :func:`GroundTruthBuilder.ground_truth` runs every input vector of a
  suite under the emulator (:func:`repro.emu.trace_test_suite`) and
  returns the observed union;
* with an :class:`~repro.core.artifacts.ArtifactStore` bound, the union
  is persisted as a ``gtruth`` artifact keyed by the binary's content
  hash, a fingerprint of the *input-vector suite* (plus emulator
  parameters), and the dependency-closure hashes — so a re-run of the
  evaluation performs **zero emulation** until the binary, its
  libraries, or the suite itself changes.

Emulator work is counted (:attr:`GroundTruthBuilder.emulated_runs`,
:attr:`~GroundTruthBuilder.emulated_steps`) so callers — and the test
suite — can assert the cache actually short-circuited execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.artifacts import ArtifactStore, fingerprint_doc
from ..emu import trace_test_suite
from ..errors import LoaderError
from ..loader.image import LoadedImage
from ..loader.resolve import LibraryResolver

#: Bump when emulator behaviour changes in a way that invalidates
#: previously-recorded ground truth (folded into the suite fingerprint).
GTRUTH_SCHEMA = 1

#: default per-run step ceiling (matches :func:`repro.emu.run_traced`)
DEFAULT_MAX_STEPS = 2_000_000


@dataclass(slots=True)
class GroundTruth:
    """One binary's traced ground truth."""

    #: union of syscall numbers observed across the whole suite
    syscalls: set[int]
    #: input vectors actually executed for this result (0 on a cache hit)
    runs: int
    #: emulator steps actually executed for this result (0 on a cache hit)
    steps: int
    #: True when the result was served from the ``gtruth`` artifact cache
    from_cache: bool


class GroundTruthBuilder:
    """Build (and cache) emulated ground truth for evaluation subjects."""

    def __init__(
        self,
        store: ArtifactStore | None = None,
        *,
        max_steps: int = DEFAULT_MAX_STEPS,
    ) -> None:
        self.store = store
        self.max_steps = max_steps
        #: cumulative emulator work this builder actually performed
        self.emulated_runs = 0
        self.emulated_steps = 0

    def suite_fingerprint(self, suite: list[tuple[int, ...]]) -> str:
        """Digest of the input-vector set + emulator parameters.

        Part of every ``gtruth`` artifact key: adding a vector to an
        app's test suite (or changing the step budget / emulator schema)
        invalidates exactly that app's recorded ground truth.
        """
        return fingerprint_doc({
            "schema": GTRUTH_SCHEMA,
            "max_steps": self.max_steps,
            "suite": [list(vector) for vector in suite],
        })

    @staticmethod
    def _dep_hashes(
        image: LoadedImage,
        resolver: LibraryResolver | None,
        extra_images: list[LoadedImage],
    ) -> list[str] | None:
        """Content hashes of everything else mapped into the run.

        ``None`` when the closure cannot be resolved: such a trace
        depends on the local resolver environment and is not cacheable
        (mirrors :meth:`BSideAnalyzer.dependency_hashes`).
        """
        hashes: set[str] = set()
        try:
            if image.needed:
                if resolver is None:
                    return None
                for dep in resolver.topological_order(image):
                    hashes.add(dep.content_hash)
            for module in extra_images:
                hashes.add(module.content_hash)
                if module.needed and resolver is not None:
                    for dep in resolver.topological_order(module):
                        hashes.add(dep.content_hash)
        except LoaderError:
            return None
        return sorted(hashes)

    def ground_truth(
        self,
        image: LoadedImage,
        suite: list[tuple[int, ...]],
        resolver: LibraryResolver | None = None,
        *,
        extra_images: list[LoadedImage] | None = None,
    ) -> GroundTruth:
        """The union of syscalls observed across ``suite`` (cached)."""
        extras = list(extra_images or [])
        fingerprint = self.suite_fingerprint(suite)
        deps = self._dep_hashes(image, resolver, extras)
        cacheable = self.store is not None and deps is not None
        if cacheable:
            payload = self.store.get(
                "gtruth", image.name,
                content_hash=image.content_hash,
                fingerprint=fingerprint,
                dep_hashes=deps,
            )
            if payload is not None:
                return GroundTruth(
                    syscalls=set(payload["syscalls"]),
                    runs=0, steps=0, from_cache=True,
                )
        union, runs = trace_test_suite(
            image, list(suite), resolver,
            extra_images=extras, max_steps=self.max_steps,
        )
        steps = sum(run.steps for run in runs)
        self.emulated_runs += len(runs)
        self.emulated_steps += steps
        if cacheable:
            self.store.put(
                "gtruth", image.name,
                {
                    "syscalls": sorted(union),
                    "runs": len(runs),
                    "steps": steps,
                },
                content_hash=image.content_hash,
                fingerprint=fingerprint,
                dep_hashes=deps,
            )
        return GroundTruth(
            syscalls=union, runs=len(runs), steps=steps, from_cache=False,
        )
