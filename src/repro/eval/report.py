"""The :class:`EvalReport`: one evaluation run, three renderings.

Holds the paper's §5.1/§5.2 reproduction in structured form —

* **per-app accuracy** (Table 1): each tool's precision/recall/F1
  against the traced ground truth of every validation app, plus policy
  size and failure mode;
* **corpus completion** (Table 2): each tool's success/failure counts
  and average identified-set size over the Debian-like corpus, sliced
  all/static/dynamic, with the per-stage failure taxonomy;

and renders them as text (terminal), JSON (machines), and Markdown
(docs).  The deterministic portion — everything except wall times and
cache provenance — is byte-stable for a fixed ``(scale, seed)``:
:meth:`EvalReport.to_json` with ``include_runtime=False`` is pinned in
the test suite, and :meth:`EvalReport.to_record` produces the
append-only ``BENCH_eval_accuracy.json`` trajectory entries that
``tools/accuracy_gate.py`` gates and ``tools/check_docs.py`` renders
back into the README results table (:func:`render_results_markdown`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..metrics import Score, mean
from .tools import TOOL_BSIDE

#: corpus population slices, in rendering order
SLICES = ("all", "static", "dynamic")


@dataclass(slots=True)
class AppToolResult:
    """One tool's outcome on one validation app."""

    tool: str
    success: bool
    failure_stage: str | None = None
    #: size of the identified set (the derived policy's allow-list)
    policy_size: int = 0
    #: accuracy vs the app's traced ground truth; None when the tool failed
    score: Score | None = None
    #: B-Side only: whether the signature-compatibility refinement of
    #: indirect-call resolution was enabled for the main run (None for
    #: tools without the concept)
    sig_filter: bool | None = None
    #: B-Side only, refinement enabled: the same app re-analyzed with
    #: the refinement *disabled* (the ablation configuration)
    unfiltered_policy_size: int = 0
    unfiltered_score: Score | None = None
    #: wall seconds for this tool on this app (runtime field)
    seconds: float = 0.0

    def to_doc(self, include_runtime: bool = True) -> dict:
        doc: dict = {
            "tool": self.tool,
            "success": self.success,
            "failure_stage": self.failure_stage,
            "policy_size": self.policy_size,
        }
        doc["score"] = _score_doc(self.score)
        if self.sig_filter is not None:
            doc["sig_filter"] = self.sig_filter
        if self.unfiltered_score is not None:
            doc["unfiltered"] = {
                "policy_size": self.unfiltered_policy_size,
                "score": _score_doc(self.unfiltered_score),
            }
        if include_runtime:
            doc["seconds"] = round(self.seconds, 6)
        return doc


def _score_doc(score: Score | None) -> dict | None:
    if score is None:
        return None
    return {
        "true_positives": score.true_positives,
        "false_positives": score.false_positives,
        "false_negatives": score.false_negatives,
        "precision": round(score.precision, 4),
        "recall": round(score.recall, 4),
        "f1": round(score.f1, 4),
    }


@dataclass(slots=True)
class AppEval:
    """One validation app: its ground truth and every tool's result."""

    app: str
    #: size of the traced ground-truth syscall set
    ground_truth: int
    #: True when the ground truth came from the ``gtruth`` artifact cache
    gtruth_cached: bool = False
    results: dict[str, AppToolResult] = field(default_factory=dict)

    def to_doc(self, include_runtime: bool = True) -> dict:
        doc: dict = {
            "app": self.app,
            "ground_truth": self.ground_truth,
            "tools": {
                tool: result.to_doc(include_runtime=include_runtime)
                for tool, result in self.results.items()
            },
        }
        if include_runtime:
            doc["gtruth_cached"] = self.gtruth_cached
        return doc


@dataclass(slots=True)
class CorpusToolResult:
    """One tool's sweep over the whole corpus."""

    tool: str
    #: slice -> (successes, failures, avg identified-set size, total)
    slices: dict[str, tuple[int, int, float, int]] = field(default_factory=dict)
    #: failure stage -> count (the tool's failure-mode taxonomy)
    failure_stages: dict[str, int] = field(default_factory=dict)
    #: wall seconds for the whole sweep (runtime field)
    seconds: float = 0.0

    def to_doc(self, include_runtime: bool = True) -> dict:
        doc: dict = {
            "tool": self.tool,
            "slices": {
                name: {
                    "success": ok,
                    "failures": fail,
                    "avg_syscalls": round(avg, 4),
                    "total": total,
                }
                for name, (ok, fail, avg, total) in self.slices.items()
            },
            "failure_stages": dict(sorted(self.failure_stages.items())),
        }
        if include_runtime:
            doc["seconds"] = round(self.seconds, 6)
        return doc


@dataclass
class EvalReport:
    """A full evaluation run (apps + optional corpus sweep)."""

    scale: float
    seed: int
    tools: tuple[str, ...]
    apps: list[AppEval] = field(default_factory=list)
    #: per-tool corpus sweeps; empty when the corpus stage was skipped
    corpus: dict[str, CorpusToolResult] = field(default_factory=dict)
    corpus_size: int = 0
    #: emulator work performed building ground truth (runtime fields:
    #: both are 0 on a fully gtruth-warm run)
    emulated_runs: int = 0
    emulated_steps: int = 0
    #: total wall seconds for the run (runtime field)
    seconds: float = 0.0

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def aggregates(self) -> dict[str, dict]:
        """Per-tool aggregate metrics over the validation apps (+ corpus).

        For each tool: mean precision/recall/F1 over the apps it
        completed, the minimum per-app recall (the paper's validity
        criterion demands 1.0), the count of zero-false-negative apps,
        and — when the corpus stage ran — completion counts and the
        dynamic-slice average policy size.
        """
        out: dict[str, dict] = {}
        for tool in self.tools:
            scored = [
                app.results[tool].score
                for app in self.apps
                if tool in app.results and app.results[tool].score is not None
            ]
            completed = len(scored)
            agg: dict = {
                "apps": len(self.apps),
                "completed_apps": completed,
                "valid_apps": sum(1 for s in scored if s.is_valid),
                "precision": round(mean([s.precision for s in scored]), 4),
                "recall": round(mean([s.recall for s in scored]), 4),
                "f1": round(mean([s.f1 for s in scored]), 4),
                "min_recall": round(
                    min((s.recall for s in scored), default=0.0), 4,
                ),
                "avg_policy": round(mean([
                    app.results[tool].policy_size
                    for app in self.apps
                    if tool in app.results and app.results[tool].success
                ]), 4),
            }
            unfiltered = [
                app.results[tool].unfiltered_score
                for app in self.apps
                if tool in app.results
                and app.results[tool].unfiltered_score is not None
            ]
            if unfiltered:
                # Both configurations of the signature refinement were
                # scored: record the ablation aggregate so the accuracy
                # gate can require precision-gained at zero recall risk.
                agg["sig_filter"] = {
                    "precision_unfiltered": round(
                        mean([s.precision for s in unfiltered]), 4,
                    ),
                    "recall_unfiltered": round(
                        mean([s.recall for s in unfiltered]), 4,
                    ),
                    "f1_unfiltered": round(
                        mean([s.f1 for s in unfiltered]), 4,
                    ),
                    "min_recall_unfiltered": round(
                        min((s.recall for s in unfiltered), default=0.0), 4,
                    ),
                    "avg_policy_unfiltered": round(mean([
                        app.results[tool].unfiltered_policy_size
                        for app in self.apps
                        if tool in app.results
                        and app.results[tool].unfiltered_score is not None
                    ]), 4),
                    "precision_gained": round(
                        agg["precision"]
                        - mean([s.precision for s in unfiltered]), 4,
                    ),
                }
            sweep = self.corpus.get(tool)
            if sweep is not None:
                ok, __, avg, total = sweep.slices["all"]
                agg["corpus_success"] = ok
                agg["corpus_total"] = total
                agg["corpus_avg_syscalls"] = round(avg, 4)
            out[tool] = agg
        return out

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_doc(self, include_runtime: bool = True) -> dict:
        doc: dict = {
            "scale": self.scale,
            "seed": self.seed,
            "tools": list(self.tools),
            "aggregates": self.aggregates(),
            "apps": [
                app.to_doc(include_runtime=include_runtime)
                for app in self.apps
            ],
            "corpus": {
                tool: sweep.to_doc(include_runtime=include_runtime)
                for tool, sweep in self.corpus.items()
            },
            "corpus_size": self.corpus_size,
        }
        if include_runtime:
            doc["emulated_runs"] = self.emulated_runs
            doc["emulated_steps"] = self.emulated_steps
            doc["seconds"] = round(self.seconds, 6)
        return doc

    def to_json(self, include_runtime: bool = True) -> str:
        """Serialise; ``include_runtime=False`` is byte-stable per
        ``(scale, seed, tools)`` — wall times, cache provenance, and
        emulator-work counters are dropped."""
        return json.dumps(self.to_doc(include_runtime=include_runtime),
                          indent=2)

    def to_record(self) -> dict:
        """One ``BENCH_eval_accuracy.json`` trajectory entry.

        Deterministic for a fixed ``(scale, seed, tools)``: only
        aggregate accuracy and completion — no wall times — so the
        committed trajectory diffs meaningfully across PRs and
        ``tools/check_docs.py`` can render the README results table
        from the latest entry byte-for-byte.
        """
        return {
            "scale": self.scale,
            "seed": self.seed,
            "apps": len(self.apps),
            "corpus_binaries": self.corpus_size,
            "tools": self.aggregates(),
        }

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def results_table(self) -> str:
        """The compact aggregate table embedded in the README."""
        return render_results_markdown(self.to_record())

    def to_markdown(self) -> str:
        """Full Markdown report: aggregate + Table 1 + Table 2 layouts."""
        lines = [
            f"### Evaluation (corpus scale {self.scale:g}, "
            f"seed {self.seed})",
            "",
            self.results_table(),
            "",
        ]
        sig = self.aggregates().get(TOOL_BSIDE, {}).get("sig_filter")
        if sig is not None:
            lines += [
                "_Signature refinement ablation: precision "
                f"{self.aggregates()[TOOL_BSIDE]['precision']:.3f} filtered "
                f"vs {sig['precision_unfiltered']:.3f} unfiltered "
                f"({sig['precision_gained']:+.3f}); min per-app recall "
                f"{sig['min_recall_unfiltered']:.3f} unfiltered._",
                "",
            ]
        lines += [
            "#### Per-app F1 vs traced ground truth (paper Table 1)",
            "",
        ]
        header = "| app | ground truth |" + "".join(
            f" {tool} |" for tool in self.tools
        )
        rule = "|:----|-------------:|" + "---:|" * len(self.tools)
        lines += [header, rule]
        for app in self.apps:
            cells = []
            for tool in self.tools:
                result = app.results.get(tool)
                if result is None or result.score is None:
                    stage = result.failure_stage if result else "?"
                    cells.append(f" fail ({stage}) |")
                else:
                    text = f"{result.score.f1:.3f}"
                    if tool == TOOL_BSIDE:
                        text = f"**{text}**"
                    cells.append(f" {text} |")
            lines.append(
                f"| {app.app} | {app.ground_truth} |" + "".join(cells)
            )
        if self.corpus:
            lines += [
                "",
                f"#### Corpus completion over {self.corpus_size} "
                "Debian-like binaries (paper Table 2)",
                "",
                "| tool | all | static | dynamic | avg policy (dynamic) |",
                "|:-----|----:|-------:|--------:|---------------------:|",
            ]
            for tool in self.tools:
                sweep = self.corpus.get(tool)
                if sweep is None:
                    continue
                cells = []
                for name in SLICES:
                    ok, __, __, total = sweep.slices[name]
                    pct = 100.0 * ok / total if total else 0.0
                    cells.append(f"{ok}/{total} ({pct:.1f}%)")
                __, __, dyn_avg, __ = sweep.slices["dynamic"]
                label = f"**{tool}**" if tool == TOOL_BSIDE else tool
                lines.append(
                    f"| {label} | {cells[0]} | {cells[1]} | {cells[2]} | "
                    f"{dyn_avg:.1f} |"
                )
        return "\n".join(lines)

    def to_text(self) -> str:
        """Terminal rendering: the Table 1 / Table 2 layouts as text."""
        lines = [
            f"eval: {len(self.apps)} validation apps, "
            f"corpus scale {self.scale:g} (seed {self.seed}, "
            f"{self.corpus_size} binaries), "
            f"tools: {', '.join(self.tools)}",
            "",
            "-- accuracy vs traced ground truth (Table 1) --",
            f"{'app':<11}{'gtruth':>7}" + "".join(
                f"{tool:>22}" for tool in self.tools
            ),
        ]
        for app in self.apps:
            cells = []
            for tool in self.tools:
                result = app.results.get(tool)
                if result is None or result.score is None:
                    stage = result.failure_stage if result else "?"
                    cells.append(f"{'fail: ' + str(stage):>22}")
                else:
                    s = result.score
                    cells.append(
                        f"{f'P{s.precision:.2f} R{s.recall:.2f} F{s.f1:.2f}':>22}"
                    )
            lines.append(f"{app.app:<11}{app.ground_truth:>7}" + "".join(cells))
        lines.append("")
        lines.append(f"{'tool':<11}{'apps':>7}{'prec':>7}{'recall':>8}"
                     f"{'f1':>7}{'0-FN':>6}{'policy':>8}")
        aggregates = self.aggregates()
        for tool in self.tools:
            agg = aggregates[tool]
            completed = "{}/{}".format(agg["completed_apps"], agg["apps"])
            valid = "{}/{}".format(agg["valid_apps"], agg["completed_apps"])
            lines.append(
                "{:<11}{:>7}{:>7.3f}{:>8.3f}{:>7.3f}{:>6}{:>8.1f}".format(
                    tool, completed, agg["precision"], agg["recall"],
                    agg["f1"], valid, agg["avg_policy"],
                )
            )
        bside_agg = aggregates.get(TOOL_BSIDE, {})
        sig = bside_agg.get("sig_filter")
        if sig is not None:
            lines.append(
                "  sig-filter ablation: precision "
                "{:.3f} vs {:.3f} unfiltered ({:+.3f}); recall "
                "{:.3f} vs {:.3f} unfiltered".format(
                    bside_agg["precision"], sig["precision_unfiltered"],
                    sig["precision_gained"], bside_agg["recall"],
                    sig["recall_unfiltered"],
                )
            )
        if self.corpus:
            lines += [
                "",
                "-- corpus completion (Table 2) --",
                f"{'tool':<11}{'all':>16}{'static':>16}{'dynamic':>16}"
                f"{'avg-dyn':>9}",
            ]
            for tool in self.tools:
                sweep = self.corpus.get(tool)
                if sweep is None:
                    continue
                cells = []
                for name in SLICES:
                    ok, __, __, total = sweep.slices[name]
                    pct = 100.0 * ok / total if total else 0.0
                    cells.append("{:>16}".format(
                        "{}/{} ({:.0f}%)".format(ok, total, pct)
                    ))
                __, __, dyn_avg, __ = sweep.slices["dynamic"]
                lines.append(f"{tool:<11}" + "".join(cells) + f"{dyn_avg:>9.1f}")
            for tool in self.tools:
                sweep = self.corpus.get(tool)
                if sweep is None or not sweep.failure_stages:
                    continue
                stages = ", ".join(
                    f"{stage}: {count}"
                    for stage, count in sorted(sweep.failure_stages.items())
                )
                lines.append(f"  {tool} failure modes: {stages}")
        return "\n".join(lines)


def render_results_markdown(record: dict) -> str:
    """Render a trajectory entry as the README "Results" table.

    A pure function of the record, so the committed
    ``BENCH_eval_accuracy.json`` entry and the table in the README can
    be byte-compared by ``tools/check_docs.py`` — the same drift guard
    the quickstart sync applies to the user guide.
    """
    tools = record["tools"]
    lines = [
        "| tool | apps | precision | recall | F1 | zero-FN apps "
        "| ΔP (sig filter) | corpus completion | avg policy |",
        "|:-----|-----:|----------:|-------:|---:|-------------:"
        "|----------------:|------------------:|-----------:|",
    ]
    for tool, agg in tools.items():
        label = f"**{tool}**" if tool == TOOL_BSIDE else tool
        if "corpus_total" in agg and agg["corpus_total"]:
            pct = 100.0 * agg["corpus_success"] / agg["corpus_total"]
            corpus = (
                f"{agg['corpus_success']}/{agg['corpus_total']} ({pct:.1f}%)"
            )
        else:
            corpus = "—"
        sig = agg.get("sig_filter")
        delta = f"{sig['precision_gained']:+.3f}" if sig else "—"
        lines.append(
            f"| {label} "
            f"| {agg['completed_apps']}/{agg['apps']} "
            f"| {agg['precision']:.3f} "
            f"| {agg['recall']:.3f} "
            f"| {agg['f1']:.3f} "
            f"| {agg['valid_apps']}/{agg['completed_apps']} "
            f"| {delta} "
            f"| {corpus} "
            f"| {agg['avg_policy']:.1f} |"
        )
    return "\n".join(lines)
