"""The evaluation subsystem: reproduce the paper's §5 accuracy tables.

End-to-end reproduction of B-Side's evaluation as a first-class,
cacheable, CI-gated subsystem (``bside eval``):

* :mod:`repro.eval.groundtruth` — emulated ground truth per validation
  app, cached as ``gtruth`` artifacts in the content-addressed store;
* :mod:`repro.eval.tools` — the tool registry (B-Side + the Chestnut /
  SysFilter / naive baseline configurations);
* :mod:`repro.eval.runner` — the experiment driver: app accuracy
  (Table 1) + corpus completion (Table 2) through the fleet engine;
* :mod:`repro.eval.report` — :class:`EvalReport` with text / JSON /
  Markdown renderings and the trajectory-record projection;
* :mod:`repro.eval.gate` — the accuracy gates enforced by
  ``tools/accuracy_gate.py`` over ``BENCH_eval_accuracy.json``.

See ``docs/evaluation.md`` for the methodology and workflow.
"""

from .gate import (
    GATE_SCALE,
    GATE_SEED,
    AccuracyGateResult,
    format_gate_diff,
    gate_accuracy,
    latest_comparable,
)
from .groundtruth import GroundTruth, GroundTruthBuilder
from .report import (
    AppEval,
    AppToolResult,
    CorpusToolResult,
    EvalReport,
    render_results_markdown,
)
from .runner import EvalConfig, run_eval
from .tools import ALL_TOOLS, TOOL_BSIDE, make_tool, parse_tools

__all__ = [
    "ALL_TOOLS",
    "AccuracyGateResult",
    "AppEval",
    "AppToolResult",
    "CorpusToolResult",
    "EvalConfig",
    "EvalReport",
    "GATE_SCALE",
    "GATE_SEED",
    "GroundTruth",
    "GroundTruthBuilder",
    "TOOL_BSIDE",
    "format_gate_diff",
    "gate_accuracy",
    "latest_comparable",
    "make_tool",
    "parse_tools",
    "render_results_markdown",
    "run_eval",
]
