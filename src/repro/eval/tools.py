"""The tool registry: B-Side + the three baseline configurations.

One place maps the evaluation's tool names onto analyzer factories so
the runner, the CLI (``bside eval --tools``), and the accuracy gate all
agree on what "the four tools" are.  Every tool exposes the same
surface: ``analyze(image) -> AnalysisReport`` (B-Side additionally
accepts dlopen-style ``modules``, which the runner forwards).
"""

from __future__ import annotations

from ..baselines import ChestnutAnalyzer, NaiveAnalyzer, SysFilterAnalyzer
from ..core import AnalysisBudget, BSideAnalyzer
from ..loader.resolve import LibraryResolver

TOOL_BSIDE = "b-side"

#: evaluation order — B-Side first, then the baselines (Table 1 layout)
ALL_TOOLS: tuple[str, ...] = (TOOL_BSIDE, "chestnut", "sysfilter", "naive")


def make_tool(
    name: str,
    resolver: LibraryResolver,
    *,
    budget: AnalysisBudget | None = None,
    indirect_signatures: bool = True,
):
    """Instantiate one evaluation tool over ``resolver``.

    ``budget`` only applies to B-Side (the baselines are unbudgeted by
    design, matching §3's characterisation); the validation-app pass
    uses a generous budget like the paper's per-app runs, while the
    corpus sweep uses the default budget so the hard binaries reproduce
    Table 2's timeout population.  ``indirect_signatures`` likewise
    only applies to B-Side: it toggles the signature-compatibility
    refinement of indirect-call resolution, which the runner ablates to
    score both configurations per app.
    """
    if name == TOOL_BSIDE:
        return BSideAnalyzer(
            resolver=resolver, budget=budget,
            indirect_signatures=indirect_signatures,
        )
    if name == "chestnut":
        return ChestnutAnalyzer(resolver)
    if name == "sysfilter":
        return SysFilterAnalyzer(resolver)
    if name == "naive":
        return NaiveAnalyzer(resolver)
    raise ValueError(
        f"unknown evaluation tool {name!r} (known: {', '.join(ALL_TOOLS)})"
    )


def parse_tools(spec: str | None) -> tuple[str, ...]:
    """Parse a ``--tools`` comma list; ``None``/empty means all four."""
    if not spec:
        return ALL_TOOLS
    requested = tuple(part.strip() for part in spec.split(",") if part.strip())
    for name in requested:
        if name not in ALL_TOOLS:
            raise ValueError(
                f"unknown evaluation tool {name!r} "
                f"(known: {', '.join(ALL_TOOLS)})"
            )
    # Preserve canonical order regardless of how the user listed them.
    return tuple(name for name in ALL_TOOLS if name in requested)
