"""System call type identification (step H in Figure 3, §4.4).

Two modes, chosen by the wrapper status of the site's function:

* **plain site** — backward BFS from the site's block, querying ``%rax``
  at the ``syscall`` instruction;
* **wrapper** — for each *call site* of the wrapper, backward BFS from the
  calling block, querying the wrapper's number parameter at the ``call``
  instruction.  Starting from call sites (rather than from the wrapper's
  own ``syscall``) is what avoids both the predecessor explosion and the
  all-numbers overestimation of Figure 2 B.

The per-call-site form also serves external calls to *imported* wrappers
(e.g. an application calling libc's exported ``syscall()``), using the
parameter location recorded in the library's shared interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.model import CFG, EDGE_CALL, EDGE_ICALL
from ..symex.backward import IdentifyResult, SearchBudget, backward_identify
from ..symex.bitvec import BVV, binop
from ..symex.engine import ExecContext
from ..symex.explorer import query_rax
from ..symex.state import MemoryBackend, SymState
from .sites import SyscallSite
from .wrappers import WrapperInfo


@dataclass(slots=True)
class SiteIdentification:
    """Identification outcome for one site (or wrapper call site)."""

    kind: str  # "rax" | "wrapper-call" | "external-wrapper-call"
    anchor: int  # insn address the query was evaluated at
    values: set[int] = field(default_factory=set)
    complete: bool = True
    nodes_explored: int = 0
    steps_used: int = 0

    def to_record(self) -> dict:
        """Cacheable form (one ``funcid`` artifact per-site record)."""
        return {
            "kind": self.kind,
            "anchor": self.anchor,
            **IdentifyResult(
                values=self.values,
                complete=self.complete,
                nodes_explored=self.nodes_explored,
                steps_used=self.steps_used,
            ).to_doc(),
        }

    @classmethod
    def from_record(cls, doc: dict) -> "SiteIdentification":
        result = IdentifyResult.from_doc(doc)
        return cls(
            kind=str(doc["kind"]),
            anchor=int(doc["anchor"]),
            values=result.values,
            complete=result.complete,
            nodes_explored=result.nodes_explored,
            steps_used=result.steps_used,
        )


def make_callsite_param_query(param: tuple[str, object], anchor_is_call: bool = True):
    """Query of a wrapper's number parameter at the anchoring instruction.

    A ``("stack", off)`` location is relative to ``%rsp`` at the wrapper's
    entry — i.e. *after* the ``call`` pushed the return address.  When the
    anchor is the ``call`` instruction itself the slot therefore lives 8
    bytes lower; when the anchor is a tail ``jmp`` (PLT stub forwarding to
    an imported wrapper) the return address is already pushed and the
    offset applies as-is.
    """
    kind, where = param
    if kind == "reg":
        def reg_query(state: SymState):
            return state.regs[where]  # type: ignore[index]
        return reg_query
    if kind != "stack":
        raise ValueError(f"unknown wrapper param kind {kind!r}")
    offset = int(where) - (8 if anchor_is_call else 0)

    def stack_query(state: SymState):
        addr = binop("add", state.regs["rsp"], BVV(offset))
        return state.read_mem(addr, 8)

    return stack_query


def identify_plain_site(
    cfg: CFG,
    ctx: ExecContext,
    site: SyscallSite,
    backend: MemoryBackend | None = None,
    budget: SearchBudget | None = None,
    directed: bool = True,
) -> SiteIdentification:
    """Identify %rax values at a non-wrapper syscall site."""
    result: IdentifyResult = backward_identify(
        cfg, ctx, site.block_addr, site.insn_addr, query_rax,
        backend=backend, budget=budget, directed=directed,
    )
    return SiteIdentification(
        kind="rax",
        anchor=site.insn_addr,
        values=result.values,
        complete=result.complete,
        nodes_explored=result.nodes_explored,
        steps_used=result.steps_used,
    )


def wrapper_call_blocks(cfg: CFG, wrapper: WrapperInfo) -> list[int]:
    """Blocks that (directly or via resolved indirect calls) call the wrapper."""
    edges = cfg.predecessors(wrapper.func_entry, kinds=(EDGE_CALL, EDGE_ICALL))
    return sorted({e.src for e in edges})


def identify_wrapper_call_site(
    cfg: CFG,
    ctx: ExecContext,
    call_block: int,
    param: tuple[str, object],
    backend: MemoryBackend | None = None,
    budget: SearchBudget | None = None,
    kind: str = "wrapper-call",
    directed: bool = True,
) -> SiteIdentification:
    """Identify the number parameter at one call site of a wrapper."""
    block = cfg.blocks[call_block]
    call_insn = block.terminator
    result = backward_identify(
        cfg, ctx, call_block, call_insn.addr,
        make_callsite_param_query(param, anchor_is_call=call_insn.is_call),
        backend=backend, budget=budget, directed=directed,
    )
    return SiteIdentification(
        kind=kind,
        anchor=call_insn.addr,
        values=result.values,
        complete=result.complete,
        nodes_explored=result.nodes_explored,
        steps_used=result.steps_used,
    )
