"""B-Side: the end-to-end analyzer (Figure 3).

``BSideAnalyzer`` wires the full pipeline together:

* **Step 1 — disassembly & CFG recovery**: exact decode, basic blocks,
  direct edges, then the *active addresses taken* fixpoint to resolve
  indirect branches (budgeted: exceeding the CFG budget is the
  reproduction's "timeout during CFG construction", the paper's dominant
  failure mode).
* **Step 2 — syscall identification**: reachable-site discovery, the
  two-phase wrapper heuristic, and per-site backward identification with
  directed forward symbolic execution.
* **Step 3 — shared objects**: per-library shared interfaces computed once
  and cached in an :class:`~repro.core.interface.InterfaceStore`;
  dependency DAGs are processed leaves-first; imported wrappers are
  resolved per call site in the importing binary.

The analyzer never executes the target.  Its product is an
:class:`~repro.core.report.AnalysisReport` whose ``syscalls`` set is a
superset of the binary's runtime behaviour (validated in the test suite
and §5.1's experiment).
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field

from ..cfg.builder import build_cfg
from ..cfg.indirect import resolve_indirect_active
from ..cfg.model import CFG, EDGE_CALL, EDGE_ICALL
from ..cfg.reachability import reachable_blocks
from ..errors import BudgetExceeded, CfgError, DecodeError, ElfError, LoaderError
from ..loader.image import LoadedImage
from ..loader.resolve import LibraryResolver
from ..symex.engine import ExecContext
from ..symex.state import MemoryBackend
from .identify import (
    SiteIdentification,
    identify_plain_site,
    identify_wrapper_call_site,
    wrapper_call_blocks,
)
from .interface import ExportInfo, InterfaceStore, SharedInterface
from .report import AnalysisBudget, AnalysisReport, StageStats
from .sites import SyscallSite, find_sites
from .wrappers import WrapperInfo, detect_wrapper

TOOL_NAME = "b-side"


@dataclass(slots=True)
class _ImageAnalysis:
    """Intermediate per-image artifacts shared by exe and library paths."""

    cfg: CFG
    ctx: ExecContext
    backend: MemoryBackend
    reachable: set[int]
    sites: list[SyscallSite]
    wrappers: dict[int, WrapperInfo | None]  # func entry -> info (None = not)
    #: per-block identified syscall numbers
    block_syscalls: dict[int, set[int]]
    complete: bool
    bbs_explored: int
    symex_steps: int
    sites_examined: int


class BSideAnalyzer:
    """Binary-level static system call identification."""

    def __init__(
        self,
        resolver: LibraryResolver | None = None,
        budget: AnalysisBudget | None = None,
        interface_store: InterfaceStore | None = None,
        *,
        detect_wrappers: bool = True,
        directed_search: bool = True,
        use_active_addresses_taken: bool = True,
    ):
        self.resolver = resolver if resolver is not None else LibraryResolver()
        self.budget = budget if budget is not None else AnalysisBudget()
        # NB: InterfaceStore defines __len__, so an empty store is falsy —
        # an `or` default would silently discard a caller-provided store.
        self.interfaces = (
            interface_store if interface_store is not None else InterfaceStore()
        )
        #: ablation switches (§4.3/§4.4 design choices)
        self.detect_wrappers = detect_wrappers
        self.directed_search = directed_search
        self.use_active_addresses_taken = use_active_addresses_taken

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def analyze(
        self,
        image: LoadedImage,
        modules: list[LoadedImage] | None = None,
        measure_memory: bool = False,
    ) -> AnalysisReport:
        """Analyze an executable (static or dynamic).

        ``modules`` lists shared objects the program loads at runtime via
        dlopen-style mechanisms (§4.5: the user supplies them).
        """
        report, __ = self._timed_analysis(image, modules or [], measure_memory)
        return report

    def analyze_phases(
        self,
        image: LoadedImage,
        modules: list[LoadedImage] | None = None,
        similarity: float = 0.5,
        back_propagate: bool = True,
    ):
        """Analyze and detect execution phases (§4.7, step N).

        Returns ``(report, PhaseAutomaton | None)`` — the automaton is None
        when the analysis failed.
        """
        from ..phases.merge import detect_phases

        report, analysis = self._timed_analysis(image, modules or [], False)
        if not report.success or analysis is None:
            return report, None
        t0 = time.perf_counter()
        automaton = detect_phases(
            analysis.cfg,
            {
                addr: values
                for addr, values in analysis.block_syscalls.items()
                if values and addr in analysis.reachable
            },
            image.entry,
            reachable=analysis.reachable,
            similarity=similarity,
            back_propagate=back_propagate,
        )
        report.stages["phases"] = StageStats(
            seconds=time.perf_counter() - t0, units=automaton.n_phases,
        )
        return report, automaton

    def _timed_analysis(
        self,
        image: LoadedImage,
        modules: list[LoadedImage],
        measure_memory: bool,
    ) -> tuple[AnalysisReport, "_ImageAnalysis | None"]:
        started = time.perf_counter()
        analysis: _ImageAnalysis | None = None
        if measure_memory:
            tracemalloc.start()
        try:
            report, analysis = self._analyze_executable(image, modules)
        except BudgetExceeded as exceeded:
            report = AnalysisReport.failed(
                TOOL_NAME, image.name, exceeded.stage, str(exceeded),
            )
        except (CfgError, DecodeError, ElfError, LoaderError) as error:
            report = AnalysisReport.failed(
                TOOL_NAME, image.name, "load", str(error),
            )
        report.stages.setdefault("total", StageStats())
        report.stages["total"].seconds = time.perf_counter() - started
        if measure_memory:
            __, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            report.peak_memory = peak
        return report, analysis

    def analyze_library(self, image: LoadedImage) -> SharedInterface:
        """Analyze one shared library (cached; §4.5 phase 1)."""
        self.interfaces.bind_image(image)
        cached = self.interfaces.get(image.name)
        if cached is not None:
            return cached
        for dep in self.resolver.topological_order(image):
            self.interfaces.bind_image(dep)
            if dep.name not in self.interfaces:
                self.interfaces.put(self._build_interface(dep))
        interface = self._build_interface(image)
        self.interfaces.put(interface)
        return interface

    # ------------------------------------------------------------------
    # Executable pipeline
    # ------------------------------------------------------------------

    def _analyze_executable(
        self, image: LoadedImage, modules: list[LoadedImage]
    ) -> tuple[AnalysisReport, "_ImageAnalysis"]:
        report = AnalysisReport(tool=TOOL_NAME, binary=image.name, success=True)

        # Step 3 preparation: dependencies first (cached across programs).
        t0 = time.perf_counter()
        symbol_table: dict[str, ExportInfo] = {}
        interfaces_complete = True
        if image.needed:
            for dep in self.resolver.topological_order(image):
                self.interfaces.bind_image(dep)
                if dep.name not in self.interfaces:
                    self.interfaces.put(self._build_interface(dep))
                interfaces_complete &= self.interfaces.get(dep.name).complete
            symbol_table = self.interfaces.symbol_table(image.needed)
        report.stages["interfaces"] = StageStats(
            seconds=time.perf_counter() - t0, units=len(symbol_table),
        )

        roots = [image.entry] if image.entry else [
            sym.value for sym in image.exported_functions.values()
        ]
        analysis = self._analyze_image(image, roots, symbol_table, report)

        identified: set[int] = set()
        for block_addr, values in analysis.block_syscalls.items():
            if block_addr in analysis.reachable:
                identified |= values

        # dlopen-style modules: analysed like shared libraries, with every
        # export considered potentially invoked (§4.5).
        for module in modules:
            module_interface = self.analyze_library(module)
            identified |= module_interface.all_syscalls()
            interfaces_complete &= module_interface.complete

        report.syscalls = identified
        report.complete = analysis.complete and interfaces_complete
        report.bbs_explored = analysis.bbs_explored
        report.symex_steps = analysis.symex_steps
        report.sites_examined = analysis.sites_examined
        return report, analysis

    # ------------------------------------------------------------------
    # Shared per-image machinery
    # ------------------------------------------------------------------

    def _recover_cfg(
        self, image: LoadedImage, roots: list[int], report: AnalysisReport | None
    ) -> tuple[CFG, set[int]]:
        t0 = time.perf_counter()
        cfg = build_cfg(image)

        if not self.use_active_addresses_taken:
            # Ablation: SysFilter-style resolution to *all* addresses taken.
            from ..cfg.indirect import resolve_indirect_all

            resolve_indirect_all(cfg, image)
            iterations = 1
        else:
            # CFG budget: a dense indirect-call web exceeds it (the paper's
            # dominant timeout class).
            __, iterations = resolve_indirect_active(
                cfg, image, roots, max_iterations=self.budget.max_cfg_iterations,
            )
        icall_edges = sum(
            1
            for block in cfg.indirect_sites
            for e in cfg.successors(block, kinds=(EDGE_ICALL,))
        )
        if icall_edges > self.budget.max_icall_edges:
            raise BudgetExceeded("cfg-recovery", self.budget.max_icall_edges)
        if iterations >= self.budget.max_cfg_iterations:
            raise BudgetExceeded("cfg-recovery", self.budget.max_cfg_iterations)

        reachable = reachable_blocks(cfg, roots)
        if report is not None:
            report.stages["cfg"] = StageStats(
                seconds=time.perf_counter() - t0,
                units=cfg.n_edges,
            )
        return cfg, reachable

    def _analyze_image(
        self,
        image: LoadedImage,
        roots: list[int],
        symbol_table: dict[str, ExportInfo],
        report: AnalysisReport | None,
    ) -> _ImageAnalysis:
        cfg, reachable = self._recover_cfg(image, roots, report)
        ctx = ExecContext.for_image(cfg, image)
        backend = MemoryBackend([image])

        sites = find_sites(cfg, reachable)

        # ---- wrapper detection (step G) -------------------------------
        t0 = time.perf_counter()
        wrappers: dict[int, WrapperInfo | None] = {}
        confirmations = 0
        for site in sites:
            if not self.detect_wrappers:
                break  # ablation: treat every site as a plain rax site
            if site.func_entry in wrappers:
                continue
            confirmations += 1
            if confirmations > self.budget.max_wrapper_confirmations:
                raise BudgetExceeded(
                    "wrapper-detection", self.budget.max_wrapper_confirmations,
                )
            wrappers[site.func_entry] = detect_wrapper(
                cfg, ctx, site, backend, max_steps=self.budget.wrapper_steps,
            )
        if report is not None:
            report.stages["wrappers"] = StageStats(
                seconds=time.perf_counter() - t0, units=confirmations,
            )

        # ---- identification (step H) ------------------------------------
        t0 = time.perf_counter()
        block_syscalls: dict[int, set[int]] = {}
        complete = True
        bbs = 0
        steps = 0
        examined = 0

        def record(block_addr: int, ident: SiteIdentification) -> None:
            nonlocal complete, bbs, steps, examined
            block_syscalls.setdefault(block_addr, set()).update(ident.values)
            complete = complete and ident.complete
            bbs += ident.nodes_explored
            steps += ident.steps_used
            examined += 1

        for site in sites:
            info = wrappers.get(site.func_entry)
            if info is not None:
                continue  # handled from its call sites below
            ident = identify_plain_site(
                cfg, ctx, site, backend, budget=self.budget.search,
                directed=self.directed_search,
            )
            record(site.block_addr, ident)

        for func_entry, info in wrappers.items():
            if info is None:
                continue
            if info.param is None:
                # Wrapper whose parameter could not be localised: the
                # sound over-approximation is "anything" — flagged via
                # completeness so filter generation allows everything.
                complete = False
                continue
            for call_block in wrapper_call_blocks(cfg, info):
                ident = identify_wrapper_call_site(
                    cfg, ctx, call_block, info.param, backend,
                    budget=self.budget.search, directed=self.directed_search,
                )
                record(call_block, ident)

        # ---- external calls (step J/M) -----------------------------------
        for block_addr, symbols in cfg.external_calls.items():
            if block_addr not in reachable:
                continue
            for symbol in symbols:
                info = symbol_table.get(symbol)
                if info is None:
                    # Unknown import: cannot be resolved -> incomplete.
                    complete = False
                    continue
                if info.is_wrapper:
                    ident = identify_wrapper_call_site(
                        cfg, ctx, block_addr, info.wrapper_param, backend,
                        budget=self.budget.search, kind="external-wrapper-call",
                        directed=self.directed_search,
                    )
                    record(block_addr, ident)
                else:
                    block_syscalls.setdefault(block_addr, set()).update(info.syscalls)
                    complete = complete and info.complete

        if report is not None:
            report.stages["identification"] = StageStats(
                seconds=time.perf_counter() - t0, units=bbs,
            )

        return _ImageAnalysis(
            cfg=cfg,
            ctx=ctx,
            backend=backend,
            reachable=reachable,
            sites=sites,
            wrappers=wrappers,
            block_syscalls=block_syscalls,
            complete=complete,
            bbs_explored=bbs,
            symex_steps=steps,
            sites_examined=examined,
        )

    # ------------------------------------------------------------------
    # Library pipeline (interface construction)
    # ------------------------------------------------------------------

    def _build_interface(self, image: LoadedImage) -> SharedInterface:
        dep_symbols: dict[str, ExportInfo] = {}
        if image.needed:
            dep_symbols = self.interfaces.symbol_table(image.needed)

        exports = image.exported_functions
        roots = sorted(sym.value for sym in exports.values())
        analysis = self._analyze_image(image, roots, dep_symbols, report=None)

        interface = SharedInterface(
            library=image.name,
            needed=list(image.needed),
            complete=analysis.complete,
            addresses_taken=sorted(analysis.cfg.addresses_taken),
        )
        wrapper_names: list[str] = []
        for entry, info in analysis.wrappers.items():
            if info is not None:
                func = analysis.cfg.functions.get(entry)
                wrapper_names.append(func.name if func and func.name else hex(entry))
        interface.wrapper_functions = sorted(wrapper_names)

        for name, sym in exports.items():
            from ..cfg.reachability import reachable_blocks as reach

            export_blocks = reach(analysis.cfg, [sym.value])
            syscalls: set[int] = set()
            for block_addr in export_blocks:
                syscalls |= analysis.block_syscalls.get(block_addr, set())
            cross = sorted({
                s
                for block_addr in export_blocks
                for s in analysis.cfg.external_calls.get(block_addr, [])
            })
            wrapper_info = analysis.wrappers.get(sym.value)
            interface.exports[name] = ExportInfo(
                name=name,
                addr=sym.value,
                syscalls=syscalls,
                complete=analysis.complete,
                wrapper_param=(wrapper_info.param if wrapper_info else None),
                cross_calls=cross,
            )
        return interface
