"""B-Side: the end-to-end analyzer (Figure 3).

``BSideAnalyzer`` drives the :mod:`repro.core.pipeline` pass pipeline:

* **Step 1 — disassembly & CFG recovery**: the ``cfg-recovery`` and
  ``reachability`` passes (budgeted: exceeding the CFG budget is the
  reproduction's "timeout during CFG construction", the paper's dominant
  failure mode).
* **Step 2 — syscall identification**: ``site-discovery``,
  ``wrapper-detection`` (the two-phase heuristic), ``identification``
  (per-site backward identification with directed forward symbolic
  execution) and ``external-calls``.
* **Step 3 — shared objects**: per-library shared interfaces computed once
  and cached in an :class:`~repro.core.interface.InterfaceStore`;
  dependency DAGs are processed leaves-first; imported wrappers are
  resolved per call site in the importing binary.

Ablations are pipeline configuration (:class:`PipelineConfig`), not
if-branches, and with an :class:`~repro.core.artifacts.ArtifactStore`
bound the analyzer both reuses per-pass artifacts (confirmed wrapper
tables) and serves entire :class:`AnalysisReport`s from cache — keyed by
binary content hash, pipeline-config fingerprint, and dependency hashes
— so a warm run performs zero re-analysis.

The analyzer never executes the target.  Its product is an
:class:`~repro.core.report.AnalysisReport` whose ``syscalls`` set is a
superset of the binary's runtime behaviour (validated in the test suite
and §5.1's experiment).
"""

from __future__ import annotations

import time
import tracemalloc

from ..errors import BudgetExceeded, CfgError, DecodeError, ElfError, LoaderError
from ..loader.image import LoadedImage
from ..loader.resolve import LibraryResolver
from .artifacts import ArtifactStore
from .interface import ExportInfo, InterfaceStore, SharedInterface
from .pipeline import (
    AnalysisContext,
    PassPipeline,
    PhaseDetectionPass,
    PipelineConfig,
    build_pipeline,
)
from .report import AnalysisBudget, AnalysisReport, StageStats

TOOL_NAME = "b-side"


class BSideAnalyzer:
    """Binary-level static system call identification."""

    def __init__(
        self,
        resolver: LibraryResolver | None = None,
        budget: AnalysisBudget | None = None,
        interface_store: InterfaceStore | None = None,
        *,
        detect_wrappers: bool = True,
        directed_search: bool = True,
        use_active_addresses_taken: bool = True,
        indirect_signatures: bool = True,
        incremental: bool = False,
        pipeline_config: PipelineConfig | None = None,
        artifact_store: ArtifactStore | None = None,
    ):
        self.resolver = resolver if resolver is not None else LibraryResolver()
        self.budget = budget if budget is not None else AnalysisBudget()
        # NB: InterfaceStore defines __len__, so an empty store is falsy —
        # an `or` default would silently discard a caller-provided store.
        self.interfaces = (
            interface_store if interface_store is not None else InterfaceStore()
        )
        #: ablation switches (§4.3/§4.4 design choices) as pipeline config
        self.config = (
            pipeline_config
            if pipeline_config is not None
            else PipelineConfig(
                detect_wrappers=detect_wrappers,
                directed_search=directed_search,
                use_active_addresses_taken=use_active_addresses_taken,
                indirect_signatures=indirect_signatures,
                incremental=incremental,
            )
        )
        self.pipeline = build_pipeline(self.config)
        self.artifacts = artifact_store
        #: content-address of (pipeline config, budget): keys artifacts
        self.fingerprint = self.config.fingerprint(self.budget)
        self.interfaces.bind_fingerprint(self.fingerprint)

    # -- ablation flags kept readable for reporting / worker shipping ----

    @property
    def detect_wrappers(self) -> bool:
        return self.config.detect_wrappers

    @property
    def directed_search(self) -> bool:
        return self.config.directed_search

    @property
    def use_active_addresses_taken(self) -> bool:
        return self.config.use_active_addresses_taken

    @property
    def indirect_signatures(self) -> bool:
        return self.config.indirect_signatures

    @property
    def incremental(self) -> bool:
        return self.config.incremental

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def analyze(
        self,
        image: LoadedImage,
        modules: list[LoadedImage] | None = None,
        measure_memory: bool = False,
    ) -> AnalysisReport:
        """Analyze an executable (static or dynamic).

        ``modules`` lists shared objects the program loads at runtime via
        dlopen-style mechanisms (§4.5: the user supplies them).

        With an artifact store bound, a cached report whose content hash,
        pipeline fingerprint, and dependency hashes all match is served
        without any analysis.
        """
        modules = list(modules or [])
        cached = self.load_cached_report(image, modules)
        if cached is not None:
            return cached
        report, __ = self._timed_analysis(image, modules, measure_memory)
        self.store_report(image, modules, report)
        return report

    def analyze_phases(
        self,
        image: LoadedImage,
        modules: list[LoadedImage] | None = None,
        similarity: float = 0.5,
        back_propagate: bool = True,
    ):
        """Analyze and detect execution phases (§4.7, step N).

        Returns ``(report, PhaseAutomaton | None)`` — the automaton is None
        when the analysis failed.  The report cache is bypassed: phase
        detection needs the in-memory analysis context.
        """
        report, ctx = self._timed_analysis(image, modules or [], False)
        if not report.success or ctx is None:
            return report, None
        PassPipeline([
            PhaseDetectionPass(similarity=similarity, back_propagate=back_propagate)
        ]).run(ctx)
        return report, ctx.automaton

    def _timed_analysis(
        self,
        image: LoadedImage,
        modules: list[LoadedImage],
        measure_memory: bool,
    ) -> tuple[AnalysisReport, AnalysisContext | None]:
        started = time.perf_counter()
        ctx: AnalysisContext | None = None
        if measure_memory:
            tracemalloc.start()
        try:
            report, ctx = self._analyze_executable(image, modules)
        except BudgetExceeded as exceeded:
            report = AnalysisReport.failed(
                TOOL_NAME, image.name, exceeded.stage, str(exceeded),
            )
        except (CfgError, DecodeError, ElfError, LoaderError) as error:
            report = AnalysisReport.failed(
                TOOL_NAME, image.name, "load", str(error),
            )
        report.stages.setdefault("total", StageStats())
        report.stages["total"].seconds = time.perf_counter() - started
        if measure_memory:
            __, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            report.peak_memory = peak
        return report, ctx

    def analyze_library(self, image: LoadedImage) -> SharedInterface:
        """Analyze one shared library (cached; §4.5 phase 1)."""
        self._bind_library(image)
        cached = self.interfaces.get(image.name)
        if cached is not None:
            return cached
        if image.needed:
            self._ensure_dependency_interfaces(image)
        interface = self._build_interface(image)
        self.interfaces.put(interface)
        return interface

    # ------------------------------------------------------------------
    # Report artifacts (content-addressed whole-binary cache)
    # ------------------------------------------------------------------

    def dependency_hashes(
        self, image: LoadedImage, modules: list[LoadedImage] | None = None,
    ) -> list[str] | None:
        """Content hashes of the dependency closure (+ dlopen modules).

        The sorted list is part of every report-artifact key: an upgraded
        library invalidates cached reports of its dependents.  ``None``
        when the closure cannot be resolved — such analyses depend on the
        local resolver environment and are not cacheable.
        """
        hashes: set[str] = set()
        try:
            if image.needed:
                for dep in self.resolver.topological_order(image):
                    hashes.add(dep.content_hash)
            for module in modules or []:
                hashes.add(module.content_hash)
                if module.needed:
                    for dep in self.resolver.topological_order(module):
                        hashes.add(dep.content_hash)
        except LoaderError:
            return None
        return sorted(hashes)

    def load_cached_report(
        self,
        image: LoadedImage,
        modules: list[LoadedImage] | None = None,
        store: ArtifactStore | None = None,
    ) -> AnalysisReport | None:
        """Serve a binary's full report from the artifact store, if valid.

        ``store`` overrides the analyzer's own store (the fleet engine
        owns report-cache traffic and passes its store explicitly).
        """
        store = store if store is not None else self.artifacts
        if store is None:
            return None
        deps = self.dependency_hashes(image, modules)
        if deps is None:
            return None
        # Content-first lookup (name fast path, then content-hash alias):
        # a renamed copy of an already-analyzed binary still hits, and a
        # mismatched same-name entry is left for its own client.
        payload = store.lookup(
            "report", image.name,
            content_hash=image.content_hash,
            fingerprint=self.fingerprint,
            dep_hashes=deps,
        )
        if payload is None:
            return None
        report = AnalysisReport.from_doc(payload)
        report.binary = image.name
        return report

    def store_report(
        self,
        image: LoadedImage,
        modules: list[LoadedImage] | None,
        report: AnalysisReport,
        store: ArtifactStore | None = None,
    ) -> None:
        """Persist a finished report keyed by content + config + deps.

        Load failures are not cached: they describe the resolver
        environment (a missing library), not the binary.
        """
        store = store if store is not None else self.artifacts
        if store is None:
            return
        if not report.success and report.failure_stage == "load":
            return
        deps = self.dependency_hashes(image, modules)
        if deps is None:
            return
        store.put(
            "report", image.name, report.to_doc(),
            content_hash=image.content_hash,
            fingerprint=self.fingerprint,
            dep_hashes=deps,
        )

    # ------------------------------------------------------------------
    # Executable pipeline
    # ------------------------------------------------------------------

    def _bind_library(self, image: LoadedImage) -> None:
        """Announce a library image (and its dependency hashes) to the
        interface store so cached entries can be validated against both:
        a library's interface folds its dependencies' exports in, so an
        upgraded dependency must invalidate the dependent's entry too."""
        self.interfaces.bind_image(image)
        deps = self.dependency_hashes(image)
        if deps is not None:
            self.interfaces.bind_dependencies(image.name, deps)

    def _ensure_dependency_interfaces(self, image: LoadedImage) -> bool:
        """Walk the dependency DAG leaves-first, building any missing
        interface; returns whether every interface is complete."""
        complete = True
        for dep in self.resolver.topological_order(image):
            self._bind_library(dep)
            if dep.name not in self.interfaces:
                self.interfaces.put(self._build_interface(dep))
            complete &= self.interfaces.get(dep.name).complete
        return complete

    def _analyze_executable(
        self, image: LoadedImage, modules: list[LoadedImage]
    ) -> tuple[AnalysisReport, AnalysisContext]:
        report = AnalysisReport(tool=TOOL_NAME, binary=image.name, success=True)

        # Step 3 preparation: dependencies first (cached across programs).
        t0 = time.perf_counter()
        symbol_table: dict[str, ExportInfo] = {}
        interfaces_complete = True
        if image.needed:
            interfaces_complete = self._ensure_dependency_interfaces(image)
            symbol_table = self.interfaces.symbol_table(image.needed)
        report.stages["interfaces"] = StageStats(
            seconds=time.perf_counter() - t0, units=len(symbol_table),
        )

        roots = [image.entry] if image.entry else [
            sym.value for sym in image.exported_functions.values()
        ]
        ctx = AnalysisContext(
            image=image,
            roots=roots,
            budget=self.budget,
            config=self.config,
            symbol_table=symbol_table,
            report=report,
            artifacts=self.artifacts,
            fingerprint=self.fingerprint,
        )
        self.pipeline.run(ctx)

        identified = ctx.identified_syscalls()

        # dlopen-style modules: analysed like shared libraries, with every
        # export considered potentially invoked (§4.5).
        for module in modules:
            module_interface = self.analyze_library(module)
            identified |= module_interface.all_syscalls()
            interfaces_complete &= module_interface.complete

        report.syscalls = identified
        report.complete = ctx.complete and interfaces_complete
        report.bbs_explored = ctx.bbs_explored
        report.symex_steps = ctx.symex_steps
        report.sites_examined = ctx.sites_examined
        report.functions_total = ctx.functions_total
        report.functions_reanalyzed = ctx.functions_reanalyzed
        report.sites_total = ctx.sites_total
        report.sites_reexecuted = ctx.sites_reexecuted
        return report, ctx

    # ------------------------------------------------------------------
    # Library pipeline (interface construction)
    # ------------------------------------------------------------------

    def _build_interface(self, image: LoadedImage) -> SharedInterface:
        dep_symbols: dict[str, ExportInfo] = {}
        if image.needed:
            dep_symbols = self.interfaces.symbol_table(image.needed)

        exports = image.exported_functions
        roots = sorted(sym.value for sym in exports.values())
        ctx = AnalysisContext(
            image=image,
            roots=roots,
            budget=self.budget,
            config=self.config,
            symbol_table=dep_symbols,
        )
        self.pipeline.run(ctx)

        interface = SharedInterface(
            library=image.name,
            needed=list(image.needed),
            complete=ctx.complete,
            addresses_taken=sorted(ctx.cfg.addresses_taken),
        )
        wrapper_names: list[str] = []
        for entry, info in ctx.wrappers.items():
            if info is not None:
                func = ctx.cfg.functions.get(entry)
                wrapper_names.append(func.name if func and func.name else hex(entry))
        interface.wrapper_functions = sorted(wrapper_names)

        # Per-export reachability answers come from one SCC condensation
        # pass over the dense CFG index (closure of per-block syscalls /
        # external calls under flow reachability), instead of one BFS +
        # set union per exported function.
        index = ctx.cfg.index
        idx_of = index.idx_of
        syscall_closure, external_closure = index.closure_unions(
            (ctx.block_syscalls, ctx.cfg.external_calls),
        )
        for name, sym in exports.items():
            root = idx_of.get(sym.value)
            if root is not None:
                syscalls = set(syscall_closure[root])
                cross = sorted(external_closure[root])
            else:
                syscalls = set()
                cross = []
            wrapper_info = ctx.wrappers.get(sym.value)
            interface.exports[name] = ExportInfo(
                name=name,
                addr=sym.value,
                syscalls=syscalls,
                complete=ctx.complete,
                wrapper_param=(wrapper_info.param if wrapper_info else None),
                cross_calls=cross,
            )
        return interface
