"""Fleet analysis: batch identification over many binaries.

The deployment loop of the paper's §1 scenario at scale: a provider walks
a directory of tenant binaries, analyzes each against a shared library
pool (interfaces cached once), derives filters, and wants an inventory —
per-binary outcomes, fleet-wide statistics, and CVE exposure.

``FleetAnalyzer`` wraps :class:`BSideAnalyzer` with exactly that loop;
``FleetReport`` serialises to JSON for dashboards / diffing between
releases.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field

from ..loader.image import LoadedImage
from ..loader.resolve import LibraryResolver
from ..syscalls.cves import CVE_DATABASE, protection_rate
from ..syscalls.table import name_of
from .analyzer import BSideAnalyzer
from .report import AnalysisBudget, AnalysisReport


@dataclass
class FleetEntry:
    """One binary's outcome inside a fleet run."""

    name: str
    report: AnalysisReport

    def to_doc(self) -> dict:
        return {
            "binary": self.name,
            "success": self.report.success,
            "complete": self.report.complete,
            "failure_stage": self.report.failure_stage,
            "n_syscalls": len(self.report.syscalls),
            "syscalls": sorted(self.report.syscalls),
        }


@dataclass
class FleetReport:
    """Aggregated fleet outcome."""

    entries: list[FleetEntry] = field(default_factory=list)

    @property
    def successes(self) -> list[FleetEntry]:
        return [e for e in self.entries if e.report.success]

    @property
    def failures(self) -> list[FleetEntry]:
        return [e for e in self.entries if not e.report.success]

    def success_rate(self) -> float:
        if not self.entries:
            return 0.0
        return len(self.successes) / len(self.entries)

    def average_syscalls(self) -> float:
        sizes = [len(e.report.syscalls) for e in self.successes]
        return statistics.mean(sizes) if sizes else 0.0

    def failure_stages(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for entry in self.failures:
            stage = entry.report.failure_stage or "load"
            out[stage] = out.get(stage, 0) + 1
        return out

    def common_syscalls(self, threshold: float = 0.9) -> set[int]:
        """Syscalls identified in at least ``threshold`` of the fleet —
        candidates for a shared base policy."""
        if not self.successes:
            return set()
        counts: dict[int, int] = {}
        for entry in self.successes:
            for nr in entry.report.syscalls:
                counts[nr] = counts.get(nr, 0) + 1
        needed = threshold * len(self.successes)
        return {nr for nr, n in counts.items() if n >= needed}

    def cve_exposure(self) -> dict[str, float]:
        """Per-CVE protection rate across the fleet (Table 5's metric)."""
        identified = [e.report.syscalls for e in self.successes]
        return {
            cve.ident: protection_rate(cve, identified)
            for cve in CVE_DATABASE
        }

    def to_json(self) -> str:
        exposure = self.cve_exposure()
        doc = {
            "fleet_size": len(self.entries),
            "success_rate": self.success_rate(),
            "average_syscalls": self.average_syscalls(),
            "failure_stages": self.failure_stages(),
            "common_syscalls": sorted(
                name_of(nr) for nr in self.common_syscalls()
            ),
            "cve_exposure": {
                ident: round(rate, 4) for ident, rate in sorted(exposure.items())
            },
            "binaries": [entry.to_doc() for entry in self.entries],
        }
        return json.dumps(doc, indent=2)


class FleetAnalyzer:
    """Batch driver over a shared :class:`BSideAnalyzer`.

    Library interfaces are computed once and reused across the whole
    fleet (the §4.5 amortisation, measured in the interface-cache tests).
    """

    def __init__(
        self,
        resolver: LibraryResolver | None = None,
        budget: AnalysisBudget | None = None,
    ):
        self.analyzer = BSideAnalyzer(resolver=resolver, budget=budget)

    def analyze_images(self, images: list[LoadedImage]) -> FleetReport:
        report = FleetReport()
        for image in images:
            outcome = self.analyzer.analyze(image)
            report.entries.append(FleetEntry(name=image.name, report=outcome))
        return report

    def analyze_directory(self, directory: str) -> FleetReport:
        """Analyze every regular file in ``directory`` that parses as ELF."""
        import os

        from ..errors import ElfError

        images: list[LoadedImage] = []
        for filename in sorted(os.listdir(directory)):
            path = os.path.join(directory, filename)
            if not os.path.isfile(path):
                continue
            try:
                images.append(LoadedImage.from_path(path))
            except (ElfError, ValueError):
                continue  # not an ELF: skip silently, like file(1) sweeps
        return self.analyze_images(images)
