"""Fleet analysis: parallel batch identification over many binaries.

The deployment loop of the paper's §1 scenario at scale: a provider walks
a directory of tenant binaries, analyzes each against a shared library
pool, derives filters, and wants an inventory — per-binary outcomes,
fleet-wide statistics, and CVE exposure.

``FleetAnalyzer`` runs that loop as a three-phase schedule:

1. **Report phase** — with a ``cache_dir``, each binary's full
   :class:`AnalysisReport` is looked up in the content-addressed
   :class:`~repro.core.artifacts.ArtifactStore` (keyed by binary content
   hash + pipeline-config fingerprint + dependency hashes).  A hit skips
   that binary entirely: a fully-warm run performs **zero per-binary
   analysis**, not just zero library analysis.
2. **Interface phase** — the union of every *remaining* binary's
   shared-library dependency DAG is walked leaves-first (libc before its
   users) and each library's §4.5 interface is computed exactly once.
   With a ``cache_dir`` the interfaces land in a
   :class:`~repro.core.ifacecache.PersistentInterfaceStore` (kind
   ``iface`` of the same artifact store), so later runs load them from
   disk instead of re-analyzing.
3. **Binary phase** — per-binary analysis fans out over a
   ``ProcessPoolExecutor`` when ``workers > 1``; each worker rebuilds the
   resolver from raw library bytes and receives the phase-2 interfaces
   pre-computed, so no worker ever re-analyzes a library.
   ``workers=1`` keeps the original in-process loop, and
   per-binary results are ordered by input position either way, so the
   deterministic portion of :meth:`FleetReport.to_json` is byte-identical
   across worker counts and cache states.

``FleetReport`` serialises to JSON for dashboards / diffing between
releases and merges stably across sharded runs via
:meth:`FleetReport.merge`.
"""

from __future__ import annotations

import json
import logging
import os
import statistics
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..errors import BudgetExceeded, CfgError, DecodeError, ElfError, LoaderError
from ..loader.image import LoadedImage
from ..loader.resolve import LibraryResolver
from ..syscalls.cves import CVE_DATABASE, protection_rate
from ..syscalls.table import name_of
from .analyzer import BSideAnalyzer
from .artifacts import ArtifactStore, ShardedArtifactStore
from .ifacecache import PersistentInterfaceStore
from .interface import InterfaceStore
from .pipeline import add_runs, pipeline_runs
from .report import AnalysisBudget, AnalysisReport

logger = logging.getLogger(__name__)


@dataclass
class FleetEntry:
    """One binary's outcome inside a fleet run."""

    name: str
    report: AnalysisReport
    #: wall-clock seconds spent analyzing this binary
    seconds: float = 0.0
    #: persistent-cache hits/misses observed while analyzing this binary
    cache_hits: int = 0
    cache_misses: int = 0
    #: True when the whole report was served from the artifact store
    from_cache: bool = False

    def to_doc(self, include_runtime: bool = True) -> dict:
        doc = {
            "binary": self.name,
            "success": self.report.success,
            "complete": self.report.complete,
            "failure_stage": self.report.failure_stage,
            "n_syscalls": len(self.report.syscalls),
            "syscalls": sorted(self.report.syscalls),
        }
        if include_runtime:
            doc["seconds"] = round(self.seconds, 6)
            doc["cache_hits"] = self.cache_hits
            doc["cache_misses"] = self.cache_misses
            doc["cached"] = self.from_cache
            if self.report.functions_total:
                doc["functions_total"] = self.report.functions_total
                doc["functions_reanalyzed"] = self.report.functions_reanalyzed
            if self.report.sites_total:
                doc["sites_total"] = self.report.sites_total
                doc["sites_reexecuted"] = self.report.sites_reexecuted
        return doc


@dataclass
class FleetReport:
    """Aggregated fleet outcome."""

    entries: list[FleetEntry] = field(default_factory=list)
    #: directory-sweep files that did not parse as ELF (deterministic)
    skipped: list[str] = field(default_factory=list)
    #: persistent interface-cache counters for the whole run (runtime)
    interface_stats: dict[str, int] = field(default_factory=dict)
    #: report-artifact counters for the whole run (runtime)
    artifact_stats: dict[str, int] = field(default_factory=dict)

    @property
    def successes(self) -> list[FleetEntry]:
        return [e for e in self.entries if e.report.success]

    @property
    def failures(self) -> list[FleetEntry]:
        return [e for e in self.entries if not e.report.success]

    def success_rate(self) -> float:
        if not self.entries:
            return 0.0
        return len(self.successes) / len(self.entries)

    def average_syscalls(self) -> float:
        sizes = [len(e.report.syscalls) for e in self.successes]
        return statistics.mean(sizes) if sizes else 0.0

    def total_seconds(self) -> float:
        return sum(e.seconds for e in self.entries)

    def failure_stages(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for entry in self.failures:
            stage = entry.report.failure_stage or "load"
            out[stage] = out.get(stage, 0) + 1
        return out

    def common_syscalls(self, threshold: float = 0.9) -> set[int]:
        """Syscalls identified in at least ``threshold`` of the fleet —
        candidates for a shared base policy."""
        if not self.successes:
            return set()
        counts: dict[int, int] = {}
        for entry in self.successes:
            for nr in entry.report.syscalls:
                counts[nr] = counts.get(nr, 0) + 1
        needed = threshold * len(self.successes)
        return {nr for nr, n in counts.items() if n >= needed}

    def cve_exposure(self) -> dict[str, float]:
        """Per-CVE protection rate across the fleet (Table 5's metric)."""
        identified = [e.report.syscalls for e in self.successes]
        return {
            cve.ident: protection_rate(cve, identified)
            for cve in CVE_DATABASE
        }

    def to_json(self, include_runtime: bool = True) -> str:
        """Serialise the inventory.

        ``include_runtime=False`` drops the run-dependent fields (wall
        times, cache counters) and yields a byte-stable document: the
        same fleet analyzed serially, with N workers, or sharded and
        merged produces the identical string.
        """
        exposure = self.cve_exposure()
        doc = {
            "fleet_size": len(self.entries),
            "success_rate": self.success_rate(),
            "average_syscalls": self.average_syscalls(),
            "failure_stages": self.failure_stages(),
            "skipped_files": sorted(self.skipped),
            "common_syscalls": sorted(
                name_of(nr) for nr in self.common_syscalls()
            ),
            "cve_exposure": {
                ident: round(rate, 4) for ident, rate in sorted(exposure.items())
            },
            "binaries": [
                entry.to_doc(include_runtime=include_runtime)
                for entry in self.entries
            ],
        }
        if include_runtime:
            doc["total_seconds"] = round(self.total_seconds(), 6)
            doc["interface_cache"] = dict(self.interface_stats)
            doc["report_cache"] = dict(self.artifact_stats)
        return json.dumps(doc, indent=2)

    @classmethod
    def merge(cls, reports: list["FleetReport"]) -> "FleetReport":
        """Merge sharded runs into one canonical report.

        Stable: entries are ordered by binary name, so the merged report
        is independent of how the fleet was partitioned into shards (as
        long as binary names are unique across shards).
        """
        merged = cls()
        for report in reports:
            merged.entries.extend(report.entries)
            merged.skipped.extend(report.skipped)
            for key, value in report.interface_stats.items():
                merged.interface_stats[key] = (
                    merged.interface_stats.get(key, 0) + value
                )
            for key, value in report.artifact_stats.items():
                merged.artifact_stats[key] = (
                    merged.artifact_stats.get(key, 0) + value
                )
        merged.entries.sort(key=lambda e: e.name)
        merged.skipped.sort()
        return merged


# ----------------------------------------------------------------------
# Worker-process plumbing (module level: must be picklable by name)
# ----------------------------------------------------------------------

_worker_state: dict = {}


def _init_worker(config: dict) -> None:
    """Build this worker's analyzer once; reused for every task.

    The parent already ran the interface phase, so the warmed
    interfaces arrive pre-computed in ``config`` and are seeded into
    this worker's in-memory store — workers never re-analyze (or even
    disk-load) a library.
    """
    resolver = LibraryResolver.from_spec(config["resolver"])
    store = InterfaceStore()
    for interface in config["interfaces"]:
        store.put(interface)
    # Incremental workers reopen the shared artifact store by path spec
    # (stores hold open directory state and are not picklable).
    artifact_store = None
    spec = config.get("artifacts")
    if spec is not None:
        if spec.get("roots"):
            artifact_store = ShardedArtifactStore(
                spec.get("cache_dir", ""), roots=list(spec["roots"]),
            )
        else:
            artifact_store = ArtifactStore(spec["cache_dir"])
    _worker_state["analyzer"] = BSideAnalyzer(
        resolver=resolver,
        budget=config["budget"],
        interface_store=store,
        detect_wrappers=config["detect_wrappers"],
        directed_search=config["directed_search"],
        use_active_addresses_taken=config["use_active_addresses_taken"],
        indirect_signatures=config.get("indirect_signatures", True),
        incremental=config.get("incremental", False),
        artifact_store=artifact_store,
    )


def _worker_analyze(name: str, data: bytes) -> tuple:
    analyzer: BSideAnalyzer = _worker_state["analyzer"]
    store = analyzer.interfaces
    hits0 = getattr(store, "hits", 0)
    misses0 = getattr(store, "misses", 0)
    runs0 = pipeline_runs()
    started = time.perf_counter()
    outcome = analyzer.analyze(LoadedImage.from_bytes(name, data))
    return (
        outcome,
        time.perf_counter() - started,
        getattr(store, "hits", 0) - hits0,
        getattr(store, "misses", 0) - misses0,
        # this worker's pipeline executions, folded into the parent's
        # counter so pipeline_runs() stays truthful across fan-out
        pipeline_runs() - runs0,
    )


class FleetAnalyzer:
    """Parallel batch driver over a shared :class:`BSideAnalyzer`.

    Library interfaces are computed once and reused across the whole
    fleet (the §4.5 amortisation); with ``cache_dir`` they also survive
    across runs and are shared with worker processes.
    """

    def __init__(
        self,
        resolver: LibraryResolver | None = None,
        budget: AnalysisBudget | None = None,
        *,
        workers: int = 1,
        cache_dir: str | None = None,
        interface_store: InterfaceStore | None = None,
        artifact_store: ArtifactStore | None = None,
        incremental: bool = False,
        indirect_signatures: bool = True,
        on_entry=None,
        analyzer=None,
    ):
        self.resolver = resolver if resolver is not None else LibraryResolver()
        self.budget = budget if budget is not None else AnalysisBudget()
        self.workers = max(1, int(workers))
        self.cache_dir = cache_dir
        #: run the function-granular incremental assembler per binary
        self.incremental = bool(incremental)
        #: optional ``callable(index, FleetEntry)`` progress hook, invoked
        #: once per binary as its outcome lands (cached entries first,
        #: then analyzed ones); ``index`` is the binary's position in the
        #: input list, so callers map outcomes back to submissions even
        #: when names collide (the service executor finishes jobs from
        #: it, making cache-served jobs pollable while the batch is
        #: still running); hook exceptions are the caller's
        self.on_entry = on_entry
        self.artifacts = artifact_store
        if self.artifacts is None and cache_dir is not None:
            self.artifacts = ArtifactStore(cache_dir)
        if analyzer is not None:
            # Injected tool (a baseline analyzer, or a pre-configured
            # BSideAnalyzer): anything exposing ``analyze(image) ->
            # AnalysisReport``.  Capability-dependent phases degrade
            # gracefully: interface warm-up and report-artifact traffic
            # only run when the tool supports them, and process fan-out
            # requires a BSideAnalyzer (whose config workers can rebuild).
            self.analyzer = analyzer
        else:
            if interface_store is None:
                interface_store = (
                    PersistentInterfaceStore(store=self.artifacts)
                    if self.artifacts is not None
                    else InterfaceStore()
                )
            # NB: the fleet owns report-artifact traffic (phase 1), so the
            # analyzer gets no artifact store of its own — per-binary
            # lookups would otherwise be double-counted.  Incremental mode
            # is the exception: the analyzer needs the store for its
            # per-function ``funccfg`` products, at the cost of duplicate
            # report-counter traffic (runtime-only fields).
            self.analyzer = BSideAnalyzer(
                resolver=self.resolver,
                budget=self.budget,
                interface_store=interface_store,
                incremental=self.incremental,
                indirect_signatures=indirect_signatures,
                artifact_store=self.artifacts if self.incremental else None,
            )

    @property
    def interfaces(self) -> InterfaceStore | None:
        return getattr(self.analyzer, "interfaces", None)

    # ------------------------------------------------------------------
    # Phase 1: shared-library interfaces, leaves first
    # ------------------------------------------------------------------

    def _library_schedule(self, images: list[LoadedImage]) -> list[LoadedImage]:
        """Topological order of the *union* dependency DAG, leaves first.

        Each image's own closure is already topologically sorted; because
        closures are transitively closed, concatenating them with
        name-deduplication preserves the leaves-first invariant for the
        union.
        """
        seen: set[str] = set()
        schedule: list[LoadedImage] = []
        for image in images:
            if not image.needed:
                continue
            try:
                closure = self.resolver.topological_order(image)
            except LoaderError:
                # Unresolvable/cyclic deps: per-binary analysis reports
                # the failure with the proper failed AnalysisReport.
                continue
            for dep in closure:
                if dep.name not in seen:
                    seen.add(dep.name)
                    schedule.append(dep)
        return schedule

    def warm_interfaces(self, images: list[LoadedImage]) -> int:
        """Populate the interface store for every library the fleet needs.

        Returns the number of distinct libraries in the schedule.  After
        this returns, per-binary analysis (local or in a worker) performs
        no library analysis at all — it finds every interface in the
        store (workers receive them pre-computed via the pool
        initializer), so the store's hit/miss counters describe the
        entire run.

        Tools without a shared-interface phase (the injected baseline
        analyzers vacuum whole images per binary) have nothing to warm.
        """
        if not hasattr(self.analyzer, "analyze_library"):
            return 0
        schedule = self._library_schedule(images)
        for library in schedule:
            try:
                self.analyzer.analyze_library(library)
            except (BudgetExceeded, CfgError, DecodeError, ElfError,
                    LoaderError) as error:
                # Leave the interface unbuilt; each dependent binary's
                # own analysis will hit the same error and record it as
                # that binary's failure, matching the serial semantics.
                logger.warning(
                    "fleet: interface analysis of %s failed (%s); "
                    "deferring to per-binary analysis", library.name, error,
                )
        return len(schedule)

    # ------------------------------------------------------------------
    # Phase 2: per-binary fan-out
    # ------------------------------------------------------------------

    @staticmethod
    def _counter_delta(after: dict, before: dict) -> dict:
        """Per-run view of monotonic counters (gauges pass through).

        The service daemon shares one artifact store across every batch
        for its whole lifetime; each run's report must describe *this*
        run, not the daemon-cumulative totals.
        """
        return {
            key: value - before.get(key, 0)
            if key in ("hits", "misses", "invalidations", "writes")
            else value
            for key, value in after.items()
        }

    def analyze_images(self, images: list[LoadedImage]) -> FleetReport:
        report = FleetReport()
        store0 = self.interfaces
        iface_before = (
            store0.stats() if isinstance(store0, PersistentInterfaceStore)
            else {}
        )
        artifacts_before = (
            self.artifacts.counters("report")
            if self.artifacts is not None else {}
        )
        # Phase 1: serve whole reports from the artifact store.
        entries: list[FleetEntry | None] = [None] * len(images)
        pending: list[int] = []
        for index, image in enumerate(images):
            entry = self._cached_entry(image)
            if entry is not None:
                entries[index] = entry
                self._notify(index, entry)
            else:
                pending.append(index)
        # Phases 2+3: interfaces then per-binary fan-out, misses only.
        if pending:
            pending_images = [images[i] for i in pending]
            # Intra-run content dedup: identical bytes submitted under
            # several names (thundering-herd resubmissions, copies in a
            # sweep) are analyzed once; twins get a copy of the result.
            # Same resolver -> same dependency closure, so the copy is
            # exact.  Decided before fan-out, so results stay identical
            # across worker counts.
            unique_pos: list[int] = []
            twin_of: dict[int, int] = {}
            first_pos: dict[str, int] = {}
            for pos, image in enumerate(pending_images):
                digest = image.content_hash
                if digest in first_pos:
                    twin_of[pos] = first_pos[digest]
                else:
                    first_pos[digest] = pos
                    unique_pos.append(pos)
            unique_images = [pending_images[p] for p in unique_pos]
            self.warm_interfaces(unique_images)
            if self.workers > 1:
                fresh = self._analyze_parallel(unique_images)
                if fresh is None:  # resolver not shareable: degrade politely
                    fresh = [self._analyze_one(img) for img in unique_images]
            else:
                fresh = [self._analyze_one(img) for img in unique_images]
            analyzed: list[FleetEntry | None] = [None] * len(pending_images)
            for pos, entry in zip(unique_pos, fresh):
                analyzed[pos] = entry
            for pos, rep_pos in twin_of.items():
                analyzed[pos] = self._twin_entry(
                    pending_images[pos], analyzed[rep_pos],
                )
            for index, entry in zip(pending, analyzed):
                entries[index] = entry
                self._store_entry(images[index], entry)
                self._notify(index, entry)
        report.entries = entries  # type: ignore[assignment]
        store = self.interfaces
        if isinstance(store, PersistentInterfaceStore):
            report.interface_stats = self._counter_delta(
                store.stats(), iface_before,
            )
        if self.artifacts is not None:
            report.artifact_stats = self._counter_delta(
                self.artifacts.counters("report"), artifacts_before,
            )
        return report

    # ------------------------------------------------------------------
    # Phase 1: whole-report artifacts
    # ------------------------------------------------------------------

    def _notify(self, index: int, entry: FleetEntry) -> None:
        if self.on_entry is not None:
            self.on_entry(index, entry)

    def _cached_entry(self, image: LoadedImage) -> FleetEntry | None:
        """Serve one binary's report from the artifact store, if valid.

        Lookup is keyed by name first, then by content hash (a renamed
        copy of an already-analyzed binary still hits; see
        :meth:`ArtifactStore.find_name`).  The lookup is timed into the
        entry so service metrics show what a warm request actually cost.
        """
        if self.artifacts is None or not hasattr(self.analyzer, "load_cached_report"):
            return None
        started = time.perf_counter()
        report = self.analyzer.load_cached_report(image, store=self.artifacts)
        if report is None:
            return None
        return FleetEntry(
            name=image.name, report=report, from_cache=True,
            seconds=time.perf_counter() - started,
        )

    def _store_entry(self, image: LoadedImage, entry: FleetEntry) -> None:
        if self.artifacts is None or not hasattr(self.analyzer, "store_report"):
            return
        self.analyzer.store_report(image, None, entry.report, store=self.artifacts)

    def _twin_entry(self, image: LoadedImage, entry: FleetEntry) -> FleetEntry:
        """A duplicate submission's entry: its twin's report, renamed.

        ``from_cache`` is set — no analysis ran for this binary — so
        service metrics and the warm-path assertions treat dedup-served
        entries like store-served ones.
        """
        report = AnalysisReport.from_doc(entry.report.to_doc())
        report.binary = image.name
        return FleetEntry(name=image.name, report=report, from_cache=True)

    def _analyze_one(self, image: LoadedImage) -> FleetEntry:
        store = self.interfaces
        hits0 = getattr(store, "hits", 0)
        misses0 = getattr(store, "misses", 0)
        started = time.perf_counter()
        outcome = self.analyzer.analyze(image)
        return FleetEntry(
            name=image.name,
            report=outcome,
            seconds=time.perf_counter() - started,
            cache_hits=getattr(store, "hits", 0) - hits0,
            cache_misses=getattr(store, "misses", 0) - misses0,
        )

    def _artifact_spec(self) -> dict | None:
        """A picklable recipe worker processes reopen the store from."""
        if self.artifacts is None:
            return None
        if isinstance(self.artifacts, ShardedArtifactStore):
            return {
                "cache_dir": self.artifacts.cache_dir,
                "roots": list(self.artifacts.roots),
            }
        return {"cache_dir": self.artifacts.cache_dir}

    def _analyze_parallel(
        self, images: list[LoadedImage]
    ) -> list[FleetEntry] | None:
        if not isinstance(self.analyzer, BSideAnalyzer):
            logger.warning(
                "fleet: injected analyzer %s cannot be rebuilt in worker "
                "processes; falling back to serial analysis",
                type(self.analyzer).__name__,
            )
            return None
        spec = self.resolver.spec()
        if spec is None:
            logger.warning(
                "fleet: resolver cannot be shipped to worker processes "
                "(callable provider or raw-less cached image); "
                "falling back to serial analysis"
            )
            return None
        config = {
            "resolver": spec,
            "budget": self.analyzer.budget,
            "interfaces": self.analyzer.interfaces.all_interfaces(),
            "detect_wrappers": self.analyzer.detect_wrappers,
            "directed_search": self.analyzer.directed_search,
            "use_active_addresses_taken":
                self.analyzer.use_active_addresses_taken,
            "indirect_signatures": self.analyzer.indirect_signatures,
            "incremental": self.incremental,
            "artifacts": self._artifact_spec() if self.incremental else None,
        }
        entries: list[FleetEntry | None] = [None] * len(images)
        remote: list[tuple[int, LoadedImage]] = []
        inline: list[int] = []
        for index, image in enumerate(images):
            if image.raw:
                remote.append((index, image))
            else:
                inline.append(index)
        with ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=(config,),
        ) as pool:
            futures = [
                (index, pool.submit(_worker_analyze, image.name, image.raw))
                for index, image in remote
            ]
            # Images without raw bytes cannot cross the process boundary;
            # analyze them here while the pool works.
            for index in inline:
                entries[index] = self._analyze_one(images[index])
            for index, future in futures:
                outcome, seconds, hits, misses, runs = future.result()
                add_runs(runs)
                entries[index] = FleetEntry(
                    name=images[index].name,
                    report=outcome,
                    seconds=seconds,
                    cache_hits=hits,
                    cache_misses=misses,
                )
        return entries  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Directory sweep
    # ------------------------------------------------------------------

    def analyze_directory(self, directory: str) -> FleetReport:
        """Analyze every regular file in ``directory`` that parses as ELF.

        Non-ELF files are recorded in :attr:`FleetReport.skipped` and
        logged, like a ``file(1)`` sweep that reports what it passed over.
        """
        images: list[LoadedImage] = []
        skipped: list[str] = []
        for filename in sorted(os.listdir(directory)):
            path = os.path.join(directory, filename)
            if not os.path.isfile(path):
                continue
            try:
                images.append(LoadedImage.from_path(path))
            except (ElfError, ValueError):
                skipped.append(filename)
                logger.info("fleet: skipping non-ELF file %s", path)
        report = self.analyze_images(images)
        report.skipped = skipped
        return report
