"""System call wrapper detection — the two-phase heuristic of §4.4.

A *wrapper* is a function whose syscall number is **not** determined
between the function's entry and the syscall site — it arrives as a
parameter (glibc's ``syscall()``, Go/Rust runtime wrappers, musl
internals).  Detection:

Phase 1 (fast, may over-approximate): a register use-define scan walking
backwards from the site within the function.  If ``%rax`` resolves to an
immediate through register moves only, the function is *not* a wrapper;
memory loads or a definition gap make it a *candidate*.

Phase 2 (precise, costly): forward symbolic execution from the function
entry to the site.  If ``%rax`` is still symbolic at the site, the
function is definitively a wrapper, and the symbol's identity reveals
which parameter carries the number: an untouched argument register
(``init_rdi``...) or an incoming stack slot (``stackarg_8``...).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfg.model import CFG
from ..symex.bitvec import BVS
from ..symex.engine import ExecContext
from ..symex.explorer import explore, query_rax
from ..symex.state import MemoryBackend
from ..x86.insn import Immediate, Instruction, Memory
from ..x86.registers import Register
from .sites import SyscallSite

#: registers that can carry a wrapper's number parameter (SysV argument
#: registers; rax itself is excluded, r10 appears in syscall-arg shuffles).
_PARAM_REGISTERS = ("rdi", "rsi", "rdx", "rcx", "r8", "r9", "r10")


@dataclass(frozen=True, slots=True)
class WrapperInfo:
    """A detected wrapper and where its number parameter lives."""

    func_entry: int
    #: ("reg", "rdi") or ("stack", byte offset from entry rsp) or None when
    #: the parameter could not be localised (analyzer over-approximates).
    param: tuple[str, object] | None

    @property
    def resolvable(self) -> bool:
        return self.param is not None


def wrapper_record(func_entry: int, info: WrapperInfo | None) -> dict:
    """One classification's cacheable form (wrappers table / funcid entry)."""
    return {
        "entry": func_entry,
        "wrapper": info is not None,
        "param": (
            list(info.param)
            if info is not None and info.param is not None
            else None
        ),
    }


def wrapper_from_record(doc: dict) -> tuple[int, WrapperInfo | None]:
    """Invert :func:`wrapper_record`; raises on malformed shapes so the
    caller can degrade the containing artifact to a miss."""
    func_entry = int(doc["entry"])
    if doc["param"] is None and not doc["wrapper"]:
        return func_entry, None
    param = doc["param"]
    return func_entry, WrapperInfo(
        func_entry=func_entry,
        param=tuple(param) if param is not None else None,
    )


def _function_insns_before(cfg: CFG, site: SyscallSite) -> list[Instruction]:
    """Instructions of the containing function at lower addresses than the
    site, in address order (the phase-1 linear approximation)."""
    func = cfg.functions[site.func_entry]
    insns: list[Instruction] = []
    for addr in sorted(func.block_addrs):
        for insn in cfg.blocks[addr].insns:
            if insn.addr < site.insn_addr:
                insns.append(insn)
    return insns


def phase1_use_define_scan(cfg: CFG, site: SyscallSite) -> bool:
    """Phase 1: True when the function *may* be a wrapper.

    Walks the function's instructions backwards from the site, resolving
    ``%rax`` through register-to-register moves.  Memory operands or a
    missing definition leave the value undetermined -> candidate wrapper.
    """
    insns = _function_insns_before(cfg, site)
    wanted = "rax"
    for insn in reversed(insns):
        if insn.mnemonic in ("mov", "movabs") and len(insn.operands) == 2:
            dst, src = insn.operands
            if isinstance(dst, Register) and dst.name == wanted:
                if isinstance(src, Immediate):
                    return False  # determined by an immediate
                if isinstance(src, Register):
                    wanted = src.name  # chase the chain
                    continue
                return True  # loaded from memory: undetermined here
        elif insn.mnemonic == "xor" and len(insn.operands) == 2:
            dst, src = insn.operands
            if (
                isinstance(dst, Register) and dst.name == wanted
                and isinstance(src, Register) and src.name == dst.name
            ):
                return False  # zeroing idiom: rax = 0
        elif insn.mnemonic == "pop" and insn.operands \
                and isinstance(insn.operands[0], Register) \
                and insn.operands[0].name == wanted:
            return True  # from the stack: undetermined
        elif insn.is_call:
            if wanted == "rax":
                return True  # call clobbers rax; value from callee (unknown)
    return True  # never defined inside the function


def phase2_symbolic_confirm(
    cfg: CFG,
    ctx: ExecContext,
    site: SyscallSite,
    backend: MemoryBackend | None = None,
    max_steps: int = 4000,
) -> WrapperInfo | None:
    """Phase 2: symbolic execution from entry to the site.

    Returns a :class:`WrapperInfo` when ``%rax`` is symbolic at the site
    (i.e. the function IS a wrapper), otherwise None.
    """
    func = cfg.functions[site.func_entry]
    collected = []

    def capture(state):
        expr = query_rax(state)
        collected.append(expr)
        return expr

    result = explore(
        ctx,
        func.entry,
        site.insn_addr,
        capture,
        backend=backend,
        max_steps=max_steps,
        state_tag="init",
    )
    if result.paths_completed == 0:
        # Could not reach the site (unusual control flow); be conservative
        # and do not classify as wrapper.
        return None
    symbolic = [e for e in collected if e.value_or_none() is None]
    if not symbolic:
        return None

    param = _param_location(symbolic[0])
    return WrapperInfo(func_entry=func.entry, param=param)


def _param_location(expr) -> tuple[str, object] | None:
    """Map a symbolic rax expression to a parameter location."""
    if isinstance(expr, BVS):
        if expr.name.startswith("init_"):
            reg = expr.name[len("init_"):]
            if reg in _PARAM_REGISTERS:
                return ("reg", reg)
        if expr.name.startswith("stackarg_"):
            offset = int(expr.name[len("stackarg_"):])
            return ("stack", offset)
    return None


def detect_wrapper(
    cfg: CFG,
    ctx: ExecContext,
    site: SyscallSite,
    backend: MemoryBackend | None = None,
    max_steps: int = 4000,
) -> WrapperInfo | None:
    """Full two-phase wrapper detection for the function containing ``site``.

    Phase 2 (symbolic, expensive) only runs when phase 1 flags a candidate
    — the paper's design to "minimize reliance on computationally-expensive
    symbolic execution".
    """
    if not phase1_use_define_scan(cfg, site):
        return None
    return phase2_symbolic_confirm(cfg, ctx, site, backend, max_steps)
