"""Content-addressed, multi-kind analysis artifact store.

PR 1's :class:`~repro.core.ifacecache.PersistentInterfaceStore` persisted
one artifact kind — per-library shared interfaces — so a warm fleet run
skipped *library* analysis but still re-analyzed every executable.  The
:class:`ArtifactStore` generalises that design to every cacheable product
of the pass pipeline:

========  ====================================================
kind      payload
========  ====================================================
iface     a library's §4.5 :class:`SharedInterface` JSON
cfg       a binary's recovered-CFG summary (:meth:`CFG.summary`)
wrappers  a binary's confirmed wrapper table (entry → parameter)
report    a binary's full :class:`AnalysisReport` JSON
gtruth    a binary's emulated ground-truth syscall set (§5.1),
          keyed by the input-vector suite it was traced under
funccfg   one function region's CFG product (block starts + local
          reachability), keyed by the region's Merkle *closure*
          hash (:mod:`repro.cfg.funccfg`) in the content-hash slot
funcid    one function region's identification products (syscall
          sites, wrapper classifications, per-site identified
          values + budget records), keyed by the combined
          callee-closure + caller-cone hash (:mod:`repro.core.funcid`)
========  ====================================================

Every entry is keyed defensively by four components:

* **content hash** — ``LoadedImage.content_hash`` of the subject binary.
  A rebuilt binary never matches a stale entry; a renamed-but-identical
  one still hits.
* **pipeline-config fingerprint** — a digest of the analyzer's pass
  list, ablation flags, and budgets (see
  :meth:`repro.core.pipeline.PipelineConfig.fingerprint`).  Changing any
  pipeline knob misses instead of serving a result the current
  configuration would not produce.
* **dependency hashes** — the content hashes of the subject's shared
  library closure (and dlopen modules).  An upgraded libc invalidates
  every cached executable report that linked it.
* **cache version** — :data:`CACHE_VERSION`, bumped whenever the
  envelope format or the analysis itself changes incompatibly.

Corrupted or mismatched entries are deleted and treated as misses, never
as errors; writes are atomic (write + rename) so concurrent readers
never observe torn files.
"""

from __future__ import annotations

import hashlib
import json
import os
import re

#: Bump when analyzer or envelope changes invalidate previous artifacts.
#: (1 = PR 1's interface-only envelope; 2 = the multi-kind envelope with
#: config fingerprints and dependency hashes; 3 = ``funccfg``/``funcid``
#: payloads carry the entry argument signature.)
CACHE_VERSION = 3

#: Recognised artifact kinds and the envelope field each payload lives in.
ARTIFACT_KINDS: dict[str, str] = {
    "iface": "interface",
    "cfg": "cfg_summary",
    "wrappers": "wrapper_table",
    "report": "report",
    "gtruth": "ground_truth",
    "funccfg": "function_cfg",
    "funcid": "function_id",
}

_SAFE_NAME = re.compile(r"[^A-Za-z0-9._+-]")


def _safe_filename(name: str, kind: str) -> str:
    """Map (name, kind) to a filesystem-safe, collision-free filename.

    Sanitising alone could alias distinct names (``lib@1.so`` and
    ``lib#1.so`` both becoming ``lib_1.so``), which would make the two
    entries perpetually invalidate each other; a short digest of the raw
    name keeps the mapping injective.
    """
    tag = hashlib.sha256(name.encode()).hexdigest()[:8]
    return f"{_SAFE_NAME.sub('_', name)}.{tag}.{kind}.json"


def fingerprint_doc(doc: dict) -> str:
    """Stable digest of a JSON-able configuration document."""
    canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class ArtifactStore:
    """Disk-backed store of per-binary analysis artifacts.

    Layout: one ``<name>.<tag>.<kind>.json`` file per entry under
    ``cache_dir``, wrapping the payload in an envelope::

        {"cache_version": 2, "kind": "report", "name": "…",
         "content_hash": "…", "config_fingerprint": "…",
         "dep_hashes": ["…", …], "report": {…}}

    ``get`` validates every envelope field the caller supplies; a
    mismatch deletes the entry and counts as an invalidation + miss.
    Passing ``None`` for a component skips that check (used by
    introspection commands that have no image at hand).
    """

    def __init__(self, cache_dir: str, *, version: int = CACHE_VERSION) -> None:
        self.cache_dir = cache_dir
        self.version = version
        os.makedirs(cache_dir, exist_ok=True)
        #: per-kind counters: kind -> {"hits": n, "misses": n, ...}
        self._counters: dict[str, dict[str, int]] = {
            kind: {"hits": 0, "misses": 0, "invalidations": 0, "writes": 0}
            for kind in ARTIFACT_KINDS
        }
        #: lazy per-kind index: kind -> {content_hash: entry name}
        self._hash_index: dict[str, dict[str, str]] = {}

    # ------------------------------------------------------------------
    # Core get/put
    # ------------------------------------------------------------------

    def _path(self, kind: str, name: str) -> str:
        return os.path.join(self.cache_dir, _safe_filename(name, kind))

    def _payload_field(self, kind: str) -> str:
        try:
            return ARTIFACT_KINDS[kind]
        except KeyError:
            raise ValueError(f"unknown artifact kind {kind!r}") from None

    def get(
        self,
        kind: str,
        name: str,
        *,
        content_hash: str | None = None,
        fingerprint: str | None = None,
        dep_hashes: list[str] | None = None,
    ) -> dict | list | None:
        """Load one validated payload; ``None`` (and cleanup) when unusable.

        A key mismatch deletes the entry: callers of ``get`` own their
        names (per-pass artifacts, the interface cache).  Serving paths
        shared by many clients use :meth:`lookup`, which never deletes.
        """
        field = self._payload_field(kind)
        path = self._path(kind, name)
        counters = self._counters[kind]
        if not os.path.exists(path):
            counters["misses"] += 1
            return None
        try:
            with open(path) as f:
                envelope = json.load(f)
            version = envelope["cache_version"]
            entry_hash = envelope["content_hash"]
            entry_fingerprint = envelope["config_fingerprint"]
            entry_deps = envelope["dep_hashes"]
            payload = envelope[field]
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            self.invalidate(kind, name)
            counters["misses"] += 1
            return None
        stale = (
            version != self.version
            or (content_hash is not None and content_hash != entry_hash)
            or (fingerprint is not None and fingerprint != entry_fingerprint)
            or (dep_hashes is not None and list(dep_hashes) != entry_deps)
        )
        if stale:
            self.invalidate(kind, name)
            counters["misses"] += 1
            return None
        counters["hits"] += 1
        return payload

    def put(
        self,
        kind: str,
        name: str,
        payload: dict | list,
        *,
        content_hash: str = "",
        fingerprint: str = "",
        dep_hashes: list[str] | None = None,
    ) -> None:
        field = self._payload_field(kind)
        envelope = {
            "cache_version": self.version,
            "kind": kind,
            "name": name,
            "content_hash": content_hash,
            "config_fingerprint": fingerprint,
            "dep_hashes": list(dep_hashes or []),
            field: payload,
        }
        path = self._path(kind, name)
        tmp = path + ".tmp"
        with open(tmp, "w") as f:
            json.dump(envelope, f, indent=2)
        os.replace(tmp, path)  # atomic: readers never see a torn write
        self._counters[kind]["writes"] += 1
        if content_hash and kind in self._hash_index:
            self._hash_index[kind][content_hash] = name

    def _validated_payload(
        self,
        kind: str,
        name: str,
        *,
        content_hash: str | None,
        fingerprint: str | None,
        dep_hashes: list[str] | None,
    ) -> dict | list | None:
        """The entry's payload iff it exists and matches every supplied
        key component; no counters, and mismatches are left on disk
        (unparseable envelopes are still removed — they are garbage
        under every key)."""
        field = self._payload_field(kind)
        path = self._path(kind, name)
        if not os.path.exists(path):
            return None
        try:
            with open(path) as f:
                envelope = json.load(f)
            version = envelope["cache_version"]
            entry_hash = envelope["content_hash"]
            entry_fingerprint = envelope["config_fingerprint"]
            entry_deps = envelope["dep_hashes"]
            payload = envelope[field]
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            self.invalidate(kind, name)
            return None
        stale = (
            version != self.version
            or (content_hash is not None and content_hash != entry_hash)
            or (fingerprint is not None and fingerprint != entry_fingerprint)
            or (dep_hashes is not None and list(dep_hashes) != entry_deps)
        )
        return None if stale else payload

    def lookup(
        self,
        kind: str,
        name: str,
        *,
        content_hash: str,
        fingerprint: str | None = None,
        dep_hashes: list[str] | None = None,
    ) -> dict | list | None:
        """Serving-path lookup: name fast path, then content-hash alias.

        Unlike :meth:`get`, this is built for caches shared by many
        clients (the fleet engine and the service daemon):

        * exactly **one** hit or miss is counted per lookup, however it
          resolves — a renamed warm fleet reads as warm, not half-cold;
        * mismatched entries are **never deleted** — a different binary
          that happens to share a basename must not evict another
          client's valid entry (perpetual thrash), and an alias probe
          must not destroy an entry still valid under its own key;
        * when the name-keyed entry does not match, the same validation
          is retried under the name the content hash was cached as.
        """
        counters = self._counters[kind]
        payload = self._validated_payload(
            kind, name, content_hash=content_hash,
            fingerprint=fingerprint, dep_hashes=dep_hashes,
        )
        if payload is None and content_hash:
            alias = self.find_name(kind, content_hash)
            if alias is not None and alias != name:
                payload = self._validated_payload(
                    kind, alias, content_hash=content_hash,
                    fingerprint=fingerprint, dep_hashes=dep_hashes,
                )
        if payload is None:
            counters["misses"] += 1
            return None
        counters["hits"] += 1
        return payload

    def find_name(self, kind: str, content_hash: str) -> str | None:
        """Name of a ``kind`` entry whose subject has this content hash.

        Content-hash lookup lets a renamed-but-identical submission hit
        the cache (the service serves warm resubmissions regardless of
        the file name the client chose).  The caller still goes through
        :meth:`get` with the returned name, so fingerprint and dependency
        validation are never bypassed.  Backed by a lazy per-kind index
        rebuilt by scanning the entry envelopes once and kept current by
        :meth:`put`; invalidation drops the index conservatively.
        """
        self._payload_field(kind)  # validate the kind name
        index = self._hash_index.get(kind)
        if index is None:
            index = {}
            for filename in self._entry_files(kind):
                try:
                    with open(os.path.join(self.cache_dir, filename)) as f:
                        envelope = json.load(f)
                    if envelope.get("kind") == kind and envelope["content_hash"]:
                        index[envelope["content_hash"]] = envelope["name"]
                except (OSError, json.JSONDecodeError, KeyError, TypeError):
                    continue
            self._hash_index[kind] = index
        return index.get(content_hash)

    # ------------------------------------------------------------------
    # Invalidation / pruning
    # ------------------------------------------------------------------

    def invalidate(self, kind: str, name: str) -> None:
        """Drop one entry if present."""
        path = self._path(kind, name)
        self._hash_index.pop(kind, None)
        if os.path.exists(path):
            os.remove(path)
            self._counters[kind]["invalidations"] += 1

    def _entry_files(self, kind: str | None = None) -> list[str]:
        kinds = ARTIFACT_KINDS if kind is None else (kind,)
        suffixes = tuple(f".{k}.json" for k in kinds)
        return sorted(
            filename
            for filename in os.listdir(self.cache_dir)
            if filename.endswith(suffixes)
        )

    def prune(self, kind: str | None = None) -> int:
        """Delete every entry of ``kind`` (all kinds when None); returns
        the number of files removed."""
        if kind is not None:
            self._payload_field(kind)  # validate the kind name
            self._hash_index.pop(kind, None)
        else:
            self._hash_index.clear()
        removed = 0
        for filename in self._entry_files(kind):
            os.remove(os.path.join(self.cache_dir, filename))
            removed += 1
        return removed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def counters(self, kind: str) -> dict[str, int]:
        return dict(self._counters[kind])

    def stats(self) -> dict:
        """Per-kind disk usage + session counters (the ``bside cache
        stats`` document)."""
        out: dict = {"cache_dir": self.cache_dir, "version": self.version}
        kinds: dict[str, dict] = {}
        for kind in ARTIFACT_KINDS:
            files = self._entry_files(kind)
            size = sum(
                os.path.getsize(os.path.join(self.cache_dir, f))
                for f in files
            )
            kinds[kind] = {
                "entries": len(files),
                "bytes": size,
                **self._counters[kind],
            }
        out["kinds"] = kinds
        out["total_entries"] = sum(k["entries"] for k in kinds.values())
        out["total_bytes"] = sum(k["bytes"] for k in kinds.values())
        return out


class ShardedArtifactStore:
    """N flat :class:`ArtifactStore` roots behind content-hash placement.

    Placement is **deterministic, total, and rebalance-free**: an entry
    whose subject has content hash ``h`` lives in shard
    ``int(h, 16) % shards``, so every writer and every reader — worker
    processes, the service front end, the CLI — agrees on the location
    without any coordination or directory state.  Entries written
    without a content hash (rare introspection payloads) fall back to
    the same placement applied to a digest of the entry *name*, which
    is equally deterministic.

    Shard roots default to ``<cache_dir>/shard-00 … shard-NN`` but can
    be any list of directories (one per node, one per disk).  The class
    mirrors the flat store's full surface — ``get``/``put``/``lookup``/
    ``find_name``/``invalidate``/``prune``/``counters``/``stats`` — so
    every existing consumer (fleet engine, interface cache, service
    executor, ``bside cache``) works unchanged; ``stats`` aggregates
    across shards and adds a per-shard breakdown.
    """

    def __init__(
        self,
        cache_dir: str,
        shards: int = 2,
        *,
        roots: list[str] | None = None,
        version: int = CACHE_VERSION,
    ) -> None:
        if roots is not None:
            if not roots:
                raise ValueError("ShardedArtifactStore needs at least one root")
            self.roots = [os.path.abspath(r) for r in roots]
        else:
            shards = max(1, int(shards))
            self.roots = [
                os.path.join(cache_dir, f"shard-{index:02d}")
                for index in range(shards)
            ]
        self.cache_dir = cache_dir
        self.version = version
        self.shards = [ArtifactStore(root, version=version) for root in self.roots]

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def shard_index(self, content_hash: str | None, name: str = "") -> int:
        """The shard an entry keyed by ``content_hash`` (or, failing
        that, ``name``) lives in.  Total: every key routes somewhere."""
        if content_hash:
            try:
                return int(content_hash, 16) % len(self.shards)
            except ValueError:
                # Non-hex hashes still place deterministically.
                content_hash = ""
        digest = hashlib.sha256((content_hash or name).encode()).hexdigest()
        return int(digest, 16) % len(self.shards)

    def shard_for(self, content_hash: str | None, name: str = "") -> ArtifactStore:
        return self.shards[self.shard_index(content_hash, name)]

    def _shard_holding(self, kind: str, name: str) -> ArtifactStore | None:
        """The first shard with an entry file for (kind, name) — used by
        name-only reads, where the content hash (and with it the home
        shard) is unknown."""
        for shard in self.shards:
            if os.path.exists(shard._path(kind, name)):  # noqa: SLF001
                return shard
        return None

    # ------------------------------------------------------------------
    # Store surface (delegated by placement)
    # ------------------------------------------------------------------

    def put(
        self,
        kind: str,
        name: str,
        payload: dict | list,
        *,
        content_hash: str = "",
        fingerprint: str = "",
        dep_hashes: list[str] | None = None,
    ) -> None:
        self.shard_for(content_hash, name).put(
            kind, name, payload, content_hash=content_hash,
            fingerprint=fingerprint, dep_hashes=dep_hashes,
        )

    def get(
        self,
        kind: str,
        name: str,
        *,
        content_hash: str | None = None,
        fingerprint: str | None = None,
        dep_hashes: list[str] | None = None,
    ) -> dict | list | None:
        if content_hash:
            shard = self.shard_for(content_hash, name)
        else:
            # Name-only probe: find the entry wherever its (unknown)
            # content hash placed it; counters land on the holding
            # shard, or on the name-placed shard for a clean miss.
            shard = self._shard_holding(kind, name) or self.shard_for(None, name)
        return shard.get(
            kind, name, content_hash=content_hash,
            fingerprint=fingerprint, dep_hashes=dep_hashes,
        )

    def lookup(
        self,
        kind: str,
        name: str,
        *,
        content_hash: str,
        fingerprint: str | None = None,
        dep_hashes: list[str] | None = None,
    ) -> dict | list | None:
        # Identical bytes always route to one shard, so the per-shard
        # content-hash alias index keeps working: a renamed resubmission
        # lands on the shard that already holds its report.
        return self.shard_for(content_hash, name).lookup(
            kind, name, content_hash=content_hash,
            fingerprint=fingerprint, dep_hashes=dep_hashes,
        )

    def find_name(self, kind: str, content_hash: str) -> str | None:
        return self.shard_for(content_hash).find_name(kind, content_hash)

    def invalidate(self, kind: str, name: str) -> None:
        for shard in self.shards:
            shard.invalidate(kind, name)

    def prune(self, kind: str | None = None) -> int:
        return sum(shard.prune(kind) for shard in self.shards)

    # ------------------------------------------------------------------
    # Introspection (aggregated)
    # ------------------------------------------------------------------

    def counters(self, kind: str) -> dict[str, int]:
        totals: dict[str, int] = {}
        for shard in self.shards:
            for key, value in shard.counters(kind).items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def stats(self) -> dict:
        """The flat store's document shape, summed across shards, plus
        ``shards``/``shard_roots`` and a per-shard entry breakdown."""
        out: dict = {
            "cache_dir": self.cache_dir,
            "version": self.version,
            "shards": len(self.shards),
            "shard_roots": list(self.roots),
        }
        kinds: dict[str, dict] = {}
        per_shard: list[dict] = []
        for index, shard in enumerate(self.shards):
            doc = shard.stats()
            per_shard.append({
                "shard": index,
                "root": self.roots[index],
                "entries": doc["total_entries"],
                "bytes": doc["total_bytes"],
            })
            for kind, stats in doc["kinds"].items():
                agg = kinds.setdefault(kind, {})
                for key, value in stats.items():
                    agg[key] = agg.get(key, 0) + value
        out["kinds"] = kinds
        out["per_shard"] = per_shard
        out["total_entries"] = sum(k["entries"] for k in kinds.values())
        out["total_bytes"] = sum(k["bytes"] for k in kinds.values())
        return out
