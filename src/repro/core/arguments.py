"""System call *argument* identification — an extension beyond the paper.

The identification machinery of §4.4 determines the value of ``%rax`` at
a syscall site; nothing restricts it to ``%rax``.  This module points the
same backward-BFS + directed-forward search at the Linux argument
registers (``rdi, rsi, rdx, r10, r8, r9``), recovering concrete argument
values where they are statically determined.

This enables argument-level filtering rules — the finer-grained policies
of the paper's related work (Jenny, C2C): e.g. allowing ``socket`` only
with ``AF_INET``, or ``ioctl`` only with specific request codes.  The
result is an over-approximation with an explicit completeness bit per
argument, exactly like number identification: an argument whose value
cannot be determined must remain unconstrained in any derived rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.model import CFG
from ..symex.backward import SearchBudget, backward_identify
from ..symex.engine import ExecContext
from ..symex.state import MemoryBackend, SymState
from ..x86.registers import SYSCALL_ARG_REGISTERS
from .sites import SyscallSite


@dataclass(slots=True)
class ArgumentValues:
    """Identified values of one argument at one syscall site."""

    site: SyscallSite
    arg_index: int
    register: str
    values: set[int] = field(default_factory=set)
    complete: bool = True

    @property
    def is_constrained(self) -> bool:
        """Whether a rule may constrain this argument soundly."""
        return self.complete and bool(self.values)


def _make_arg_query(register: str):
    def query(state: SymState):
        return state.regs[register]
    return query


def identify_argument(
    cfg: CFG,
    ctx: ExecContext,
    site: SyscallSite,
    arg_index: int,
    backend: MemoryBackend | None = None,
    budget: SearchBudget | None = None,
) -> ArgumentValues:
    """Identify argument ``arg_index`` (0-5) at a plain syscall site."""
    if not 0 <= arg_index < len(SYSCALL_ARG_REGISTERS):
        raise ValueError(f"syscalls take at most 6 arguments, got index {arg_index}")
    register = SYSCALL_ARG_REGISTERS[arg_index].name
    result = backward_identify(
        cfg, ctx, site.block_addr, site.insn_addr,
        _make_arg_query(register), backend=backend, budget=budget,
    )
    return ArgumentValues(
        site=site,
        arg_index=arg_index,
        register=register,
        values=result.values,
        complete=result.complete,
    )


def identify_site_arguments(
    cfg: CFG,
    ctx: ExecContext,
    site: SyscallSite,
    n_args: int = 3,
    backend: MemoryBackend | None = None,
    budget: SearchBudget | None = None,
) -> list[ArgumentValues]:
    """Identify the first ``n_args`` arguments of one site."""
    return [
        identify_argument(cfg, ctx, site, index, backend, budget)
        for index in range(n_args)
    ]


@dataclass(slots=True)
class ArgumentRule:
    """An argument-constrained allow rule: syscall nr + per-arg value sets.

    ``None`` for an argument means unconstrained (its value was not
    statically determined — constraining it would risk false negatives).
    """

    sysno: int
    arg_values: tuple[frozenset[int] | None, ...] = ()

    def permits(self, sysno: int, args: tuple[int, ...]) -> bool:
        if sysno != self.sysno:
            return False
        for constraint, value in zip(self.arg_values, args):
            if constraint is not None and value not in constraint:
                return False
        return True


def build_argument_rules(
    sysno_by_site: dict[SyscallSite, set[int]],
    args_by_site: dict[SyscallSite, list[ArgumentValues]],
) -> list[ArgumentRule]:
    """Combine number and argument identification into allow rules.

    One rule per (site, syscall number); arguments only constrained when
    their identification was complete.
    """
    rules: list[ArgumentRule] = []
    for site, numbers in sysno_by_site.items():
        argvals = args_by_site.get(site, [])
        constraints = tuple(
            frozenset(a.values) if a.is_constrained else None
            for a in argvals
        )
        for nr in sorted(numbers):
            rules.append(ArgumentRule(sysno=nr, arg_values=constraints))
    return rules
