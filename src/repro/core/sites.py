"""System call site discovery (step F in Figure 3).

A site is an occurrence of the ``syscall`` instruction inside a block
reachable from the analysis roots (program entry point, or the exported
functions of a shared library).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfg.model import CFG


@dataclass(frozen=True, slots=True)
class SyscallSite:
    """One reachable ``syscall`` instruction."""

    block_addr: int
    insn_addr: int
    func_entry: int

    def __repr__(self) -> str:
        return f"<site {self.insn_addr:#x} in fn {self.func_entry:#x}>"

    def to_doc(self) -> list[int]:
        """Compact cacheable form (the ``funcid`` artifact's site list)."""
        return [self.block_addr, self.insn_addr, self.func_entry]

    @classmethod
    def from_doc(cls, doc) -> "SyscallSite":
        block_addr, insn_addr, func_entry = (int(v) for v in doc)
        return cls(
            block_addr=block_addr, insn_addr=insn_addr, func_entry=func_entry,
        )


def find_sites(cfg: CFG, reachable: set[int] | None = None) -> list[SyscallSite]:
    """All syscall sites, restricted to ``reachable`` blocks when given.

    Scans only the syscall-bearing blocks cached in the CFG index rather
    than every instruction of every block.
    """
    out: list[SyscallSite] = []
    for addr in cfg.index.syscall_addrs:
        if reachable is not None and addr not in reachable:
            continue
        block = cfg.blocks[addr]
        for insn in block.insns:
            if insn.is_syscall:
                out.append(SyscallSite(
                    block_addr=block.addr,
                    insn_addr=insn.addr,
                    func_entry=block.function,
                ))
    out.sort(key=lambda s: s.insn_addr)
    return out
