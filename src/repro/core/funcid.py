"""Per-function identification products: the ``funcid`` artifact kind.

PR 7 made ``cfg-recovery`` function-granular; this module extends the
same design through the symex stage.  One ``funcid`` entry per function
region caches everything the identification stages concluded about it:

* the region's discovered **syscall sites** (validated against a live
  re-discovery, because reachability is a global fact the per-function
  key cannot certify);
* the **wrapper classifications** of functions owning sites in the
  region (entry -> parameter location, or "confirmed not a wrapper");
* the per-anchor **identification records** — identified syscall
  numbers plus the exact budget spend (nodes/steps) of the backward
  search that produced them, split into *plain* sites (``%rax`` queried
  at the ``syscall``) and *wrapper call* sites (the number parameter
  queried at the ``call``, stored in the **caller's** region).

Keying.  A cached CFG product depends only on a function and its
callees, but identification symex crosses function boundaries in both
directions: forward execution runs *into* callees, and the backward
anchor walk climbs *into* callers (that is the point of wrapper
call-site identification).  The ``funcid`` key therefore folds two
Merkle digests computed by the same Tarjan condensation
(:func:`repro.cfg.funccfg._closure_hashes`):

* the **callee closure hash** (PR 7's key), and
* the **caller-cone digest** — the same machinery run over the
  *reversed* reference graph, folding the body hashes of every
  transitive caller.

Editing a function therefore moves the funcid key of its transitive
callers *and* its transitive callees
(:meth:`repro.cfg.partition.FunctionPartition.identification_cone`);
everything outside that cone replays its cached records through
:meth:`AnalysisContext.record`, which is what keeps incremental reports
byte-identical to cold ones.  Facts the key cannot certify — the
reachable site set, the live call-anchor set, parameter locations —
are re-validated against the stitched CFG on every run; any mismatch
degrades that one region (or that one record) to live re-execution and
the region is re-stored under the current key (self-healing, mirroring
``funccfg``).  Only *aligned* regions are cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.funccfg import ImageScan, product_name
from ..cfg.model import CFG
from ..cfg.signatures import signature_doc
from .artifacts import ArtifactStore
from .identify import SiteIdentification
from .sites import SyscallSite
from .wrappers import WrapperInfo, wrapper_from_record, wrapper_record


@dataclass(slots=True)
class _RegionCache:
    """One region's validated cached payload, indexed for replay."""

    #: func entry -> (entry, WrapperInfo | None), pre-parsed
    wrappers: dict[int, WrapperInfo | None]
    #: (block, insn) -> raw plain-site record
    plain: dict[tuple[int, int], dict]
    #: (call block, wrapper entry) -> raw wrapper-call record
    calls: dict[tuple[int, int], dict]


@dataclass(slots=True)
class _RegionNotes:
    """What this run concluded about one region (for re-store)."""

    wrappers: dict[int, WrapperInfo | None] = field(default_factory=dict)
    plain: dict[tuple[int, int], dict] = field(default_factory=dict)
    calls: dict[tuple[int, int], dict] = field(default_factory=dict)


class FuncidState:
    """Per-analysis carrier of the funcid probe/replay/re-store cycle.

    Created by the incremental ``site-discovery`` pass (which probes the
    store), consulted by ``wrapper-detection`` (classification replay)
    and ``identification`` (record replay + live-work collection), and
    flushed back to the store at the end of ``identification``.
    """

    __slots__ = (
        "scan", "image_name", "fingerprint",
        "sites_by_region", "cached", "notes", "dirty",
    )

    def __init__(self, scan: ImageScan, image_name: str, fingerprint: str):
        self.scan = scan
        self.image_name = image_name
        self.fingerprint = fingerprint
        self.sites_by_region: dict[int, list[SyscallSite]] = {}
        #: region start -> validated cached payload
        self.cached: dict[int, _RegionCache] = {}
        #: region start -> records collected this run
        self.notes: dict[int, _RegionNotes] = {}
        #: regions whose cached payload must be rewritten even if the
        #: record key sets end up identical (an individual record failed
        #: validation and was re-executed live)
        self.dirty: set[int] = set()

    # ---- probe --------------------------------------------------------

    def _region_start(self, addr: int) -> int | None:
        region = self.scan.partition.region_containing(addr)
        return region.start if region is not None else None

    def probe(self, store: ArtifactStore, sites: list[SyscallSite]) -> int:
        """Probe every aligned region's funcid entry; return the hits.

        A hit additionally requires the cached site list to equal the
        live one — site membership depends on global reachability, which
        the per-function key deliberately does not certify.
        """
        for site in sites:
            start = self._region_start(site.insn_addr)
            if start is not None:
                self.sites_by_region.setdefault(start, []).append(site)
        hits = 0
        for region in self.scan.partition:
            start = region.start
            if not self.scan.regions[start].aligned:
                continue
            payload = store.get(
                "funcid", product_name(self.image_name, start),
                content_hash=self.scan.funcid_hashes[start],
                fingerprint=self.fingerprint,
                dep_hashes=[],
            )
            if not isinstance(payload, dict):
                continue
            indexed = self._validate(payload, start, region.end)
            if indexed is None:
                continue
            self.cached[start] = indexed
            hits += 1
        return hits

    def _validate(
        self, payload: dict, start: int, end: int
    ) -> _RegionCache | None:
        """Index a payload for replay, or ``None`` (= per-region miss)."""
        try:
            if payload["start"] != start or payload["end"] != end:
                return None
            if payload["arg_signature"] != signature_doc(
                self.scan.entry_sigs.get(start)
            ):
                return None
            live = [s.to_doc() for s in self.sites_by_region.get(start, [])]
            if [list(map(int, s)) for s in payload["sites"]] != live:
                return None
            wrappers: dict[int, WrapperInfo | None] = {}
            for doc in payload["wrappers"]:
                entry, info = wrapper_from_record(doc)
                wrappers[entry] = info
            plain = {
                (int(doc["block"]), int(doc["anchor"])): doc
                for doc in payload["plain"]
            }
            calls = {
                (int(doc["block"]), int(doc["entry"])): doc
                for doc in payload["calls"]
            }
        except (KeyError, TypeError, ValueError):
            return None
        return _RegionCache(wrappers=wrappers, plain=plain, calls=calls)

    # ---- replay -------------------------------------------------------

    def cached_wrapper(
        self, site: SyscallSite
    ) -> tuple[bool, WrapperInfo | None]:
        """``(found, classification)`` for the site's function, if cached."""
        start = self._region_start(site.insn_addr)
        cache = self.cached.get(start) if start is not None else None
        if cache is None or site.func_entry not in cache.wrappers:
            return False, None
        return True, cache.wrappers[site.func_entry]

    def replay_plain(self, site: SyscallSite) -> SiteIdentification | None:
        start = self._region_start(site.insn_addr)
        cache = self.cached.get(start) if start is not None else None
        if cache is None:
            return None
        doc = cache.plain.get((site.block_addr, site.insn_addr))
        if doc is None:
            return None
        try:
            ident = SiteIdentification.from_record(doc)
            if ident.kind != "rax" or ident.anchor != site.insn_addr:
                raise ValueError(doc)
        except (KeyError, TypeError, ValueError):
            self.dirty.add(start)
            return None
        return ident

    def replay_call(
        self, cfg: CFG, call_block: int, info: WrapperInfo
    ) -> SiteIdentification | None:
        start = self._region_start(call_block)
        cache = self.cached.get(start) if start is not None else None
        if cache is None:
            return None
        doc = cache.calls.get((call_block, info.func_entry))
        if doc is None:
            return None
        param = list(info.param) if info.param is not None else None
        anchor = cfg.blocks[call_block].terminator.addr
        try:
            if doc["param"] != param:
                raise ValueError(doc)
            ident = SiteIdentification.from_record(doc)
            if ident.kind != "wrapper-call" or ident.anchor != anchor:
                raise ValueError(doc)
        except (KeyError, TypeError, ValueError):
            self.dirty.add(start)
            return None
        return ident

    # ---- collection ---------------------------------------------------

    def _notes_for(self, addr: int) -> _RegionNotes | None:
        start = self._region_start(addr)
        if start is None:
            return None
        return self.notes.setdefault(start, _RegionNotes())

    def note_wrapper(self, site: SyscallSite, info: WrapperInfo | None) -> None:
        notes = self._notes_for(site.insn_addr)
        if notes is not None:
            notes.wrappers[site.func_entry] = info

    def note_plain(self, site: SyscallSite, ident: SiteIdentification) -> None:
        notes = self._notes_for(site.insn_addr)
        if notes is not None:
            notes.plain[(site.block_addr, site.insn_addr)] = {
                "block": site.block_addr,
                **ident.to_record(),
            }

    def note_call(
        self, call_block: int, info: WrapperInfo, ident: SiteIdentification
    ) -> None:
        notes = self._notes_for(call_block)
        if notes is not None:
            param = list(info.param) if info.param is not None else None
            notes.calls[(call_block, info.func_entry)] = {
                "block": call_block,
                "entry": info.func_entry,
                "param": param,
                **ident.to_record(),
            }

    # ---- re-store -----------------------------------------------------

    def flush(self, store: ArtifactStore) -> None:
        """Store fresh payloads for every changed aligned region.

        A cached region is rewritten when an individual record failed
        validation (``dirty``) or when this run's record key sets differ
        from the cached ones (anchors appeared or disappeared — global
        CFG facts moved without moving the region's key).  Regions that
        replayed cleanly are skipped: the stored entry is already
        identical.
        """
        for region in self.scan.partition:
            start = region.start
            if not self.scan.regions[start].aligned:
                continue
            notes = self.notes.get(start) or _RegionNotes()
            cache = self.cached.get(start)
            if (
                cache is not None
                and start not in self.dirty
                and set(notes.wrappers) == set(cache.wrappers)
                and set(notes.plain) == set(cache.plain)
                and set(notes.calls) == set(cache.calls)
            ):
                continue
            payload = {
                "start": start,
                "end": region.end,
                "arg_signature": signature_doc(
                    self.scan.entry_sigs.get(start)
                ),
                "sites": [
                    s.to_doc() for s in self.sites_by_region.get(start, [])
                ],
                "wrappers": [
                    wrapper_record(entry, info)
                    for entry, info in sorted(notes.wrappers.items())
                ],
                "plain": [doc for __, doc in sorted(notes.plain.items())],
                "calls": [doc for __, doc in sorted(notes.calls.items())],
            }
            store.put(
                "funcid", product_name(self.image_name, start), payload,
                content_hash=self.scan.funcid_hashes[start],
                fingerprint=self.fingerprint,
                dep_hashes=[],
            )
