"""Analysis reports and budgets shared by B-Side and the baselines."""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..symex.backward import SearchBudget


@dataclass(slots=True)
class AnalysisBudget:
    """Deterministic cost limits standing in for wall-clock timeouts (§5.2).

    The paper gives each binary a 3-hour window; a reproduction cannot use
    wall-clock limits and stay deterministic, so each pipeline stage gets a
    step budget.  Exceeding any of them marks the binary as a *timeout*
    with the stage recorded — reproducing the failure taxonomy of §5.2
    (73% CFG recovery, 15% identification, 12% wrapper detection).
    """

    #: max iterations of the active-addresses-taken fixpoint
    max_cfg_iterations: int = 24
    #: max indirect-call edges the CFG refinement may insert
    max_icall_edges: int = 60_000
    #: max candidate functions confirmed symbolically (phase 2)
    max_wrapper_confirmations: int = 256
    #: symbolic steps per wrapper confirmation
    wrapper_steps: int = 4_000
    #: per-site backward-search budget
    search: SearchBudget = field(default_factory=SearchBudget)

    @classmethod
    def generous(cls) -> "AnalysisBudget":
        """A budget that effectively never trips (unit tests, examples)."""
        return cls(
            max_cfg_iterations=1_000,
            max_icall_edges=10_000_000,
            max_wrapper_confirmations=100_000,
            wrapper_steps=100_000,
            search=SearchBudget(
                max_nodes=100_000,
                max_total_steps=50_000_000,
                per_exploration_steps=100_000,
            ),
        )


@dataclass(slots=True)
class StageStats:
    """Wall time and work counters for one pipeline stage."""

    seconds: float = 0.0
    units: int = 0


@dataclass
class AnalysisReport:
    """What one tool concluded about one binary."""

    tool: str
    binary: str
    success: bool
    syscalls: set[int] = field(default_factory=set)
    #: False when at least one site could not be fully resolved; a filter
    #: derived from an incomplete report must allow everything to stay
    #: sound.
    complete: bool = True
    failure_stage: str = ""
    failure_reason: str = ""
    #: "cfg", "wrappers", "identification", "interfaces", "total"
    stages: dict[str, StageStats] = field(default_factory=dict)
    #: basic blocks symbolically explored during identification (Table 3)
    bbs_explored: int = 0
    #: total forward symbolic-execution steps spent in identification
    symex_steps: int = 0
    #: number of syscall sites (plain + wrapper call sites) examined
    sites_examined: int = 0
    #: peak traced memory in bytes when measured (Table 3), else 0
    peak_memory: int = 0
    #: function-region totals from the incremental assembler; both stay 0
    #: on cold runs, and they serialise only under ``include_runtime``
    #: (cache state is run-dependent, like wall times) so incremental and
    #: cold reports stay byte-identical in stable form
    functions_total: int = 0
    functions_reanalyzed: int = 0
    #: identification-anchor totals from the incremental symex tier
    #: (plain sites + wrapper call sites); like the function counters,
    #: both stay 0 on cold runs and serialise only under
    #: ``include_runtime``
    sites_total: int = 0
    sites_reexecuted: int = 0

    @property
    def n_syscalls(self) -> int:
        return len(self.syscalls)

    def stage_seconds(self, name: str) -> float:
        stats = self.stages.get(name)
        return stats.seconds if stats else 0.0

    @classmethod
    def failed(cls, tool: str, binary: str, stage: str, reason: str) -> "AnalysisReport":
        return cls(
            tool=tool, binary=binary, success=False,
            failure_stage=stage, failure_reason=reason, complete=False,
        )

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------

    def to_json(self, include_runtime: bool = True) -> str:
        """Serialise the report.

        ``include_runtime=False`` drops the run-dependent fields (stage
        wall times, peak memory) and yields a byte-stable document: the
        same binary analyzed twice — or served from the artifact store —
        produces the identical string.
        """
        return json.dumps(self.to_doc(include_runtime), indent=2)

    def to_doc(self, include_runtime: bool = True) -> dict:
        """The JSON document as a dict (the artifact-store payload)."""
        doc = {
            "tool": self.tool,
            "binary": self.binary,
            "success": self.success,
            "complete": self.complete,
            "failure_stage": self.failure_stage,
            "failure_reason": self.failure_reason,
            "syscalls": sorted(self.syscalls),
            "sites_examined": self.sites_examined,
            "bbs_explored": self.bbs_explored,
            "symex_steps": self.symex_steps,
        }
        if include_runtime:
            doc["stages"] = {
                name: {"seconds": stats.seconds, "units": stats.units}
                for name, stats in self.stages.items()
            }
            doc["peak_memory"] = self.peak_memory
            if self.functions_total:
                doc["functions_total"] = self.functions_total
                doc["functions_reanalyzed"] = self.functions_reanalyzed
            if self.sites_total:
                doc["sites_total"] = self.sites_total
                doc["sites_reexecuted"] = self.sites_reexecuted
        return doc

    @classmethod
    def from_json(cls, text: str) -> "AnalysisReport":
        return cls.from_doc(json.loads(text))

    @classmethod
    def from_doc(cls, doc: dict) -> "AnalysisReport":
        report = cls(
            tool=doc["tool"],
            binary=doc["binary"],
            success=doc["success"],
            syscalls=set(doc["syscalls"]),
            complete=doc["complete"],
            failure_stage=doc["failure_stage"],
            failure_reason=doc["failure_reason"],
            sites_examined=doc["sites_examined"],
            bbs_explored=doc["bbs_explored"],
            symex_steps=doc["symex_steps"],
            peak_memory=doc.get("peak_memory", 0),
            functions_total=doc.get("functions_total", 0),
            functions_reanalyzed=doc.get("functions_reanalyzed", 0),
            sites_total=doc.get("sites_total", 0),
            sites_reexecuted=doc.get("sites_reexecuted", 0),
        )
        for name, stats in doc.get("stages", {}).items():
            report.stages[name] = StageStats(
                seconds=stats["seconds"], units=stats["units"],
            )
        return report
