"""Shared interfaces: per-library analysis artifacts (§4.5, step K/L).

A shared interface records, for one analysed library, everything a
dependent binary's analysis needs — so the expensive per-library work runs
once and is reused across all programs linking the library:

* per exported function: the set of syscall numbers it can trigger,
  whether its resolution was complete, and — when the export *is* a
  syscall wrapper — where its number parameter lives;
* the library's own dependencies;
* the wrapper functions and addresses taken (artifact fidelity: the paper
  lists both in the interface JSON);
* the per-export cross-library calls that were folded in.

Interfaces serialise to JSON (:meth:`SharedInterface.to_json`) exactly as
the paper describes the on-disk format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass
class ExportInfo:
    """Interface entry for one exported function."""

    name: str
    addr: int
    syscalls: set[int] = field(default_factory=set)
    complete: bool = True
    #: ("reg", name) / ("stack", off) when the export is itself a wrapper
    wrapper_param: tuple | None = None
    #: imported symbols this export may call (recorded for the artifact)
    cross_calls: list[str] = field(default_factory=list)

    @property
    def is_wrapper(self) -> bool:
        return self.wrapper_param is not None


@dataclass
class SharedInterface:
    """The complete analysis artifact for one shared library."""

    library: str
    needed: list[str] = field(default_factory=list)
    exports: dict[str, ExportInfo] = field(default_factory=dict)
    wrapper_functions: list[str] = field(default_factory=list)
    addresses_taken: list[int] = field(default_factory=list)
    complete: bool = True

    def export(self, name: str) -> ExportInfo | None:
        return self.exports.get(name)

    def all_syscalls(self) -> set[int]:
        out: set[int] = set()
        for info in self.exports.values():
            out |= info.syscalls
        return out

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        doc = {
            "library": self.library,
            "needed": self.needed,
            "complete": self.complete,
            "wrapper_functions": self.wrapper_functions,
            "addresses_taken": self.addresses_taken,
            "exports": {
                name: {
                    "addr": info.addr,
                    "syscalls": sorted(info.syscalls),
                    "complete": info.complete,
                    "wrapper_param": list(info.wrapper_param) if info.wrapper_param else None,
                    "cross_calls": info.cross_calls,
                }
                for name, info in sorted(self.exports.items())
            },
        }
        return json.dumps(doc, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "SharedInterface":
        doc = json.loads(text)
        exports = {}
        for name, raw in doc["exports"].items():
            param = raw.get("wrapper_param")
            exports[name] = ExportInfo(
                name=name,
                addr=raw["addr"],
                syscalls=set(raw["syscalls"]),
                complete=raw["complete"],
                wrapper_param=tuple(param) if param else None,
                cross_calls=list(raw.get("cross_calls", [])),
            )
        return cls(
            library=doc["library"],
            needed=list(doc["needed"]),
            exports=exports,
            wrapper_functions=list(doc["wrapper_functions"]),
            addresses_taken=list(doc["addresses_taken"]),
            complete=doc["complete"],
        )


class InterfaceStore:
    """Cache of shared interfaces keyed by library name.

    Mirrors B-Side's once-per-library amortisation: the analyzer consults
    the store before analysing a dependency.  With ``cache_dir`` set, each
    interface is also persisted as ``<library>.interface.json`` — the
    on-disk artifact §4.5 describes, kept in the paper's exact format
    (no envelope, no invalidation).  For a production cache with
    versioning, content-hash validation, and corruption recovery, use
    :class:`~repro.core.ifacecache.PersistentInterfaceStore` instead.
    """

    def __init__(self, cache_dir: str | None = None) -> None:
        self._by_name: dict[str, SharedInterface] = {}
        self._cache_dir = cache_dir
        if cache_dir is not None:
            import os

            os.makedirs(cache_dir, exist_ok=True)

    def bind_image(self, image) -> None:
        """Associate a loaded image with its library name.

        A hook for content-addressed subclasses (see
        :class:`~repro.core.ifacecache.PersistentInterfaceStore`): the
        analyzer calls it before consulting the store so the store can
        validate cached entries against the image's ``content_hash``.
        The in-memory store needs no such validation.
        """

    def bind_fingerprint(self, fingerprint: str) -> None:
        """Associate the analyzer's pipeline-config fingerprint.

        Content-addressed subclasses validate cached entries against it
        (an ablation-flag or budget change must miss, not serve a stale
        interface); the in-memory store needs no such validation.
        """

    def bind_dependencies(self, name: str, dep_hashes: list[str]) -> None:
        """Associate a library with its dependency-closure content hashes.

        A library's interface folds its dependencies' exports in, so
        content-addressed subclasses key entries by these hashes too:
        an upgraded dependency invalidates the dependent's cached
        interface.  The in-memory store needs no such validation.
        """

    def _disk_path(self, name: str) -> str | None:
        if self._cache_dir is None:
            return None
        import os

        return os.path.join(self._cache_dir, f"{name}.interface.json")

    def get(self, name: str) -> SharedInterface | None:
        cached = self._by_name.get(name)
        if cached is not None:
            return cached
        path = self._disk_path(name)
        if path is not None:
            import os

            if os.path.exists(path):
                with open(path) as f:
                    interface = SharedInterface.from_json(f.read())
                self._by_name[name] = interface
                return interface
        return None

    def put(self, interface: SharedInterface) -> None:
        self._by_name[interface.library] = interface
        path = self._disk_path(interface.library)
        if path is not None:
            with open(path, "w") as f:
                f.write(interface.to_json())

    def all_interfaces(self) -> list[SharedInterface]:
        """Every interface currently resident in memory."""
        return list(self._by_name.values())

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __len__(self) -> int:
        return len(self._by_name)

    def symbol_table(self, needed: list[str]) -> dict[str, ExportInfo]:
        """Resolve symbols across a dependency list, first definition wins.

        The search is breadth-first over the dependency closure, matching
        ELF symbol interposition order closely enough for our corpus.
        """
        out: dict[str, ExportInfo] = {}
        seen: set[str] = set()
        queue = list(needed)
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            interface = self.get(name)
            if interface is None:
                continue
            for sym, info in interface.exports.items():
                out.setdefault(sym, info)
            queue.extend(interface.needed)
        return out
