"""B-Side core: the paper's primary contribution.

Typical use::

    from repro.core import BSideAnalyzer
    from repro.loader import LoadedImage, LibraryResolver

    analyzer = BSideAnalyzer(resolver=LibraryResolver(search_dir="libs/"))
    report = analyzer.analyze(LoadedImage.from_path("./app"))
    print(sorted(report.syscalls))
"""

from .analyzer import BSideAnalyzer, TOOL_NAME
from .artifacts import (
    ARTIFACT_KINDS,
    CACHE_VERSION,
    ArtifactStore,
    ShardedArtifactStore,
)
from .pipeline import (
    DEFAULT_PASSES,
    AnalysisContext,
    Pass,
    PassPipeline,
    PipelineConfig,
    build_pipeline,
)
from .arguments import (
    ArgumentRule,
    ArgumentValues,
    build_argument_rules,
    identify_argument,
    identify_site_arguments,
)
from .identify import (
    SiteIdentification,
    identify_plain_site,
    identify_wrapper_call_site,
    make_callsite_param_query,
    wrapper_call_blocks,
)
from .ifacecache import PersistentInterfaceStore
from .interface import ExportInfo, InterfaceStore, SharedInterface
from .report import AnalysisBudget, AnalysisReport, StageStats
from .sites import SyscallSite, find_sites
from .wrappers import WrapperInfo, detect_wrapper, phase1_use_define_scan, phase2_symbolic_confirm

__all__ = [
    "BSideAnalyzer",
    "TOOL_NAME",
    "ArtifactStore",
    "ShardedArtifactStore",
    "ARTIFACT_KINDS",
    "AnalysisContext",
    "Pass",
    "PassPipeline",
    "PipelineConfig",
    "DEFAULT_PASSES",
    "build_pipeline",
    "AnalysisBudget",
    "AnalysisReport",
    "StageStats",
    "SyscallSite",
    "find_sites",
    "WrapperInfo",
    "detect_wrapper",
    "phase1_use_define_scan",
    "phase2_symbolic_confirm",
    "SiteIdentification",
    "identify_plain_site",
    "identify_wrapper_call_site",
    "make_callsite_param_query",
    "wrapper_call_blocks",
    "SharedInterface",
    "ExportInfo",
    "InterfaceStore",
    "PersistentInterfaceStore",
    "CACHE_VERSION",
    "ArgumentValues",
    "ArgumentRule",
    "identify_argument",
    "identify_site_arguments",
    "build_argument_rules",
]
