"""The pass pipeline: B-Side's Figure-3 stages as composable passes.

PR 1 left the analyzer as one monolithic method with boolean ablation
flags.  This module factors it into the shape Ghidra's action pipeline
and iResolveX's layered refinement use: a sequence of named, individually
instrumented **passes** over a shared mutable :class:`AnalysisContext`.

* Each :class:`Pass` reads and extends the context (CFG, reachable set,
  sites, wrappers, per-block syscalls, work counters).
* :class:`PassPipeline` runs them in order, timing each uniformly into
  ``report.stages[pass.name]`` and normalising budget violations to the
  offending pass's name.
* Ablations are **pipeline configuration**, not if-branches:
  ``detect_wrappers=False`` simply builds a pipeline without the
  ``wrapper-detection`` pass; ``use_active_addresses_taken=False`` runs
  ``cfg-recovery`` in SysFilter's all-addresses-taken mode.
* :class:`PipelineConfig` is hashable into a **fingerprint** (flags +
  pass list + budgets + cache version) that keys every entry of the
  :class:`~repro.core.artifacts.ArtifactStore` — changing any knob
  invalidates cached artifacts instead of serving stale results.

The baselines reuse the same machinery with their own pass
implementations (whole-image site vacuums, register-only scans); see
``repro.baselines.common``.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass, field

from ..cfg.builder import (
    add_direct_edges,
    assign_functions,
    build_cfg,
    carve_blocks,
)
from ..cfg.funccfg import (
    build_product,
    product_name,
    scan_image,
    validate_product,
)
from ..cfg.indirect import resolve_indirect_active, resolve_indirect_all
from ..cfg.model import CFG, EDGE_ICALL
from ..cfg.reachability import reachable_blocks
from ..errors import BudgetExceeded, CfgError
from ..loader.image import LoadedImage
from ..x86.decoder import decode_all
from ..symex.engine import ExecContext
from ..symex.state import MemoryBackend
from .artifacts import CACHE_VERSION, ArtifactStore, fingerprint_doc
from .funcid import FuncidState
from .identify import (
    SiteIdentification,
    identify_plain_site,
    identify_wrapper_call_site,
    wrapper_call_blocks,
)
from .interface import ExportInfo
from .report import AnalysisBudget, AnalysisReport, StageStats
from .sites import SyscallSite, find_sites
from .wrappers import (
    WrapperInfo,
    detect_wrapper,
    wrapper_from_record,
    wrapper_record,
)

#: The B-Side executable/library pipeline, in order (Figure 3's steps).
DEFAULT_PASSES: tuple[str, ...] = (
    "cfg-recovery",
    "reachability",
    "site-discovery",
    "wrapper-detection",
    "identification",
    "external-calls",
)


@dataclass(frozen=True)
class PipelineConfig:
    """Declarative pipeline shape: which passes run, and how.

    The §4.3/§4.4 ablation switches live here (not as analyzer
    if-branches); baselines and experiments express themselves as
    alternate configs over the same pass vocabulary.
    """

    detect_wrappers: bool = True
    directed_search: bool = True
    use_active_addresses_taken: bool = True
    #: refine active-addresses-taken resolution to signature-compatible
    #: targets (:mod:`repro.cfg.signatures`); no effect in ``all`` mode,
    #: which stays the deliberately unfiltered SysFilter ablation
    indirect_signatures: bool = True
    passes: tuple[str, ...] = DEFAULT_PASSES
    #: substitute the function-granular incremental assembler for
    #: ``cfg-recovery``.  Deliberately **excluded** from the fingerprint:
    #: incremental and cold runs produce byte-identical artifacts (the
    #: differential harness pins this), so they must share cache keys —
    #: a cold run warms the report cache an incremental run serves, and
    #: vice versa.
    incremental: bool = False

    def pass_names(self) -> tuple[str, ...]:
        """The passes this config actually runs (ablations applied)."""
        names = list(self.passes)
        if not self.detect_wrappers and "wrapper-detection" in names:
            names.remove("wrapper-detection")
        return tuple(names)

    def fingerprint(self, budget: AnalysisBudget | None = None) -> str:
        """Content-address of this configuration (plus budgets).

        Two analyzers share a fingerprint iff they would produce
        identical artifacts for identical inputs, so the fingerprint
        keys every :class:`~repro.core.artifacts.ArtifactStore` entry.

        Memoized: every analyzer construction (one per cold analysis,
        per service batch, per fleet worker) and artifact lookup path
        re-derives the same digest, and config/budget pairs are few and
        immutable in practice.
        """
        budget_key = None if budget is None else dataclasses.astuple(budget)
        key = (self, budget_key)
        cached = _FINGERPRINT_MEMO.get(key)
        if cached is not None:
            return cached
        doc = {
            "cache_version": CACHE_VERSION,
            "detect_wrappers": self.detect_wrappers,
            "directed_search": self.directed_search,
            "use_active_addresses_taken": self.use_active_addresses_taken,
            "indirect_signatures": self.indirect_signatures,
            "passes": list(self.pass_names()),
            "budget": dataclasses.asdict(budget) if budget else None,
        }
        digest = fingerprint_doc(doc)
        _FINGERPRINT_MEMO[key] = digest
        return digest


#: (PipelineConfig, budget-as-tuple) -> digest; see
#: :meth:`PipelineConfig.fingerprint`
_FINGERPRINT_MEMO: dict[tuple, str] = {}


@dataclass
class AnalysisContext:
    """Mutable state shared by every pass of one image analysis."""

    image: LoadedImage
    roots: list[int]
    budget: AnalysisBudget
    config: PipelineConfig
    #: imported-symbol resolution table (from dependency interfaces)
    symbol_table: dict[str, ExportInfo] = field(default_factory=dict)
    #: stage stats sink; None for library analyses (no report)
    report: AnalysisReport | None = None
    #: artifact store for per-pass artifact reuse (wrapper tables, CFG
    #: summaries); None disables persistence
    artifacts: ArtifactStore | None = None
    #: pipeline-config fingerprint used to key artifacts
    fingerprint: str = ""

    # ---- products, filled in by passes --------------------------------
    cfg: CFG | None = None
    exec_ctx: ExecContext | None = None
    backend: MemoryBackend | None = None
    reachable: set[int] = field(default_factory=set)
    sites: list[SyscallSite] = field(default_factory=list)
    #: func entry -> info (None = confirmed not a wrapper)
    wrappers: dict[int, WrapperInfo | None] = field(default_factory=dict)
    #: per-block identified syscall numbers
    block_syscalls: dict[int, set[int]] = field(default_factory=dict)
    complete: bool = True
    bbs_explored: int = 0
    symex_steps: int = 0
    sites_examined: int = 0
    #: wrapper confirmations actually performed (0 on artifact reuse)
    wrapper_confirmations: int = 0
    external_sites: int = 0
    #: function-region totals from the incremental assembler (0/0 on
    #: cold runs: the counters only move when per-function caching ran)
    functions_total: int = 0
    functions_reanalyzed: int = 0
    #: identification-anchor totals from the incremental symex tier:
    #: plain sites plus wrapper call sites considered, and the subset
    #: whose backward search actually re-executed (funcid cache misses).
    #: External-wrapper-call anchors are excluded — ``external-calls``
    #: always runs live against dependency interfaces.
    sites_total: int = 0
    sites_reexecuted: int = 0
    #: phase automaton (set by the optional phase-detection pass)
    automaton: object | None = None
    #: scratch space for non-default passes (baselines)
    extras: dict = field(default_factory=dict)

    def record(self, block_addr: int, ident: SiteIdentification) -> None:
        """Fold one site identification into the context."""
        self.block_syscalls.setdefault(block_addr, set()).update(ident.values)
        self.complete = self.complete and ident.complete
        self.bbs_explored += ident.nodes_explored
        self.symex_steps += ident.steps_used
        self.sites_examined += 1

    def identified_syscalls(self) -> set[int]:
        """Syscalls identified in reachable blocks."""
        out: set[int] = set()
        for block_addr, values in self.block_syscalls.items():
            if block_addr in self.reachable:
                out |= values
        return out


class Pass:
    """One named transformation over an :class:`AnalysisContext`."""

    name: str = ""

    def run(self, ctx: AnalysisContext) -> None:
        raise NotImplementedError

    def units(self, ctx: AnalysisContext) -> int:
        """Work-unit count recorded in this pass's :class:`StageStats`."""
        return 0


#: Process-global pipeline-execution counter.  The service suite and
#: ``bench_service_throughput`` read it to prove that warm (cache-served)
#: requests run **zero** analysis passes — a cached report must never
#: reach this code.  Fleet worker processes measure their own deltas and
#: the parent folds them back in via :func:`add_runs`, so the counter
#: stays accurate across process fan-out.
_RUNS_LOCK = threading.Lock()
_RUNS = 0


def pipeline_runs() -> int:
    """Pipeline executions observed by this process (fan-out included)."""
    return _RUNS


def add_runs(n: int) -> None:
    """Fold pipeline executions observed elsewhere (worker processes)."""
    global _RUNS
    with _RUNS_LOCK:
        _RUNS += n


class PassPipeline:
    """Ordered pass runner with uniform timing and budget accounting."""

    def __init__(self, passes: list[Pass]):
        self.passes = list(passes)

    @property
    def pass_names(self) -> list[str]:
        return [p.name for p in self.passes]

    def run(self, ctx: AnalysisContext) -> AnalysisContext:
        global _RUNS
        with _RUNS_LOCK:
            _RUNS += 1
        for step in self.passes:
            t0 = time.perf_counter()
            try:
                step.run(ctx)
            except BudgetExceeded as exceeded:
                if not exceeded.stage:
                    raise BudgetExceeded(step.name, exceeded.budget) from None
                raise
            if ctx.report is not None:
                ctx.report.stages[step.name] = StageStats(
                    seconds=time.perf_counter() - t0, units=step.units(ctx),
                )
        return ctx


# ----------------------------------------------------------------------
# The B-Side passes
# ----------------------------------------------------------------------


class CfgRecoveryPass(Pass):
    """Step 1: exact decode, basic blocks, indirect-branch resolution.

    ``indirect`` selects the resolution strategy; ``None`` derives it
    from the config (the ``use_active_addresses_taken`` ablation).
    Baselines reuse this pass with ``indirect="all"``/``"none"`` and
    ``make_exec=False`` (they never execute symbolically).
    """

    name = "cfg-recovery"

    def __init__(self, indirect: str | None = None, make_exec: bool = True):
        self.indirect = indirect
        self.make_exec = make_exec

    def run(self, ctx: AnalysisContext) -> None:
        cfg = build_cfg(ctx.image)
        self._finish(ctx, cfg)

    def _finish(self, ctx: AnalysisContext, cfg: CFG) -> None:
        """Everything after direct-CFG construction: indirect-branch
        resolution, budgets, exec-context setup, the summary artifact.
        Shared verbatim with the incremental assembler so the two paths
        cannot diverge downstream of the stitched CFG."""
        mode = self.indirect
        if mode is None:
            mode = "active" if ctx.config.use_active_addresses_taken else "all"
        if mode == "active":
            # CFG budget: a dense indirect-call web exceeds it (the
            # paper's dominant timeout class).
            __, iterations = resolve_indirect_active(
                cfg, ctx.image, ctx.roots,
                max_iterations=ctx.budget.max_cfg_iterations,
                signatures=ctx.config.indirect_signatures,
            )
        elif mode == "all":
            # SysFilter-style resolution to *all* addresses taken.
            resolve_indirect_all(cfg, ctx.image)
            iterations = 1
        elif mode == "none":
            iterations = 0
        else:
            raise ValueError(f"unknown indirect mode {mode!r}")
        icall_edges = sum(
            1
            for block in cfg.indirect_sites
            for e in cfg.successors(block, kinds=(EDGE_ICALL,))
        )
        if icall_edges > ctx.budget.max_icall_edges:
            raise BudgetExceeded(self.name, ctx.budget.max_icall_edges)
        if iterations >= ctx.budget.max_cfg_iterations:
            raise BudgetExceeded(self.name, ctx.budget.max_cfg_iterations)
        ctx.cfg = cfg
        if self.make_exec:
            ctx.exec_ctx = ExecContext.for_image(cfg, ctx.image)
            ctx.backend = MemoryBackend([ctx.image])
        if ctx.artifacts is not None:
            ctx.artifacts.put(
                "cfg", ctx.image.name, cfg.summary(),
                content_hash=ctx.image.content_hash,
                fingerprint=ctx.fingerprint,
            )

    def units(self, ctx: AnalysisContext) -> int:
        return ctx.cfg.n_edges


class IncrementalCfgRecoveryPass(CfgRecoveryPass):
    """Function-granular ``cfg-recovery``: stitch cached per-function
    products into the whole-program CFG (``bside analyze --incremental``).

    The decode sweep always runs whole-image (it is exact and cheap
    relative to the downstream passes, and sharing it with the cold path
    removes a whole class of boundary divergences).  Per function region
    (:class:`~repro.cfg.partition.FunctionPartition`) the pass then
    either replays a cached ``funccfg`` product — keyed by the region's
    Merkle closure hash, so a hit certifies the region *and its callee
    closure* unchanged — or re-carves the region cold.  Cached block
    starts and freshly computed leaders are unioned into one global
    leader set and the whole CFG is rebuilt through the exact cold-path
    helpers (:func:`~repro.cfg.builder.carve_blocks` /
    :func:`~repro.cfg.builder.assign_functions` /
    :func:`~repro.cfg.builder.add_direct_edges`); cross-function
    fixpoints (indirect resolution, and every later pass) always re-run
    on the stitched CFG.  That construction is why incremental reports
    are byte-identical to cold ones.

    Only *aligned* regions (first decoded instruction exactly at the
    region start) are cached; misaligned regions re-carve every run and
    count as re-analyzed.  Without an artifact store the pass degrades
    to the plain cold pass (library interface builds pass no store).
    """

    name = "cfg-recovery"  # same stage key: reports stay byte-compatible

    def run(self, ctx: AnalysisContext) -> None:
        if ctx.artifacts is None:
            super().run(ctx)
            return
        image = ctx.image
        insns = decode_all(image.text_bytes, image.text_base)
        if not insns:
            raise CfgError(f"{image.name}: empty text segment")
        by_addr = {i.addr: i for i in insns}

        scan = scan_image(image, insns, by_addr)
        ctx.functions_total = len(scan.partition)
        # Downstream incremental passes key funcid products off the same
        # scan (combined callee-closure + caller-cone hashes).
        ctx.extras["image_scan"] = scan

        leaders: set[int] = set()
        misses: list[int] = []
        entry = image.entry
        for region in scan.partition:
            start = region.start
            rs = scan.regions[start]
            extra = scan.extra_leaders.get(start, set())
            block_starts = None
            if rs.aligned:
                payload = ctx.artifacts.get(
                    "funccfg", product_name(image.name, start),
                    content_hash=scan.closure_hashes[start],
                    fingerprint=ctx.fingerprint,
                    dep_hashes=[],
                )
                if isinstance(payload, dict):
                    block_starts = validate_product(
                        payload, rs, extra, by_addr,
                        scan.entry_sigs.get(start),
                    )
            if block_starts is not None:
                leaders.update(block_starts)
                continue
            misses.append(start)
            leaders.add(start)
            if entry and start <= entry < region.end:
                leaders.add(entry)
            leaders.update(rs.own_leaders)
            leaders.update(extra)

        cfg = CFG()
        carve_blocks(cfg, insns, leaders)
        assign_functions(cfg, image)
        add_direct_edges(cfg, image)

        # Store fresh products for the re-carved (cacheable) regions now
        # that the stitched block set and its intra-region edges exist.
        for start in misses:
            rs = scan.regions[start]
            if not rs.aligned:
                continue
            ctx.artifacts.put(
                "funccfg", product_name(image.name, start),
                build_product(
                    cfg, rs, scan.extra_leaders.get(start, set()),
                    scan.entry_sigs.get(start),
                ),
                content_hash=scan.closure_hashes[start],
                fingerprint=ctx.fingerprint,
                dep_hashes=[],
            )
        ctx.functions_reanalyzed = len(misses)
        self._finish(ctx, cfg)


class ReachabilityPass(Pass):
    """Blocks reachable from the analysis roots (entry point / exports)."""

    name = "reachability"

    def run(self, ctx: AnalysisContext) -> None:
        ctx.reachable = reachable_blocks(ctx.cfg, ctx.roots)

    def units(self, ctx: AnalysisContext) -> int:
        return len(ctx.reachable)


class SiteDiscoveryPass(Pass):
    """Reachable ``syscall`` instruction sites."""

    name = "site-discovery"

    def run(self, ctx: AnalysisContext) -> None:
        ctx.sites = find_sites(ctx.cfg, ctx.reachable)

    def units(self, ctx: AnalysisContext) -> int:
        return len(ctx.sites)


class WrapperDetectionPass(Pass):
    """Step G: the two-phase wrapper heuristic, per containing function.

    With an artifact store bound, a previously confirmed wrapper table
    (same binary content, same pipeline fingerprint) is replayed instead
    of re-running symbolic confirmation.
    """

    name = "wrapper-detection"

    def run(self, ctx: AnalysisContext) -> None:
        if self._load_cached(ctx):
            return
        confirmations = 0
        for site in ctx.sites:
            if site.func_entry in ctx.wrappers:
                continue
            confirmations += 1
            if confirmations > ctx.budget.max_wrapper_confirmations:
                raise BudgetExceeded(
                    self.name, ctx.budget.max_wrapper_confirmations,
                )
            ctx.wrappers[site.func_entry] = detect_wrapper(
                ctx.cfg, ctx.exec_ctx, site, ctx.backend,
                max_steps=ctx.budget.wrapper_steps,
            )
        ctx.wrapper_confirmations = confirmations
        self._store(ctx)

    def units(self, ctx: AnalysisContext) -> int:
        return ctx.wrapper_confirmations

    # ---- wrapper-table artifact ---------------------------------------

    def _load_cached(self, ctx: AnalysisContext) -> bool:
        if ctx.artifacts is None:
            return False
        payload = ctx.artifacts.get(
            "wrappers", ctx.image.name,
            content_hash=ctx.image.content_hash,
            fingerprint=ctx.fingerprint,
        )
        if not isinstance(payload, list):
            return False
        try:
            for entry in payload:
                func_entry, info = wrapper_from_record(entry)
                ctx.wrappers[func_entry] = info
        except (KeyError, TypeError, ValueError):
            ctx.artifacts.invalidate("wrappers", ctx.image.name)
            ctx.wrappers.clear()
            return False
        return True

    def _store(self, ctx: AnalysisContext) -> None:
        if ctx.artifacts is None:
            return
        table = [
            wrapper_record(func_entry, info)
            for func_entry, info in ctx.wrappers.items()
        ]
        ctx.artifacts.put(
            "wrappers", ctx.image.name, table,
            content_hash=ctx.image.content_hash,
            fingerprint=ctx.fingerprint,
        )


class IdentificationPass(Pass):
    """Step H: per-site backward identification, plain and wrapper-call."""

    name = "identification"

    def run(self, ctx: AnalysisContext) -> None:
        directed = ctx.config.directed_search
        for site in ctx.sites:
            info = ctx.wrappers.get(site.func_entry)
            if info is not None:
                continue  # handled from its call sites below
            ident = identify_plain_site(
                ctx.cfg, ctx.exec_ctx, site, ctx.backend,
                budget=ctx.budget.search, directed=directed,
            )
            ctx.record(site.block_addr, ident)

        for func_entry, info in ctx.wrappers.items():
            if info is None:
                continue
            if info.param is None:
                # Wrapper whose parameter could not be localised: the
                # sound over-approximation is "anything" — flagged via
                # completeness so filter generation allows everything.
                ctx.complete = False
                continue
            for call_block in wrapper_call_blocks(ctx.cfg, info):
                ident = identify_wrapper_call_site(
                    ctx.cfg, ctx.exec_ctx, call_block, info.param,
                    ctx.backend, budget=ctx.budget.search, directed=directed,
                )
                ctx.record(call_block, ident)

    def units(self, ctx: AnalysisContext) -> int:
        return ctx.bbs_explored


class IncrementalSiteDiscoveryPass(SiteDiscoveryPass):
    """``site-discovery`` plus the ``funcid`` store probe.

    Site discovery itself always runs live — it is a cheap index scan,
    and the site set depends on *global* reachability, which no
    per-function key can certify.  The live sites then double as the
    validation oracle for cached funcid entries: a probe only hits when
    the entry's recorded site list matches the fresh one.  Without the
    incremental assembler's image scan (no artifact store, or a
    non-incremental cfg pass upstream) the pass degrades to the plain
    cold one.
    """

    name = "site-discovery"

    def run(self, ctx: AnalysisContext) -> None:
        super().run(ctx)
        scan = ctx.extras.get("image_scan")
        if scan is None or ctx.artifacts is None:
            return
        state = FuncidState(scan, ctx.image.name, ctx.fingerprint)
        state.probe(ctx.artifacts, ctx.sites)
        ctx.extras["funcid"] = state


class IncrementalWrapperDetectionPass(WrapperDetectionPass):
    """``wrapper-detection`` with per-function classification replay.

    The whole-binary wrapper table (same content hash) is still tried
    first — it is strictly cheaper.  On a rebuilt binary that table
    misses, and classifications replay per function from ``funcid``
    entries instead; only functions inside the identification cone (or
    without a valid cached record) re-run the two-phase heuristic, and
    only those count against ``max_wrapper_confirmations`` — mirroring
    how a whole-table replay performs zero confirmations.  Iteration
    stays in site order, so ``ctx.wrappers`` insertion order — and the
    re-stored whole-binary table — is byte-identical to a cold run's.
    """

    name = "wrapper-detection"

    def run(self, ctx: AnalysisContext) -> None:
        state = ctx.extras.get("funcid")
        if state is None:
            super().run(ctx)
            return
        if self._load_cached(ctx):
            return
        confirmations = 0
        for site in ctx.sites:
            if site.func_entry in ctx.wrappers:
                continue
            found, info = state.cached_wrapper(site)
            if found:
                ctx.wrappers[site.func_entry] = info
                continue
            confirmations += 1
            if confirmations > ctx.budget.max_wrapper_confirmations:
                raise BudgetExceeded(
                    self.name, ctx.budget.max_wrapper_confirmations,
                )
            ctx.wrappers[site.func_entry] = detect_wrapper(
                ctx.cfg, ctx.exec_ctx, site, ctx.backend,
                max_steps=ctx.budget.wrapper_steps,
            )
        ctx.wrapper_confirmations = confirmations
        self._store(ctx)


class IncrementalIdentificationPass(IdentificationPass):
    """``identification`` with per-anchor replay of cached symex results.

    Anchors (plain sites, then wrapper call sites — the exact cold-path
    order) whose region holds a valid cached record fold the recorded
    values and budget spend through :meth:`AnalysisContext.record`;
    everything else re-executes the backward search live.  Both paths
    meet in the same ``ctx.record`` fold, so the stable report fields
    cannot diverge from a cold run's.  ``sites_total`` /
    ``sites_reexecuted`` count the anchors and the live subset; at the
    end, changed regions are re-stored under their current combined
    callee-closure + caller-cone key.
    """

    name = "identification"

    def run(self, ctx: AnalysisContext) -> None:
        state = ctx.extras.get("funcid")
        if state is None:
            super().run(ctx)
            return
        directed = ctx.config.directed_search
        for site in ctx.sites:
            state.note_wrapper(site, ctx.wrappers.get(site.func_entry))

        for site in ctx.sites:
            info = ctx.wrappers.get(site.func_entry)
            if info is not None:
                continue  # handled from its call sites below
            ctx.sites_total += 1
            ident = state.replay_plain(site)
            if ident is None:
                ctx.sites_reexecuted += 1
                ident = identify_plain_site(
                    ctx.cfg, ctx.exec_ctx, site, ctx.backend,
                    budget=ctx.budget.search, directed=directed,
                )
            state.note_plain(site, ident)
            ctx.record(site.block_addr, ident)

        for func_entry, info in ctx.wrappers.items():
            if info is None:
                continue
            if info.param is None:
                ctx.complete = False
                continue
            for call_block in wrapper_call_blocks(ctx.cfg, info):
                ctx.sites_total += 1
                ident = state.replay_call(ctx.cfg, call_block, info)
                if ident is None:
                    ctx.sites_reexecuted += 1
                    ident = identify_wrapper_call_site(
                        ctx.cfg, ctx.exec_ctx, call_block, info.param,
                        ctx.backend, budget=ctx.budget.search,
                        directed=directed,
                    )
                state.note_call(call_block, info, ident)
                ctx.record(call_block, ident)

        state.flush(ctx.artifacts)


class ExternalCallsPass(Pass):
    """Step J/M: fold imported symbols through dependency interfaces."""

    name = "external-calls"

    def run(self, ctx: AnalysisContext) -> None:
        directed = ctx.config.directed_search
        processed = 0
        for block_addr, symbols in ctx.cfg.external_calls.items():
            if block_addr not in ctx.reachable:
                continue
            for symbol in symbols:
                processed += 1
                info = ctx.symbol_table.get(symbol)
                if info is None:
                    # Unknown import: cannot be resolved -> incomplete.
                    ctx.complete = False
                    continue
                if info.is_wrapper:
                    ident = identify_wrapper_call_site(
                        ctx.cfg, ctx.exec_ctx, block_addr, info.wrapper_param,
                        ctx.backend, budget=ctx.budget.search,
                        kind="external-wrapper-call", directed=directed,
                    )
                    ctx.record(block_addr, ident)
                else:
                    ctx.block_syscalls.setdefault(block_addr, set()).update(
                        info.syscalls
                    )
                    ctx.complete = ctx.complete and info.complete
        ctx.external_sites = processed

    def units(self, ctx: AnalysisContext) -> int:
        return ctx.external_sites


class PhaseDetectionPass(Pass):
    """Step N (§4.7): build the phase automaton over identified blocks."""

    name = "phase-detection"

    def __init__(self, similarity: float = 0.5, back_propagate: bool = True):
        self.similarity = similarity
        self.back_propagate = back_propagate

    def run(self, ctx: AnalysisContext) -> None:
        from ..phases.merge import detect_phases

        ctx.automaton = detect_phases(
            ctx.cfg,
            {
                addr: values
                for addr, values in ctx.block_syscalls.items()
                if values and addr in ctx.reachable
            },
            ctx.image.entry,
            reachable=ctx.reachable,
            similarity=self.similarity,
            back_propagate=self.back_propagate,
        )

    def units(self, ctx: AnalysisContext) -> int:
        return ctx.automaton.n_phases


#: Default factories for the named B-Side passes.
PASS_REGISTRY: dict[str, type[Pass]] = {
    "cfg-recovery": CfgRecoveryPass,
    "reachability": ReachabilityPass,
    "site-discovery": SiteDiscoveryPass,
    "wrapper-detection": WrapperDetectionPass,
    "identification": IdentificationPass,
    "external-calls": ExternalCallsPass,
    "phase-detection": PhaseDetectionPass,
}


#: Incremental substitutes for the named passes (``incremental=True``).
#: The stage names stay identical, so reports remain byte-compatible.
INCREMENTAL_PASSES: dict[str, type[Pass]] = {
    "cfg-recovery": IncrementalCfgRecoveryPass,
    "site-discovery": IncrementalSiteDiscoveryPass,
    "wrapper-detection": IncrementalWrapperDetectionPass,
    "identification": IncrementalIdentificationPass,
}


def build_pipeline(config: PipelineConfig) -> PassPipeline:
    """Instantiate the pipeline a config describes (ablations applied)."""
    passes: list[Pass] = []
    for name in config.pass_names():
        if config.incremental and name in INCREMENTAL_PASSES:
            passes.append(INCREMENTAL_PASSES[name]())
        else:
            passes.append(PASS_REGISTRY[name]())
    return PassPipeline(passes)
