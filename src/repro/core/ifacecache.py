"""Persistent, versioned shared-interface cache (§4.5 across sessions).

The in-memory :class:`~repro.core.interface.InterfaceStore` amortises
library analysis *within* one process.  Fleet deployments (SYSPART /
sysfilter-style distro sweeps) re-run the analyzer over thousands of
binaries that link the same handful of libraries, so the amortisation
must survive the process: :class:`PersistentInterfaceStore` keeps one
JSON artifact per library under a cache directory and serves it to any
later session.

Cache entries are keyed defensively:

* **content hash** — the library image's ``content_hash`` (SHA-256 of
  the ELF bytes).  A rebuilt/upgraded library never matches a stale
  entry, and a renamed-but-identical one still hits.
* **analyzer cache version** — :data:`CACHE_VERSION`, bumped whenever
  the analysis pipeline changes in a way that alters interfaces.  A
  version mismatch invalidates the entry on sight.

Corrupted entries (truncated writes, junk files) are treated as misses
and deleted, never as errors: a cache must degrade to "analyze again",
not take the fleet run down.

Hit/miss/invalidation counters are exposed for the fleet report and the
``bench_fleet_scaling`` benchmark, which asserts a warm run performs
*zero* library re-analysis.
"""

from __future__ import annotations

import hashlib
import json
import os
import re

from ..loader.image import LoadedImage
from .interface import InterfaceStore, SharedInterface

#: Bump when analyzer changes invalidate previously-cached interfaces.
CACHE_VERSION = 1

_SAFE_NAME = re.compile(r"[^A-Za-z0-9._+-]")


def _safe_filename(library: str) -> str:
    """Map a soname to a filesystem-safe, collision-free cache filename.

    Sanitising alone could alias distinct sonames (``lib@1.so`` and
    ``lib#1.so`` both becoming ``lib_1.so``), which would make the two
    libraries perpetually invalidate each other's entries; a short
    digest of the raw soname keeps the mapping injective.
    """
    tag = hashlib.sha256(library.encode()).hexdigest()[:8]
    return f"{_SAFE_NAME.sub('_', library)}.{tag}.iface.json"


class PersistentInterfaceStore(InterfaceStore):
    """Disk-backed interface store keyed by content hash + cache version.

    Layout: one ``<library>.iface.json`` per library under ``cache_dir``,
    wrapping the §4.5 interface JSON in an envelope::

        {"cache_version": 1, "content_hash": "…", "interface": {…}}

    ``get``/``put`` keep the :class:`InterfaceStore` contract, so the
    store drops into :class:`~repro.core.analyzer.BSideAnalyzer`
    unchanged.  The analyzer announces each library image via
    :meth:`bind_image` before consulting the store; entries whose hash
    does not match the bound image (or whose version is stale, or whose
    JSON cannot be parsed) are invalidated and re-analyzed.
    """

    def __init__(self, cache_dir: str, *, version: int = CACHE_VERSION) -> None:
        super().__init__()
        self.cache_dir = cache_dir
        self.version = version
        os.makedirs(cache_dir, exist_ok=True)
        #: library name -> content hash of the image the caller is using
        self._bound_hashes: dict[str, str] = {}
        #: disk reads that produced a usable interface
        self.hits = 0
        #: lookups that found no usable entry (absent, stale, corrupt)
        self.misses = 0
        #: entries deleted because of version/hash mismatch or corruption
        self.invalidations = 0

    # ------------------------------------------------------------------
    # InterfaceStore contract
    # ------------------------------------------------------------------

    def bind_image(self, image: LoadedImage) -> None:
        self._bound_hashes[image.name] = image.content_hash

    def get(self, name: str) -> SharedInterface | None:
        cached = self._by_name.get(name)
        if cached is not None:
            return cached
        interface = self.load(name)
        if interface is None:
            self.misses += 1
            return None
        self.hits += 1
        self._by_name[name] = interface
        return interface

    def put(self, interface: SharedInterface) -> None:
        self._by_name[interface.library] = interface
        self.save(interface)

    # ------------------------------------------------------------------
    # Disk layer
    # ------------------------------------------------------------------

    def _path(self, name: str) -> str:
        return os.path.join(self.cache_dir, _safe_filename(name))

    def load(self, name: str) -> SharedInterface | None:
        """Read one entry from disk; ``None`` (and cleanup) when unusable."""
        path = self._path(name)
        if not os.path.exists(path):
            return None
        try:
            with open(path) as f:
                envelope = json.load(f)
            version = envelope["cache_version"]
            content_hash = envelope["content_hash"]
            interface = SharedInterface.from_json(
                json.dumps(envelope["interface"])
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            self.invalidate(name)
            return None
        if version != self.version:
            self.invalidate(name)
            return None
        bound = self._bound_hashes.get(name)
        if bound is not None and bound != content_hash:
            self.invalidate(name)
            return None
        return interface

    def save(self, interface: SharedInterface) -> None:
        envelope = {
            "cache_version": self.version,
            "content_hash": self._bound_hashes.get(interface.library, ""),
            "interface": json.loads(interface.to_json()),
        }
        path = self._path(interface.library)
        tmp = path + ".tmp"
        with open(tmp, "w") as f:
            json.dump(envelope, f, indent=2)
        os.replace(tmp, path)  # atomic: readers never see a torn write

    def invalidate(self, name: str | None = None) -> None:
        """Drop one entry (or, with ``name=None``, the whole cache)."""
        if name is None:
            for entry in list(self._by_name):
                self.invalidate(entry)
            for filename in os.listdir(self.cache_dir):
                if filename.endswith(".iface.json"):
                    os.remove(os.path.join(self.cache_dir, filename))
            return
        self._by_name.pop(name, None)
        path = self._path(name)
        if os.path.exists(path):
            os.remove(path)
            self.invalidations += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "resident": len(self._by_name),
        }
