"""Persistent, versioned shared-interface cache (§4.5 across sessions).

The in-memory :class:`~repro.core.interface.InterfaceStore` amortises
library analysis *within* one process.  Fleet deployments re-run the
analyzer over thousands of binaries that link the same handful of
libraries, so the amortisation must survive the process:
:class:`PersistentInterfaceStore` keeps one interface artifact per
library and serves it to any later session.

Since PR 2 the disk layer is the multi-kind, content-addressed
:class:`~repro.core.artifacts.ArtifactStore` (kind ``iface``); this
module adapts it to the :class:`InterfaceStore` contract the analyzer
consumes.  Entries are keyed defensively:

* **content hash** — the library image's ``content_hash`` (SHA-256 of
  the ELF bytes).  A rebuilt/upgraded library never matches a stale
  entry, and a renamed-but-identical one still hits.
* **pipeline-config fingerprint** — bound by the analyzer via
  :meth:`bind_fingerprint`; changing an ablation flag or budget misses
  instead of serving an interface the current pipeline would not build.
* **dependency hashes** — bound via :meth:`bind_dependencies`; a
  library's interface folds its dependencies' exports in, so an
  upgraded dependency invalidates the dependent's entry too.
* **cache version** — :data:`~repro.core.artifacts.CACHE_VERSION`,
  bumped whenever the analysis or envelope changes incompatibly.

Corrupted entries (truncated writes, junk files) are treated as misses
and deleted, never as errors: a cache must degrade to "analyze again",
not take the fleet run down.

Hit/miss/invalidation counters are exposed for the fleet report and the
``bench_fleet_scaling`` benchmark, which asserts a warm run performs
*zero* library re-analysis.
"""

from __future__ import annotations

import json

from ..loader.image import LoadedImage
from .artifacts import CACHE_VERSION, ArtifactStore
from .artifacts import _safe_filename as _artifact_filename
from .interface import InterfaceStore, SharedInterface

__all__ = ["CACHE_VERSION", "PersistentInterfaceStore"]


def _safe_filename(library: str) -> str:
    """Filesystem-safe, collision-free cache filename for one library."""
    return _artifact_filename(library, "iface")


class PersistentInterfaceStore(InterfaceStore):
    """Disk-backed interface store over an :class:`ArtifactStore`.

    ``get``/``put`` keep the :class:`InterfaceStore` contract, so the
    store drops into :class:`~repro.core.analyzer.BSideAnalyzer`
    unchanged.  The analyzer announces each library image via
    :meth:`bind_image` (and its pipeline fingerprint via
    :meth:`bind_fingerprint`) before consulting the store; entries whose
    hash or fingerprint does not match (or whose version is stale, or
    whose JSON cannot be parsed) are invalidated and re-analyzed.
    """

    def __init__(
        self,
        cache_dir: str | None = None,
        *,
        version: int = CACHE_VERSION,
        store: ArtifactStore | None = None,
    ) -> None:
        super().__init__()
        if store is None:
            if cache_dir is None:
                raise ValueError("need cache_dir or an ArtifactStore")
            store = ArtifactStore(cache_dir, version=version)
        self.store = store
        self.cache_dir = store.cache_dir
        self.version = store.version
        #: library name -> content hash of the image the caller is using
        self._bound_hashes: dict[str, str] = {}
        #: library name -> content hashes of its dependency closure
        self._bound_deps: dict[str, list[str]] = {}
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------
    # InterfaceStore contract
    # ------------------------------------------------------------------

    def bind_image(self, image: LoadedImage) -> None:
        self._bound_hashes[image.name] = image.content_hash

    def bind_fingerprint(self, fingerprint: str) -> None:
        self._fingerprint = fingerprint

    def bind_dependencies(self, name: str, dep_hashes: list[str]) -> None:
        self._bound_deps[name] = list(dep_hashes)

    def get(self, name: str) -> SharedInterface | None:
        cached = self._by_name.get(name)
        if cached is not None:
            return cached
        interface = self.load(name)
        if interface is None:
            return None
        self._by_name[name] = interface
        return interface

    def put(self, interface: SharedInterface) -> None:
        self._by_name[interface.library] = interface
        self.save(interface)

    # ------------------------------------------------------------------
    # Disk layer
    # ------------------------------------------------------------------

    def load(self, name: str) -> SharedInterface | None:
        """Read one entry from disk; ``None`` (and cleanup) when unusable."""
        payload = self.store.get(
            "iface", name,
            content_hash=self._bound_hashes.get(name),
            fingerprint=self._fingerprint,
            dep_hashes=self._bound_deps.get(name),
        )
        if payload is None:
            return None
        try:
            return SharedInterface.from_json(json.dumps(payload))
        except (KeyError, TypeError, ValueError):
            self.store.invalidate("iface", name)
            return None

    def save(self, interface: SharedInterface) -> None:
        self.store.put(
            "iface", interface.library,
            json.loads(interface.to_json()),
            content_hash=self._bound_hashes.get(interface.library, ""),
            fingerprint=self._fingerprint or "",
            dep_hashes=self._bound_deps.get(interface.library),
        )

    def invalidate(self, name: str | None = None) -> None:
        """Drop one entry (or, with ``name=None``, the whole iface cache)."""
        if name is None:
            self._by_name.clear()
            self.store.prune("iface")
            return
        self._by_name.pop(name, None)
        self.store.invalidate("iface", name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def hits(self) -> int:
        return self.store.counters("iface")["hits"]

    @property
    def misses(self) -> int:
        return self.store.counters("iface")["misses"]

    @property
    def invalidations(self) -> int:
        return self.store.counters("iface")["invalidations"]

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "resident": len(self._by_name),
        }
