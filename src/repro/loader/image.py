"""Loaded-image abstraction over a parsed ELF file.

A :class:`LoadedImage` is what every analysis consumes: code bytes with
their virtual base, the symbol view, the import/export interface, and the
GOT relocation map used to resolve PLT-style indirection
(``jmp/call [rip + got_slot]``) to external symbol names.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import cached_property

from ..elf.reader import ElfFile, Symbol, read_elf
from ..elf.structs import ET_DYN, ET_EXEC
from ..errors import LoaderError


@dataclass
class LoadedImage:
    """An ELF image ready for analysis or emulation.

    Not ``slots=True``: several views are ``cached_property``s, which need
    an instance ``__dict__``.
    """

    name: str
    elf: ElfFile
    #: the original ELF file bytes when loaded from disk/memory; used for
    #: content-addressed interface caching and for shipping images to
    #: worker processes.  Empty for images assembled directly from an
    #: :class:`ElfFile` (``content_hash`` then falls back to a structural
    #: digest).
    raw: bytes = b""

    @classmethod
    def from_bytes(
        cls, name: str, data: bytes, *, content_hash: str | None = None,
    ) -> "LoadedImage":
        """Parse an image from raw ELF bytes.

        ``content_hash`` pre-seeds the :attr:`content_hash` cache when
        the caller has already hashed these exact bytes (the service
        spool content-addresses every inline upload on admission, so
        hashing again at analysis time would be pure waste).  The value
        must be the SHA-256 hex digest of ``data``.
        """
        image = cls(name=name, elf=read_elf(data), raw=data)
        if content_hash:
            image.__dict__["content_hash"] = content_hash
        return image

    @classmethod
    def from_path(
        cls, path: str, *, content_hash: str | None = None,
    ) -> "LoadedImage":
        with open(path, "rb") as f:
            data = f.read()
        name = path.rsplit("/", 1)[-1]
        return cls.from_bytes(name, data, content_hash=content_hash)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @cached_property
    def content_hash(self) -> str:
        """Hex digest identifying this image's *content* (not its name).

        Two images with identical bytes share a hash, so a persistent
        interface cache keyed on it survives renames but never serves a
        stale interface for a modified library.
        """
        digest = hashlib.sha256()
        if self.raw:
            digest.update(self.raw)
        else:
            # Structural fallback for directly-assembled images: every
            # input the analysis consumes — all segment bytes (code and
            # data), the dynamic interface, GOT relocations, and both
            # symbol tables.
            digest.update(f"{self.elf.elf_type}:{self.elf.entry}".encode())
            for seg in self.elf.segments:
                digest.update(f"seg:{seg.vaddr}:{seg.flags}".encode())
                digest.update(seg.data)
            digest.update("\0".join(self.elf.needed).encode())
            for addr, sym_name in sorted(self.elf.relocations.items()):
                digest.update(f"rel:{addr}:{sym_name}".encode())
            for sym in sorted(
                self.elf.symbols + self.elf.dynamic_symbols,
                key=lambda s: (s.name, s.value),
            ):
                digest.update(
                    f"sym:{sym.name}:{sym.value}:{sym.size}:"
                    f"{sym.defined}".encode()
                )
        return digest.hexdigest()

    @property
    def entry(self) -> int:
        return self.elf.entry

    @property
    def is_shared_library(self) -> bool:
        return bool(self.elf.soname) or (self.elf.elf_type == ET_DYN and not self.elf.entry)

    @property
    def is_pic(self) -> bool:
        return self.elf.elf_type == ET_DYN

    @property
    def is_static_executable(self) -> bool:
        return self.elf.elf_type == ET_EXEC and not self.elf.needed

    @property
    def is_dynamic_executable(self) -> bool:
        return bool(self.elf.needed) and not self.is_shared_library

    @property
    def has_eh_frame(self) -> bool:
        """Whether the image carries stack-unwinding metadata."""
        return ".eh_frame" in self.elf.section_names

    @property
    def needed(self) -> list[str]:
        return self.elf.needed

    @property
    def text_base(self) -> int:
        return self.elf.text.vaddr

    @property
    def text_bytes(self) -> bytes:
        return self.elf.text.data

    @property
    def text_end(self) -> int:
        return self.elf.text.end

    def is_code_addr(self, addr: int) -> bool:
        return self.elf.text.contains(addr)

    def read_mem(self, addr: int, size: int) -> bytes:
        return self.elf.read_mem(addr, size)

    # ------------------------------------------------------------------
    # Symbol views
    # ------------------------------------------------------------------

    @cached_property
    def functions_by_addr(self) -> dict[int, Symbol]:
        """Defined function symbols keyed by address (static symtab view)."""
        out: dict[int, Symbol] = {}
        for sym in self.elf.symbols:
            if sym.is_function and sym.defined:
                out[sym.value] = sym
        return out

    @cached_property
    def functions_by_name(self) -> dict[str, Symbol]:
        return {sym.name: sym for sym in self.functions_by_addr.values()}

    @cached_property
    def exported_functions(self) -> dict[str, Symbol]:
        """Functions visible to other images (dynamic symbol table)."""
        return {
            sym.name: sym
            for sym in self.elf.dynamic_symbols
            if sym.is_function and sym.defined
        }

    @cached_property
    def imported_symbols(self) -> set[str]:
        """Undefined dynamic symbols this image expects its deps to provide."""
        return {sym.name for sym in self.elf.dynamic_symbols if not sym.defined}

    @cached_property
    def got_imports(self) -> dict[int, str]:
        """GOT slot address -> imported symbol name."""
        return dict(self.elf.relocations)

    def function_at(self, addr: int) -> Symbol | None:
        return self.functions_by_addr.get(addr)

    def symbol_addr(self, name: str) -> int:
        sym = self.functions_by_name.get(name) or self.exported_functions.get(name)
        if sym is None:
            for candidate in self.elf.symbols:
                if candidate.name == name and candidate.defined:
                    return candidate.value
            raise LoaderError(f"{self.name}: no symbol {name!r}")
        return sym.value

    @cached_property
    def function_boundaries(self) -> list[tuple[int, int]]:
        """Sorted (start, end) pairs for defined functions.

        Function sizes come from the symbol table when present; otherwise the
        next function start (or text end) bounds the function.  This mirrors
        the paper's assumption that the disassembler can determine function
        boundaries (§4.1).
        """
        starts = sorted(self.functions_by_addr)
        out = []
        for i, start in enumerate(starts):
            sym = self.functions_by_addr[start]
            if sym.size:
                end = start + sym.size
            elif i + 1 < len(starts):
                end = starts[i + 1]
            else:
                end = self.text_end
            out.append((start, end))
        return out

    def function_containing(self, addr: int) -> tuple[int, int] | None:
        """The (start, end) of the function containing ``addr``, if any."""
        for start, end in self.function_boundaries:
            if start <= addr < end:
                return (start, end)
        return None
