"""Binary loading: image abstraction and shared-library resolution."""

from .image import LoadedImage
from .resolve import LibraryResolver

__all__ = ["LoadedImage", "LibraryResolver"]
