"""Shared-library resolution across a corpus.

Dynamic executables name their dependencies via ``DT_NEEDED``; the resolver
maps those sonames to images.  It supports three providers:

* an in-memory mapping ``{soname: elf_bytes}`` (used by the generated corpus),
* a directory of ``.so`` files,
* direct registration of pre-loaded images.

Images are cached so that a library shared by many executables is parsed
once — mirroring B-Side's once-per-library analysis amortisation (§4.5).
"""

from __future__ import annotations

import os
from collections.abc import Callable

from ..errors import LoaderError
from .image import LoadedImage


class LibraryResolver:
    """Resolves sonames to :class:`LoadedImage` objects, with caching."""

    def __init__(
        self,
        provider: Callable[[str], bytes] | None = None,
        library_map: dict[str, bytes] | None = None,
        search_dir: str | None = None,
    ):
        self._provider = provider
        self._library_map = dict(library_map or {})
        self._search_dir = search_dir
        self._cache: dict[str, LoadedImage] = {}

    def register(self, name: str, image: LoadedImage) -> None:
        """Pre-register an already-loaded image under ``name``."""
        self._cache[name] = image

    def spec(self) -> dict | None:
        """A picklable recipe for rebuilding this resolver elsewhere.

        Worker processes of the parallel fleet engine cannot share this
        resolver directly (the provider may be a closure; images carry
        caches), so they rebuild one from raw bytes and the search dir.
        Returns ``None`` when the resolver cannot be reproduced — a
        callable provider is in play, or a registered image has no raw
        bytes — in which case the fleet falls back to serial analysis.
        """
        if self._provider is not None:
            return None
        library_map = dict(self._library_map)
        for name, image in self._cache.items():
            # The cache shadows the map in resolve(); mirror that here,
            # and refuse when a registered image cannot be reproduced.
            if not image.raw:
                return None
            library_map[name] = image.raw
        return {"library_map": library_map, "search_dir": self._search_dir}

    @classmethod
    def from_spec(cls, spec: dict) -> "LibraryResolver":
        return cls(
            library_map=spec["library_map"], search_dir=spec["search_dir"],
        )

    def register_bytes(self, name: str, data: bytes) -> None:
        self._library_map[name] = data

    def resolve(self, name: str) -> LoadedImage:
        """Load (or fetch from cache) the library named ``name``."""
        if name in self._cache:
            return self._cache[name]
        data = self._fetch(name)
        image = LoadedImage.from_bytes(name, data)
        self._cache[name] = image
        return image

    def _fetch(self, name: str) -> bytes:
        if name in self._library_map:
            return self._library_map[name]
        if self._provider is not None:
            try:
                return self._provider(name)
            except KeyError:
                pass
        if self._search_dir is not None:
            path = os.path.join(self._search_dir, name)
            if os.path.exists(path):
                with open(path, "rb") as f:
                    return f.read()
        raise LoaderError(f"cannot resolve library {name!r}")

    def dependency_closure(self, image: LoadedImage) -> list[LoadedImage]:
        """All transitive library dependencies of ``image``.

        Returned in a deterministic order (BFS over DT_NEEDED).  Raises
        :class:`LoaderError` on unresolvable or cyclic-with-missing deps.
        """
        seen: dict[str, LoadedImage] = {}
        queue = list(image.needed)
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            lib = self.resolve(name)
            seen[name] = lib
            queue.extend(dep for dep in lib.needed if dep not in seen)
        return list(seen.values())

    def topological_order(self, image: LoadedImage) -> list[LoadedImage]:
        """Dependency closure ordered leaves-first (libc before its users).

        B-Side's §4.5 computes shared interfaces following a DAG order so a
        library's interface is available before its dependents are analysed.
        """
        closure = {lib.name: lib for lib in self.dependency_closure(image)}
        order: list[LoadedImage] = []
        visiting: set[str] = set()
        done: set[str] = set()

        def visit(name: str) -> None:
            if name in done or name not in closure:
                return
            if name in visiting:
                raise LoaderError(f"dependency cycle through {name!r}")
            visiting.add(name)
            for dep in closure[name].needed:
                visit(dep)
            visiting.discard(name)
            done.add(name)
            order.append(closure[name])

        for name in sorted(closure):
            visit(name)
        return order
