"""x86-64 subset toolchain: registers, instruction IR, encoder, decoder, assembler.

This package is the reproduction's stand-in for Capstone (decoding) and for
a compiler back-end (the corpus generator assembles binaries with it).
"""

from .asm import Assembler, LabelRef
from .decoder import decode, decode_all
from .encoder import encode, encoded_size
from .insn import (
    CC_NUMBERS,
    CONDITION_CODES,
    Immediate,
    Instruction,
    Memory,
    Operand,
)
from .registers import (
    ARG_REGISTERS,
    EAX,
    EBX,
    ECX,
    EDI,
    EDX,
    ESI,
    GPR32,
    GPR64,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
    RAX,
    RBP,
    RBX,
    RCX,
    RDI,
    RDX,
    RSI,
    RSP,
    SYSCALL_ARG_REGISTERS,
    Register,
    reg,
)

__all__ = [
    "Assembler",
    "LabelRef",
    "decode",
    "decode_all",
    "encode",
    "encoded_size",
    "CC_NUMBERS",
    "CONDITION_CODES",
    "Immediate",
    "Instruction",
    "Memory",
    "Operand",
    "Register",
    "reg",
    "ARG_REGISTERS",
    "SYSCALL_ARG_REGISTERS",
    "GPR32",
    "GPR64",
    "RAX", "RBX", "RCX", "RDX", "RSP", "RBP", "RSI", "RDI",
    "R8", "R9", "R10", "R11", "R12", "R13", "R14", "R15",
    "EAX", "EBX", "ECX", "EDX", "ESI", "EDI",
]
