"""x86-64 general-purpose register definitions.

Registers are modelled as (canonical 64-bit name, width) pairs.  The encoder
and decoder need the hardware register number (0-15); the symbolic engine
needs the canonical name so that ``eax`` writes alias ``rax``.
"""

from __future__ import annotations

#: Canonical 64-bit register names in hardware-encoding order (0..15).
GPR64 = (
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
)

#: 32-bit views, index-aligned with :data:`GPR64`.
GPR32 = (
    "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
    "r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d",
)

_NUM_BY_NAME = {name: i for i, name in enumerate(GPR64)}
_NUM_BY_NAME.update({name: i for i, name in enumerate(GPR32)})

_CANONICAL = {name: name for name in GPR64}
_CANONICAL.update({n32: GPR64[i] for i, n32 in enumerate(GPR32)})

_WIDTH_BY_NAME = {name: 64 for name in GPR64}
_WIDTH_BY_NAME.update({name: 32 for name in GPR32})


class Register:
    """A general-purpose register operand.

    A hand-written slotted class (not a frozen dataclass): registers are
    built in the decoder's hottest loop, and the frozen-dataclass
    ``__init__`` costs one ``object.__setattr__`` per field.  The decoder
    interns the 16x2 possible instances, so in practice construction
    happens once per (register, width) pair per process.

    Attributes:
        name: canonical 64-bit name (``rax`` even for an ``eax`` operand).
        width: operand width in bits (64 or 32).
    """

    __slots__ = ("name", "width")

    def __init__(self, name: str, width: int = 64):
        if name not in _NUM_BY_NAME:
            raise ValueError(f"unknown register {name!r}")
        if width not in (32, 64):
            raise ValueError(f"unsupported register width {width}")
        # Normalise: always store the canonical 64-bit name.
        self.name = _CANONICAL[name]
        self.width = width

    def __eq__(self, other) -> bool:
        return (
            type(other) is Register
            and self.name == other.name
            and self.width == other.width
        )

    def __hash__(self) -> int:
        return hash((self.name, self.width))

    def __repr__(self) -> str:
        return f"Register(name={self.name!r}, width={self.width!r})"

    @property
    def number(self) -> int:
        """Hardware encoding number (0-15)."""
        return _NUM_BY_NAME[self.name]

    @property
    def display(self) -> str:
        """Width-appropriate assembly spelling (``eax`` for 32-bit rax)."""
        if self.width == 32:
            return GPR32[self.number]
        return self.name

    def as_width(self, width: int) -> "Register":
        """Return the same register at a different operand width."""
        return Register(self.name, width)

    def __str__(self) -> str:
        return f"%{self.display}"


def reg(name: str) -> Register:
    """Build a :class:`Register` from any spelling (``rax``, ``eax``...)."""
    if name not in _NUM_BY_NAME:
        raise ValueError(f"unknown register {name!r}")
    return Register(_CANONICAL[name], _WIDTH_BY_NAME[name])


# Convenience singletons for the 64-bit registers (used pervasively by the
# assembler-facing corpus builders).
RAX = reg("rax")
RCX = reg("rcx")
RDX = reg("rdx")
RBX = reg("rbx")
RSP = reg("rsp")
RBP = reg("rbp")
RSI = reg("rsi")
RDI = reg("rdi")
R8 = reg("r8")
R9 = reg("r9")
R10 = reg("r10")
R11 = reg("r11")
R12 = reg("r12")
R13 = reg("r13")
R14 = reg("r14")
R15 = reg("r15")

EAX = reg("eax")
ECX = reg("ecx")
EDX = reg("edx")
EBX = reg("ebx")
ESI = reg("esi")
EDI = reg("edi")

#: System V AMD64 ABI: integer argument registers, in order.
ARG_REGISTERS = (RDI, RSI, RDX, RCX, R8, R9)

#: Linux syscall ABI: argument registers for syscall parameters.
SYSCALL_ARG_REGISTERS = (RDI, RSI, RDX, R10, R8, R9)
