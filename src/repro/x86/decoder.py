"""x86-64 instruction decoder for the supported subset (table-driven).

The decoder is the reproduction's stand-in for Capstone: it turns raw
machine-code bytes back into :class:`~repro.x86.insn.Instruction` objects.
Relative branch targets and RIP-relative displacements are resolved to
absolute addresses, which is the form the CFG builder and symbolic engine
consume.

This is the cold path's first hot loop (every byte of every image flows
through it), so the implementation is built for speed rather than for
reading like the manual:

* **dispatch tables** — a 256-entry handler table per opcode byte (plus
  one for the ``0F`` second byte) replaces the original if/elif chain;
  each handler is a small function over an integer cursor into the
  buffer, with fixed-layout immediates read via precompiled
  :class:`struct.Struct` objects (no intermediate byte slices);
* **interned operands** — the 16x2 possible :class:`Register` operands
  are preallocated and shared, so register-heavy code allocates no
  operand objects at all;
* **no per-instruction scaffolding** — cursor and REX state are plain
  local integers, not objects.

Behaviour is bit-for-bit identical to the original implementation,
which is preserved as :mod:`repro.x86.refdecoder` and compared against
this module instruction-by-instruction (including error cases) by the
decoder differential test.
"""

from __future__ import annotations

import struct

from ..errors import DecodeError
from .insn import CONDITION_CODES, Immediate, Instruction, Memory, Operand
from .registers import GPR64, Register

_ALU_BY_GROUP = {0: "add", 1: "or", 4: "and", 5: "sub", 6: "xor", 7: "cmp"}
_ALU_BY_MR = {0x01: "add", 0x09: "or", 0x21: "and", 0x29: "sub", 0x31: "xor", 0x39: "cmp"}
_ALU_BY_RM = {0x03: "add", 0x0B: "or", 0x23: "and", 0x2B: "sub", 0x33: "xor", 0x3B: "cmp"}
_SCALES = (1, 2, 4, 8)

_I32 = struct.Struct("<i")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

#: interned register operands: ``_REGS[width][number]``
_REGS = {
    64: tuple(Register(name, 64) for name in GPR64),
    32: tuple(Register(name, 32) for name in GPR64),
}
_REG64 = _REGS[64]

#: jcc/cmovcc mnemonics by condition nibble
_JCC = tuple(f"j{CONDITION_CODES[n]}" for n in range(16))
_CMOVCC = tuple(f"cmov{CONDITION_CODES[n]}" for n in range(16))

_EMPTY: tuple[Operand, ...] = ()


def _modrm(data, pos: int, rex: int, width: int):
    """Decode ModRM (+SIB/disp) at ``pos``; returns (reg_field, rm, pos).

    RIP-relative displacements are returned raw; :func:`decode` resolves
    them to absolute addresses once the instruction length is known.
    """
    modrm = data[pos]
    pos += 1
    mod = modrm >> 6
    reg_field = ((modrm >> 3) & 7) | ((rex >> 2 & 1) << 3)
    rm = (modrm & 7) | ((rex & 1) << 3)

    if mod == 3:
        return reg_field, _REGS[width][rm], pos

    if mod == 0 and (modrm & 7) == 5:
        # RIP-relative disp32.
        disp = _I32.unpack_from(data, pos)[0]
        return reg_field, Memory(disp=disp, width=width, rip_relative=True), pos + 4

    base = None
    index = None
    scale = 1
    if (modrm & 7) == 4:
        sib = data[pos]
        pos += 1
        scale = _SCALES[sib >> 6]
        index_num = ((sib >> 3) & 7) | ((rex >> 1 & 1) << 3)
        base_num = (sib & 7) | ((rex & 1) << 3)
        if index_num != 4:  # 100 = no index
            index = _REG64[index_num]
        if mod == 0 and (sib & 7) == 5:
            disp = _I32.unpack_from(data, pos)[0]
            pos += 4
            if index is None:
                # Absolute [disp32].
                return reg_field, Memory(disp=disp & 0xFFFFFFFF, width=width), pos
            return (
                reg_field,
                Memory(index=index, scale=scale, disp=disp, width=width),
                pos,
            )
        base = _REG64[base_num]
    else:
        base = _REG64[rm]

    if mod == 0:
        disp = 0
    elif mod == 1:
        disp = data[pos]
        pos += 1
        if disp >= 128:
            disp -= 256
    else:
        disp = _I32.unpack_from(data, pos)[0]
        pos += 4
    return reg_field, Memory(base=base, index=index, scale=scale, disp=disp, width=width), pos


# ----------------------------------------------------------------------
# Opcode handlers.  Signature: (data, pos, addr, start, rex, width) ->
# (mnemonic, operands, pos) with pos past the instruction's last byte.
# ``addr``/``start`` locate the instruction (branch targets, errors).
# ----------------------------------------------------------------------


def _h_simple(mnemonic):
    def handler(data, pos, addr, start, rex, width):
        return mnemonic, _EMPTY, pos
    return handler


def _h_cdq(data, pos, addr, start, rex, width):
    return ("cqo" if rex >> 3 & 1 else "cdq"), _EMPTY, pos


def _h_0f(data, pos, addr, start, rex, width):
    second = data[pos]
    pos += 1
    handler = _DISPATCH_0F[second]
    if handler is None:
        raise DecodeError(f"unsupported 0F opcode {second:#04x}", addr)
    return handler(data, pos, addr, start, rex, width)


def _h_syscall(data, pos, addr, start, rex, width):
    return "syscall", _EMPTY, pos


def _h_ud2(data, pos, addr, start, rex, width):
    return "ud2", _EMPTY, pos


def _h_jcc32(cc_name):
    def handler(data, pos, addr, start, rex, width):
        rel = _I32.unpack_from(data, pos)[0]
        pos += 4
        return cc_name, (Immediate(addr + (pos - start) + rel, 64),), pos
    return handler


def _h_cmovcc(cc_name):
    def handler(data, pos, addr, start, rex, width):
        reg_field, rm, pos = _modrm(data, pos, rex, width)
        return cc_name, (_REGS[width][reg_field], rm), pos
    return handler


def _h_imul_0f(data, pos, addr, start, rex, width):
    reg_field, rm, pos = _modrm(data, pos, rex, width)
    return "imul", (_REGS[width][reg_field], rm), pos


def _h_movx(second):
    src_width = 8 if second in (0xB6, 0xBE) else 16
    mnemonic = "movzx" if second in (0xB6, 0xB7) else "movsx"

    def handler(data, pos, addr, start, rex, width):
        reg_field, rm, pos = _modrm(data, pos, rex, width)
        if not isinstance(rm, Memory):
            raise DecodeError("movzx/movsx register sources unsupported", addr)
        rm = Memory(base=rm.base, index=rm.index, scale=rm.scale,
                    disp=rm.disp, width=src_width, rip_relative=rm.rip_relative)
        return mnemonic, (_REGS[width][reg_field], rm), pos
    return handler


def _h_movsxd(data, pos, addr, start, rex, width):
    reg_field, rm, pos = _modrm(data, pos, rex, 32)
    return "movsxd", (_REG64[reg_field], rm), pos


def _h_push_reg(data, pos, addr, start, rex, width):
    byte = data[pos - 1]
    return "push", (_REG64[(byte & 7) | ((rex & 1) << 3)],), pos


def _h_pop_reg(data, pos, addr, start, rex, width):
    byte = data[pos - 1]
    return "pop", (_REG64[(byte & 7) | ((rex & 1) << 3)],), pos


def _h_push_imm(data, pos, addr, start, rex, width):
    value = _I32.unpack_from(data, pos)[0]
    return "push", (Immediate(value, 32),), pos + 4


def _h_mov_imm_reg(data, pos, addr, start, rex, width):
    byte = data[pos - 1]
    num = (byte & 7) | ((rex & 1) << 3)
    if rex >> 3 & 1:
        value = _U64.unpack_from(data, pos)[0]
        return "mov", (_REG64[num], Immediate(value, 64)), pos + 8
    value = _U32.unpack_from(data, pos)[0]
    return "mov", (_REGS[32][num], Immediate(value, 32)), pos + 4


def _h_alu_mr(mnemonic):
    def handler(data, pos, addr, start, rex, width):
        reg_field, rm, pos = _modrm(data, pos, rex, width)
        return mnemonic, (rm, _REGS[width][reg_field]), pos
    return handler


def _h_alu_rm(mnemonic):
    def handler(data, pos, addr, start, rex, width):
        reg_field, rm, pos = _modrm(data, pos, rex, width)
        return mnemonic, (_REGS[width][reg_field], rm), pos
    return handler


def _h_alu_group(opcode):
    imm8 = opcode == 0x83

    def handler(data, pos, addr, start, rex, width):
        reg_field, rm, pos = _modrm(data, pos, rex, width)
        group = reg_field & 7
        mnemonic = _ALU_BY_GROUP.get(group)
        if mnemonic is None:
            raise DecodeError(f"unsupported ALU group {group}", addr)
        if imm8:
            value = data[pos]
            pos += 1
            if value >= 128:
                value -= 256
            imm = Immediate(value, 8)
        else:
            imm = Immediate(_I32.unpack_from(data, pos)[0], 32)
            pos += 4
        return mnemonic, (rm, imm), pos
    return handler


def _h_test_mr(data, pos, addr, start, rex, width):
    reg_field, rm, pos = _modrm(data, pos, rex, width)
    return "test", (rm, _REGS[width][reg_field]), pos


def _h_f7_group(data, pos, addr, start, rex, width):
    reg_field, rm, pos = _modrm(data, pos, rex, width)
    group = reg_field & 7
    if group == 0:
        imm = Immediate(_I32.unpack_from(data, pos)[0], 32)
        return "test", (rm, imm), pos + 4
    if group == 2:
        return "not", (rm,), pos
    if group == 3:
        return "neg", (rm,), pos
    raise DecodeError(f"unsupported F7 group {group}", addr)


def _h_mov_mr(data, pos, addr, start, rex, width):
    reg_field, rm, pos = _modrm(data, pos, rex, width)
    return "mov", (rm, _REGS[width][reg_field]), pos


def _h_mov_rm(data, pos, addr, start, rex, width):
    reg_field, rm, pos = _modrm(data, pos, rex, width)
    return "mov", (_REGS[width][reg_field], rm), pos


def _h_mov_imm_rm(data, pos, addr, start, rex, width):
    reg_field, rm, pos = _modrm(data, pos, rex, width)
    if (reg_field & 7) != 0:
        raise DecodeError("unsupported C7 group", addr)
    imm = Immediate(_I32.unpack_from(data, pos)[0], 32)
    return "mov", (rm, imm), pos + 4


def _h_lea(data, pos, addr, start, rex, width):
    reg_field, rm, pos = _modrm(data, pos, rex, width)
    if not isinstance(rm, Memory):
        raise DecodeError("lea requires a memory operand", addr)
    return "lea", (_REG64[reg_field], rm), pos


def _h_shift(data, pos, addr, start, rex, width):
    reg_field, rm, pos = _modrm(data, pos, rex, width)
    group = reg_field & 7
    count = Immediate(data[pos], 8)
    pos += 1
    if group == 4:
        return "shl", (rm, count), pos
    if group == 5:
        return "shr", (rm, count), pos
    raise DecodeError(f"unsupported shift group {group}", addr)


def _h_call_rel32(data, pos, addr, start, rex, width):
    rel = _I32.unpack_from(data, pos)[0]
    pos += 4
    return "call", (Immediate(addr + (pos - start) + rel, 64),), pos


def _h_jmp_rel32(data, pos, addr, start, rex, width):
    rel = _I32.unpack_from(data, pos)[0]
    pos += 4
    return "jmp", (Immediate(addr + (pos - start) + rel, 64),), pos


def _h_jmp_rel8(data, pos, addr, start, rex, width):
    rel = data[pos]
    pos += 1
    if rel >= 128:
        rel -= 256
    return "jmp", (Immediate(addr + (pos - start) + rel, 64),), pos


def _h_jcc8(cc_name):
    def handler(data, pos, addr, start, rex, width):
        rel = data[pos]
        pos += 1
        if rel >= 128:
            rel -= 256
        return cc_name, (Immediate(addr + (pos - start) + rel, 64),), pos
    return handler


def _h_ff_group(data, pos, addr, start, rex, width):
    reg_field, rm, pos = _modrm(data, pos, rex, width)
    group = reg_field & 7
    if group == 0:
        return "inc", (rm,), pos
    if group == 1:
        return "dec", (rm,), pos
    # call/jmp r/m default to 64-bit operands in long mode.
    if isinstance(rm, Register):
        if rm.width != 64:
            rm = _REG64[rm.number]
    elif isinstance(rm, Memory) and rm.width != 64:
        rm = Memory(base=rm.base, index=rm.index, scale=rm.scale,
                    disp=rm.disp, width=64, rip_relative=rm.rip_relative)
    if group == 2:
        return "call", (rm,), pos
    if group == 4:
        return "jmp", (rm,), pos
    raise DecodeError(f"unsupported FF group {group}", addr)


def _build_dispatch():
    table: list = [None] * 256
    table[0xC3] = _h_simple("ret")
    table[0x90] = _h_simple("nop")
    table[0xF4] = _h_simple("hlt")
    table[0xCC] = _h_simple("int3")
    table[0x99] = _h_cdq
    table[0x0F] = _h_0f
    table[0x63] = _h_movsxd
    for byte in range(0x50, 0x58):
        table[byte] = _h_push_reg
    for byte in range(0x58, 0x60):
        table[byte] = _h_pop_reg
    table[0x68] = _h_push_imm
    for byte in range(0xB8, 0xC0):
        table[byte] = _h_mov_imm_reg
    for byte, mnemonic in _ALU_BY_MR.items():
        table[byte] = _h_alu_mr(mnemonic)
    for byte, mnemonic in _ALU_BY_RM.items():
        table[byte] = _h_alu_rm(mnemonic)
    table[0x81] = _h_alu_group(0x81)
    table[0x83] = _h_alu_group(0x83)
    table[0x85] = _h_test_mr
    table[0xF7] = _h_f7_group
    table[0x89] = _h_mov_mr
    table[0x8B] = _h_mov_rm
    table[0xC7] = _h_mov_imm_rm
    table[0x8D] = _h_lea
    table[0xC1] = _h_shift
    table[0xE8] = _h_call_rel32
    table[0xE9] = _h_jmp_rel32
    table[0xEB] = _h_jmp_rel8
    for nibble in range(16):
        table[0x70 + nibble] = _h_jcc8(_JCC[nibble])
    table[0xFF] = _h_ff_group
    return table


def _build_dispatch_0f():
    table: list = [None] * 256
    table[0x05] = _h_syscall
    table[0x0B] = _h_ud2
    for nibble in range(16):
        table[0x80 + nibble] = _h_jcc32(_JCC[nibble])
        table[0x40 + nibble] = _h_cmovcc(_CMOVCC[nibble])
    table[0xAF] = _h_imul_0f
    for second in (0xB6, 0xB7, 0xBE, 0xBF):
        table[second] = _h_movx(second)
    return table


_DISPATCH_0F = _build_dispatch_0f()
_DISPATCH = _build_dispatch()


def decode(data: bytes, offset: int = 0, addr: int = 0) -> Instruction:
    """Decode one instruction from ``data`` at ``offset``, placed at ``addr``."""
    try:
        byte = data[offset]
        pos = offset + 1
        if 0x40 <= byte <= 0x4F:
            rex = byte
            width = 64 if rex & 8 else 32
            byte = data[pos]
            pos += 1
        else:
            rex = 0
            width = 32
        handler = _DISPATCH[byte]
        if handler is None:
            raise DecodeError(f"unsupported opcode {byte:#04x}", addr)
        mnemonic, operands, pos = handler(data, pos, addr, offset, rex, width)
    except (IndexError, struct.error):
        raise DecodeError("truncated instruction", addr) from None

    size = pos - offset
    end = addr + size
    for op in operands:
        # Resolve raw RIP-relative displacements to absolute addresses.
        if type(op) is Memory and op.rip_relative:
            operands = tuple(
                Memory(disp=o.disp + end, width=o.width, rip_relative=True)
                if type(o) is Memory and o.rip_relative else o
                for o in operands
            )
            break
    return Instruction(mnemonic, operands, addr=addr, size=size,
                       raw=data[offset:pos])


def decode_all(data: bytes, base_addr: int = 0) -> list[Instruction]:
    """Linear-sweep decode of an entire code buffer starting at ``base_addr``.

    The decode body is inlined into the sweep loop (with the dispatch
    table and constructors bound locally): whole-image decode is the
    kernel's densest call site, and the per-instruction function-call
    round trip through :func:`decode` was measurable on its own.
    Behaviour is identical to calling :func:`decode` per instruction.
    """
    out: list[Instruction] = []
    offset = 0
    size = len(data)
    append = out.append
    dispatch = _DISPATCH
    make_insn = Instruction
    memory_type = Memory
    while offset < size:
        addr = base_addr + offset
        try:
            byte = data[offset]
            pos = offset + 1
            if 0x40 <= byte <= 0x4F:
                rex = byte
                width = 64 if rex & 8 else 32
                byte = data[pos]
                pos += 1
            else:
                rex = 0
                width = 32
            handler = dispatch[byte]
            if handler is None:
                raise DecodeError(f"unsupported opcode {byte:#04x}", addr)
            mnemonic, operands, pos = handler(data, pos, addr, offset, rex, width)
        except (IndexError, struct.error):
            raise DecodeError("truncated instruction", addr) from None
        insn_size = pos - offset
        end = addr + insn_size
        for op in operands:
            if type(op) is memory_type and op.rip_relative:
                operands = tuple(
                    memory_type(disp=o.disp + end, width=o.width,
                                rip_relative=True)
                    if type(o) is memory_type and o.rip_relative else o
                    for o in operands
                )
                break
        append(make_insn(mnemonic, operands, addr=addr, size=insn_size,
                         raw=data[offset:pos]))
        offset = pos
    return out
