"""Two-pass label-based assembler for the x86-64 subset.

The assembler produces a flat code segment plus a symbol table.  Labels can
be referenced by direct branches, RIP-relative ``lea``/``mov`` (PIC-style
address formation), and ``movabs`` absolute loads (non-PIC-style address
formation) — the two styles matter to the evaluation because SysFilter's
address-taken scan only understands the former.

External symbols (data objects, imported functions laid out by the ELF
writer) are resolved at :meth:`Assembler.assemble` time through the
``externs`` mapping.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AsmError
from .encoder import encode
from .insn import CONDITION_CODES, Immediate, Instruction, Memory, Operand
from .registers import Register

#: Marker operand kinds for unresolved label references.
_BRANCH = "branch"
_ABS64 = "abs64"
_RIP = "rip"


@dataclass(frozen=True, slots=True)
class LabelRef:
    """An unresolved reference to a label or extern symbol."""

    name: str
    kind: str
    addend: int = 0


@dataclass(slots=True)
class _Item:
    kind: str  # "insn" | "label" | "bytes" | "align"
    mnemonic: str = ""
    operands: tuple = ()
    name: str = ""
    raw: bytes = b""
    amount: int = 0
    size: int = 0
    addr: int = 0


class Assembler:
    """Accumulates instructions and resolves labels in two passes."""

    def __init__(self, base: int = 0x401000):
        self.base = base
        self._items: list[_Item] = []
        self._label_names: set[str] = set()
        self._resolved: dict[str, int] | None = None

    # ------------------------------------------------------------------
    # Emission primitives
    # ------------------------------------------------------------------

    def label(self, name: str) -> None:
        """Define ``name`` at the current position."""
        if name in self._label_names:
            raise AsmError(f"duplicate label {name!r}")
        self._label_names.add(name)
        self._items.append(_Item("label", name=name))

    def emit(self, mnemonic: str, *operands: Operand | LabelRef) -> None:
        """Append an instruction (operands destination-first)."""
        self._items.append(_Item("insn", mnemonic=mnemonic, operands=tuple(operands)))

    def raw_bytes(self, raw: bytes) -> None:
        """Append raw bytes verbatim (e.g. hand-rolled encodings)."""
        self._items.append(_Item("bytes", raw=raw))

    def align(self, boundary: int) -> None:
        """Pad with ``nop`` to the given power-of-two boundary."""
        if boundary & (boundary - 1):
            raise AsmError("alignment must be a power of two")
        self._items.append(_Item("align", amount=boundary))

    # ------------------------------------------------------------------
    # Instruction sugar
    # ------------------------------------------------------------------

    @staticmethod
    def _coerce(value) -> Operand:
        if isinstance(value, int):
            return Immediate(value)
        return value

    def mov(self, dst, src) -> None:
        self.emit("mov", self._coerce(dst), self._coerce(src))

    def movabs(self, dst: Register, value: int) -> None:
        self.emit("movabs", dst, Immediate(value, 64))

    def load_addr(self, dst: Register, label: str, addend: int = 0) -> None:
        """``movabs dst, &label`` — non-PIC absolute address formation."""
        self.emit("movabs", dst, LabelRef(label, _ABS64, addend))

    def lea_rip(self, dst: Register, label: str, addend: int = 0) -> None:
        """``lea dst, [rip + label]`` — PIC address formation (address taken)."""
        self.emit("lea", dst, LabelRef(label, _RIP, addend))

    def mov_from_rip(self, dst: Register, label: str, addend: int = 0) -> None:
        """``mov dst, [rip + label]`` — load a 64-bit value from a data label."""
        self.emit("mov", dst, _RipMem(LabelRef(label, _RIP, addend)))

    def mov_to_rip(self, label: str, src: Register, addend: int = 0) -> None:
        """``mov [rip + label], src`` — store to a data label."""
        self.emit("mov", _RipMem(LabelRef(label, _RIP, addend)), src)

    def lea(self, dst, mem: Memory) -> None:
        self.emit("lea", dst, mem)

    def add(self, dst, src) -> None:
        self.emit("add", dst, self._coerce(src))

    def sub(self, dst, src) -> None:
        self.emit("sub", dst, self._coerce(src))

    def xor(self, dst, src) -> None:
        self.emit("xor", dst, self._coerce(src))

    def and_(self, dst, src) -> None:
        self.emit("and", dst, self._coerce(src))

    def or_(self, dst, src) -> None:
        self.emit("or", dst, self._coerce(src))

    def shl(self, dst, count: int) -> None:
        self.emit("shl", dst, Immediate(count, 8))

    def shr(self, dst, count: int) -> None:
        self.emit("shr", dst, Immediate(count, 8))

    def imul(self, dst, src) -> None:
        self.emit("imul", dst, src)

    def cmp(self, a, b) -> None:
        self.emit("cmp", a, self._coerce(b))

    def test(self, a, b) -> None:
        self.emit("test", a, self._coerce(b))

    def push(self, op) -> None:
        self.emit("push", self._coerce(op))

    def pop(self, op: Register) -> None:
        self.emit("pop", op)

    def call(self, target) -> None:
        self.emit("call", self._branch_target(target))

    def jmp(self, target) -> None:
        self.emit("jmp", self._branch_target(target))

    def jcc(self, cc: str, target) -> None:
        if cc not in CONDITION_CODES.values():
            raise AsmError(f"unknown condition code {cc!r}")
        self.emit(f"j{cc}", self._branch_target(target))

    def call_reg(self, r: Register) -> None:
        self.emit("call", r)

    def jmp_reg(self, r: Register) -> None:
        self.emit("jmp", r)

    def call_mem(self, mem: Memory) -> None:
        self.emit("call", mem)

    def jmp_mem(self, mem: Memory) -> None:
        self.emit("jmp", mem)

    def ret(self) -> None:
        self.emit("ret")

    def syscall(self) -> None:
        self.emit("syscall")

    def nop(self) -> None:
        self.emit("nop")

    def hlt(self) -> None:
        self.emit("hlt")

    def ud2(self) -> None:
        self.emit("ud2")

    @staticmethod
    def _branch_target(target) -> Operand | LabelRef:
        if isinstance(target, str):
            return LabelRef(target, _BRANCH)
        if isinstance(target, int):
            return Immediate(target, 64)
        return target

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------

    def assemble(self, externs: dict[str, int] | None = None) -> bytes:
        """Resolve labels and encode everything; returns the code bytes."""
        externs = externs or {}

        # Pass 1: lay out addresses using shape-stable dummy operands.
        addr = self.base
        local: dict[str, int] = {}
        for item in self._items:
            item.addr = addr
            if item.kind == "label":
                local[item.name] = addr
                continue
            if item.kind == "bytes":
                item.size = len(item.raw)
            elif item.kind == "align":
                item.size = (-addr) % item.amount
            else:
                insn = self._materialise(item, addr, None, None, sizing=True)
                item.size = len(encode(insn, addr))
            addr += item.size

        # Pass 2: encode with real label values.
        self._resolved = dict(local)
        out = bytearray()
        for item in self._items:
            if item.kind == "label":
                continue
            if item.kind == "bytes":
                out += item.raw
            elif item.kind == "align":
                out += b"\x90" * item.size
            else:
                insn = self._materialise(item, item.addr, local, externs, sizing=False)
                code = encode(insn, item.addr)
                if len(code) != item.size:
                    raise AsmError(
                        f"size drift for '{item.mnemonic}' at {item.addr:#x}: "
                        f"{item.size} -> {len(code)}"
                    )
                out += code
        return bytes(out)

    def labels(self) -> dict[str, int]:
        """Label addresses (valid after :meth:`assemble`)."""
        if self._resolved is None:
            raise AsmError("assemble() has not been called yet")
        return dict(self._resolved)

    @property
    def size(self) -> int:
        """Total encoded size (valid after :meth:`assemble`)."""
        if self._resolved is None:
            raise AsmError("assemble() has not been called yet")
        return sum(i.size for i in self._items)

    def _materialise(
        self,
        item: _Item,
        addr: int,
        local: dict[str, int] | None,
        externs: dict[str, int] | None,
        sizing: bool,
    ) -> Instruction:
        operands = tuple(
            self._resolve_operand(op, addr, local, externs, sizing)
            for op in item.operands
        )
        return Instruction(item.mnemonic, operands)

    def _resolve_operand(
        self,
        op,
        addr: int,
        local: dict[str, int] | None,
        externs: dict[str, int] | None,
        sizing: bool,
    ) -> Operand:
        if isinstance(op, _RipMem):
            inner = self._resolve_operand(op.ref, addr, local, externs, sizing)
            assert isinstance(inner, (Immediate, Memory))
            target = inner.disp if isinstance(inner, Memory) else inner.value
            return Memory(disp=target, width=64, rip_relative=True)
        if not isinstance(op, LabelRef):
            return op
        if sizing:
            value = addr  # benign placeholder: keeps rel32/disp32 in range
        else:
            assert local is not None and externs is not None
            if op.name in local:
                value = local[op.name]
            elif op.name in externs:
                value = externs[op.name]
            else:
                raise AsmError(f"undefined label {op.name!r}")
            value += op.addend
        if op.kind == _BRANCH:
            return Immediate(value, 64)
        if op.kind == _ABS64:
            return Immediate(value, 64)
        if op.kind == _RIP:
            return Memory(disp=value, width=64, rip_relative=True)
        raise AsmError(f"unknown label-ref kind {op.kind!r}")


@dataclass(frozen=True, slots=True)
class _RipMem:
    """Wrapper marking 'memory access through a RIP-relative label'."""

    ref: LabelRef
