"""x86-64 instruction encoder.

Produces genuine x86-64 machine code (REX prefixes, ModRM/SIB forms,
RIP-relative addressing) for the instruction subset in :mod:`repro.x86.insn`.
Relative branches and RIP-relative memory operands carry *absolute* target
addresses in the IR; the encoder converts them to displacements using the
instruction's address.
"""

from __future__ import annotations

import struct

from ..errors import EncodeError
from .insn import CC_NUMBERS, Immediate, Instruction, Memory, Operand
from .registers import Register

#: /digit group numbers for the classic ALU immediate group (0x80/0x81/0x83).
_ALU_GROUP = {"add": 0, "or": 1, "and": 4, "sub": 5, "xor": 6, "cmp": 7}

#: opcode for "op r/m, r" per ALU mnemonic.
_ALU_MR = {"add": 0x01, "or": 0x09, "and": 0x21, "sub": 0x29, "xor": 0x31, "cmp": 0x39}

#: opcode for "op r, r/m" per ALU mnemonic.
_ALU_RM = {"add": 0x03, "or": 0x0B, "and": 0x23, "sub": 0x2B, "xor": 0x33, "cmp": 0x3B}

_SCALE_BITS = {1: 0, 2: 1, 4: 2, 8: 3}


def _i8(value: int) -> bytes:
    return struct.pack("<b", value)


def _i32(value: int) -> bytes:
    return struct.pack("<i", value)


def _u32(value: int) -> bytes:
    return struct.pack("<I", value & 0xFFFFFFFF)


def _u64(value: int) -> bytes:
    return struct.pack("<Q", value & 0xFFFFFFFFFFFFFFFF)


def _fits_i8(value: int) -> bool:
    return -128 <= value <= 127


def _fits_i32(value: int) -> bool:
    return -(2**31) <= value <= 2**31 - 1


def _fits_u_or_i32(value: int) -> bool:
    return -(2**31) <= value <= 2**32 - 1


class _ModRM:
    """Accumulates ModRM/SIB/displacement bytes plus REX bits."""

    def __init__(self) -> None:
        self.rex_r = 0
        self.rex_x = 0
        self.rex_b = 0
        self.body = b""


def _encode_modrm(reg_field: int, rm: Operand, insn_end_delta: int = 0) -> _ModRM:
    """Encode the ModRM (and SIB/disp) bytes for ``rm`` with ``reg_field``.

    ``insn_end_delta`` is the number of immediate bytes that follow the
    ModRM block; it matters only for RIP-relative operands, whose
    displacement is measured from the *end* of the instruction.  The caller
    patches RIP-relative displacement afterwards via :func:`_encode`.
    """
    out = _ModRM()
    out.rex_r = (reg_field >> 3) & 1
    reg3 = reg_field & 7

    if isinstance(rm, Register):
        out.rex_b = (rm.number >> 3) & 1
        out.body = bytes([0xC0 | (reg3 << 3) | (rm.number & 7)])
        return out

    if not isinstance(rm, Memory):
        raise EncodeError(f"cannot use {rm!r} as ModRM r/m")

    if rm.rip_relative:
        # mod=00 rm=101: disp32 is RIP-relative; placeholder patched later.
        out.body = bytes([(reg3 << 3) | 0x05]) + b"\x00\x00\x00\x00"
        return out

    if rm.base is None and rm.index is None:
        # Absolute 32-bit address: mod=00 rm=100, SIB base=101 index=none.
        if not _fits_u_or_i32(rm.disp):
            raise EncodeError(f"absolute address {rm.disp:#x} does not fit in 32 bits")
        out.body = bytes([(reg3 << 3) | 0x04, 0x25]) + _u32(rm.disp)
        return out

    if rm.base is None:
        # Index without base: mod=00 rm=100, SIB base=101, disp32 mandatory.
        assert rm.index is not None
        if rm.index.number & 7 == 4 and rm.index.number < 8:
            raise EncodeError("rsp cannot be an index register")
        out.rex_x = (rm.index.number >> 3) & 1
        sib = (_SCALE_BITS[rm.scale] << 6) | ((rm.index.number & 7) << 3) | 0x05
        out.body = bytes([(reg3 << 3) | 0x04, sib]) + _i32(rm.disp)
        return out

    base_num = rm.base.number
    out.rex_b = (base_num >> 3) & 1
    need_sib = rm.index is not None or (base_num & 7) == 4

    # Pick the mod field from the displacement size.  base rbp/r13 cannot
    # use mod=00 (that encoding means RIP-relative / SIB-absolute).
    if rm.disp == 0 and (base_num & 7) != 5:
        mod, disp = 0x00, b""
    elif _fits_i8(rm.disp):
        mod, disp = 0x40, _i8(rm.disp)
    elif _fits_i32(rm.disp):
        mod, disp = 0x80, _i32(rm.disp)
    else:
        raise EncodeError(f"displacement {rm.disp:#x} does not fit in 32 bits")

    if need_sib:
        if rm.index is None:
            sib = (0x04 << 3) | (base_num & 7)  # index=100: none
        else:
            if rm.index.number == 4:
                raise EncodeError("rsp cannot be an index register")
            out.rex_x = (rm.index.number >> 3) & 1
            sib = (
                (_SCALE_BITS[rm.scale] << 6)
                | ((rm.index.number & 7) << 3)
                | (base_num & 7)
            )
        out.body = bytes([mod | (reg3 << 3) | 0x04, sib]) + disp
    else:
        out.body = bytes([mod | (reg3 << 3) | (base_num & 7)]) + disp
    return out


def _rex(w: int, r: int, x: int, b: int) -> bytes:
    """Emit a REX prefix byte if any bit is set (or W demanded)."""
    if w or r or x or b:
        return bytes([0x40 | (w << 3) | (r << 2) | (x << 1) | b])
    return b""


def _with_modrm(
    opcode: bytes, reg_field: int, rm: Operand, width: int, tail: bytes = b""
) -> bytes:
    modrm = _encode_modrm(reg_field, rm)
    w = 1 if width == 64 else 0
    return _rex(w, modrm.rex_r, modrm.rex_x, modrm.rex_b) + opcode + modrm.body + tail


def _operand_width(insn: Instruction) -> int:
    for op in insn.operands:
        if isinstance(op, Register):
            return op.width
        if isinstance(op, Memory):
            return op.width
    return 64


def encode(insn: Instruction, addr: int = 0) -> bytes:
    """Encode ``insn`` as machine code, assuming it is placed at ``addr``.

    Branch targets and RIP-relative operands are interpreted as absolute
    addresses and converted to displacements relative to the instruction's
    end.
    """
    code = _encode_body(insn, addr)
    return code


def encoded_size(insn: Instruction) -> int:
    """Size of the instruction's encoding (independent of placement)."""
    return len(_encode_body(insn, 0))


def _rip_fixup(code: bytes, addr: int, target: int, tail_len: int) -> bytes:
    """Patch the RIP-relative disp32 located ``tail_len+4`` bytes from the end."""
    end = addr + len(code)
    disp = target - end
    if not _fits_i32(disp):
        raise EncodeError(f"RIP-relative target {target:#x} out of range from {addr:#x}")
    pos = len(code) - tail_len - 4
    return code[:pos] + _i32(disp) + code[pos + 4:]


def _encode_body(insn: Instruction, addr: int) -> bytes:
    m = insn.mnemonic
    ops = insn.operands

    if m == "syscall":
        return b"\x0f\x05"
    if m == "ret":
        return b"\xc3"
    if m == "nop":
        return b"\x90"
    if m == "hlt":
        return b"\xf4"
    if m == "ud2":
        return b"\x0f\x0b"
    if m == "int3":
        return b"\xcc"
    if m == "cdq":
        return b"\x99"
    if m == "cqo":
        return b"\x48\x99"

    if m in ("mov", "movabs"):
        return _encode_mov(insn, addr)
    if m == "lea":
        return _encode_lea(insn, addr)
    if m in _ALU_GROUP:
        return _encode_alu(insn, addr)
    if m == "test":
        return _encode_test(insn)
    if m in ("shl", "shr"):
        return _encode_shift(insn)
    if m == "imul":
        return _encode_imul(insn)
    if m in ("inc", "dec"):
        group = 0 if m == "inc" else 1
        width = _operand_width(insn)
        return _with_modrm(b"\xff", group, insn.operands[0], width)
    if m in ("neg", "not"):
        group = 3 if m == "neg" else 2
        width = _operand_width(insn)
        return _with_modrm(b"\xf7", group, insn.operands[0], width)
    if m in ("movzx", "movsx"):
        return _encode_movx(insn, addr)
    if m == "movsxd":
        dst, src = insn.operands
        if not isinstance(dst, Register):
            raise EncodeError("movsxd destination must be a register")
        code = _with_modrm(b"\x63", dst.number, src, 64)
        if isinstance(src, Memory) and src.rip_relative:
            code = _rip_fixup(code, addr, src.disp, 0)
        return code
    if m.startswith("cmov"):
        cc = CC_NUMBERS.get(m[4:])
        if cc is None:
            raise EncodeError(f"unknown cmov condition {m!r}")
        dst, src = insn.operands
        if not isinstance(dst, Register):
            raise EncodeError("cmov destination must be a register")
        width = _operand_width(insn)
        code = _with_modrm(bytes([0x0F, 0x40 | cc]), dst.number, src, width)
        if isinstance(src, Memory) and src.rip_relative:
            code = _rip_fixup(code, addr, src.disp, 0)
        return code
    if m == "push":
        return _encode_push(ops[0])
    if m == "pop":
        return _encode_pop(ops[0])
    if m == "call":
        return _encode_branch(0xE8, None, 2, insn, addr)
    if m == "jmp":
        return _encode_branch(0xE9, None, 4, insn, addr)
    if insn.is_conditional:
        cc = CC_NUMBERS[m[1:]]
        return _encode_jcc(cc, insn, addr)

    raise EncodeError(f"cannot encode mnemonic {m!r}")


def _encode_mov(insn: Instruction, addr: int) -> bytes:
    dst, src = insn.operands
    width = _operand_width(insn)

    if isinstance(dst, Register) and isinstance(src, Immediate):
        if insn.mnemonic == "movabs" or src.width == 64 or (
            width == 64 and not _fits_i32(src.value)
        ):
            # REX.W B8+rd io — the only 64-bit immediate form.
            rexb = (dst.number >> 3) & 1
            return _rex(1, 0, 0, rexb) + bytes([0xB8 | (dst.number & 7)]) + _u64(src.value)
        if width == 64:
            # REX.W C7 /0 id — sign-extended imm32.
            return _with_modrm(b"\xc7", 0, dst, 64, _i32(src.value))
        # B8+rd id — 32-bit move (zero-extends in hardware).
        rexb = (dst.number >> 3) & 1
        return _rex(0, 0, 0, rexb) + bytes([0xB8 | (dst.number & 7)]) + _u32(src.value)

    if isinstance(dst, Register) and isinstance(src, Register):
        return _with_modrm(b"\x89", src.number, dst, width)

    if isinstance(dst, Register) and isinstance(src, Memory):
        code = _with_modrm(b"\x8b", dst.number, src, width)
        if src.rip_relative:
            code = _rip_fixup(code, addr, src.disp, 0)
        return code

    if isinstance(dst, Memory) and isinstance(src, Register):
        code = _with_modrm(b"\x89", src.number, dst, width)
        if dst.rip_relative:
            code = _rip_fixup(code, addr, dst.disp, 0)
        return code

    if isinstance(dst, Memory) and isinstance(src, Immediate):
        if not _fits_i32(src.value):
            raise EncodeError("mov mem, imm only supports 32-bit immediates")
        code = _with_modrm(b"\xc7", 0, dst, width, _i32(src.value))
        if dst.rip_relative:
            code = _rip_fixup(code, addr, dst.disp, 4)
        return code

    raise EncodeError(f"unsupported mov form: {insn}")


def _encode_lea(insn: Instruction, addr: int) -> bytes:
    dst, src = insn.operands
    if not (isinstance(dst, Register) and isinstance(src, Memory)):
        raise EncodeError("lea requires a register destination and memory source")
    code = _with_modrm(b"\x8d", dst.number, src, 64)
    if src.rip_relative:
        code = _rip_fixup(code, addr, src.disp, 0)
    return code


def _encode_alu(insn: Instruction, addr: int) -> bytes:
    m = insn.mnemonic
    dst, src = insn.operands
    width = _operand_width(insn)

    if isinstance(src, Immediate):
        group = _ALU_GROUP[m]
        if _fits_i8(src.value):
            tail, opcode = _i8(src.value), b"\x83"
        elif _fits_i32(src.value):
            tail, opcode = _i32(src.value), b"\x81"
        else:
            raise EncodeError(f"{m} immediate {src.value:#x} does not fit in 32 bits")
        code = _with_modrm(opcode, group, dst, width, tail)
        if isinstance(dst, Memory) and dst.rip_relative:
            code = _rip_fixup(code, addr, dst.disp, len(tail))
        return code

    if isinstance(src, Register) and isinstance(dst, (Register, Memory)):
        code = _with_modrm(bytes([_ALU_MR[m]]), src.number, dst, width)
        if isinstance(dst, Memory) and dst.rip_relative:
            code = _rip_fixup(code, addr, dst.disp, 0)
        return code

    if isinstance(src, Memory) and isinstance(dst, Register):
        code = _with_modrm(bytes([_ALU_RM[m]]), dst.number, src, width)
        if src.rip_relative:
            code = _rip_fixup(code, addr, src.disp, 0)
        return code

    raise EncodeError(f"unsupported {m} form: {insn}")


def _encode_test(insn: Instruction) -> bytes:
    dst, src = insn.operands
    width = _operand_width(insn)
    if isinstance(src, Register):
        return _with_modrm(b"\x85", src.number, dst, width)
    if isinstance(src, Immediate):
        if not _fits_i32(src.value):
            raise EncodeError("test imm must fit in 32 bits")
        return _with_modrm(b"\xf7", 0, dst, width, _i32(src.value))
    raise EncodeError(f"unsupported test form: {insn}")


def _encode_shift(insn: Instruction) -> bytes:
    dst, src = insn.operands
    if not isinstance(src, Immediate) or not 0 <= src.value <= 63:
        raise EncodeError("shifts take an imm8 count between 0 and 63")
    group = 4 if insn.mnemonic == "shl" else 5
    width = _operand_width(insn)
    return _with_modrm(b"\xc1", group, dst, width, bytes([src.value]))


def _encode_movx(insn: Instruction, addr: int) -> bytes:
    """movzx/movsx from an 8- or 16-bit memory operand."""
    dst, src = insn.operands
    if not isinstance(dst, Register):
        raise EncodeError(f"{insn.mnemonic} destination must be a register")
    if not isinstance(src, Memory) or src.width not in (8, 16):
        raise EncodeError(
            f"{insn.mnemonic} source must be an 8- or 16-bit memory operand"
        )
    if insn.mnemonic == "movzx":
        opcode = 0xB6 if src.width == 8 else 0xB7
    else:
        opcode = 0xBE if src.width == 8 else 0xBF
    code = _with_modrm(bytes([0x0F, opcode]), dst.number, src, dst.width)
    if src.rip_relative:
        code = _rip_fixup(code, addr, src.disp, 0)
    return code


def _encode_imul(insn: Instruction) -> bytes:
    dst, src = insn.operands
    if not isinstance(dst, Register):
        raise EncodeError("imul destination must be a register")
    width = _operand_width(insn)
    return _with_modrm(b"\x0f\xaf", dst.number, src, width)


def _encode_push(op: Operand) -> bytes:
    if isinstance(op, Register):
        rexb = (op.number >> 3) & 1
        return _rex(0, 0, 0, rexb) + bytes([0x50 | (op.number & 7)])
    if isinstance(op, Immediate):
        if not _fits_i32(op.value):
            raise EncodeError("push imm must fit in 32 bits")
        return b"\x68" + _i32(op.value)
    raise EncodeError("push supports register or immediate operands")


def _encode_pop(op: Operand) -> bytes:
    if isinstance(op, Register):
        rexb = (op.number >> 3) & 1
        return _rex(0, 0, 0, rexb) + bytes([0x58 | (op.number & 7)])
    raise EncodeError("pop supports register operands only")


def _encode_branch(
    direct_opcode: int, prefix: bytes | None, ff_group: int, insn: Instruction, addr: int
) -> bytes:
    (op,) = insn.operands
    if isinstance(op, Immediate):
        # Direct near branch: opcode + rel32, target stored absolute.
        size = 5
        rel = op.value - (addr + size)
        if not _fits_i32(rel):
            raise EncodeError(f"branch target {op.value:#x} out of rel32 range")
        return bytes([direct_opcode]) + _i32(rel)
    if isinstance(op, (Register, Memory)):
        # FF /2 (call) or FF /4 (jmp); operand size fixed at 64 in long mode.
        code = _with_modrm(b"\xff", ff_group, op, 32)
        if isinstance(op, Memory) and op.rip_relative:
            code = _rip_fixup(code, addr, op.disp, 0)
        return code
    raise EncodeError(f"unsupported branch operand {op!r}")


def _encode_jcc(cc: int, insn: Instruction, addr: int) -> bytes:
    (op,) = insn.operands
    if not isinstance(op, Immediate):
        raise EncodeError("conditional jumps must be direct")
    size = 6
    rel = op.value - (addr + size)
    if not _fits_i32(rel):
        raise EncodeError(f"jcc target {op.value:#x} out of rel32 range")
    return bytes([0x0F, 0x80 | cc]) + _i32(rel)
